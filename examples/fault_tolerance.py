#!/usr/bin/env python
"""Surviving instance crashes with batch-level recovery (§7 + §1.1).

The cloud is configured with an aggressive failure process (MTBF of a few
minutes — far worse than real EC2, to force crashes inside one job).  The
fault-tolerant runner processes each instance's bin in batches; a crash
loses at most one batch, the monitor times out, and a replacement instance
redoes the lost batch and continues.  EBS persistence is what makes this
cheap: no data is re-staged.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.apps import PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, FailureModel, Workload
from repro.core import StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.perfmodel.regression import fit_affine
from repro.runner import FaultPolicy, execute_fault_tolerant
from repro.units import fmt_bytes, fmt_seconds


def main() -> None:
    x = np.array([1e5, 1e6, 5e6])
    model = fit_affine(x, 0.327 + 0.865e-4 * x)
    catalogue = text_400k_like(scale=0.01)
    plan = StaticProvisioner(model).plan(
        list(reshape(catalogue, None).units), deadline=400.0, strategy="uniform")
    workload = Workload("postag", PosTaggerApplication(), PosCostProfile())
    print(f"corpus {fmt_bytes(catalogue.total_size)} across "
          f"{plan.n_instances} instance(s)")

    for mtbf_hours in (None, 0.2, 0.08):
        cloud = Cloud(
            seed=7,
            failure_model=FailureModel(mtbf_hours=mtbf_hours) if mtbf_hours else None,
        )
        report, events = execute_fault_tolerant(
            cloud, workload, plan,
            policy=FaultPolicy(batch_units=25, detection_timeout=60.0,
                               replacement_penalty=180.0, max_crashes_per_bin=12),
        )
        label = "no failures" if mtbf_hours is None else f"MTBF {mtbf_hours * 60:.0f} min"
        print(f"\n[{label}]")
        print(f"  crashes: {len(events)}, makespan {fmt_seconds(report.makespan)}, "
              f"{report.instance_hours} instance-hour(s) billed "
              f"(${cloud.ledger.total_cost:.3f} incl. crashed instances)")
        for ev in events:
            print(f"    bin {ev.bin_index}: {ev.instance_id} died "
                  f"{fmt_seconds(ev.at_elapsed)} in, "
                  f"{ev.lost_batch_units} unit(s) of progress redone")
        total = sum(r.volume for r in report.runs)
        assert total == plan.total_volume
        print(f"  all {fmt_bytes(total)} processed exactly once")


if __name__ == "__main__":
    main()
