#!/usr/bin/env python
"""One DAG campaign, four capacity broker stacks, one interruption storm.

The capacity broker layer makes acquisition composable: the same
fan-out/fan-in workflow can run each stage on private on-demand fleets,
on a shared warm-lease pool, on the raw spot market behind the fallback
ladder, or on spot with interrupted segments escalating into warm leases
before paying list price.  This example replays the same eviction-storm
regime over every stack and prints what each one pays for the identical
work — the single-machine version of ``python -m repro.cli matrix``.

Run:  python examples/broker_matrix.py
"""

from repro.chaos import FaultInjector, get_spot_regime
from repro.cloud import Cloud
from repro.corpus import html_18mil_like
from repro.dag import S3Backend, execute_dag, fanout_pipeline
from repro.units import HOUR, fmt_bytes, fmt_seconds

SEED = 11
SCALE = 2e-4          # ~3.6k files, ~210 MB
DEADLINE = 6 * HOUR
STACKS = ("fleet", "leased", "spot", "spot-lease")


def storm_cloud() -> Cloud:
    """A fresh cloud replaying the eviction-storm spot regime."""
    scenario = get_spot_regime("eviction-storm").scenario(SEED)
    return Cloud(seed=SEED, chaos=FaultInjector([scenario], seed=SEED))


def main() -> None:
    catalogue = html_18mil_like(scale=SCALE, seed=SEED)
    print(f"input: {len(catalogue)} HTML files, "
          f"{fmt_bytes(catalogue.total_size)}")
    print("regime: eviction-storm (interruptions every ~15 min)\n")

    baseline = None
    print(f"{'stack':>10} {'makespan':>10} {'missed':>7} {'total':>8} "
          f"{'vs on-demand':>13}")
    for stack in STACKS:
        report = execute_dag(
            storm_cloud(), fanout_pipeline(), catalogue, DEADLINE,
            backend=S3Backend(), policy=stack,
            label=f"broker-matrix.{stack}")
        if baseline is None:
            baseline = report.total_cost     # the on-demand fleet control
        ratio = report.total_cost / baseline if baseline else 0.0
        interruptions = (report.spot_stats or {}).get("interruptions", 0)
        tail = f" ({interruptions} interruptions ridden out)" \
            if interruptions else ""
        print(f"{stack:>10} {fmt_seconds(report.makespan):>10} "
              f"{report.n_missed:>4}/{report.n_bins:<2} "
              f"${report.total_cost:>7.4f} {ratio:>12.2f}x{tail}")

    print("\nsame bins, same deadline — the broker stack is the only "
          "thing that changed")


if __name__ == "__main__":
    main()
