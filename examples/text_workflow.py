#!/usr/bin/env python
"""A three-stage text-processing workflow with full-hour subdeadlines (§7).

Pipeline: grep-filter the HTML crawl for relevant articles (keeps 40 %),
extract visible text, POS-tag the result.  The §7 scheduler splits the
user deadline across stages proportionally to predicted work and snaps the
splits to whole hours, so no stage's fleet releases instances mid-hour
under ceil-hour pricing.

Run:  python examples/text_workflow.py
"""

import numpy as np

from repro.apps import (
    ExtractCostProfile,
    ExtractorApplication,
    GrepApplication,
    GrepCostProfile,
    PosCostProfile,
    PosTaggerApplication,
)
from repro.cloud import Cloud, UploadSite, Workload
from repro.core import TextWorkflow, WorkflowStage, assign_subdeadlines, execute_workflow
from repro.corpus import html_18mil_like
from repro.perfmodel.regression import fit_affine
from repro.units import HOUR, fmt_bytes, fmt_seconds


def affine(a, b):
    x = np.array([1e5, 1e6, 1e7])
    return fit_affine(x, a + b * x)


def main() -> None:
    cloud = Cloud(seed=22)
    catalogue = html_18mil_like(scale=5e-4)   # ~9k files, ~430 MB
    deadline = 4 * HOUR

    workflow = TextWorkflow()
    workflow.add_stage(WorkflowStage(
        name="filter",
        workload=Workload("grep", GrepApplication("economy"), GrepCostProfile()),
        predictor=affine(0.2, 1.3e-8),
        output_ratio=0.4,
    ))
    workflow.add_stage(WorkflowStage(
        name="extract",
        workload=Workload("extract", ExtractorApplication(), ExtractCostProfile()),
        predictor=affine(0.3, 3.0e-8),
        output_ratio=0.95,
        strips_markup=True,
    ), after=["filter"])
    workflow.add_stage(WorkflowStage(
        name="tag",
        workload=Workload("postag", PosTaggerApplication(), PosCostProfile()),
        predictor=affine(3.0, 0.9e-4),
    ), after=["extract"])

    print(f"input: {len(catalogue)} HTML files, {fmt_bytes(catalogue.total_size)}")
    site = UploadSite()
    stage_in = site.stage_in_time(catalogue.total_size, n_instances=8)
    print(f"stage-in through the upload site: {fmt_seconds(stage_in)} "
          f"(saturates at {site.saturation_fleet()} instances)\n")

    vols = workflow.stage_volumes(catalogue.total_size)
    subs = assign_subdeadlines(workflow, catalogue.total_size, deadline)
    print(f"{'stage':>8} {'input':>10} {'subdeadline':>12}")
    for stage in workflow.stages():
        print(f"{stage.name:>8} {fmt_bytes(vols[stage.name]):>10} "
              f"{fmt_seconds(subs[stage.name]):>12}")

    report = execute_workflow(cloud, workflow, catalogue, deadline)
    print(f"\n{'stage':>8} {'inst':>5} {'makespan':>10} {'missed':>7} {'inst-h':>7}")
    for name, r in report.stage_reports.items():
        print(f"{name:>8} {r.n_instances:>5} {fmt_seconds(r.makespan):>10} "
              f"{r.n_missed:>7} {r.instance_hours:>7}")
    print(f"\nworkflow makespan {fmt_seconds(report.makespan)} vs deadline "
          f"{fmt_seconds(deadline)} -> {'met' if report.met_deadline else 'MISSED'}")
    print(f"total: {report.instance_hours} instance-hours = ${report.cost:.3f}")


if __name__ == "__main__":
    main()
