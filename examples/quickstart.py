#!/usr/bin/env python
"""Quickstart: the full pipeline on one page.

Reshape a corpus of small text files, learn an empirical performance model
by probing a (simulated) EC2 instance, provision a fleet against a
deadline, execute, and read the bill — the end-to-end loop of Turcu,
Foster & Nestorov, "Reshaping text data for efficient processing on Amazon
EC2".

Run:  python examples/quickstart.py
"""

from repro.apps import PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, Workload
from repro.core import Campaign
from repro.corpus import text_400k_like
from repro.units import KB, fmt_bytes, fmt_seconds


def main() -> None:
    # A deterministic simulated EC2 region; every number below reproduces
    # exactly for a given seed.
    cloud = Cloud(seed=2010)

    # The workload: a real POS tagger plus the cost profile the simulator
    # charges for it (the paper's §5.2 application).
    workload = Workload("postag", PosTaggerApplication(), PosCostProfile())

    # A synthetic corpus matching the paper's Text_400K data set, scaled
    # down for a quick run (~8,000 files, ~20 MB).
    catalogue = text_400k_like(scale=0.02)
    print(f"corpus: {len(catalogue)} files, {fmt_bytes(catalogue.total_size)}")

    # One call drives the paper's whole methodology: vet an instance with
    # bonnie++, run escalating probes, pick the preferred unit file size,
    # fit a runtime model, reshape, plan for the deadline, execute.
    campaign = Campaign(cloud, workload, catalogue, probe_repeats=3)
    result = campaign.run(
        deadline=240.0,                         # seconds
        initial_volume=100 * KB,                # first probe volume (§4)
        unit_sizes_for=lambda v: [1 * KB, 10 * KB, 100 * KB],
        strategy="uniform",                     # the Fig. 8(b) improvement
        use_adjusted_deadline=True,             # §5.2: 10% miss odds
    )

    print(f"\nvetted an instance in {result.acquisition_attempts} attempt(s)")
    print(f"preferred unit size: {result.preferred.label} "
          f"(plateau: {result.preferred.plateau})")
    m = result.final_model
    print(f"fitted model: f(x) = {m.a:.3g} + {m.b:.3g}·x   (R² = {m.r2:.4f})")
    print(f"reshaped {result.reshape_plan.n_input_files} files into "
          f"{result.reshape_plan.n_units} unit(s)")

    report = result.report
    print(f"\nplan: {result.plan.n_instances} instance(s), "
          f"strategy = {result.plan.strategy}")
    print(f"makespan: {fmt_seconds(report.makespan)} "
          f"(deadline {fmt_seconds(report.deadline)}), "
          f"missed by {report.n_missed} instance(s)")
    print(f"bill: {report.instance_hours} instance-hour(s) = ${report.cost:.3f}")
    print(f"cloud ledger total (incl. probing): ${cloud.ledger.total_cost:.3f}")


if __name__ == "__main__":
    main()
