#!/usr/bin/env python
"""Spot provisioning under an eviction storm — the fallback ladder at work.

The paper runs every campaign on on-demand instances because its users
have deadlines (§1.1).  This demo provisions the same deadline-driven
grep campaign on *spot* capacity during the nastiest shipped interruption
regime and compares three users:

* a naive spot user — no checkpoints, no fallback: every interruption
  restarts the bin from scratch in the same zone;
* the fallback ladder — checkpoint into the two-minute warning, re-bid
  in another zone, re-type, queue, and escalate to on-demand when the
  deadline is at risk;
* the paper's pure on-demand baseline.

Run:  python examples/spot_fallback.py
"""

from repro.experiments.exp_spot import run_cell

REGIME = "eviction-storm"
SEED = 23


def main() -> None:
    on = run_cell(REGIME, resilience=True, seed=SEED)
    off = run_cell(REGIME, resilience=False, seed=SEED)

    print(f"regime {REGIME!r}, seed {SEED}: {on['bins']} bins, "
          f"{on['interruptions']} interruptions replayed\n")
    print(f"{'policy':>16} {'missed':>7} {'cost':>8} {'vs on-demand':>13} "
          f"{'rebids':>7} {'escalations':>12}")
    for label, cell in (("naive spot", off), ("fallback ladder", on)):
        print(f"{label:>16} {cell['missed']:>4}/{cell['bins']:<2} "
              f"${cell['cost_usd']:>6.3f} {cell['cost_ratio']:>12.2f}x "
              f"{cell['rebids']:>7} {cell['escalations']:>12}")
    print(f"{'pure on-demand':>16} {'':>7} "
          f"${on['on_demand_baseline_usd']:>6.3f} {1.0:>12.2f}x")

    saved = 1.0 - on["cost_ratio"]
    print(f"\nthe ladder absorbs the storm at {saved:.0%} below the "
          "on-demand bill; the naive user pays almost as much and still "
          "blows the deadline on restarted bins")


if __name__ == "__main__":
    main()
