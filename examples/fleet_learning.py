#!/usr/bin/env python
"""Learning across campaigns: run history and instance-quality tracking (§7).

Day one, a fleet runs a grep campaign; every run lands in a persistent
history file and every instance's bonnie measurement trains a quality
tracker.  Day two, a new campaign skips probing entirely: the historical
predictor sizes the fleet, and quality-proportional shares flatten the
finish times on a rough neighbourhood of instances.

Run:  python examples/fleet_learning.py
"""

import tempfile
from pathlib import Path

from repro.apps import GrepApplication, GrepCostProfile
from repro.cloud import Cloud, ExecutionService, Workload, bonnie_probe
from repro.cloud.instance import HeterogeneityModel
from repro.corpus import html_18mil_like
from repro.perfmodel import HistoricalPredictor, QualityTracker, RunHistory
from repro.runner import execute_quality_aware
from repro.units import fmt_bytes, fmt_seconds


def main() -> None:
    rough = HeterogeneityModel(p_slow=0.4, p_very_slow=0.0,
                               slow_range=(0.5, 0.7))
    workload = Workload("grep", GrepApplication(), GrepCostProfile())

    # ---- day one: a campaign that records everything it sees -------------
    cloud = Cloud(seed=77, io_heterogeneity=rough)
    svc = ExecutionService(cloud)
    history = RunHistory()
    tracker = QualityTracker()
    day_one = html_18mil_like(scale=2e-3, seed=77)

    print("day one: running and recording")
    # Deliberately varied job sizes so every quality band's model spans a
    # range of volumes.
    fractions = (0.08, 0.12, 0.15, 0.18, 0.22, 0.25)
    remaining = day_one
    for frac in fractions:
        part = remaining.head_by_volume(int(day_one.total_size * frac))
        remaining = remaining.filter(
            lambda f, taken={g.path for g in part}: f.path not in taken)
        inst = cloud.launch_instance()
        label = tracker.classify(bonnie_probe(cloud, inst))
        t = svc.run(inst, list(part), workload)
        history.record("grep", part.total_size, t,
                       instance_id=inst.instance_id, n_units=len(part))
        tracker.record(label, part.total_size, t)
        cloud.terminate_instance(inst)
        print(f"  {inst.instance_id} [{label:>4}] {fmt_bytes(part.total_size)} "
              f"in {fmt_seconds(t)}")

    with tempfile.TemporaryDirectory() as tmp:
        hist_path = Path(tmp) / "grep_history.jsonl"
        history.save(hist_path)
        print(f"\nsaved {len(history)} run records to {hist_path.name}")

        # ---- day two: plan from history, share by quality -----------------
        loaded = RunHistory.load(hist_path)
        predictor = HistoricalPredictor.from_history(loaded, "grep")
        day_two = html_18mil_like(scale=4e-3, seed=78)
        processing_budget = 60.0               # per-instance processing target
        deadline = processing_budget + 120.0   # + the 2-minute bonnie probe
        capacity = predictor.inverse(processing_budget)
        n = max(1, round(day_two.total_size / capacity))
        print(f"\nday two: history predicts {fmt_bytes(capacity)} per instance "
              f"in {fmt_seconds(processing_budget)} of processing -> fleet of {n}")

        cloud2 = Cloud(seed=99, io_heterogeneity=rough)
        report, labels = execute_quality_aware(
            cloud2, workload, day_two, deadline, n, tracker)
        print(f"fleet quality labels: {labels}")
        for run, label in zip(report.runs, labels):
            print(f"  {run.instance_id} [{label:>4}] {fmt_bytes(run.volume):>9} "
                  f"in {fmt_seconds(run.duration)}")
        durs = [r.duration for r in report.runs if r.volume > 0]
        spread = (max(durs) - min(durs)) / (sum(durs) / len(durs))
        print(f"finish-time spread {spread:.0%} despite a "
              f"{min(labels) != max(labels) and 'mixed' or 'uniform'}-quality fleet; "
              f"bill ${cloud2.ledger.total_cost:.3f}")


if __name__ == "__main__":
    main()
