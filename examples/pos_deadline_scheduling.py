#!/usr/bin/env python
"""Deadline scheduling for POS tagging — the Fig. 8 comparison (§5.2).

Fits the paper's Eq.(3)-style model from probes, then contrasts three
provisioning strategies for a one-hour deadline: capacity-driven first-fit
bins, uniform bins at equal cost, and the residual-adjusted deadline that
targets a 10% miss probability.

Run:  python examples/pos_deadline_scheduling.py
"""

from repro.apps import PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, ExecutionService, Workload, acquire_good_instance
from repro.core import StaticProvisioner
from repro.core.deadline import adjusted_deadline, adjustment_factor
from repro.corpus import text_400k_like
from repro.perfmodel import build_probe_set, fit_affine
from repro.perfmodel.probes import ProbeCampaign
from repro.runner import execute_plan
from repro.units import HOUR, KB, MB, fmt_bytes, fmt_seconds


def main() -> None:
    cloud = Cloud(seed=11)
    catalogue = text_400k_like(scale=0.25)   # ~100k files, ~240 MB
    deadline = HOUR / 4                       # scaled with the corpus
    print(f"corpus: {len(catalogue)} files, {fmt_bytes(catalogue.total_size)}; "
          f"deadline {fmt_seconds(deadline)}")

    workload = Workload("postag", PosTaggerApplication(), PosCostProfile())
    instance, _ = acquire_good_instance(cloud)
    svc = ExecutionService(cloud)
    campaign = ProbeCampaign(svc, instance, workload, repeats=5)

    # Probe the head of the corpus in its original segmentation (Fig. 7
    # says merging does not help the memory-bound tagger).
    xs, ys = [], []
    for vol in (500 * KB, 2 * MB, 10 * MB, 40 * MB):
        ps = build_probe_set(catalogue, vol, [])
        m = campaign.measure(ps.variants["orig"], directory=f"probe/{vol}")
        actual = sum(u.size for u in ps.variants["orig"])
        for t in m.values:
            xs.append(float(actual))
            ys.append(t)
    model = fit_affine(xs, ys)
    print(f"model: f(x) = {model.a:.2f} + {model.b:.3e}·x  (R² = {model.r2:.4f})")
    print("  (paper Eq. (3): f(x) = 0.327 + 0.865e-4·x)")

    prov = StaticProvisioner(model)
    units = list(catalogue)
    a = adjustment_factor(model, miss_probability=0.10)
    d_adj = adjusted_deadline(deadline, a)
    print(f"residual adjustment a = {a:.3f} -> plan against "
          f"{fmt_seconds(d_adj)} to miss {fmt_seconds(deadline)} "
          "only 10% of the time")

    plans = {
        "first-fit": prov.plan(units, deadline, strategy="first-fit"),
        "uniform": prov.plan(units, deadline, strategy="uniform"),
        "adjusted": prov.plan(units, deadline, strategy="uniform",
                              planning_deadline=d_adj),
    }
    print(f"\n{'strategy':>10} {'inst':>5} {'missed':>7} {'inst-h':>7} "
          f"{'makespan':>10} {'cost':>8}")
    reports = {}
    for name, plan in plans.items():
        report = execute_plan(cloud, workload, plan)
        reports[name] = report
        print(f"{name:>10} {report.n_instances:>5} {report.n_missed:>7} "
              f"{report.instance_hours:>7} {fmt_seconds(report.makespan):>10} "
              f"${report.cost:>6.3f}")

    from repro.report import render_gantt

    print("\nper-instance timeline of the adjusted plan:")
    print(render_gantt(reports["adjusted"]))

    cloud.finalize_billing()
    print(f"\ntotal session bill: ${cloud.ledger.total_cost:.3f}")


if __name__ == "__main__":
    main()
