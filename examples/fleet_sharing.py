#!/usr/bin/env python
"""Multi-tenant fleet sharing: several campaigns riding the same paid hours.

Four tenants submit six campaigns to one shared fleet.  The admission
controller answers every submission out loud (admitted / deferred /
rejected), the scheduler places bins in weighted fair-share order, and
released instances park in a warm pool keyed by their remaining paid-hour
seconds — so a later campaign's bin can start instantly on an hour
somebody already bought.  The per-tenant bill splits every ceil-hour
charge across the campaigns that actually used it, summing exactly to
the ledger total.

Run:  python examples/fleet_sharing.py
"""

from repro.apps import GrepApplication, GrepCostProfile
from repro.cloud import Cloud, Workload
from repro.core import StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.fleet import (
    AdmissionController,
    FleetRequest,
    FleetScheduler,
    LeaseManager,
    Tenant,
    TenantRegistry,
)
from repro.perfmodel.regression import fit_affine
from repro.units import KB, MB


def main() -> None:
    cloud = Cloud(seed=42)
    workload = Workload("grep", GrepApplication(), GrepCostProfile())

    # Tenants with different quotas and one hard budget.
    registry = TenantRegistry()
    registry.register(Tenant("acme", weight=2.0, max_concurrent_instances=4))
    registry.register(Tenant("globex", max_concurrent_instances=2))
    registry.register(Tenant("initech", budget_usd=0.05))

    leases = LeaseManager(cloud, max_instances=4)
    scheduler = FleetScheduler(cloud, leases, AdmissionController(registry))

    # The same corpus, planned independently per campaign.
    catalogue = text_400k_like(scale=0.02)
    units = list(reshape(catalogue, 100 * KB).units)
    model = fit_affine([1 * MB, 5 * MB, 10 * MB], [35.0, 160.0, 310.0])
    provisioner = StaticProvisioner(model)

    submissions = [
        ("acme", "nightly-grep"),
        ("acme", "adhoc-grep"),
        ("globex", "batch-1"),
        ("globex", "batch-2"),
        ("initech", "audit"),         # rejected: plan exceeds its budget
        ("hooli", "freeloader"),      # rejected: unknown tenant
    ]
    for tenant, name in submissions:
        plan = provisioner.plan(units, deadline=3600.0, strategy="uniform")
        decision = scheduler.submit(FleetRequest(tenant, workload, plan, name))
        print(f"submit {tenant}/{name}: {decision.kind} ({decision.reason})")

    report = scheduler.run()
    s = report.summary()
    print()
    print(f"ran {s['bins']} bins on {s['instances']} instance(s), "
          f"{s['instance_hours']} billed hour(s), ${s['cost_usd']:.4f} total, "
          f"warm-pool hit rate {s['warm_hit_rate']:.2f}")
    print()
    print("per-tenant bill (sums exactly to the ledger):")
    print(report.render_attribution())


if __name__ == "__main__":
    main()
