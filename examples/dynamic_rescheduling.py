#!/usr/bin/env python
"""Straggler replacement with EBS re-attach — the paper's §7, implemented.

A fleet drawn from a degraded cloud contains consistently-slow instances.
The static plan just eats the slowdown; the monitored run detects each
straggler after a probe chunk, retires it (its partial hour is still
billed), re-attaches the work to a fresh instance for a ~3-minute penalty,
and finishes far sooner.

Run:  python examples/dynamic_rescheduling.py
"""

import numpy as np

from repro.apps import PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, Workload
from repro.cloud.instance import HeterogeneityModel
from repro.core import StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.perfmodel.regression import fit_affine
from repro.runner import DynamicPolicy, execute_plan, execute_with_monitoring
from repro.units import fmt_bytes, fmt_seconds


def main() -> None:
    # A rough neighbourhood: a third of instances run at half speed.
    bad_cloud = HeterogeneityModel(p_slow=0.35, p_very_slow=0.05,
                                   slow_range=(0.45, 0.6))

    x = np.array([1e5, 1e6, 5e6])
    model = fit_affine(x, 0.327 + 0.865e-4 * x)
    catalogue = text_400k_like(scale=0.05)
    plan = StaticProvisioner(model).plan(
        list(reshape(catalogue, None).units), deadline=600.0, strategy="uniform")
    workload = Workload("postag", PosTaggerApplication(), PosCostProfile())
    print(f"corpus {fmt_bytes(catalogue.total_size)} across "
          f"{plan.n_instances} instances, deadline {fmt_seconds(plan.deadline)}")

    static = execute_plan(Cloud(seed=42, heterogeneity=bad_cloud), workload, plan)
    print(f"\nstatic:  makespan {fmt_seconds(static.makespan)}, "
          f"{static.n_missed} missed, {static.instance_hours} inst-h")

    policy = DynamicPolicy(probe_fraction=0.2, slow_threshold=0.7,
                           replacement_penalty=180.0)
    dynamic, events = execute_with_monitoring(
        Cloud(seed=42, heterogeneity=bad_cloud), workload, plan, policy=policy)
    print(f"dynamic: makespan {fmt_seconds(dynamic.makespan)}, "
          f"{dynamic.n_missed} missed, {dynamic.instance_hours} inst-h")
    print(f"\n{len(events)} straggler(s) replaced:")
    for ev in events:
        print(f"  bin {ev.bin_index}: {ev.old_instance} -> {ev.new_instance} "
              f"at {ev.at_progress:.0%} progress "
              f"(observed {ev.observed_ratio:.2f}x expected throughput)")
    if dynamic.makespan < static.makespan:
        print(f"\nreplacement wins by "
              f"{fmt_seconds(static.makespan - dynamic.makespan)} despite the "
              f"{fmt_seconds(policy.replacement_penalty)} swap penalty (§3.1)")


if __name__ == "__main__":
    main()
