#!/usr/bin/env python
"""Grep over a news crawl: reshaping pays for itself (§5.1).

Reproduces the Fig. 4/Fig. 6 story on a scaled-down NewsLab-like HTML
corpus: small files are several-fold slower to scan than 100 MB unit
files, and a model fitted on a vetted instance underestimates the real
fleet.

Run:  python examples/news_grep_campaign.py
"""

from repro.apps import GrepApplication, GrepCostProfile
from repro.cloud import Cloud, ExecutionService, Workload, acquire_good_instance
from repro.core import reshape
from repro.corpus import html_18mil_like
from repro.perfmodel import build_probe_set, fit_affine
from repro.perfmodel.probes import ProbeCampaign
from repro.units import GB, MB, fmt_bytes, fmt_seconds


def main() -> None:
    cloud = Cloud(seed=7)
    catalogue = html_18mil_like(scale=2e-3)   # ~36k files, ~1.8 GB
    print(f"corpus: {len(catalogue)} HTML files, {fmt_bytes(catalogue.total_size)}")

    workload = Workload("grep", GrepApplication(), GrepCostProfile())
    instance, attempts = acquire_good_instance(cloud)
    print(f"vetted instance {instance.instance_id} after {attempts} attempt(s)")

    volume = cloud.create_volume(size_gb=500, zone=instance.zone)
    volume.attach(instance)
    svc = ExecutionService(cloud)
    campaign = ProbeCampaign(svc, instance, workload, storage=volume, repeats=5)

    # Sweep unit file sizes at a 1 GB probe volume.
    sizes = [1 * MB, 10 * MB, 100 * MB, 500 * MB]
    ps = build_probe_set(catalogue, 1 * GB, sizes)
    print("\nunit-size sweep at 1 GB probe volume:")
    results = {}
    for label in ps.labels():
        m = campaign.measure(ps.variants[label], directory=f"sweep/{label}")
        results[label] = m
        pretty = "orig" if label == "orig" else fmt_bytes(label)
        print(f"  {pretty:>8}: {m.mean:7.1f}s ± {m.std:.1f}")
    best = min((l for l in results if l != "orig"), key=lambda l: results[l].mean)
    print(f"original files are {results['orig'].mean / results[best].mean:.1f}x "
          f"slower than {fmt_bytes(best)} units")

    # Fit the runtime model at the chosen unit size and extrapolate.
    xs, ys = [], []
    for vol in (500 * MB, 1 * GB, int(1.7 * GB)):
        psv = build_probe_set(catalogue, vol, [100 * MB])
        m = campaign.measure(psv.variants[100 * MB], directory=f"fit/{vol}")
        for t in m.values:
            xs.append(float(vol))
            ys.append(t)
    model = fit_affine(xs, ys)
    print(f"\nmodel: f(x) = {model.a:.2f} + {model.b:.3e}·x  (R² = {model.r2:.4f})")
    print("  (paper Eq. (1): f(x) = -0.974 + 1.324e-8·x)")

    # Reshape everything and run it on a fresh, unvetted instance.
    plan = reshape(catalogue, 100 * MB)
    print(f"\nreshaped {plan.n_input_files} files -> {plan.n_units} unit files "
          f"(mean fill {plan.fill_stats()['mean_fill']:.0%})")
    runner = cloud.launch_instance()
    run_vol = cloud.create_volume(size_gb=500, zone=runner.zone)
    run_vol.attach(runner)
    run_vol.store("data")
    actual = svc.run(runner, list(plan.units), workload,
                     storage=run_vol, directory="data")
    predicted = float(model.predict(catalogue.total_size))
    print(f"predicted {fmt_seconds(predicted)}, actual {fmt_seconds(actual)} "
          f"({actual / predicted - 1:+.0%}; the paper missed by ~30%)")

    cloud.finalize_billing()
    print(f"\ntotal bill: ${cloud.ledger.total_cost:.3f} "
          f"({cloud.ledger.total_instance_hours} instance-hours)")


if __name__ == "__main__":
    main()
