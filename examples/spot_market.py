#!/usr/bin/env python
"""Spot instances vs on-demand — the §1.1 cost/deadline trade-off.

The paper sticks to on-demand instances because its users have deadlines;
this extension quantifies what they give up.  A resume-capable workload of
20 instance-hours is bid into a simulated spot market at several maximum
prices and compared with the guaranteed on-demand schedule.

Run:  python examples/spot_market.py
"""

from repro.cloud.spot import SpotMarket, SpotRequest
from repro.sim.random import RngStream


def main() -> None:
    work_hours = 20.0
    on_demand_rate = 0.085
    market = SpotMarket(rng=RngStream(17, "spot"))

    print("first 24 hourly spot prices:")
    prices = market.prices(24)
    print("  " + " ".join(f"{p:.3f}" for p in prices))
    print(f"mean price ${market.mean_price:.3f}/h vs on-demand "
          f"${on_demand_rate:.3f}/h\n")

    print(f"{'bid':>7} {'done after':>11} {'paid hours':>11} {'cost':>8} "
          f"{'vs on-demand':>13}")
    on_demand_cost = work_hours * on_demand_rate
    for factor in (0.85, 0.95, 1.05, 1.25, 1.75):
        bid = round(market.mean_price * factor, 4)
        sim = SpotRequest(bid=bid).simulate_progress(
            market, horizon_hours=500, work_hours=work_hours)
        done = f"{sim['completed_hour']} h" if sim["completed_hour"] else "never"
        saving = (1 - sim["cost"] / on_demand_cost) if sim["completed_hour"] else float("nan")
        print(f"${bid:>6.3f} {done:>11} {sim['paid_hours']:>11} "
              f"${sim['cost']:>6.2f} {saving:>12.0%}")

    print(f"\non-demand: exactly {work_hours:.0f} h for ${on_demand_cost:.2f}, "
          "schedulable against a deadline")
    print("spot: cheaper whenever the bid clears often enough — but the "
          "completion hour is market-dependent, which is why the paper's "
          "deadline-driven plans use on-demand capacity")


if __name__ == "__main__":
    main()
