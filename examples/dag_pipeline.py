#!/usr/bin/env python
"""A fan-out/fan-in DAG run stage-concurrently over three data backends.

The five-stage §7 pipeline as a diamond — filter → extract →
{tokenize, tag} → aggregate — planned against full-hour subdeadlines and
executed by the DAG scheduler, once per data-sharing backend (local disk,
S3, EBS).  Compute draws are bit-identical across the three runs, so the
makespan/cost spread is purely the Juve et al. data-sharing choice; the
serial baseline shows what stage-concurrency buys on the two branches.

Run:  python examples/dag_pipeline.py
      python -m repro.cli trace dag_pipeline --gantt --gantt-category dag
"""

from repro.cloud import Cloud
from repro.corpus import html_18mil_like
from repro.dag import (
    EbsBackend,
    LocalDiskBackend,
    S3Backend,
    execute_dag,
    fanout_pipeline,
)
from repro.units import HOUR, fmt_bytes, fmt_seconds

SEED = 22
SCALE = 2e-4          # ~3.6k files, ~210 MB
DEADLINE = 6 * HOUR


def main() -> None:
    catalogue = html_18mil_like(scale=SCALE, seed=SEED)
    graph = fanout_pipeline()
    print(f"input: {len(catalogue)} HTML files, "
          f"{fmt_bytes(catalogue.total_size)}")
    print(f"DAG: {' / '.join(s.name for s in graph.stages())} "
          f"({len(graph.edges())} edges, fan-out after extract)\n")

    print(f"{'backend':>8} {'mode':>10} {'makespan':>10} {'transfer':>9} "
          f"{'compute':>8} {'total':>8} {'met':>4}")
    for backend_cls in (LocalDiskBackend, S3Backend, EbsBackend):
        for mode in ("concurrent", "serial"):
            cloud = Cloud(seed=SEED)
            report = execute_dag(
                cloud, fanout_pipeline(), catalogue, DEADLINE,
                backend=backend_cls(), mode=mode,
                label=f"dag.{backend_cls().name}.{mode}")
            print(f"{report.backend:>8} {mode:>10} "
                  f"{fmt_seconds(report.makespan):>10} "
                  f"{fmt_seconds(report.transfer_seconds):>9} "
                  f"${report.compute_cost_usd:>6.3f} "
                  f"${report.total_cost:>6.3f} "
                  f"{'yes' if report.met_deadline else 'NO':>4}")

    # Per-stage anatomy of one run (S3, concurrent): where the time goes.
    cloud = Cloud(seed=SEED)
    report = execute_dag(cloud, fanout_pipeline(), catalogue, DEADLINE,
                         backend=S3Backend(), label="dag.anatomy")
    print(f"\nper-stage anatomy (s3, concurrent; deadline "
          f"{fmt_seconds(DEADLINE)}):")
    print(f"{'stage':>10} {'ready':>9} {'end':>9} {'available':>10} "
          f"{'bins':>5} {'sub':>7}")
    for name, sr in report.stages.items():
        print(f"{name:>10} {fmt_seconds(sr.ready_at):>9} "
              f"{fmt_seconds(sr.stage_end):>9} "
              f"{fmt_seconds(sr.available_at):>10} "
              f"{len(sr.report.runs):>5} "
              f"{fmt_seconds(report.subdeadlines[name]):>7}")
    print(f"\nmakespan {fmt_seconds(report.makespan)}, "
          f"{len(report.transfers)} transfers "
          f"({fmt_seconds(report.transfer_seconds)}, "
          f"${report.transfer_cost:.4f}), total ${report.total_cost:.3f}")


if __name__ == "__main__":
    main()
