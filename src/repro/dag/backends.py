"""Pluggable inter-stage data-sharing backends (the Juve et al. axis).

Juve et al. ("Data Sharing Options for Scientific Workflows on Amazon
EC2", PAPERS.md) compare how a workflow's intermediate data moves between
stages — through an object store, through attachable block volumes, or
through instance-local disk — and find the choice moves both the bill and
the makespan.  A :class:`DataBackend` is that choice made pluggable: the
DAG scheduler calls :meth:`~DataBackend.put` once when a stage finishes
producing and :meth:`~DataBackend.get` once per consuming edge, and the
backend answers with a priced, timed :class:`TransferRecord`.

Timing draws ride the cloud's deterministic streams under *named forks*
(``dag.<backend>.put.<stage>`` / ``dag.<backend>.get.<producer>-><consumer>``),
the PR 4 convention: installing or swapping a backend never shifts any
other stream, so per-stage compute durations are bit-identical across
backends and any makespan difference is attributable to the transfers
alone.  Chaos injection arrives for free: S3 brownouts stretch
:meth:`~repro.cloud.s3.S3Store.bulk_transfer_time` and degraded-EBS
episodes stretch :meth:`~repro.cloud.ebs.EbsVolume.bulk_io_seconds`,
exactly as they stretch any other I/O.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.cloud.cluster import Cloud
from repro.cloud.ebs import EbsVolume
from repro.units import GB

__all__ = [
    "DataBackend",
    "EbsBackend",
    "LocalDiskBackend",
    "S3Backend",
    "TransferRecord",
]

#: Hours a GB-month is priced over (the AWS billing convention).
_HOURS_PER_MONTH = 730.0


@dataclass(frozen=True)
class TransferRecord:
    """One priced, timed inter-stage data movement."""

    kind: str                 # "put" | "get"
    producer: str             # stage that wrote the data
    consumer: str | None      # stage that reads it (None for a put)
    backend: str
    volume: int               # bytes moved
    n_objects: int            # files in the handoff
    seconds: float
    cost_usd: float


@runtime_checkable
class DataBackend(Protocol):
    """How one stage's output reaches its consumers.

    ``put`` is called once per producing stage (fan-out broadcasts the
    same stored copy, so it is *not* charged per consumer); ``get`` is
    called once per consuming edge.  Both must draw any randomness from
    a fresh named fork of ``cloud.rng`` so backends stay stream-isolated.
    """

    name: str

    def put(self, cloud: Cloud, producer: str, volume: int,
            n_objects: int) -> TransferRecord:
        """Persist a stage's output; returns the timed/priced record."""
        ...

    def get(self, cloud: Cloud, producer: str, consumer: str, volume: int,
            n_objects: int) -> TransferRecord:
        """Fetch a producer's output for one consumer."""
        ...


@dataclass
class S3Backend:
    """Stage outputs round-trip through the region's object store.

    No attach step and unlimited parallel readers, but every object pays
    the store's per-request latency and the payload its (noisy, possibly
    browned-out) bandwidth — the Juve et al. S3 profile.  Pricing is
    per-request plus GB-month storage prorated to ``hold_hours`` (the
    intermediate lives only until the workflow drains it).
    """

    name: str = "s3"
    storage_gb_month: float = 0.15
    put_per_1000: float = 0.01
    get_per_10000: float = 0.01
    hold_hours: float = 1.0

    def put(self, cloud: Cloud, producer: str, volume: int,
            n_objects: int) -> TransferRecord:
        """Upload the stage output as one object batch."""
        rng = cloud.rng.fork(f"dag.{self.name}.put.{producer}")
        seconds = cloud.s3.bulk_transfer_time(volume, n_objects, rng)
        cost = (n_objects / 1000.0 * self.put_per_1000
                + (volume / GB) * self.storage_gb_month
                * self.hold_hours / _HOURS_PER_MONTH)
        return TransferRecord(kind="put", producer=producer, consumer=None,
                              backend=self.name, volume=volume,
                              n_objects=n_objects, seconds=seconds,
                              cost_usd=cost)

    def get(self, cloud: Cloud, producer: str, consumer: str, volume: int,
            n_objects: int) -> TransferRecord:
        """Download the producer's objects for one consuming edge."""
        rng = cloud.rng.fork(f"dag.{self.name}.get.{producer}->{consumer}")
        seconds = cloud.s3.bulk_transfer_time(volume, n_objects, rng)
        cost = n_objects / 10000.0 * self.get_per_10000
        return TransferRecord(kind="get", producer=producer,
                              consumer=consumer, backend=self.name,
                              volume=volume, n_objects=n_objects,
                              seconds=seconds, cost_usd=cost)


@dataclass
class EbsBackend:
    """Stage outputs live on per-producer EBS volumes.

    Sequential streaming beats S3's per-object latency for large
    handoffs, but each consumer pays an attach penalty (a volume attaches
    to one instance at a time, so a fan-out consumer re-attaches) and the
    directory's §5.1 placement luck scales the whole handoff.  Volumes
    are provisioned lazily per producer through ``cloud.create_volume``,
    which wires chaos degradation when a fault injector is installed.

    One backend instance is one workflow run's volume namespace — build a
    fresh backend per run (sweep cells already do).
    """

    name: str = "ebs"
    storage_gb_month: float = 0.10
    io_per_million: float = 0.10
    io_request_bytes: int = 131072
    attach_seconds: float = 30.0
    hold_hours: float = 1.0
    _volumes: dict[str, EbsVolume] = field(default_factory=dict)

    def _volume_for(self, cloud: Cloud, producer: str,
                    volume: int) -> EbsVolume:
        vol = self._volumes.get(producer)
        if vol is None:
            vol = cloud.create_volume(max(1, math.ceil(volume / GB)))
            vol.store(f"dag/{producer}")
            self._volumes[producer] = vol
        return vol

    def _io_cost(self, volume: int) -> float:
        requests = math.ceil(volume / self.io_request_bytes)
        return requests / 1e6 * self.io_per_million

    def put(self, cloud: Cloud, producer: str, volume: int,
            n_objects: int) -> TransferRecord:
        """Stream the stage output onto the producer's volume."""
        vol = self._volume_for(cloud, producer, volume)
        rng = cloud.rng.fork(f"dag.{self.name}.put.{producer}")
        seconds = vol.bulk_io_seconds(f"dag/{producer}", volume, rng)
        cost = (self._io_cost(volume)
                + vol.size_gb * self.storage_gb_month
                * self.hold_hours / _HOURS_PER_MONTH)
        return TransferRecord(kind="put", producer=producer, consumer=None,
                              backend=self.name, volume=volume,
                              n_objects=n_objects, seconds=seconds,
                              cost_usd=cost)

    def get(self, cloud: Cloud, producer: str, consumer: str, volume: int,
            n_objects: int) -> TransferRecord:
        """Attach the producer's volume and stream the handoff off it."""
        vol = self._volume_for(cloud, producer, volume)
        rng = cloud.rng.fork(f"dag.{self.name}.get.{producer}->{consumer}")
        seconds = (self.attach_seconds
                   + vol.bulk_io_seconds(f"dag/{producer}", volume, rng))
        return TransferRecord(kind="get", producer=producer,
                              consumer=consumer, backend=self.name,
                              volume=volume, n_objects=n_objects,
                              seconds=seconds, cost_usd=self._io_cost(volume))


@dataclass
class LocalDiskBackend:
    """Intermediates stay on instance-local disk: free and instant.

    The degenerate baseline: zero seconds and zero dollars on both
    sides, so a DAG run over this backend must reproduce the pure
    compute/billing behaviour of the single-stage runners exactly (the
    differential test pins this).  It models co-scheduling consumer on
    producer's instances — valid only while the working set fits, which
    is precisely the Juve et al. caveat the comparison exists to show.
    """

    name: str = "local"

    def put(self, cloud: Cloud, producer: str, volume: int,
            n_objects: int) -> TransferRecord:
        """Leave the output where it was written: free, instant."""
        return TransferRecord(kind="put", producer=producer, consumer=None,
                              backend=self.name, volume=volume,
                              n_objects=n_objects, seconds=0.0, cost_usd=0.0)

    def get(self, cloud: Cloud, producer: str, consumer: str, volume: int,
            n_objects: int) -> TransferRecord:
        """Read the output in place: free, instant."""
        return TransferRecord(kind="get", producer=producer,
                              consumer=consumer, backend=self.name,
                              volume=volume, n_objects=n_objects,
                              seconds=0.0, cost_usd=0.0)
