"""Workflow graphs: the stage DAG the scheduler executes.

A :class:`WorkflowGraph` is a :class:`~repro.core.workflow.TextWorkflow`
with the edge-level accounting a DAG scheduler needs on top of the
topological API: successors, roots/sinks, per-stage *output* volumes and
per-edge handoff volumes.  Volume flow follows the workflow convention:
a stage's output is ``int(output_ratio * input)`` bytes, a fan-out edge
*broadcasts* that output to every consumer (one stored copy, one get per
edge), and a fan-in stage consumes the sum of its predecessors' outputs
— the same arithmetic :meth:`~repro.core.workflow.TextWorkflow
.stage_volumes` predicts and :func:`~repro.core.workflow
.derived_catalogue` materialises, so predicted and actual bytes agree at
every hop (the conservation property tests pin this).

Two builders cover the shapes the backend-comparison sweep needs: a
five-stage linear pipeline and a fan-out/fan-in diamond, both over the
real applications in :mod:`repro.apps`.
"""

from __future__ import annotations

import numpy as np

from repro.apps import (
    ExtractCostProfile,
    ExtractorApplication,
    GrepApplication,
    GrepCostProfile,
    PosCostProfile,
    PosTaggerApplication,
)
from repro.cloud.service import Workload
from repro.core.workflow import TextWorkflow, WorkflowStage
from repro.perfmodel.regression import Predictor, fit_affine

__all__ = ["WorkflowGraph", "fanout_pipeline", "linear_pipeline"]


class WorkflowGraph(TextWorkflow):
    """A stage DAG with the edge accounting the scheduler runs on."""

    def successors(self, name: str) -> list[str]:
        """Sorted names of a stage's direct successors."""
        self.stage(name)  # raise WorkflowError on unknown stages
        return sorted(self._graph.successors(name))

    def roots(self) -> list[str]:
        """Stages with no predecessors (consume the workflow input)."""
        return sorted(n for n in self._graph if not any(
            True for _ in self._graph.predecessors(n)))

    def sinks(self) -> list[str]:
        """Stages with no successors (produce the workflow result)."""
        return sorted(n for n in self._graph if not any(
            True for _ in self._graph.successors(n)))

    def edges(self) -> list[tuple[str, str]]:
        """All (producer, consumer) edges, sorted."""
        return sorted(self._graph.edges())

    def output_volumes(self, input_volume: int) -> dict[str, int]:
        """Predicted *output* bytes of each stage (one stored copy)."""
        vins = self.stage_volumes(input_volume)
        return {s.name: int(s.output_ratio * vins[s.name])
                for s in self.stages()}

    def edge_volumes(self, input_volume: int) -> dict[tuple[str, str], int]:
        """Bytes crossing each edge: the producer's full (broadcast) output."""
        outs = self.output_volumes(input_volume)
        return {(p, c): outs[p] for p, c in self.edges()}


def _affine(a: float, b: float) -> Predictor:
    """A seconds-per-byte predictor fit through three synthetic points."""
    x = np.array([1e5, 1e6, 1e7])
    return fit_affine(x, a + b * x)


def _stage(name: str, workload: Workload, predictor: Predictor,
           output_ratio: float, *, strips_markup: bool = False) -> WorkflowStage:
    return WorkflowStage(name=name, workload=workload, predictor=predictor,
                         output_ratio=output_ratio,
                         strips_markup=strips_markup)


def _filter_stage(keep: float) -> WorkflowStage:
    return _stage("filter",
                  Workload("grep", GrepApplication("economy"),
                           GrepCostProfile()),
                  _affine(0.2, 1.3e-8), keep)


def _extract_stage() -> WorkflowStage:
    return _stage("extract",
                  Workload("extract", ExtractorApplication(),
                           ExtractCostProfile()),
                  _affine(0.3, 3.0e-8), 0.95, strips_markup=True)


def _tokenize_stage() -> WorkflowStage:
    # Tokenisation is extraction-shaped work (one linear pass, near-unit
    # output) at a slightly higher per-byte cost for the token stream.
    return _stage("tokenize",
                  Workload("tokenize", ExtractorApplication(),
                           ExtractCostProfile()),
                  _affine(0.3, 4.0e-8), 0.9)


def _tag_stage() -> WorkflowStage:
    # The tagger's measured cost lands near 1.1e-4 s/B once the Fig. 7
    # memory-residency penalty bites on workflow-sized files; planning at
    # 1.4e-4 keeps each tag bin comfortably inside its subdeadline.
    return _stage("tag",
                  Workload("postag", PosTaggerApplication(),
                           PosCostProfile()),
                  _affine(3.0, 1.4e-4), 1.0)


def _aggregate_stage() -> WorkflowStage:
    # Counting/merging pass: grep-cheap per byte, heavy compression out.
    return _stage("aggregate",
                  Workload("aggregate", GrepApplication("NN"),
                           GrepCostProfile()),
                  _affine(0.2, 1.0e-8), 0.05)


def linear_pipeline(*, keep: float = 0.4) -> WorkflowGraph:
    """filter → extract → tokenize → tag → aggregate (the §7 chain).

    ``keep`` is the grep filter's selectivity (fraction of the crawl
    matching the topic pattern).
    """
    g = WorkflowGraph()
    g.add_stage(_filter_stage(keep))
    g.add_stage(_extract_stage(), after=["filter"])
    g.add_stage(_tokenize_stage(), after=["extract"])
    g.add_stage(_tag_stage(), after=["tokenize"])
    g.add_stage(_aggregate_stage(), after=["tag"])
    return g


def fanout_pipeline(*, keep: float = 0.4) -> WorkflowGraph:
    """filter → extract → {tokenize, tag} → aggregate (diamond).

    After extraction the token stream and the POS tags are computed
    independently — the two branches are where stage-concurrent
    scheduling beats serial execution — then joined by the aggregator
    (a fan-in summing both branches' outputs).
    """
    g = WorkflowGraph()
    g.add_stage(_filter_stage(keep))
    g.add_stage(_extract_stage(), after=["filter"])
    g.add_stage(_tokenize_stage(), after=["extract"])
    g.add_stage(_tag_stage(), after=["extract"])
    g.add_stage(_aggregate_stage(), after=["tokenize", "tag"])
    return g
