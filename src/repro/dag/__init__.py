"""Multi-stage workflow DAGs over the execution core (§7 future work).

The paper's single-application plans become pipelines here: a
:class:`~repro.dag.graph.WorkflowGraph` of typed stages chained by each
application's output accounting, a :class:`~repro.dag.scheduler
.DagScheduler` that runs every ready stage concurrently under per-stage
:class:`~repro.runner.core.StagePolicy` triples, and pluggable
:class:`~repro.dag.backends.DataBackend` implementations that price and
time how intermediates move between stages (the Juve et al. S3 / EBS /
local-disk comparison).
"""

from repro.dag.backends import (
    DataBackend,
    EbsBackend,
    LocalDiskBackend,
    S3Backend,
    TransferRecord,
)
from repro.dag.graph import WorkflowGraph, fanout_pipeline, linear_pipeline
from repro.dag.scheduler import (
    DagReport,
    DagScheduler,
    StageResult,
    execute_dag,
)

__all__ = [
    "DagReport",
    "DagScheduler",
    "DataBackend",
    "EbsBackend",
    "LocalDiskBackend",
    "S3Backend",
    "StageResult",
    "TransferRecord",
    "WorkflowGraph",
    "execute_dag",
    "fanout_pipeline",
    "linear_pipeline",
]
