"""Event-driven DAG scheduling over the execution core.

The single-plan runners drive one fleet from launch to wind-down; this
scheduler runs a whole :class:`~repro.dag.graph.WorkflowGraph`, every
*ready* stage concurrently, on one simulation engine:

* each stage is an ``acquire → work → complete`` chain of engine events
  under a :class:`~repro.runner.core.StagePolicy` (the same
  acquisition/progress/completion protocols a single-plan run uses —
  the core's :meth:`~repro.runner.core.ExecutionCore.build_context` /
  :meth:`~repro.runner.core.ExecutionCore.process` split is what lets
  several stages be in flight at once);
* inter-stage data moves through a pluggable
  :class:`~repro.dag.backends.DataBackend` — one ``put`` per producer
  (fan-out broadcasts the stored copy), one ``get`` per consuming edge,
  each priced and timed on the cloud's deterministic streams;
* subdeadlines come from the §7 full-hour apportionment
  (:func:`~repro.core.workflow.assign_subdeadlines`), so each stage's
  provisioner plans against an hour-aligned budget;
* the clock is driven exclusively through ``cloud.advance`` toward a
  monotone horizon, so chaos AZ-outage onsets step exactly as they do
  for every other runner.

``mode="serial"`` adds a control dependency from each stage to its
topological predecessor — stages never overlap, which is the §7 barrier
baseline the concurrent scheduler is measured against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cloud.cluster import Cloud
from repro.cloud.instance import InstanceState
from repro.cloud.service import ExecutionService
from repro.core.planner import StaticProvisioner
from repro.core.workflow import (
    WorkflowError,
    WorkflowStage,
    assign_subdeadlines,
    derived_catalogue,
)
from repro.dag.backends import DataBackend, LocalDiskBackend, TransferRecord
from repro.dag.graph import WorkflowGraph
from repro.fleet.lease import LeaseManager
from repro.obs.ledger import (
    RunRecord,
    encode_metrics_dump,
    get_run_ledger,
    span_rollup,
)
from repro.runner.core import CoreContext, ExecutionCore, StagePolicy
from repro.runner.execute import ExecutionReport
from repro.vfs.files import Catalogue, VirtualFile

__all__ = ["DagReport", "DagScheduler", "StageResult", "execute_dag"]


@dataclass
class StageResult:
    """One stage's execution facts inside a DAG run."""

    name: str
    report: ExecutionReport
    ready_at: float           # all inputs arrived
    work_start: float         # fleet barrier / first lease grant
    stage_end: float          # last bin completion
    available_at: float       # output persisted (stage_end + put time)
    put: TransferRecord | None = None

    @property
    def span_seconds(self) -> float:
        """Ready-to-available wall of this stage on the simulated clock."""
        return self.available_at - self.ready_at


@dataclass
class DagReport:
    """Everything one DAG run produced."""

    deadline: float
    subdeadlines: dict[str, float]
    backend: str
    mode: str
    started_at: float = 0.0
    finished_at: float = 0.0
    compute_cost_usd: float = 0.0
    stages: dict[str, StageResult] = field(default_factory=dict)
    transfers: list[TransferRecord] = field(default_factory=list)
    lease_stats: dict | None = None
    spot_stats: dict | None = None

    @property
    def makespan(self) -> float:
        """End-to-end simulated seconds, transfers included."""
        return self.finished_at - self.started_at

    @property
    def transfer_cost(self) -> float:
        return sum(t.cost_usd for t in self.transfers)

    @property
    def transfer_seconds(self) -> float:
        return sum(t.seconds for t in self.transfers)

    @property
    def total_cost(self) -> float:
        """Compute bill (ceil-hour ledger delta) plus data-sharing cost."""
        return self.compute_cost_usd + self.transfer_cost

    @property
    def n_bins(self) -> int:
        return sum(len(s.report.runs) + len(s.report.failures)
                   for s in self.stages.values())

    @property
    def n_missed(self) -> int:
        """Instances that overran their stage's subdeadline."""
        return sum(s.report.n_missed for s in self.stages.values())

    @property
    def n_failed(self) -> int:
        return sum(s.report.n_failed for s in self.stages.values())

    @property
    def met_deadline(self) -> bool:
        return self.makespan <= self.deadline and self.n_failed == 0

    def summary(self) -> dict:
        """Headline DAG facts in one flat dict."""
        return {
            "backend": self.backend,
            "mode": self.mode,
            "stages": len(self.stages),
            "makespan_s": round(self.makespan, 1),
            "deadline_s": self.deadline,
            "met": self.met_deadline,
            "missed": self.n_missed,
            "failed": self.n_failed,
            "transfer_s": round(self.transfer_seconds, 1),
            "compute_usd": round(self.compute_cost_usd, 4),
            "transfer_usd": round(self.transfer_cost, 4),
            "total_usd": round(self.total_cost, 4),
        }


@dataclass
class _StageState:
    """Scheduler-internal bookkeeping for one stage in flight."""

    stage: WorkflowStage
    ready_at: float = 0.0
    core: ExecutionCore | None = None
    ctx: CoreContext | None = None
    policy: StagePolicy | None = None
    stage_input: Catalogue | None = None
    wall_s: float = 0.0


class DagScheduler:
    """Run a workflow graph, ready stages concurrently, on one engine."""

    def __init__(
        self,
        cloud: Cloud,
        graph: WorkflowGraph,
        catalogue: Catalogue,
        deadline: float,
        *,
        backend: DataBackend | None = None,
        mode: str = "concurrent",
        policy: str = "fleet",
        stage_policies: dict[str, StagePolicy] | None = None,
        lease_manager: LeaseManager | None = None,
        spot_policy=None,
        strategy: str = "uniform",
        hour_align: bool = True,
        service: ExecutionService | None = None,
        label: str = "dag",
    ) -> None:
        if mode not in ("concurrent", "serial"):
            raise WorkflowError("mode must be 'concurrent' or 'serial'")
        if policy not in ("fleet", "leased", "spot", "spot-lease"):
            raise WorkflowError(
                "policy must be 'fleet', 'leased', 'spot' or 'spot-lease'")
        if not len(graph):
            raise WorkflowError("empty workflow")
        self.cloud = cloud
        self.graph = graph
        self.catalogue = catalogue
        self.deadline = deadline
        self.backend = backend if backend is not None else LocalDiskBackend()
        self.mode = mode
        self.policy = policy
        self.stage_policies = stage_policies or {}
        self.strategy = strategy
        self.hour_align = hour_align
        self.svc = service or ExecutionService(cloud)
        self.label = label
        self._own_manager = (policy in ("leased", "spot-lease")
                             and lease_manager is None)
        self.manager = (lease_manager if lease_manager is not None
                        else LeaseManager(cloud, tag=label)
                        if policy in ("leased", "spot-lease") else None)
        # Spot policies share one market board, ladder and stats object
        # across every stage, so the whole DAG sees a coherent market;
        # "spot-lease" escalates interrupted segments into the shared
        # warm pool before paying list price.
        self.spot_stats = None
        self._spot = None
        if policy in ("spot", "spot-lease"):
            from repro.capacity import (
                LadderBroker,
                OnDemandBroker,
                WarmLeaseBroker,
            )
            from repro.cloud.spot import SpotMarketBoard
            from repro.resilience.spot import SpotFallbackPolicy, SpotLadder
            from repro.runner.spot import SpotRunStats

            board = SpotMarketBoard.for_cloud(cloud)
            ladder = SpotLadder(
                board,
                policy=(spot_policy if spot_policy is not None
                        else SpotFallbackPolicy()),
                chaos=cloud.chaos)
            self.spot_stats = SpotRunStats()
            escalation = None
            if policy == "spot-lease":
                escalation = LadderBroker([
                    WarmLeaseBroker(self.manager, tenant="spot-escalation"),
                    OnDemandBroker(),
                ])
            self._spot = (board, ladder, escalation)
        # run state
        self._states: dict[str, _StageState] = {}
        self._produced: dict[str, Catalogue] = {}
        self._arrival: dict[str, float] = {}
        self._pending: dict[str, int] = {}
        self._results: dict[str, StageResult] = {}
        self._transfers: list[TransferRecord] = []
        self._horizon = 0.0
        self._topo = [s.name for s in graph.stages()]
        # Serial mode: a control edge chains each stage to its topological
        # predecessor (no data moves along it), so stages never overlap.
        self._control: dict[str, list[str]] = {n: [] for n in self._topo}
        if mode == "serial":
            for prev, nxt in zip(self._topo, self._topo[1:]):
                if prev not in graph.predecessors(nxt):
                    self._control[prev].append(nxt)

    # -- plumbing ----------------------------------------------------------

    def _schedule(self, at: float, fn, label: str) -> None:
        """Engine schedule that keeps the drain horizon monotone."""
        self._horizon = max(self._horizon, at)
        self.cloud.engine.schedule_at(at, fn, label=label)

    def _policy_for(self, name: str) -> StagePolicy:
        override = self.stage_policies.get(name)
        if override is not None:
            return override
        if self._spot is not None:
            # Fresh acquisition per stage (per-bin offers must not collide
            # across stages), shared board/ladder/stats underneath.
            board, ladder, escalation = self._spot
            return StagePolicy.spot(board, ladder, stats=self.spot_stats,
                                    chaos=self.cloud.chaos,
                                    escalation=escalation)
        if self.manager is not None:
            return StagePolicy.leased(self.manager, tenant=name,
                                      campaign=f"stage:{name}")
        return StagePolicy.fleet()

    def _control_preds(self, name: str) -> list[str]:
        return [p for p, succs in self._control.items() if name in succs]

    # -- the run -----------------------------------------------------------

    def run(self) -> DagReport:
        """Execute the whole graph; returns the DAG report.

        When a run ledger is active the run also emits one
        :class:`~repro.obs.ledger.RunRecord` of kind ``"dag"`` whose
        profile carries per-stage wall/sim phases.
        """
        cloud = self.cloud
        wall0 = time.perf_counter()
        fired0 = cloud.engine.events_fired
        t0 = cloud.now
        cost0 = cloud.ledger.total_cost
        subdeadlines = assign_subdeadlines(
            self.graph, self.catalogue.total_size, self.deadline,
            hour_align=self.hour_align)
        self._horizon = t0
        for name in self._topo:
            self._states[name] = _StageState(stage=self.graph.stage(name))
            self._arrival[name] = t0
            self._pending[name] = (len(self.graph.predecessors(name))
                                   + len(self._control_preds(name)))
        self._subdeadlines = subdeadlines
        for name in self._topo:
            if self._pending[name] == 0:
                self._schedule(t0, self._handler(name, self._acquire),
                               f"dag.acquire:{name}")
        engine = cloud.engine
        while engine.pending:
            target = max(self._horizon, cloud.now)
            cloud.advance(target - cloud.now)
        if self.manager is not None and self._own_manager:
            self.manager.shutdown()
        report = DagReport(
            deadline=self.deadline,
            subdeadlines=subdeadlines,
            backend=self.backend.name,
            mode=self.mode,
            started_at=t0,
            finished_at=max((r.available_at for r in self._results.values()),
                            default=t0),
            compute_cost_usd=cloud.ledger.total_cost - cost0,
            stages=dict(self._results),
            transfers=list(self._transfers),
            lease_stats=self.manager.stats() if self.manager else None,
            spot_stats=(self.spot_stats.summary()
                        if self.spot_stats is not None else None),
        )
        ledger = get_run_ledger()
        if ledger is not None:
            self._emit_record(ledger, report,
                              wall_s=time.perf_counter() - wall0,
                              events_fired=engine.events_fired - fired0)
        return report

    def _handler(self, name: str, fn):
        """Wrap a stage event handler with per-stage wall accounting."""
        def handle() -> None:
            t = time.perf_counter()
            try:
                fn(name)
            finally:
                self._states[name].wall_s += time.perf_counter() - t
        return handle

    # -- stage events ------------------------------------------------------

    def _acquire(self, name: str) -> None:
        """All inputs arrived: plan the stage and obtain its capacity."""
        st = self._states[name]
        st.ready_at = self.cloud.now
        preds = self.graph.predecessors(name)
        if preds:
            merged: list[VirtualFile] = []
            for p in preds:
                merged.extend(self._produced[p])
            st.stage_input = Catalogue(merged, name=f"input->{name}")
        else:
            st.stage_input = self.catalogue
        units = list(st.stage_input)
        sub = self._subdeadlines[name]
        if not units:
            # Nothing survived the upstream filters: the stage is a no-op.
            st.ctx = None
            self._finish_stage(name, ExecutionReport(deadline=sub,
                                                     strategy=self.strategy),
                               stage_end=self.cloud.now)
            return
        plan = StaticProvisioner(st.stage.predictor).plan(
            units, sub, strategy=self.strategy)
        st.policy = self._policy_for(name)
        st.core = ExecutionCore(
            self.cloud, st.stage.workload, plan,
            acquisition=st.policy.acquisition,
            progress=st.policy.progress,
            completion=st.policy.completion,
            service=self.svc,
            label=f"{self.label}.{name}",
        )
        st.ctx = st.core.build_context()
        st.policy.acquisition.acquire_fleet(st.ctx)
        st.policy.completion.after_acquisition(st.ctx)
        start = st.policy.acquisition.work_start_time(st.ctx)
        if start is None:
            self._finish_stage(name, st.ctx.report, stage_end=self.cloud.now)
            return
        self._schedule(max(start, self.cloud.now),
                       self._handler(name, self._work), f"dag.work:{name}")

    def _work(self, name: str) -> None:
        """Fleet barrier: process every bin; schedule stage completion."""
        st = self._states[name]
        st.core.process(st.ctx)
        stage_end = max(st.ctx.ends, default=self.cloud.now)
        self._schedule(stage_end, self._handler(name, self._complete),
                       f"dag.complete:{name}")

    def _complete(self, name: str) -> None:
        """Last bin done: wind the stage down and persist its output."""
        st = self._states[name]
        ctx = st.ctx
        if st.policy is not None and st.policy.terminate_at_stage_end:
            # Billing already happened per bin in settle_bin; this is the
            # state-only retirement StaticCompletion.finalize performs.
            for g in ctx.grants:
                if g.instance.state is InstanceState.RUNNING:
                    g.instance.terminate(self.cloud.now)
        self._finish_stage(name, ctx.report, stage_end=self.cloud.now,
                           work_start=ctx.work_start)

    def _finish_stage(self, name: str, report: ExecutionReport, *,
                      stage_end: float, work_start: float | None = None) -> None:
        """Persist output, notify successors, record the stage result."""
        st = self._states[name]
        out = derived_catalogue(st.stage_input, st.stage, seed_tag=name)
        self._produced[name] = out
        consumers = self.graph.successors(name)
        put_rec: TransferRecord | None = None
        available = stage_end
        if consumers:
            put_rec = self.backend.put(self.cloud, name, out.total_size,
                                       len(out))
            self._transfers.append(put_rec)
            available = stage_end + put_rec.seconds
        result = StageResult(
            name=name, report=report, ready_at=st.ready_at,
            work_start=work_start if work_start is not None else st.ready_at,
            stage_end=stage_end, available_at=available, put=put_rec)
        self._results[name] = result
        obs = self.cloud.obs
        if obs.enabled:
            track = f"stage:{name}"
            obs.tracer.add_span("dag.stage.run", st.ready_at, stage_end,
                                cat="dag", track=track,
                                bins=len(report.runs),
                                missed=report.n_missed,
                                subdeadline=self._subdeadlines[name])
            obs.metrics.counter("dag.stages.completed",
                                backend=self.backend.name).inc()
            if put_rec is not None:
                if put_rec.seconds > 0:
                    obs.tracer.add_span("dag.transfer.put", stage_end,
                                        available, cat="dag", track=track,
                                        backend=put_rec.backend,
                                        bytes=put_rec.volume)
                obs.metrics.counter("dag.transfers", kind="put",
                                    backend=put_rec.backend).inc()
                obs.metrics.counter("dag.transfer.bytes", kind="put",
                                    backend=put_rec.backend
                                    ).inc(put_rec.volume)
        for c in consumers:
            get_rec = self.backend.get(self.cloud, name, c, out.total_size,
                                       len(out))
            self._transfers.append(get_rec)
            arrived = available + get_rec.seconds
            if obs.enabled:
                if get_rec.seconds > 0:
                    obs.tracer.add_span("dag.transfer.get", available,
                                        arrived, cat="dag",
                                        track=f"stage:{c}",
                                        backend=get_rec.backend,
                                        producer=name, bytes=get_rec.volume)
                obs.metrics.counter("dag.transfers", kind="get",
                                    backend=get_rec.backend).inc()
                obs.metrics.counter("dag.transfer.bytes", kind="get",
                                    backend=get_rec.backend
                                    ).inc(get_rec.volume)
            self._arrive(c, arrived)
        for c in self._control[name]:
            self._arrive(c, available)

    def _arrive(self, consumer: str, at: float) -> None:
        """One dependency of ``consumer`` satisfied at time ``at``."""
        self._arrival[consumer] = max(self._arrival[consumer], at)
        self._pending[consumer] -= 1
        if self._pending[consumer] == 0:
            self._schedule(max(self._arrival[consumer], self.cloud.now),
                           self._handler(consumer, self._acquire),
                           f"dag.acquire:{consumer}")

    # -- flight recording --------------------------------------------------

    def _emit_record(self, ledger, report: DagReport, *, wall_s: float,
                     events_fired: int) -> None:
        """One RunRecord for the whole DAG, per-stage phases in profile."""
        obs = self.cloud.obs
        n_bins = report.n_bins
        ledger.append(RunRecord(
            kind="dag",
            label=self.label,
            config={
                "backend": self.backend.name,
                "mode": self.mode,
                "policy": self.policy,
                "strategy": self.strategy,
                "seed": getattr(self.cloud.rng, "seed", None),
                "stages": list(self._topo),
                "edges": [list(e) for e in self.graph.edges()],
                "input_bytes": self.catalogue.total_size,
                "subdeadlines": {n: round(v, 1)
                                 for n, v in report.subdeadlines.items()},
            },
            metrics=(encode_metrics_dump(obs.metrics.dump())
                     if obs.metrics.enabled else []),
            spans=span_rollup(obs.tracer) if obs.tracer.enabled else {},
            billing=self.cloud.ledger.summary(),
            deadline={
                "deadline_s": report.deadline,
                "makespan_s": report.makespan,
                "margin_s": report.deadline - report.makespan,
                "missed": report.n_missed,
                "failed": report.n_failed,
                "bins": n_bins,
                "miss_rate": (report.n_missed / n_bins) if n_bins else 0.0,
            },
            profile={
                "wall_s": wall_s,
                "sim_s": report.makespan,
                "events_fired": events_fired,
                "events_per_s": events_fired / wall_s if wall_s > 0 else 0.0,
                "phases": {
                    name: {
                        "wall_s": self._states[name].wall_s,
                        "sim_s": res.span_seconds,
                    }
                    for name, res in report.stages.items()
                },
            },
            extra={
                "transfers": {
                    "count": len(report.transfers),
                    "seconds": report.transfer_seconds,
                    "bytes": sum(t.volume for t in report.transfers),
                    "cost_usd": report.transfer_cost,
                },
                "total_cost_usd": report.total_cost,
                **({"lease_stats": report.lease_stats}
                   if report.lease_stats else {}),
                **({"spot_stats": report.spot_stats}
                   if report.spot_stats else {}),
            },
        ))


def execute_dag(
    cloud: Cloud,
    graph: WorkflowGraph,
    catalogue: Catalogue,
    deadline: float,
    *,
    backend: DataBackend | None = None,
    mode: str = "concurrent",
    policy: str = "fleet",
    spot_policy=None,
    strategy: str = "uniform",
    hour_align: bool = True,
    service: ExecutionService | None = None,
    label: str = "dag",
) -> DagReport:
    """Plan and run a workflow graph end to end (one-call convenience).

    ``policy`` picks the per-stage broker stack: ``"fleet"`` private
    on-demand boots, ``"leased"`` a shared warm pool, ``"spot"`` the
    market behind the fallback ladder, ``"spot-lease"`` spot with
    escalated segments drawing warm leases before paying list price.
    """
    return DagScheduler(cloud, graph, catalogue, deadline, backend=backend,
                        mode=mode, policy=policy, spot_policy=spot_policy,
                        strategy=strategy, hour_align=hour_align,
                        service=service, label=label).run()
