"""Command-line interface: regenerate figures, inspect data, trace demos.

Usage::

    python -m repro.cli figures --ids F4 F7        # regenerate figures
    python -m repro.cli figures --all
    python -m repro.cli datasets                   # Fig. 1 summaries
    python -m repro.cli quickstart                 # the end-to-end demo
    python -m repro.cli chaos --scenario az-blackout --policy both
                                                   # fault-injection sweep
    python -m repro.cli spot --regime eviction-storm --policy both
                                                   # spot-market sweep
    python -m repro.cli sweep --seeds 6 --processes 4
                                                   # same grid, all cores
    python -m repro.cli dag --backend s3 ebs --slo
                                                   # DAG backend comparison
    python -m repro.cli matrix --stack spot spot-lease --slo
                                                   # broker-stack matrix
    python -m repro.cli trace quickstart --out trace.json
                                                   # traced demo run
    python -m repro.cli runs list                  # the persistent run ledger
    python -m repro.cli runs diff -2 -1            # compare the last two runs
    python -m repro.cli runs slo                   # chaos SLO verdicts

Any subcommand accepts ``--metrics`` to print the metrics table the run
accumulated; ``trace`` additionally records spans and writes a Chrome
``trace_event`` file loadable in ``chrome://tracing`` / Perfetto.

Every run-producing subcommand appends flight-recorder records to the
JSONL ledger under ``.repro/runs/`` (``--runs-dir`` to relocate,
``--no-ledger`` to disable); the ``runs`` subcommands query that history.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Callable

from repro.obs import configure, disable, get_logger, install
from repro.obs.export import render_metrics_table, write_chrome_trace, write_jsonl
from repro.obs.ledger import RunLedger, set_run_ledger
from repro.report.figures import FigureResult, render_ascii

__all__ = ["main", "FIGURES", "DEMOS"]

_log = get_logger("cli")

#: Demo name → script under ``examples/`` (the ``trace`` subcommand's menu).
DEMOS: dict[str, str] = {
    "quickstart": "quickstart.py",
    "spot_market": "spot_market.py",
    "spot_fallback": "spot_fallback.py",
    "fault_tolerance": "fault_tolerance.py",
    "text_workflow": "text_workflow.py",
    "dynamic_rescheduling": "dynamic_rescheduling.py",
    "fleet_learning": "fleet_learning.py",
    "fleet_sharing": "fleet_sharing.py",
    "news_grep_campaign": "news_grep_campaign.py",
    "pos_deadline_scheduling": "pos_deadline_scheduling.py",
    "dag_pipeline": "dag_pipeline.py",
}


def _fig1a() -> FigureResult:
    from repro.experiments.exp_fig1 import fig1a

    return fig1a()[0]


def _fig1b() -> FigureResult:
    from repro.experiments.exp_fig1 import fig1b

    return fig1b()[0]


def _fig2() -> FigureResult:
    from repro.experiments.exp_fig2 import fig2

    return fig2()[0]


def _fig3() -> FigureResult:
    from repro.experiments.exp_grep import fig3

    return fig3()[0]


def _grep_figure(which: str) -> FigureResult:
    from repro.experiments import exp_grep

    tb = exp_grep.make_testbed()
    return getattr(exp_grep, which)(tb)[0]


def _pos_figure(which: str) -> FigureResult:
    from repro.experiments import exp_pos

    tb = exp_pos.make_testbed()
    return getattr(exp_pos, which)(tb)[0]


def _novels() -> FigureResult:
    from repro.experiments.exp_pos import novels

    return novels()[0]


def _side(which: str) -> FigureResult:
    from repro.experiments import exp_side

    return getattr(exp_side, which)()[0]


FIGURES: dict[str, Callable[[], FigureResult]] = {
    "F1a": _fig1a,
    "F1b": _fig1b,
    "F2": _fig2,
    "F3": _fig3,
    "F4": lambda: _grep_figure("fig4"),
    "F5": lambda: _grep_figure("fig5"),
    "F6": lambda: _grep_figure("fig6"),
    "F7": lambda: _pos_figure("fig7"),
    "F8": lambda: _pos_figure("fig8"),
    "F9": lambda: _pos_figure("fig9"),
    "X1": _novels,
    "X2": lambda: _side("instance_switching"),
    "X3": lambda: _side("probe_protocol_trace"),
    "X4": lambda: _side("output_retrieval"),
    "X5": lambda: _side("spot_tradeoff"),
    "X6": lambda: _side("prediction_approaches"),
    "X7": lambda: _side("sampling_vitality"),
}


def _examples_dir() -> Path:
    return Path(__file__).resolve().parents[2] / "examples"


def _run_demo(demo: str) -> None:
    import runpy

    runpy.run_path(str(_examples_dir() / DEMOS[demo]), run_name="__main__")


def _maybe_print_metrics(args: argparse.Namespace, obs) -> None:
    if getattr(args, "metrics", False) and obs is not None:
        print()
        print(render_metrics_table(obs.metrics))


def cmd_figures(args: argparse.Namespace) -> int:
    """``figures`` subcommand: render the requested figures."""
    ids = list(FIGURES) if args.all else args.ids
    if not ids:
        _log.error("no figure ids given (use --ids F4 F7 … or --all)")
        return 2
    unknown = [i for i in ids if i not in FIGURES]
    if unknown:
        _log.error("unknown figure id(s): %s; known: %s",
                   unknown, sorted(FIGURES))
        return 2
    for fid in ids:
        print(render_ascii(FIGURES[fid]()))
        print()
    return 0


def cmd_datasets(_args: argparse.Namespace) -> int:
    """``datasets`` subcommand: print Fig. 1 summaries."""
    from repro.corpus import html_18mil_like, text_400k_like

    for cat in (html_18mil_like(scale=1e-3), text_400k_like(scale=1e-2)):
        d = cat.describe()
        print(f"{d['name']:>12}: {d['files']} files, total {d['total']:,} B, "
              f"mean {d['mean']:.0f} B, median {d['median']:.0f} B, "
              f"p90 {d['p90']:.0f} B, max {d['max']:,} B")
    return 0


def cmd_quickstart(_args: argparse.Namespace) -> int:
    """``quickstart`` subcommand: run the quickstart example."""
    _run_demo("quickstart")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """``fleet`` subcommand: N concurrent campaigns on one shared fleet."""
    from repro.experiments.exp_fleet import run_shared_fleet, shared_vs_isolated
    from repro.report import render_trace_gantt

    obs = configure()   # fleet spans feed the per-tenant gantt
    try:
        if args.compare:
            fig, stats = shared_vs_isolated(
                args.campaigns, max_instances=args.max_instances)
            print(render_ascii(fig))
            cloud = None
        else:
            cloud, report = run_shared_fleet(
                args.campaigns, max_instances=args.max_instances)
            s = report.summary()
            print(f"{s['campaigns']} campaigns "
                  f"({s['admitted']} admitted, {s['deferred']} deferred, "
                  f"{s['rejected']} rejected): {s['bins']} bins on "
                  f"{s['instances']} instances, {s['instance_hours']} "
                  f"instance-hours, ${s['cost_usd']:.4f}, warm hit rate "
                  f"{s['warm_hit_rate']:.2f}")
            print()
            print(report.render_attribution())
            print()
            print(render_trace_gantt(obs.tracer, category="fleet",
                                     group_by="tenant"))
    finally:
        disable()
    _maybe_print_metrics(args, obs)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``chaos`` subcommand: fault-scenario sweep, resilience on/off."""
    from repro.chaos import SCENARIOS
    from repro.experiments.exp_chaos import DEFAULT_SEEDS, chaos_sweep

    names = list(SCENARIOS) if (args.all or not args.scenarios) else args.scenarios
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        _log.error("unknown scenario(s): %s; shipped: %s",
                   ", ".join(unknown), ", ".join(sorted(SCENARIOS)))
        return 2
    if args.seeds < 1:
        _log.error("--seeds must be at least 1")
        return 2
    policies = {"on": (True,), "off": (False,),
                "both": (True, False)}[args.policy]
    seeds = tuple(DEFAULT_SEEDS[i % len(DEFAULT_SEEDS)] + 100 * (i // len(DEFAULT_SEEDS))
                  for i in range(args.seeds))
    fig, stats = chaos_sweep(names, seeds=seeds, policies=policies)
    print(render_ascii(fig))
    print()
    for name in names:
        row = stats[name]
        cells = " ".join(
            f"{p}: miss {row[p]['miss_rate']:.3f} "
            f"(${row[p]['mean_cost_usd']:.3f})"
            for p in ("on", "off") if p in row)
        print(f"{name:>16}  {cells}")
    return 0


def cmd_spot(args: argparse.Namespace) -> int:
    """``spot`` subcommand: spot-provisioning sweep, fallback ladder on/off."""
    from repro.chaos import SPOT_REGIMES
    from repro.experiments.exp_spot import (
        BIDS,
        DEFAULT_SEEDS,
        SLACKS,
        evaluate_spot_slos,
        spot_sweep,
    )
    from repro.obs.slo import render_slo_table

    names = (list(SPOT_REGIMES) if (args.all or not args.regimes)
             else args.regimes)
    bids = tuple(args.bids) if args.bids else BIDS
    slacks = tuple(args.slacks) if args.slacks else SLACKS
    unknown = [n for n in names if n not in SPOT_REGIMES]
    if unknown:
        _log.error("unknown regime(s): %s; shipped: %s",
                   ", ".join(unknown), ", ".join(sorted(SPOT_REGIMES)))
        return 2
    if args.seeds < 1:
        _log.error("--seeds must be at least 1")
        return 2
    if any(b <= 0 for b in bids) or any(s <= 0 for s in slacks):
        _log.error("--bids and --slacks must be positive")
        return 2
    policies = {"on": (True,), "off": (False,),
                "both": (True, False)}[args.policy]
    seeds = tuple(DEFAULT_SEEDS[i % len(DEFAULT_SEEDS)]
                  + 100 * (i // len(DEFAULT_SEEDS))
                  for i in range(args.seeds))
    fig, stats = spot_sweep(names, seeds=seeds, policies=policies,
                            bids=bids, slacks=slacks,
                            processes=args.processes)
    print(render_ascii(fig))
    print()
    for name in names:
        row = stats["regimes"][name]
        cells = " ".join(
            f"{p}: miss {row[p]['miss_rate']:.3f} "
            f"(${row[p]['mean_cost_usd']:.3f}, "
            f"{row[p]['mean_cost_ratio']:.2f}x od)"
            for p in ("on", "off") if p in row)
        print(f"{name:>16}  {cells}")
    if args.slo:
        print()
        for policy, report in sorted(evaluate_spot_slos(stats).items()):
            print(f"policy={policy}")
            print(render_slo_table(report))
            print()
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """``sweep`` subcommand: fan an experiment grid over worker processes."""
    from repro.chaos import SCENARIOS
    from repro.experiments.exp_chaos import DEFAULT_SEEDS, chaos_sweep

    names = list(SCENARIOS) if (args.all or not args.scenarios) else args.scenarios
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        _log.error("unknown scenario(s): %s; shipped: %s",
                   ", ".join(unknown), ", ".join(sorted(SCENARIOS)))
        return 2
    if args.seeds < 1:
        _log.error("--seeds must be at least 1")
        return 2
    if args.processes is not None and args.processes < 1:
        _log.error("--processes must be at least 1 (omit it to use all cores)")
        return 2
    policies = {"on": (True,), "off": (False,),
                "both": (True, False)}[args.policy]
    seeds = tuple(DEFAULT_SEEDS[i % len(DEFAULT_SEEDS)] + 100 * (i // len(DEFAULT_SEEDS))
                  for i in range(args.seeds))
    from repro.obs import get_obs
    from repro.obs.ledger import encode_metrics_dump

    # --metrics-out needs a live registry even when --metrics wasn't given.
    local_obs = None
    if args.metrics_out and not get_obs().metrics.enabled:
        local_obs = configure(trace=False)
    try:
        fig, stats = chaos_sweep(names, seeds=seeds, policies=policies,
                                 processes=args.processes)
        if args.metrics_out:
            registry = get_obs().metrics
            payload = {"schema_version": 1,
                       "metrics": encode_metrics_dump(registry.dump())}
            Path(args.metrics_out).write_text(
                json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8")
            _log.info("wrote merged sweep metrics to %s", args.metrics_out)
    finally:
        if local_obs is not None:
            disable()
    print(render_ascii(fig))
    print()
    n_cells = len(names) * len(policies) * len(seeds)
    print(f"{n_cells} cells "
          f"({len(names)} scenarios x {len(policies)} policies x "
          f"{len(seeds)} seeds)")
    for name in names:
        row = stats[name]
        cells = " ".join(
            f"{p}: miss {row[p]['miss_rate']:.3f} "
            f"(${row[p]['mean_cost_usd']:.3f})"
            for p in ("on", "off") if p in row)
        print(f"{name:>16}  {cells}")
    return 0


def cmd_dag(args: argparse.Namespace) -> int:
    """``dag`` subcommand: backend-comparison sweep over workflow DAGs."""
    from repro.experiments.exp_dag import (
        DEFAULT_SEEDS,
        dag_sweep,
        evaluate_dag_slos,
    )
    from repro.obs.slo import render_slo_table

    known_backends = ("local", "s3", "ebs")
    known_shapes = ("linear", "fanout")
    backends = tuple(args.backends) or known_backends
    shapes = tuple(args.shapes) or known_shapes
    unknown = [b for b in backends if b not in known_backends]
    unknown += [s for s in shapes if s not in known_shapes]
    if unknown:
        _log.error("unknown backend/shape(s): %s; backends: %s, shapes: %s",
                   ", ".join(unknown), ", ".join(known_backends),
                   ", ".join(known_shapes))
        return 2
    if args.seeds < 1:
        _log.error("--seeds must be at least 1")
        return 2
    seeds = tuple(DEFAULT_SEEDS[i % len(DEFAULT_SEEDS)]
                  + 100 * (i // len(DEFAULT_SEEDS))
                  for i in range(args.seeds))
    fig, stats = dag_sweep(backends, shapes, seeds=seeds,
                           processes=args.processes)
    print(render_ascii(fig))
    print()
    for backend in backends:
        cells = " ".join(
            f"{shape}: {stats['agg'][backend][shape]['mean_makespan_s']:.0f}s "
            f"(${stats['agg'][backend][shape]['mean_total_usd']:.3f})"
            for shape in shapes)
        extra = (f"  speedup x{stats['speedup'][backend]:.2f}"
                 if backend in stats["speedup"] else "")
        print(f"{backend:>6}  {cells}{extra}")
    if args.slo:
        print()
        for backend, report in sorted(evaluate_dag_slos(stats).items()):
            print(f"backend={backend}")
            print(render_slo_table(report))
            print()
    return 0


def cmd_matrix(args: argparse.Namespace) -> int:
    """``matrix`` subcommand: broker stack × shape × regime DAG sweep."""
    from repro.experiments.exp_matrix import (
        DEFAULT_SEEDS,
        REGIMES,
        SHAPES,
        STACKS,
        evaluate_matrix_slos,
        matrix_sweep,
    )
    from repro.obs.slo import render_slo_table

    stacks = tuple(args.stacks) or STACKS
    shapes = tuple(args.shapes) or SHAPES
    regimes = tuple(args.regimes) or REGIMES
    unknown = [s for s in stacks if s not in STACKS]
    unknown += [s for s in shapes if s not in SHAPES]
    unknown += [r for r in regimes if r not in REGIMES]
    if unknown:
        _log.error("unknown stack/shape/regime(s): %s; stacks: %s, "
                   "shapes: %s, regimes: %s", ", ".join(unknown),
                   ", ".join(STACKS), ", ".join(SHAPES), ", ".join(REGIMES))
        return 2
    if args.seeds < 1:
        _log.error("--seeds must be at least 1")
        return 2
    seeds = tuple(DEFAULT_SEEDS[i % len(DEFAULT_SEEDS)]
                  + 100 * (i // len(DEFAULT_SEEDS))
                  for i in range(args.seeds))
    fig, stats = matrix_sweep(list(stacks), shapes=shapes, regimes=regimes,
                              seeds=seeds, processes=args.processes)
    print(render_ascii(fig))
    print()
    for stack, agg in stats["stacks"].items():
        print(f"{stack:>10}  miss {agg['miss_rate']:.3f}  "
              f"cost x{agg['mean_cost_ratio']:.3f} of on-demand "
              f"(${agg['mean_cost_usd']:.3f}/run)")
    if args.slo:
        print()
        for stack, report in sorted(evaluate_matrix_slos(stats).items()):
            print(f"stack={stack}")
            print(render_slo_table(report))
            print()
    return 0


def _ledger_for(args: argparse.Namespace) -> RunLedger:
    return RunLedger(args.runs_dir)


def cmd_runs_list(args: argparse.Namespace) -> int:
    """``runs list``: one line per ledger record, oldest first."""
    ledger = _ledger_for(args)
    records = ledger.records(kind=args.kind or None, label=args.label or None)
    if not records:
        print(f"(no run records under {ledger.root})")
        return 0
    rows = [("run_id", "kind", "label", "created", "bins", "missed",
             "cost_usd", "wall_s")]
    for r in records:
        rows.append((
            r.run_id, r.kind, r.label, r.created_at,
            str(r.get("deadline.bins", "-")),
            str(r.get("deadline.missed", "-")),
            f"{r.get('billing.cost_usd'):.4f}"
            if r.get("billing.cost_usd") is not None else "-",
            f"{r.get('profile.wall_s'):.3f}"
            if r.get("profile.wall_s") is not None else "-",
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    print(f"{len(records)} records in {ledger.path}")
    return 0


def cmd_runs_show(args: argparse.Namespace) -> int:
    """``runs show REF``: dump one record as pretty JSON."""
    record = _ledger_for(args).resolve(args.ref)
    print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
    return 0


def cmd_runs_diff(args: argparse.Namespace) -> int:
    """``runs diff A B``: structured comparison of two ledger records."""
    from repro.obs.diff import diff_runs, render_diff_table

    ledger = _ledger_for(args)
    a = ledger.resolve(args.a)
    b = ledger.resolve(args.b)
    diff = diff_runs(a, b, threshold=args.threshold,
                     perf_threshold=args.perf_threshold)
    print(render_diff_table(diff))
    if args.strict and (not diff.clean or diff.perf_regressions):
        return 3
    return 0


def cmd_runs_slo(args: argparse.Namespace) -> int:
    """``runs slo``: evaluate campaign SLOs over recorded sweep cells.

    ``--policy`` names a registered campaign SLO policy — experiments
    register theirs in :mod:`repro.experiments.registry`, so new
    campaigns become judgeable here without touching the CLI.  An
    unknown name exits 2 and lists what is registered.
    """
    from repro.experiments.registry import (
        get_slo_policy,
        load_defaults,
        slo_policy_names,
    )
    from repro.obs.slo import render_slo_table

    load_defaults()
    try:
        entry = get_slo_policy(args.policy)
    except KeyError:
        _log.error("unknown SLO policy %r; registered: %s", args.policy,
                   ", ".join(slo_policy_names()))
        return 2
    slos = entry.slos
    group_key, group_name = entry.group_key, entry.group_name

    ledger = _ledger_for(args)
    label_prefix = entry.label_prefix
    records = [r for r in ledger.records(kind="sweep-cell",
                                         label=args.label or None)
               if r.get(group_key) is not None
               and (label_prefix is None or args.label
                    or r.label.startswith(label_prefix))]
    if not records:
        print(f"(no matching sweep-cell records under {ledger.root}; "
              "run `repro chaos`, `repro sweep` or `repro dag` first)")
        return 0
    sides: dict[str, list] = {}
    for r in records:
        sides.setdefault(str(r.get(group_key)), []).append(r)
    failed = False
    for side in sorted(sides):
        report = slos.evaluate(sides[side])
        print(f"{group_name}={side}")
        print(render_slo_table(report))
        print()
        failed = failed or not report.ok
    return 3 if args.strict and failed else 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``trace`` subcommand: run a demo with observability on, export it."""
    if args.demo not in DEMOS:
        _log.error("unknown demo %r; known: %s", args.demo, sorted(DEMOS))
        return 2
    obs = configure()
    try:
        _run_demo(args.demo)
    finally:
        disable()
    tracer = obs.tracer
    if args.out:
        write_chrome_trace(tracer, args.out)
        _log.info("wrote Chrome trace (%d spans, %d instants, cats: %s) to %s",
                  tracer.span_count, len(tracer.instants),
                  ",".join(tracer.categories()), args.out)
    if args.jsonl:
        write_jsonl(tracer, args.jsonl)
        _log.info("wrote JSONL event log to %s", args.jsonl)
    if args.gantt:
        from repro.report import render_trace_gantt

        print()
        print(render_trace_gantt(tracer, category=args.gantt_category))
    print()
    print(render_metrics_table(obs.metrics, title=f"metrics: {args.demo}"))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit status."""
    install()
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate the paper's figures and demos.")
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="<command>")

    p_fig = sub.add_parser("figures", help="regenerate paper figures")
    p_fig.add_argument("--ids", nargs="*", default=[], metavar="ID",
                       help=f"figure ids ({', '.join(FIGURES)})")
    p_fig.add_argument("--all", action="store_true", help="all figures")
    p_fig.set_defaults(fn=cmd_figures)

    p_ds = sub.add_parser("datasets", help="summarise the synthetic data sets")
    p_ds.set_defaults(fn=cmd_datasets)

    p_qs = sub.add_parser("quickstart", help="run the quickstart example")
    p_qs.set_defaults(fn=cmd_quickstart)

    p_fl = sub.add_parser(
        "fleet", help="run concurrent campaigns on one shared fleet")
    p_fl.add_argument("--campaigns", type=int, default=8, metavar="N",
                      help="number of concurrent campaigns (default: 8)")
    p_fl.add_argument("--max-instances", type=int, default=8, metavar="M",
                      help="fleet instance cap (default: 8)")
    p_fl.add_argument("--compare", action="store_true",
                      help="also run the isolated baselines and print the "
                           "shared-vs-isolated figure")
    p_fl.set_defaults(fn=cmd_fleet)

    p_ch = sub.add_parser(
        "chaos", help="sweep fault scenarios with resilience on/off")
    p_ch.add_argument("--scenario", dest="scenarios", nargs="*", default=[],
                      metavar="NAME",
                      help="scenario names (default: all shipped scenarios)")
    p_ch.add_argument("--all", action="store_true",
                      help="sweep every shipped scenario")
    p_ch.add_argument("--policy", choices=("on", "off", "both"),
                      default="both",
                      help="resilience policy side(s) to run (default: both)")
    p_ch.add_argument("--seeds", type=int, default=3, metavar="N",
                      help="number of campaign seeds to aggregate (default: 3)")
    p_ch.set_defaults(fn=cmd_chaos)

    p_sp = sub.add_parser(
        "spot", help="sweep spot interruption regimes with the fallback "
                     "ladder on/off")
    p_sp.add_argument("--regime", dest="regimes", nargs="*", default=[],
                      metavar="NAME",
                      help="regime names (default: all shipped regimes)")
    p_sp.add_argument("--all", action="store_true",
                      help="sweep every shipped regime")
    p_sp.add_argument("--policy", choices=("on", "off", "both"),
                      default="both",
                      help="fallback-ladder side(s) to run (default: both)")
    p_sp.add_argument("--seeds", type=int, default=3, metavar="N",
                      help="number of campaign seeds to aggregate (default: 3)")
    p_sp.add_argument("--bids", type=float, nargs="*", metavar="B",
                      default=None,
                      help="reference-terms bid levels to sweep "
                           "(default: 0.02 0.06 0.085)")
    p_sp.add_argument("--slacks", type=float, nargs="*", metavar="S",
                      default=None,
                      help="deadline-slack multipliers to sweep "
                           "(default: 0.85 1.0 1.25)")
    p_sp.add_argument("--processes", type=int, default=1, metavar="P",
                      help="worker processes for the sweep grid "
                           "(default: 1 = inline)")
    p_sp.add_argument("--slo", action="store_true",
                      help="print the per-policy SLO tables")
    p_sp.set_defaults(fn=cmd_spot)

    p_sw = sub.add_parser(
        "sweep", help="fan the chaos grid over worker processes")
    p_sw.add_argument("--scenario", dest="scenarios", nargs="*", default=[],
                      metavar="NAME",
                      help="scenario names (default: all shipped scenarios)")
    p_sw.add_argument("--all", action="store_true",
                      help="sweep every shipped scenario")
    p_sw.add_argument("--policy", choices=("on", "off", "both"),
                      default="both",
                      help="resilience policy side(s) to run (default: both)")
    p_sw.add_argument("--seeds", type=int, default=3, metavar="N",
                      help="number of campaign seeds to aggregate (default: 3)")
    p_sw.add_argument("--processes", type=int, default=None, metavar="P",
                      help="worker processes (default: all cores; 1 = inline)")
    p_sw.add_argument("--metrics-out", metavar="PATH", default=None,
                      help="write the merged sweep metrics dump as JSON")
    p_sw.set_defaults(fn=cmd_sweep)

    p_dag = sub.add_parser(
        "dag", help="sweep workflow DAGs over data-sharing backends")
    p_dag.add_argument("--backend", dest="backends", nargs="*", default=[],
                       metavar="NAME",
                       help="backends to sweep: local, s3, ebs "
                            "(default: all three)")
    p_dag.add_argument("--shape", dest="shapes", nargs="*", default=[],
                       metavar="SHAPE",
                       help="DAG shapes to sweep: linear, fanout "
                            "(default: both)")
    p_dag.add_argument("--seeds", type=int, default=3, metavar="N",
                       help="number of campaign seeds to aggregate "
                            "(default: 3)")
    p_dag.add_argument("--processes", type=int, default=1, metavar="P",
                       help="worker processes for the sweep grid "
                            "(default: 1 = inline)")
    p_dag.add_argument("--slo", action="store_true",
                       help="print the per-backend SLO tables")
    p_dag.set_defaults(fn=cmd_dag)

    p_mx = sub.add_parser(
        "matrix", help="sweep workflow DAGs over capacity broker stacks")
    p_mx.add_argument("--stack", dest="stacks", nargs="*", default=[],
                      metavar="NAME",
                      help="broker stacks to sweep: fleet, spot, spot-lease "
                           "(default: all three)")
    p_mx.add_argument("--shape", dest="shapes", nargs="*", default=[],
                      metavar="SHAPE",
                      help="DAG shapes to sweep: linear, fanout "
                           "(default: both)")
    p_mx.add_argument("--regime", dest="regimes", nargs="*", default=[],
                      metavar="REGIME",
                      help="spot interruption regimes: calm, choppy, "
                           "eviction-storm (default: all three)")
    p_mx.add_argument("--seeds", type=int, default=3, metavar="N",
                      help="number of campaign seeds to aggregate "
                           "(default: 3)")
    p_mx.add_argument("--processes", type=int, default=1, metavar="P",
                      help="worker processes for the sweep grid "
                           "(default: 1 = inline)")
    p_mx.add_argument("--slo", action="store_true",
                      help="print the per-stack SLO tables")
    p_mx.set_defaults(fn=cmd_matrix)

    p_runs = sub.add_parser(
        "runs", help="query the persistent flight-recorder ledger")
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)

    p_rl = runs_sub.add_parser("list", help="list recorded runs")
    p_rl.add_argument("--kind", default=None, metavar="KIND",
                      help="only records of this kind (runner, columnar, "
                           "dag, experiment, sweep-cell)")
    p_rl.add_argument("--label", default=None, metavar="LABEL",
                      help="only records with this label")
    p_rl.set_defaults(fn=cmd_runs_list)

    p_rs = runs_sub.add_parser("show", help="dump one record as JSON")
    p_rs.add_argument("ref", metavar="REF",
                      help="run id, or a negative index (-1 = latest)")
    p_rs.set_defaults(fn=cmd_runs_show)

    p_rd = runs_sub.add_parser("diff", help="compare two recorded runs")
    p_rd.add_argument("a", metavar="A",
                      help="baseline run id or negative index")
    p_rd.add_argument("b", metavar="B",
                      help="candidate run id or negative index")
    p_rd.add_argument("--threshold", type=float, default=0.05, metavar="T",
                      help="relative threshold for deterministic deltas "
                           "(default: 0.05)")
    p_rd.add_argument("--perf-threshold", type=float, default=0.15,
                      metavar="T",
                      help="relative threshold for wall-clock deltas "
                           "(default: 0.15)")
    p_rd.add_argument("--strict", action="store_true",
                      help="exit 3 when the diff is dirty or a perf "
                           "regression exceeds the threshold")
    p_rd.set_defaults(fn=cmd_runs_diff)

    p_rslo = runs_sub.add_parser(
        "slo", help="evaluate chaos SLOs over recorded sweep cells")
    p_rslo.add_argument("--label", default=None, metavar="LABEL",
                        help="only records with this label")
    p_rslo.add_argument("--policy", default="chaos", metavar="NAME",
                        help="registered SLO policy to evaluate (default: "
                             "chaos; e.g. chaos, dag, spot, matrix — an "
                             "unknown name lists what is registered)")
    p_rslo.add_argument("--strict", action="store_true",
                        help="exit 3 when any policy side violates an SLO")
    p_rslo.set_defaults(fn=cmd_runs_slo)

    for p in (p_rl, p_rs, p_rd, p_rslo):
        p.add_argument("--runs-dir", default=".repro/runs", metavar="DIR",
                       help="ledger directory (default: .repro/runs)")

    p_tr = sub.add_parser("trace", help="run a demo with tracing enabled")
    p_tr.add_argument("demo", metavar="DEMO",
                      help=f"demo to trace ({', '.join(DEMOS)})")
    p_tr.add_argument("--out", metavar="PATH", default=None,
                      help="write a Chrome trace_event JSON file")
    p_tr.add_argument("--jsonl", metavar="PATH", default=None,
                      help="write a JSONL span/instant log")
    p_tr.add_argument("--gantt", action="store_true",
                      help="print an ASCII Gantt of the recorded spans")
    p_tr.add_argument("--gantt-category", metavar="CAT", default="runner",
                      help="span category for --gantt (default: runner)")
    p_tr.set_defaults(fn=cmd_trace)

    for p in (p_fig, p_ds, p_qs, p_fl, p_ch, p_sp, p_sw, p_dag, p_mx, p_tr):
        p.add_argument("--metrics", action="store_true",
                       help="print the metrics table after the run")
        p.add_argument("--runs-dir", default=".repro/runs", metavar="DIR",
                       help="flight-recorder ledger directory "
                            "(default: .repro/runs)")
        p.add_argument("--no-ledger", action="store_true",
                       help="do not append run records to the ledger")

    try:
        args = parser.parse_args(argv)
    except SystemExit as e:
        # argparse already printed its one-line usage error (unknown
        # subcommand, bad flag value); surface the status as a return
        # code so callers never see a traceback.
        return int(e.code or 0)
    # Run-producing subcommands record to the flight-recorder ledger;
    # the ``runs`` query group only reads (via its own --runs-dir).
    record = args.command != "runs" and not getattr(args, "no_ledger", False)
    previous_ledger = (set_run_ledger(RunLedger(args.runs_dir))
                       if record else None)
    try:
        # ``trace`` and ``fleet`` manage their own Obs bundle (spans +
        # metrics); the other subcommands only need the registry when
        # --metrics is requested.
        if args.fn in (cmd_trace, cmd_fleet):
            return _dispatch(args)
        obs = (configure(trace=False)
               if getattr(args, "metrics", False) else None)
        try:
            return _dispatch(args)
        finally:
            if obs is not None:
                _maybe_print_metrics(args, obs)
                disable()
    finally:
        if record:
            set_run_ledger(previous_ledger)


def _dispatch(args: argparse.Namespace) -> int:
    """Run a subcommand; unexpected errors become one log line, not a dump."""
    try:
        return args.fn(args)
    except Exception as e:  # noqa: BLE001 - the CLI boundary
        _log.error("%s: %s", type(e).__name__, e)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
