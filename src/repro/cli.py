"""Command-line interface: regenerate figures and inspect data sets.

Usage::

    python -m repro.cli figures --ids F4 F7        # regenerate figures
    python -m repro.cli figures --all
    python -m repro.cli datasets                   # Fig. 1 summaries
    python -m repro.cli quickstart                 # the end-to-end demo
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.report.figures import FigureResult, render_ascii

__all__ = ["main", "FIGURES"]


def _fig1a() -> FigureResult:
    from repro.experiments.exp_fig1 import fig1a

    return fig1a()[0]


def _fig1b() -> FigureResult:
    from repro.experiments.exp_fig1 import fig1b

    return fig1b()[0]


def _fig2() -> FigureResult:
    from repro.experiments.exp_fig2 import fig2

    return fig2()[0]


def _fig3() -> FigureResult:
    from repro.experiments.exp_grep import fig3

    return fig3()[0]


def _grep_figure(which: str) -> FigureResult:
    from repro.experiments import exp_grep

    tb = exp_grep.make_testbed()
    return getattr(exp_grep, which)(tb)[0]


def _pos_figure(which: str) -> FigureResult:
    from repro.experiments import exp_pos

    tb = exp_pos.make_testbed()
    return getattr(exp_pos, which)(tb)[0]


def _novels() -> FigureResult:
    from repro.experiments.exp_pos import novels

    return novels()[0]


def _side(which: str) -> FigureResult:
    from repro.experiments import exp_side

    return getattr(exp_side, which)()[0]


FIGURES: dict[str, Callable[[], FigureResult]] = {
    "F1a": _fig1a,
    "F1b": _fig1b,
    "F2": _fig2,
    "F3": _fig3,
    "F4": lambda: _grep_figure("fig4"),
    "F5": lambda: _grep_figure("fig5"),
    "F6": lambda: _grep_figure("fig6"),
    "F7": lambda: _pos_figure("fig7"),
    "F8": lambda: _pos_figure("fig8"),
    "F9": lambda: _pos_figure("fig9"),
    "X1": _novels,
    "X2": lambda: _side("instance_switching"),
    "X3": lambda: _side("probe_protocol_trace"),
    "X4": lambda: _side("output_retrieval"),
    "X5": lambda: _side("spot_tradeoff"),
    "X6": lambda: _side("prediction_approaches"),
    "X7": lambda: _side("sampling_vitality"),
}


def cmd_figures(args: argparse.Namespace) -> int:
    """``figures`` subcommand: render the requested figures."""
    ids = list(FIGURES) if args.all else args.ids
    if not ids:
        print("no figure ids given (use --ids F4 F7 … or --all)", file=sys.stderr)
        return 2
    unknown = [i for i in ids if i not in FIGURES]
    if unknown:
        print(f"unknown figure id(s): {unknown}; known: {sorted(FIGURES)}",
              file=sys.stderr)
        return 2
    for fid in ids:
        print(render_ascii(FIGURES[fid]()))
        print()
    return 0


def cmd_datasets(_args: argparse.Namespace) -> int:
    """``datasets`` subcommand: print Fig. 1 summaries."""
    from repro.corpus import html_18mil_like, text_400k_like

    for cat in (html_18mil_like(scale=1e-3), text_400k_like(scale=1e-2)):
        d = cat.describe()
        print(f"{d['name']:>12}: {d['files']} files, total {d['total']:,} B, "
              f"mean {d['mean']:.0f} B, median {d['median']:.0f} B, "
              f"p90 {d['p90']:.0f} B, max {d['max']:,} B")
    return 0


def cmd_quickstart(_args: argparse.Namespace) -> int:
    """``quickstart`` subcommand: run the quickstart example."""
    import runpy
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    runpy.run_path(str(script), run_name="__main__")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate the paper's figures and demos.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate paper figures")
    p_fig.add_argument("--ids", nargs="*", default=[], metavar="ID",
                       help=f"figure ids ({', '.join(FIGURES)})")
    p_fig.add_argument("--all", action="store_true", help="all figures")
    p_fig.set_defaults(fn=cmd_figures)

    p_ds = sub.add_parser("datasets", help="summarise the synthetic data sets")
    p_ds.set_defaults(fn=cmd_datasets)

    p_qs = sub.add_parser("quickstart", help="run the quickstart example")
    p_qs.set_defaults(fn=cmd_quickstart)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
