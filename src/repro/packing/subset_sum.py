"""Subset-sum first-fit merging — the paper's reshaping heuristic (§4).

The goal is to group original small files into *unit files* whose size is as
close as possible to a desired unit size ``s``.  The paper cites the
subset-sum first-fit heuristic [Vazirani]: fill one bin at a time, greedily
adding the files that keep the bin as full as possible without overflowing.

Two entry points:

* :func:`subset_sum_first_fit` — the merge itself, producing bins whose
  contents will be concatenated into unit files.
* :func:`derive_multiples` — the §4 trick: after packing once at the base
  unit size ``s0``, probes at sizes ``s1..sn`` that are *multiples* of ``s0``
  are derived by coalescing consecutive base bins, avoiding a re-pack ("this
  approach is convenient since we avoid rerunning the first fit bin packing
  algorithm, but can be sensitive to the quality of the original bins").
"""

from __future__ import annotations

from typing import Sequence

from repro.packing.bins import Bin, Item, PackingError

__all__ = ["subset_sum_first_fit", "derive_multiples"]


def subset_sum_first_fit(
    items: Sequence[Item],
    unit_size: int,
    *,
    preserve_order: bool = True,
) -> list[Bin]:
    """Merge ``items`` into bins of at most ``unit_size`` bytes each.

    With ``preserve_order`` (the paper's default for the POS workload,
    §5.2), items are taken in their original order and placed first-fit.
    Without it, a greedy best-fill pass is made per bin: repeatedly take the
    largest remaining item that still fits (the classic subset-sum
    approximation), which produces fuller bins at the cost of reordering.

    Items larger than ``unit_size`` become single-item oversized bins; the
    reshaper never splits a file ("the largest (unsplittable) file", §5).
    """
    if unit_size <= 0:
        raise PackingError(f"unit size must be positive, got {unit_size}")
    if preserve_order:
        from repro.packing.first_fit import first_fit

        return first_fit(items, unit_size)

    remaining = sorted(items, key=lambda it: (-it.size, it.key))
    bins: list[Bin] = []
    # Oversized files first: each gets its own bin.
    while remaining and remaining[0].size > unit_size:
        solo = Bin(capacity=remaining[0].size)
        solo.add(remaining.pop(0))
        bins.append(solo)
    while remaining:
        b = Bin(capacity=unit_size)
        # Greedy descending scan: take every item that still fits.  Because
        # the list is sorted by size, one pass approximates subset-sum well.
        kept: list[Item] = []
        for it in remaining:
            if b.fits(it):
                b.add(it)
            else:
                kept.append(it)
        remaining = kept
        bins.append(b)
    return bins


def derive_multiples(
    base_bins: Sequence[Bin],
    factors: Sequence[int],
) -> dict[int, list[Bin]]:
    """Derive probe packings at multiples of the base unit size.

    Given bins packed at unit size ``s0``, return for each factor ``k`` in
    ``factors`` a packing at unit size ``k*s0`` built by coalescing ``k``
    consecutive base bins.  The returned mapping is keyed by factor.

    This mirrors §4: ``s1..sn`` are "conveniently chosen as multiples of s0
    such that we perform the bin packing once"; the quality of the derived
    bins inherits the quality of the base bins.
    """
    if not base_bins:
        return {k: [] for k in factors}
    base_cap = max(b.capacity or b.used for b in base_bins)
    out: dict[int, list[Bin]] = {}
    for k in factors:
        if k < 1:
            raise PackingError(f"factor must be >= 1, got {k}")
        merged: list[Bin] = []
        for start in range(0, len(base_bins), k):
            group = base_bins[start : start + k]
            nb = Bin(capacity=base_cap * k)
            for gb in group:
                for it in gb.items:
                    # Coalesced bins can exceed capacity only if a base bin
                    # held an oversized item; widen rather than fail.
                    if not nb.fits(it):
                        nb.capacity = nb.used + it.size
                    nb.add(it)
            merged.append(nb)
        out[k] = merged
    return out
