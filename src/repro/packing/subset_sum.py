"""Subset-sum first-fit merging — the paper's reshaping heuristic (§4).

The goal is to group original small files into *unit files* whose size is as
close as possible to a desired unit size ``s``.  The paper cites the
subset-sum first-fit heuristic [Vazirani]: fill one bin at a time, greedily
adding the files that keep the bin as full as possible without overflowing.

Two entry points:

* :func:`subset_sum_first_fit` — the merge itself, producing bins whose
  contents will be concatenated into unit files.
* :func:`derive_multiples` — the §4 trick: after packing once at the base
  unit size ``s0``, probes at sizes ``s1..sn`` that are *multiples* of ``s0``
  are derived by coalescing consecutive base bins, avoiding a re-pack ("this
  approach is convenient since we avoid rerunning the first fit bin packing
  algorithm, but can be sensitive to the quality of the original bins").

Implementation
--------------
The reference's bin-at-a-time greedy pass ("take every remaining item, in
descending size order, that still fits the current bin") is *provably*
first-fit over the descending item order: the items entering bin 0 are
exactly those that fit its running free space, the items skipped form the
stream bin 1 sees, and so on by induction.  The engine therefore reuses the
O(n log B) :func:`~repro.packing.first_fit.first_fit_layout` kernel on a
sorted index permutation instead of re-scanning the remainder list per bin
(O(n·B)).  The property tests pin this equivalence against
:mod:`repro.packing.reference` bin by bin.
"""

from __future__ import annotations

from typing import Sequence

from repro.packing.bins import Bin, PackingError, as_columns, materialise_bins
from repro.packing.first_fit import _decreasing_order, first_fit_layout
from repro.packing.index import BinLayout

__all__ = [
    "subset_sum_first_fit",
    "subset_sum_layout",
    "derive_multiples",
    "derive_multiples_layout",
]


def subset_sum_layout(
    sizes: Sequence[int],
    unit_size: int,
    *,
    preserve_order: bool = True,
    keys: Sequence[str] | None = None,
) -> list[BinLayout]:
    """Columnar subset-sum merge of ``sizes`` into ≤``unit_size`` bins.

    With ``preserve_order`` items stream in their given order (classic
    first-fit).  Without it, the greedy best-fill pass runs over items
    sorted descending; ``keys`` supplies the reference tie-break for equal
    sizes (falling back to index order, which coincides with key order for
    catalogue columns).
    """
    if unit_size <= 0:
        raise PackingError(f"unit size must be positive, got {unit_size}")
    if preserve_order:
        return first_fit_layout(sizes, unit_size)
    order = _decreasing_order(sizes, keys)
    layouts = first_fit_layout([sizes[i] for i in order], unit_size)
    for l in layouts:
        l.indices = [order[j] for j in l.indices]
    return layouts


def subset_sum_first_fit(
    items,
    unit_size: int,
    *,
    preserve_order: bool = True,
) -> list[Bin]:
    """Merge ``items`` into bins of at most ``unit_size`` bytes each.

    With ``preserve_order`` (the paper's default for the POS workload,
    §5.2), items are taken in their original order and placed first-fit.
    Without it, a greedy best-fill pass is made per bin: repeatedly take the
    largest remaining item that still fits (the classic subset-sum
    approximation), which produces fuller bins at the cost of reordering.

    Items larger than ``unit_size`` become single-item oversized bins; the
    reshaper never splits a file ("the largest (unsplittable) file", §5).
    ``items`` may also be a ``(keys, sizes)`` column pair.
    """
    payload, keys, sizes = as_columns(items)
    tie_keys = keys if payload is None else [it.key for it in payload]
    layouts = subset_sum_layout(
        sizes, unit_size, preserve_order=preserve_order,
        keys=None if preserve_order else tie_keys,
    )
    return materialise_bins(layouts, payload=payload, keys=keys, sizes=sizes)


def derive_multiples_layout(
    base_layouts: Sequence[BinLayout],
    factors: Sequence[int],
) -> dict[int, list[BinLayout]]:
    """Columnar :func:`derive_multiples`: coalesce ``k`` consecutive bins."""
    if not base_layouts:
        return {k: [] for k in factors}
    base_cap = max(l.capacity or l.used for l in base_layouts)
    out: dict[int, list[BinLayout]] = {}
    for k in factors:
        if k < 1:
            raise PackingError(f"factor must be >= 1, got {k}")
        merged: list[BinLayout] = []
        for start in range(0, len(base_layouts), k):
            group = base_layouts[start : start + k]
            indices: list[int] = []
            for gl in group:
                indices.extend(gl.indices)
            used = sum(gl.used for gl in group)
            merged.append(
                BinLayout(capacity=max(base_cap * k, used), indices=indices, used=used)
            )
        out[k] = merged
    return out


def derive_multiples(
    base_bins: Sequence[Bin],
    factors: Sequence[int],
) -> dict[int, list[Bin]]:
    """Derive probe packings at multiples of the base unit size.

    Given bins packed at unit size ``s0``, return for each factor ``k`` in
    ``factors`` a packing at unit size ``k*s0`` built by coalescing ``k``
    consecutive base bins.  The returned mapping is keyed by factor.

    This mirrors §4: ``s1..sn`` are "conveniently chosen as multiples of s0
    such that we perform the bin packing once"; the quality of the derived
    bins inherits the quality of the base bins.  Coalesced bins can exceed
    ``k*s0`` only when a base bin held an oversized item; the capacity is
    widened rather than failing.
    """
    if not base_bins:
        return {k: [] for k in factors}
    base_cap = max(b.capacity or b.used for b in base_bins)
    out: dict[int, list[Bin]] = {}
    for k in factors:
        if k < 1:
            raise PackingError(f"factor must be >= 1, got {k}")
        merged: list[Bin] = []
        for start in range(0, len(base_bins), k):
            group = base_bins[start : start + k]
            items = [it for gb in group for it in gb.items]
            used = sum(gb.used for gb in group)
            merged.append(
                Bin.prefilled(max(base_cap * k, used), items, used)
            )
        out[k] = merged
    return out
