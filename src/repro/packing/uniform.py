"""Uniform (balanced) binning — the §5.2 schedule improvement.

After the deadline model prescribes an instance count ``i``, the paper
improves on capacity-driven first-fit by "uniformly distributing the data to
each instance": every instance gets ≈``V/i`` bytes, which lowers the maximum
bin volume and therefore the chance of missing the deadline at identical
cost (Fig. 8(b)).

The heuristic here is greedy longest-processing-time-style balancing when
order may be broken — each item (largest first) lands on the currently
lightest bin, found through the engine's
:meth:`~repro.packing.index.FreeSpaceIndex.lightest` heap in O(log B) — and
a volume-threshold splitter when the original file order must be preserved
(the POS workload case), which is a single O(n) streaming pass.
"""

from __future__ import annotations

from typing import Sequence

from repro.packing.bins import Bin, PackingError, as_columns, materialise_bins
from repro.packing.first_fit import _decreasing_order
from repro.packing.index import BinLayout, FreeSpaceIndex

__all__ = ["uniform_bins", "uniform_layout"]


def uniform_layout(
    sizes: Sequence[int],
    n_bins: int,
    *,
    preserve_order: bool = True,
    keys: Sequence[str] | None = None,
) -> list[BinLayout]:
    """Columnar balanced split of ``sizes`` across exactly ``n_bins`` bins.

    Returned layouts are uncapacitated (``capacity=None``); balance, not
    capacity, is the constraint.  ``keys`` supplies the equal-size tie-break
    for the greedy (order-breaking) pass.
    """
    if n_bins <= 0:
        raise PackingError(f"need at least one bin, got {n_bins}")
    layouts = [BinLayout(capacity=None) for _ in range(n_bins)]
    if not sizes:
        return layouts
    total = sum(sizes)

    if preserve_order:
        # Stream in order, closing a bin once it has met its ideal share
        # total/n (the last bin absorbs rounding).  Float arithmetic matches
        # the reference splitter exactly.
        share = total / n_bins
        idx = 0
        running = 0
        current = layouts[0]
        for i, size in enumerate(sizes):
            while idx < n_bins - 1 and running + size / 2 >= share * (idx + 1):
                idx += 1
                current = layouts[idx]
            current.indices.append(i)
            current.used += size
            running += size
        return layouts

    index = FreeSpaceIndex()
    for _ in range(n_bins):
        index.append(0)
    for i in _decreasing_order(sizes, keys):
        slot = index.lightest()
        size = sizes[i]
        index.add_load(slot, size)
        layouts[slot].indices.append(i)
        layouts[slot].used += size
    return layouts


def uniform_bins(
    items,
    n_bins: int,
    *,
    preserve_order: bool = True,
) -> list[Bin]:
    """Distribute ``items`` across exactly ``n_bins`` bins of ≈equal volume.

    With ``preserve_order`` the items are streamed in order and a bin is
    closed once it reaches the ideal share ``total/n_bins`` (the last bin
    absorbs rounding).  Without it, a greedy balance pass assigns each item
    (largest first) to the currently lightest bin — tighter balance, broken
    order.

    Returned bins are uncapacitated (``capacity=None``); balance, not
    capacity, is the constraint here.  ``items`` may also be a
    ``(keys, sizes)`` column pair.
    """
    payload, keys, sizes = as_columns(items)
    tie_keys = keys if payload is None else [it.key for it in payload]
    layouts = uniform_layout(
        sizes, n_bins, preserve_order=preserve_order,
        keys=None if preserve_order else tie_keys,
    )
    return materialise_bins(layouts, payload=payload, keys=keys, sizes=sizes)
