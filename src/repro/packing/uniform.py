"""Uniform (balanced) binning — the §5.2 schedule improvement.

After the deadline model prescribes an instance count ``i``, the paper
improves on capacity-driven first-fit by "uniformly distributing the data to
each instance": every instance gets ≈``V/i`` bytes, which lowers the maximum
bin volume and therefore the chance of missing the deadline at identical
cost (Fig. 8(b)).

The heuristic here is greedy longest-processing-time-style balancing when
order may be broken, and a volume-threshold splitter when the original file
order must be preserved (the POS workload case).
"""

from __future__ import annotations

from typing import Sequence

from repro.packing.bins import Bin, Item, PackingError

__all__ = ["uniform_bins"]


def uniform_bins(
    items: Sequence[Item],
    n_bins: int,
    *,
    preserve_order: bool = True,
) -> list[Bin]:
    """Distribute ``items`` across exactly ``n_bins`` bins of ≈equal volume.

    With ``preserve_order`` the items are streamed in order and a bin is
    closed once it reaches the ideal share ``total/n_bins`` (the last bin
    absorbs rounding).  Without it, a greedy balance pass assigns each item
    (largest first) to the currently lightest bin — tighter balance, broken
    order.

    Returned bins are uncapacitated (``capacity=None``); balance, not
    capacity, is the constraint here.
    """
    if n_bins <= 0:
        raise PackingError(f"need at least one bin, got {n_bins}")
    items = list(items)
    bins = [Bin(capacity=None) for _ in range(n_bins)]
    if not items:
        return bins
    total = sum(it.size for it in items)

    if preserve_order:
        share = total / n_bins
        idx = 0
        running = 0
        for it in items:
            # Advance to the next bin when this one has met its share, but
            # never beyond the last bin.
            while idx < n_bins - 1 and running + it.size / 2 >= share * (idx + 1):
                idx += 1
            bins[idx].append_unchecked(it)
            running += it.size
        return bins

    for it in sorted(items, key=lambda i: (-i.size, i.key)):
        target = min(bins, key=lambda b: b.used)
        target.append_unchecked(it)
    return bins
