"""First-fit family of bin-packing heuristics, on the indexed engine.

First-fit scans bins in creation order and places each item into the first
bin with room, opening a new bin when none fits.  First-fit-decreasing sorts
items by size first — a better approximation ratio (11/9 OPT + 6/9), but the
paper deliberately avoids it for the POS workload because it front-loads
large files into the earliest bins and large files degrade the memory-bound
tagger (§5.2).  Both are provided so the ablation bench can contrast them.

Implementation
--------------
The placement question "leftmost bin with free ≥ size" is answered by a
:class:`~repro.packing.index.FreeSpaceIndex` segment tree in O(log B), so a
full pack is O(n log B) instead of the reference's O(n·B) per-item scans.
:func:`first_fit_layout` adds a constant-factor trick on top: bins are
*closed* into the tree only once a later bin opens, and the single open bin
is tracked in two local integers.  Because bins close nearly full, the
overwhelmingly common case — the item goes into the newest bin — costs two
integer compares and a list append, with the tree only consulted when some
closed bin genuinely has room (``size ≤ tree max``).  Placement is exactly
classic first-fit; the property tests hold every layout byte-identical to
:mod:`repro.packing.reference`.
"""

from __future__ import annotations

from typing import Sequence

from repro.packing.bins import (
    Bin,
    Item,
    PackingError,
    as_columns,
    materialise_bins,
)
from repro.packing.index import BinLayout, FreeSpaceIndex

__all__ = [
    "first_fit",
    "first_fit_decreasing",
    "pack_into_n_bins",
    "first_fit_layout",
    "pack_into_n_bins_layout",
]


def first_fit_layout(sizes: Sequence[int], capacity: int) -> list[BinLayout]:
    """Columnar first-fit: pack ``sizes`` (in order) into capacity-bound bins.

    Items larger than ``capacity`` get a dedicated oversized bin of their own
    (the paper's corpora contain a long tail — e.g. a 43 MB article among
    10 kB files — and an unsplittable oversized file must still be placed).
    Returns bins in creation order as :class:`BinLayout` index lists.
    """
    if capacity <= 0:
        raise PackingError(f"capacity must be positive, got {capacity}")
    layouts: list[BinLayout] = []      # all bins, in creation order
    regular: list[BinLayout] = []      # non-oversized bins, tree slot order
    index = FreeSpaceIndex()
    closed_max = -1                    # == index.max_free(), cached locally
    open_list: list[int] | None = None
    open_free = -1
    for i, size in enumerate(sizes):
        if size > closed_max:
            if size <= open_free:
                open_list.append(i)
                open_free -= size
                continue
            if size > capacity:
                layouts.append(BinLayout(capacity=size, indices=[i], used=size))
                continue
            # Close the open bin into the tree and open a fresh one.
            if open_list is not None:
                index.append(open_free)
                closed_max = index.max_free()
            open_list = [i]
            open_free = capacity - size
            bl = BinLayout(capacity=capacity, indices=open_list, used=0)
            layouts.append(bl)
            regular.append(bl)
        else:
            # Some closed bin (all left of the open bin) has room: classic
            # first-fit sends the item to the leftmost such bin.
            slot = index.first_fit_slot(size)
            index.consume(slot, size)
            regular[slot].indices.append(i)
            closed_max = index.max_free()
    for slot in range(len(index)):
        regular[slot].used = capacity - index.free_of(slot)
    if open_list is not None:
        regular[-1].used = capacity - open_free
    return layouts


def first_fit(items, capacity: int) -> list[Bin]:
    """Pack items (in given order) into bins of ``capacity`` bytes.

    ``items`` is a sequence of :class:`Item` or a ``(keys, sizes)`` column
    pair; see :func:`first_fit_layout` for the placement contract.
    """
    payload, keys, sizes = as_columns(items)
    layouts = first_fit_layout(sizes, capacity)
    return materialise_bins(layouts, payload=payload, keys=keys, sizes=sizes)


def first_fit_decreasing(items, capacity: int) -> list[Bin]:
    """First-fit on items sorted by size, descending (ties broken by key)."""
    payload, keys, sizes = as_columns(items)
    if payload is not None:
        ordered = sorted(payload, key=lambda it: (-it.size, it.key))
        return first_fit(ordered, capacity)
    order = _decreasing_order(sizes, keys)
    layouts = first_fit_layout([sizes[i] for i in order], capacity)
    for l in layouts:
        l.indices = [order[j] for j in l.indices]
    return materialise_bins(layouts, payload=None, keys=keys, sizes=sizes)


def _decreasing_order(sizes: Sequence[int], keys: Sequence[str] | None) -> list[int]:
    """Index permutation sorting by size descending, ties by key (or index)."""
    if keys is not None:
        return sorted(range(len(sizes)), key=lambda i: (-sizes[i], keys[i]))
    return sorted(range(len(sizes)), key=lambda i: (-sizes[i], i))


def pack_into_n_bins_layout(
    sizes: Sequence[int],
    n_bins: int,
    capacity: int,
    *,
    strict: bool = False,
) -> list[BinLayout]:
    """Columnar first-fit into exactly ``n_bins`` bins of ``capacity``.

    Overflow items (nothing fits) spill into the least-loaded bin via the
    engine's :meth:`~repro.packing.index.FreeSpaceIndex.lightest` heap,
    widening its capacity — unless ``strict``, which raises instead.
    """
    if n_bins <= 0:
        raise PackingError(f"need at least one bin, got {n_bins}")
    if capacity <= 0:
        raise PackingError(f"capacity must be positive, got {capacity}")
    index = FreeSpaceIndex()
    layouts = [BinLayout(capacity=capacity) for _ in range(n_bins)]
    for _ in range(n_bins):
        index.append(capacity)
    overflow: list[int] = []
    for i, size in enumerate(sizes):
        slot = index.first_fit_slot(size)
        if slot >= 0:
            index.consume(slot, size)
            layouts[slot].indices.append(i)
        else:
            overflow.append(i)
    for slot, l in enumerate(layouts):
        l.used = index.used_of(slot)
    if overflow:
        if strict:
            raise PackingError(
                f"{len(overflow)} items do not fit into {n_bins} bins of {capacity} B"
            )
        for i in overflow:
            slot = index.lightest()
            index.add_load(slot, sizes[i])
            l = layouts[slot]
            l.indices.append(i)
            l.used += sizes[i]
            l.capacity = max(l.capacity, l.used)
    return layouts


def pack_into_n_bins(
    items,
    n_bins: int,
    capacity: int,
    *,
    strict: bool = False,
) -> list[Bin]:
    """First-fit ``items`` into exactly ``n_bins`` bins of ``capacity``.

    This is the provisioning step of §5.2: the deadline model prescribes a
    per-instance volume ``x0`` and an instance count ``i0 = ceil(V/ceil(x0))``;
    the data set is then packed into ``i0`` bins.  The paper keeps the files
    in their *original order* here.

    When the capacity turns out too tight for first-fit (possible because
    first-fit wastes some space), overflow items spill into the
    least-loaded bin unless ``strict`` is true, in which case
    :class:`PackingError` is raised.
    """
    payload, keys, sizes = as_columns(items)
    layouts = pack_into_n_bins_layout(sizes, n_bins, capacity, strict=strict)
    return materialise_bins(layouts, payload=payload, keys=keys, sizes=sizes)
