"""First-fit family of bin-packing heuristics.

First-fit scans bins in creation order and places each item into the first
bin with room, opening a new bin when none fits.  First-fit-decreasing sorts
items by size first — a better approximation ratio (11/9 OPT + 6/9), but the
paper deliberately avoids it for the POS workload because it front-loads
large files into the earliest bins and large files degrade the memory-bound
tagger (§5.2).  Both are provided so the ablation bench can contrast them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.packing.bins import Bin, Item, PackingError

__all__ = ["first_fit", "first_fit_decreasing", "pack_into_n_bins"]


def first_fit(items: Sequence[Item], capacity: int) -> list[Bin]:
    """Pack ``items`` (in given order) into bins of ``capacity`` bytes.

    Items larger than ``capacity`` get a dedicated oversized bin of their own
    (the paper's corpora contain a long tail — e.g. a 43 MB article among
    10 kB files — and an unsplittable oversized file must still be placed).

    The "first bin with room" scan is vectorised over a NumPy free-space
    array, so packing million-file catalogues stays fast in practice while
    placement is *exactly* classic first-fit.
    """
    if capacity <= 0:
        raise PackingError(f"capacity must be positive, got {capacity}")
    bins: list[Bin] = []          # all bins, in creation order
    regular: list[Bin] = []       # non-oversized bins, in creation order
    free = np.empty(0, dtype=np.int64)
    for item in items:
        if item.size > capacity:
            solo = Bin(capacity=item.size)
            solo.add(item)
            bins.append(solo)
            continue
        n = len(regular)
        idx = -1
        if n:
            fits_mask = free[:n] >= item.size
            pos = int(np.argmax(fits_mask))
            if fits_mask[pos]:
                idx = pos
        if idx >= 0:
            regular[idx].append_unchecked(item)
            free[idx] -= item.size
        else:
            b = Bin(capacity=capacity)
            b.add(item)
            bins.append(b)
            regular.append(b)
            if len(regular) > free.shape[0]:
                grown = np.empty(max(16, 2 * free.shape[0]), dtype=np.int64)
                grown[: free.shape[0]] = free
                free = grown
            free[len(regular) - 1] = capacity - item.size
    return bins


def first_fit_decreasing(items: Sequence[Item], capacity: int) -> list[Bin]:
    """First-fit on items sorted by size, descending (ties broken by key)."""
    ordered = sorted(items, key=lambda it: (-it.size, it.key))
    return first_fit(ordered, capacity)


def pack_into_n_bins(
    items: Sequence[Item],
    n_bins: int,
    capacity: int,
    *,
    strict: bool = False,
) -> list[Bin]:
    """First-fit ``items`` into exactly ``n_bins`` bins of ``capacity``.

    This is the provisioning step of §5.2: the deadline model prescribes a
    per-instance volume ``x0`` and an instance count ``i0 = ceil(V/ceil(x0))``;
    the data set is then packed into ``i0`` bins.  The paper keeps the files
    in their *original order* here.

    When the capacity turns out too tight for first-fit (possible because
    first-fit wastes some space), overflow items spill into the
    least-loaded bin unless ``strict`` is true, in which case
    :class:`PackingError` is raised.
    """
    if n_bins <= 0:
        raise PackingError(f"need at least one bin, got {n_bins}")
    if capacity <= 0:
        raise PackingError(f"capacity must be positive, got {capacity}")
    bins = [Bin(capacity=capacity) for _ in range(n_bins)]
    overflow: list[Item] = []
    for item in items:
        for b in bins:
            if b.fits(item):
                b.add(item)
                break
        else:
            overflow.append(item)
    if overflow:
        if strict:
            raise PackingError(
                f"{len(overflow)} items do not fit into {n_bins} bins of {capacity} B"
            )
        for item in overflow:
            target = min(bins, key=lambda b: b.used)
            target.capacity = None if target.capacity is None else max(
                target.capacity, target.used + item.size
            )
            target.append_unchecked(item)
    return bins
