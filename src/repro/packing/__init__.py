"""Bin-packing heuristics used to reshape text corpora.

The paper merges many small files into unit files of a preferred size using
the *subset-sum first-fit* heuristic (Vazirani, Introduction to Approximation
Algorithms), and distributes data across EC2 instances with first-fit in
original order or with uniform (balanced) bins.  This package implements all
of those, plus first-fit-decreasing for the ablation in §5.2 of the paper
(sorted order gives fuller bins but front-loads large files, which hurts the
memory-bound POS tagger).

Public API
----------
- :class:`Item`, :class:`Bin` — value objects.
- :func:`first_fit` / :func:`first_fit_decreasing` — classic capacitated
  packing into an open-ended list of bins.
- :func:`pack_into_n_bins` — first-fit into a *fixed* number of bins
  (capacity = prescribed per-instance volume).
- :func:`uniform_bins` — balanced round-robin packing into ``n`` bins.
- :func:`subset_sum_first_fit` — the paper's merge heuristic.
- :func:`derive_multiples` — derive ``P^{V}_{s1..sn}`` probe groupings from a
  base packing at ``s0`` without re-running the packer (§4).
"""

from repro.packing.bins import Bin, Item, PackingError, total_size, validate_packing
from repro.packing.first_fit import (
    first_fit,
    first_fit_decreasing,
    pack_into_n_bins,
)
from repro.packing.subset_sum import derive_multiples, subset_sum_first_fit
from repro.packing.uniform import uniform_bins

__all__ = [
    "Bin",
    "Item",
    "PackingError",
    "total_size",
    "validate_packing",
    "first_fit",
    "first_fit_decreasing",
    "pack_into_n_bins",
    "uniform_bins",
    "subset_sum_first_fit",
    "derive_multiples",
]
