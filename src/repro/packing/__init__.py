"""Bin-packing heuristics used to reshape text corpora.

The paper merges many small files into unit files of a preferred size using
the *subset-sum first-fit* heuristic (Vazirani, Introduction to Approximation
Algorithms), and distributes data across EC2 instances with first-fit in
original order or with uniform (balanced) bins.  This package implements all
of those, plus first-fit-decreasing for the ablation in §5.2 of the paper
(sorted order gives fuller bins but front-loads large files, which hurts the
memory-bound POS tagger).

All heuristics run on a shared indexed engine
(:class:`~repro.packing.index.FreeSpaceIndex`, a max-segment-tree over
per-bin free space) in O(n log B); the original O(n·B) implementations are
preserved in :mod:`repro.packing.reference` as the equivalence oracle for
the property tests.

Public API
----------
- :class:`Item`, :class:`Bin` — value objects.
- :class:`BinLayout`, :class:`FreeSpaceIndex` — the engine's columnar
  result format and bin index.
- :func:`first_fit` / :func:`first_fit_decreasing` — classic capacitated
  packing into an open-ended list of bins.
- :func:`pack_into_n_bins` — first-fit into a *fixed* number of bins
  (capacity = prescribed per-instance volume).
- :func:`uniform_bins` — balanced round-robin packing into ``n`` bins.
- :func:`subset_sum_first_fit` — the paper's merge heuristic.
- :func:`derive_multiples` — derive ``P^{V}_{s1..sn}`` probe groupings from a
  base packing at ``s0`` without re-running the packer (§4).
- ``*_layout`` variants — the columnar fast path: same placements, but
  over a size column, returning item-index layouts instead of ``Bin``
  objects (no per-file ``Item`` dataclasses).
- :class:`PackingCache` — campaign-scoped memoisation with automatic
  derive-from-base routing for multiple-of-``s0`` sizes.

Every object-level packer also accepts a ``(keys, sizes)`` column pair in
place of an item sequence.
"""

from repro.packing.bins import (
    Bin,
    Item,
    PackingError,
    as_columns,
    materialise_bins,
    total_size,
    validate_packing,
)
from repro.packing.cache import PackingCache
from repro.packing.first_fit import (
    first_fit,
    first_fit_decreasing,
    first_fit_layout,
    pack_into_n_bins,
    pack_into_n_bins_layout,
)
from repro.packing.index import BinLayout, FreeSpaceIndex
from repro.packing.subset_sum import (
    derive_multiples,
    derive_multiples_layout,
    subset_sum_first_fit,
    subset_sum_layout,
)
from repro.packing.uniform import uniform_bins, uniform_layout

__all__ = [
    "Bin",
    "Item",
    "PackingError",
    "total_size",
    "validate_packing",
    "as_columns",
    "materialise_bins",
    "BinLayout",
    "FreeSpaceIndex",
    "PackingCache",
    "first_fit",
    "first_fit_decreasing",
    "first_fit_layout",
    "pack_into_n_bins",
    "pack_into_n_bins_layout",
    "uniform_bins",
    "uniform_layout",
    "subset_sum_first_fit",
    "subset_sum_layout",
    "derive_multiples",
    "derive_multiples_layout",
]
