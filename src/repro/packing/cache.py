"""Campaign-level memoisation of packings (§4's "pack once" discipline).

Probe-set construction re-packs the same catalogue head at many unit sizes,
and every provisioning strategy re-packs the data per candidate deadline.
Both are pure functions of ``(catalogue, unit size, heuristic, order)``, so
a campaign-scoped :class:`PackingCache` removes the repeats:

* exact repeats return the memoised layout immediately;
* a requested size that is a *multiple* of an already-packed base size is
  routed through :func:`~repro.packing.subset_sum.derive_multiples_layout`
  — §4's trick of coalescing ``k`` consecutive base bins instead of
  re-running the packer — so ``P^V_s`` probe sets pack once per volume, not
  once per (volume, size) pair.

Keys use :meth:`Catalogue.fingerprint`, a content hash of the size column.
Layouts are pure functions of the size column for the index tie-break used
here, so catalogues with equal size columns may legitimately share entries.
Returned layouts are shared objects: treat them as immutable.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

from repro.obs import get_obs
from repro.packing.first_fit import first_fit_layout
from repro.packing.index import BinLayout
from repro.packing.subset_sum import derive_multiples_layout, subset_sum_layout

if TYPE_CHECKING:  # pragma: no cover
    from repro.vfs.files import Catalogue

__all__ = ["PackingCache"]

_KERNELS = {
    "subset_sum": lambda sizes, s, preserve_order: subset_sum_layout(
        sizes, s, preserve_order=preserve_order
    ),
    "first_fit": lambda sizes, s, preserve_order: first_fit_layout(sizes, s),
}


class PackingCache:
    """Memoises packings keyed by (catalogue fingerprint, size, heuristic, order)."""

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self._store: dict[tuple, list[BinLayout]] = {}
        self.hits = 0
        self.misses = 0
        self.derived = 0

    def __len__(self) -> int:
        return len(self._store)

    def pack_layout(
        self,
        catalogue: "Catalogue",
        unit_size: int,
        *,
        heuristic: str = "subset_sum",
        preserve_order: bool = True,
        derive_from: int | None = None,
    ) -> list[BinLayout]:
        """Layout for ``catalogue`` at ``unit_size``, memoised.

        On a miss, if ``unit_size`` is a multiple of a cached base size for
        the same catalogue (the smallest such base, or exactly
        ``derive_from`` when given), the layout is derived by coalescing
        consecutive base bins rather than re-packed; otherwise the packer
        runs and the result is stored.
        """
        if heuristic not in _KERNELS:
            raise ValueError(f"unknown packing heuristic {heuristic!r}")
        obs = get_obs()
        fp = catalogue.fingerprint()
        key = (fp, heuristic, preserve_order, unit_size)
        found = self._store.get(key)
        if found is not None:
            self.hits += 1
            if obs.enabled:
                obs.metrics.counter("packing.cache.hits",
                                    heuristic=heuristic).inc()
            return found
        self.misses += 1
        layouts = self._derive(fp, heuristic, preserve_order, unit_size, derive_from)
        derived = layouts is not None
        if layouts is None:
            if obs.enabled:
                with obs.tracer.span("packing.pack", cat="packing",
                                     track="packing", heuristic=heuristic,
                                     unit_size=unit_size, n=len(catalogue)):
                    t0 = time.perf_counter()
                    layouts = _KERNELS[heuristic](
                        catalogue.sizes().tolist(), unit_size, preserve_order
                    )
                    obs.metrics.histogram(
                        "packing.pack.seconds", heuristic=heuristic
                    ).observe(time.perf_counter() - t0)
            else:
                layouts = _KERNELS[heuristic](
                    catalogue.sizes().tolist(), unit_size, preserve_order
                )
        if obs.enabled:
            obs.metrics.counter("packing.cache.misses",
                                heuristic=heuristic).inc()
            if derived:
                obs.metrics.counter("packing.cache.derived",
                                    heuristic=heuristic).inc()
            obs.metrics.histogram(
                "packing.layout.bins",
                buckets=(1, 10, 100, 1_000, 10_000, 100_000, 1_000_000),
            ).observe(len(layouts))
        self._remember(key, layouts)
        return layouts

    def _derive(
        self,
        fp: str,
        heuristic: str,
        preserve_order: bool,
        unit_size: int,
        derive_from: int | None,
    ) -> list[BinLayout] | None:
        if derive_from is not None:
            bases: Sequence[int] = (
                [derive_from] if 0 < derive_from < unit_size
                and unit_size % derive_from == 0 else []
            )
        else:
            bases = sorted(
                s for (f, h, p, s) in self._store
                if f == fp and h == heuristic and p == preserve_order
                and 0 < s < unit_size and unit_size % s == 0
            )
        for base in bases:
            base_layouts = self._store.get((fp, heuristic, preserve_order, base))
            if base_layouts is not None:
                k = unit_size // base
                self.derived += 1
                return derive_multiples_layout(base_layouts, [k])[k]
        return None

    def _remember(self, key: tuple, layouts: list[BinLayout]) -> None:
        while len(self._store) >= self.max_entries:
            self._store.pop(next(iter(self._store)))
        self._store[key] = layouts

    def stats(self) -> dict:
        """Hit/miss/derive counters (the cache-efficiency bench reads these)."""
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "derived": self.derived,
        }
