"""The indexed packing engine's data structures.

Every packing heuristic in this package reduces to three bin queries:

``first_fit_slot(size)``
    leftmost bin whose free space is at least ``size`` — classic first-fit.
``best_fit_slot(size)``
    fullest bin that still takes ``size`` (smallest sufficient free space,
    ties to the leftmost) — the subset-sum greedy question.
``lightest()``
    bin with the least used volume — uniform balancing and overflow spill.

:class:`FreeSpaceIndex` answers all three in O(log B) amortised for B bins:
a power-of-two max-segment-tree over per-bin free space drives
``first_fit_slot``, a lazily maintained sorted free-list with ``bisect``
drives ``best_fit_slot``, and a lazy min-heap over (used, index) drives
``lightest``.  The heap and the sorted list are only materialised on first
use, so heuristics that never balance pay nothing for them.

:class:`BinLayout` is the columnar result format: bins as lists of *item
indices* into whatever parallel ``(keys, sizes)`` arrays the caller packed,
so million-file catalogues can be packed and regrouped without ever
materialising per-file :class:`~repro.packing.bins.Item` dataclasses.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from dataclasses import dataclass, field

__all__ = ["FreeSpaceIndex", "BinLayout"]

_NEG = -1  # sentinel for empty tree slots (all real free values are >= 0)


@dataclass(slots=True)
class BinLayout:
    """A packed bin in columnar form: indices into the caller's size array.

    ``capacity`` follows :class:`~repro.packing.bins.Bin` semantics
    (``None`` = uncapacitated); ``used`` is the exact sum of member sizes,
    maintained by the kernels so no O(n) re-summation is needed when the
    layout is materialised into bins, segments or catalogue slices.
    """

    capacity: int | None
    indices: list[int] = field(default_factory=list)
    used: int = 0


class FreeSpaceIndex:
    """Max-segment-tree + free-list + load-heap over a growing set of bins.

    Bins are registered with :meth:`append` in creation order; the slot
    number returned is the bin's permanent index, and all three queries
    break ties toward the lowest slot — matching the reference heuristics'
    "first bin encountered" semantics exactly.
    """

    __slots__ = ("_n", "_cap", "_tree", "_free", "_used", "_heap", "_sorted")

    def __init__(self) -> None:
        self._n = 0
        self._cap = 1                      # leaf capacity, always a power of two
        self._tree: list[int] = [_NEG, _NEG]
        self._free: list[int] = []
        self._used: list[int] = []
        self._heap: list[tuple[int, int]] | None = None   # lazy (used, slot)
        self._sorted: list[tuple[int, int]] | None = None  # lazy (free, slot)

    # -- registration ------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def append(self, free: int, used: int = 0) -> int:
        """Register a new bin; returns its slot (= creation index)."""
        slot = self._n
        if slot == self._cap:
            self._grow()
        self._free.append(free)
        self._used.append(used)
        self._n = slot + 1
        tree = self._tree
        pos = self._cap + slot
        tree[pos] = free
        pos >>= 1
        while pos:
            left = tree[2 * pos]
            right = tree[2 * pos + 1]
            top = left if left >= right else right
            if tree[pos] == top:
                break
            tree[pos] = top
            pos >>= 1
        if self._heap is not None:
            heapq.heappush(self._heap, (used, slot))
        if self._sorted is not None:
            insort(self._sorted, (free, slot))
        return slot

    def _grow(self) -> None:
        cap = self._cap * 2
        tree = [_NEG] * (2 * cap)
        tree[cap : cap + self._n] = self._free
        for pos in range(cap - 1, 0, -1):
            left = tree[2 * pos]
            right = tree[2 * pos + 1]
            tree[pos] = left if left >= right else right
        self._cap = cap
        self._tree = tree

    # -- queries -----------------------------------------------------------

    def max_free(self) -> int:
        """Largest free space over all bins (−1 when no bins exist)."""
        return self._tree[1]

    def free_of(self, slot: int) -> int:
        """Remaining free space of bin ``slot``."""
        return self._free[slot]

    def used_of(self, slot: int) -> int:
        """Load (placed bytes) of bin ``slot``."""
        return self._used[slot]

    def first_fit_slot(self, size: int) -> int:
        """Leftmost bin with free ≥ ``size`` (−1 if none).  O(log B)."""
        tree = self._tree
        if tree[1] < size:
            return -1
        pos = 1
        cap = self._cap
        while pos < cap:
            pos *= 2
            if tree[pos] < size:
                pos += 1
        return pos - cap

    def best_fit_slot(self, size: int) -> int:
        """Fullest bin with free ≥ ``size`` (−1 if none).

        Backed by a sorted (free, slot) list probed with ``bisect``; among
        bins of equal free space the lowest slot wins.
        """
        if self._sorted is None:
            self._sorted = sorted((f, s) for s, f in enumerate(self._free))
        arr = self._sorted
        k = bisect_left(arr, (size, -1))
        if k == len(arr):
            return -1
        return arr[k][1]

    def lightest(self) -> int:
        """Slot of the least-loaded bin (ties to the lowest slot).

        Heap-backed with lazy invalidation: stale entries (whose recorded
        load no longer matches the bin) are popped on sight, so interleaved
        ``lightest``/``add_load`` loops run in O(log B) amortised.
        """
        if self._n == 0:
            raise IndexError("no bins registered")
        if self._heap is None:
            self._heap = [(u, s) for s, u in enumerate(self._used)]
            heapq.heapify(self._heap)
        heap = self._heap
        used = self._used
        while True:
            top_used, slot = heap[0]
            if top_used == used[slot]:
                return slot
            heapq.heappop(heap)

    # -- updates -----------------------------------------------------------

    def consume(self, slot: int, nbytes: int) -> None:
        """Place ``nbytes`` into ``slot``: free −= n, used += n."""
        old_free = self._free[slot]
        new_free = old_free - nbytes
        self._free[slot] = new_free
        self._used[slot] += nbytes
        tree = self._tree
        pos = self._cap + slot
        tree[pos] = new_free
        pos >>= 1
        while pos:
            left = tree[2 * pos]
            right = tree[2 * pos + 1]
            top = left if left >= right else right
            if tree[pos] == top:
                break
            tree[pos] = top
            pos >>= 1
        if self._heap is not None:
            heapq.heappush(self._heap, (self._used[slot], slot))
        if self._sorted is not None:
            arr = self._sorted
            arr.pop(bisect_left(arr, (old_free, slot)))
            insort(arr, (new_free, slot))

    def add_load(self, slot: int, nbytes: int) -> None:
        """Add ``nbytes`` of load without touching free space.

        For uncapacitated (balance-only) bins, where only ``used`` is
        meaningful.
        """
        self._used[slot] += nbytes
        if self._heap is not None:
            heapq.heappush(self._heap, (self._used[slot], slot))
