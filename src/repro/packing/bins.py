"""Value objects shared by every packing heuristic.

Besides the classic :class:`Item`/:class:`Bin` pair, this module hosts the
columnar interop used by the indexed engine: :func:`as_columns` normalises a
packer's first argument (a sequence of items *or* a ``(keys, sizes)`` column
pair) and :func:`materialise_bins` turns the engine's
:class:`~repro.packing.index.BinLayout` results back into :class:`Bin`
objects, reusing caller-supplied items instead of rebuilding them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Item",
    "Bin",
    "PackingError",
    "total_size",
    "validate_packing",
    "as_columns",
    "materialise_bins",
]


class PackingError(ValueError):
    """Raised for infeasible packings (oversized items, bad capacities)."""


@dataclass(frozen=True)
class Item:
    """A packable unit: one input file (or pre-merged segment).

    ``key`` identifies the item in the source catalogue (e.g. a virtual file
    path); ``size`` is in bytes.  Items are immutable so the same list can be
    fed to several heuristics for comparison.
    """

    key: str
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise PackingError(f"item {self.key!r} has negative size {self.size}")


@dataclass
class Bin:
    """A capacitated container of items.

    ``capacity`` may be ``None`` for uncapacitated (balance-only) bins.
    ``used`` is maintained incrementally so adding items stays O(1) even in
    bins holding tens of thousands of files; mutate ``items`` only through
    :meth:`add` / :meth:`append_unchecked`.
    """

    capacity: int | None
    items: list[Item] = field(default_factory=list)
    _used: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._used = sum(it.size for it in self.items)

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        if self.capacity is None:
            raise PackingError("uncapacitated bin has no free space notion")
        return self.capacity - self._used

    def fits(self, item: Item) -> bool:
        """True when the item fits the remaining capacity."""
        return self.capacity is None or item.size <= self.free

    def add(self, item: Item) -> None:
        """Place an item, enforcing the capacity."""
        if not self.fits(item):
            raise PackingError(
                f"item {item.key!r} ({item.size} B) does not fit: "
                f"used={self._used}, capacity={self.capacity}"
            )
        self.items.append(item)
        self._used += item.size

    def append_unchecked(self, item: Item) -> None:
        """Add without the capacity check (balance-only / overflow paths)."""
        self.items.append(item)
        self._used += item.size

    @classmethod
    def prefilled(cls, capacity: int | None, items: list[Item], used: int) -> "Bin":
        """Build a bin whose content and total are already known.

        Skips ``__post_init__``'s O(len) re-summation — the engine tracks
        ``used`` exactly while packing, and re-adding a million items one at
        a time would dominate the packing itself.
        """
        b = cls.__new__(cls)
        b.capacity = capacity
        b.items = items
        b._used = used
        return b

    def __len__(self) -> int:
        return len(self.items)


def total_size(items: Iterable[Item]) -> int:
    """Sum of item sizes in bytes."""
    return sum(it.size for it in items)


def as_columns(
    items,
) -> tuple[list[Item] | None, Sequence[str] | None, list[int]]:
    """Normalise a packer input into ``(payload, keys, sizes)``.

    Packers accept either a sequence of :class:`Item` (the classic API) or a
    ``(keys, sizes)`` pair of parallel columns (the fast path — no per-file
    dataclasses).  Returns the original item list when one was given (so
    materialisation can reuse the caller's objects), the key column
    otherwise, and the sizes as a plain ``list[int]`` ready for the kernels.
    """
    if isinstance(items, tuple) and len(items) == 2 and not isinstance(items[0], Item):
        keys, sizes = items
        if isinstance(sizes, np.ndarray):
            sizes = sizes.tolist()
        elif not isinstance(sizes, list):
            sizes = [int(s) for s in sizes]
        if keys is not None and len(keys) != len(sizes):
            raise PackingError(
                f"column length mismatch: {len(keys)} keys vs {len(sizes)} sizes"
            )
        if sizes and min(sizes) < 0:
            raise PackingError("item sizes must be non-negative")
        return None, keys, sizes
    payload = list(items)
    return payload, None, [it.size for it in payload]


def materialise_bins(
    layouts,
    *,
    payload: Sequence[Item] | None,
    keys: Sequence[str] | None,
    sizes: Sequence[int],
) -> list[Bin]:
    """Turn engine :class:`~repro.packing.index.BinLayout` results into bins.

    With ``payload`` set the caller's item objects are placed directly; with
    only ``keys``/``sizes`` columns, items are created lazily here — the one
    place the columnar fast path ever builds :class:`Item` dataclasses.
    """
    if payload is not None:
        return [
            Bin.prefilled(l.capacity, [payload[i] for i in l.indices], l.used)
            for l in layouts
        ]
    if keys is None:
        raise PackingError("columnar materialisation needs keys")
    return [
        Bin.prefilled(
            l.capacity, [Item(key=keys[i], size=sizes[i]) for i in l.indices], l.used
        )
        for l in layouts
    ]


def validate_packing(items: Sequence[Item], bins: Sequence[Bin]) -> None:
    """Assert that ``bins`` is a true partition of ``items``.

    Checks: every item appears exactly once, no bin exceeds its capacity,
    and total volume is conserved.  Raises :class:`PackingError` otherwise.
    Used by tests and by property-based checks.
    """
    placed: dict[str, int] = {}
    for b in bins:
        if b.capacity is not None and b.used > b.capacity:
            raise PackingError(f"bin over capacity: used={b.used} > {b.capacity}")
        for it in b.items:
            placed[it.key] = placed.get(it.key, 0) + 1
    want = {}
    for it in items:
        want[it.key] = want.get(it.key, 0) + 1
    if placed != want:
        missing = {k for k in want if placed.get(k, 0) != want[k]}
        extra = {k for k in placed if want.get(k, 0) != placed[k]}
        raise PackingError(
            f"packing is not a partition (mismatched keys: {sorted(missing | extra)[:5]}…)"
        )
    if sum(b.used for b in bins) != total_size(items):
        raise PackingError("packing does not conserve total volume")
