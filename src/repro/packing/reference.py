"""Reference (pre-engine) packing heuristics, kept as the equivalence oracle.

These are the original O(n·B) implementations that shipped before the
indexed engine (:mod:`repro.packing.index`): ``first_fit`` scans a NumPy
free-space array per item, the other three are pure-Python scans.  They are
deliberately *not* exported from :mod:`repro.packing` — production code uses
the indexed rewrites — but the property tests assert that every indexed
heuristic produces byte-identical bin assignments to the functions here, so
the engine can never silently drift from classic first-fit semantics.

Do not "optimise" this module: its value is being the slow, obviously
correct baseline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.packing.bins import Bin, Item, PackingError

__all__ = [
    "first_fit",
    "first_fit_decreasing",
    "pack_into_n_bins",
    "subset_sum_first_fit",
    "uniform_bins",
]


def first_fit(items: Sequence[Item], capacity: int) -> list[Bin]:
    """Classic first-fit with a per-item vectorised free-space scan."""
    if capacity <= 0:
        raise PackingError(f"capacity must be positive, got {capacity}")
    bins: list[Bin] = []          # all bins, in creation order
    regular: list[Bin] = []       # non-oversized bins, in creation order
    free = np.empty(0, dtype=np.int64)
    for item in items:
        if item.size > capacity:
            solo = Bin(capacity=item.size)
            solo.add(item)
            bins.append(solo)
            continue
        n = len(regular)
        idx = -1
        if n:
            fits_mask = free[:n] >= item.size
            pos = int(np.argmax(fits_mask))
            if fits_mask[pos]:
                idx = pos
        if idx >= 0:
            regular[idx].append_unchecked(item)
            free[idx] -= item.size
        else:
            b = Bin(capacity=capacity)
            b.add(item)
            bins.append(b)
            regular.append(b)
            if len(regular) > free.shape[0]:
                grown = np.empty(max(16, 2 * free.shape[0]), dtype=np.int64)
                grown[: free.shape[0]] = free
                free = grown
            free[len(regular) - 1] = capacity - item.size
    return bins


def first_fit_decreasing(items: Sequence[Item], capacity: int) -> list[Bin]:
    """First-fit on items sorted by size, descending (ties broken by key)."""
    ordered = sorted(items, key=lambda it: (-it.size, it.key))
    return first_fit(ordered, capacity)


def pack_into_n_bins(
    items: Sequence[Item],
    n_bins: int,
    capacity: int,
    *,
    strict: bool = False,
) -> list[Bin]:
    """First-fit into exactly ``n_bins``; overflow spills into min(used)."""
    if n_bins <= 0:
        raise PackingError(f"need at least one bin, got {n_bins}")
    if capacity <= 0:
        raise PackingError(f"capacity must be positive, got {capacity}")
    bins = [Bin(capacity=capacity) for _ in range(n_bins)]
    overflow: list[Item] = []
    for item in items:
        for b in bins:
            if b.fits(item):
                b.add(item)
                break
        else:
            overflow.append(item)
    if overflow:
        if strict:
            raise PackingError(
                f"{len(overflow)} items do not fit into {n_bins} bins of {capacity} B"
            )
        for item in overflow:
            target = min(bins, key=lambda b: b.used)
            target.capacity = None if target.capacity is None else max(
                target.capacity, target.used + item.size
            )
            target.append_unchecked(item)
    return bins


def subset_sum_first_fit(
    items: Sequence[Item],
    unit_size: int,
    *,
    preserve_order: bool = True,
) -> list[Bin]:
    """The paper's merge heuristic: per-bin greedy best-fill passes."""
    if unit_size <= 0:
        raise PackingError(f"unit size must be positive, got {unit_size}")
    if preserve_order:
        return first_fit(items, unit_size)

    remaining = sorted(items, key=lambda it: (-it.size, it.key))
    bins: list[Bin] = []
    # Oversized files first: each gets its own bin.
    while remaining and remaining[0].size > unit_size:
        solo = Bin(capacity=remaining[0].size)
        solo.add(remaining.pop(0))
        bins.append(solo)
    while remaining:
        b = Bin(capacity=unit_size)
        # Greedy descending scan: take every item that still fits.  Because
        # the list is sorted by size, one pass approximates subset-sum well.
        kept: list[Item] = []
        for it in remaining:
            if b.fits(it):
                b.add(it)
            else:
                kept.append(it)
        remaining = kept
        bins.append(b)
    return bins


def uniform_bins(
    items: Sequence[Item],
    n_bins: int,
    *,
    preserve_order: bool = True,
) -> list[Bin]:
    """Balanced binning: threshold splitter / greedy min(used) scans."""
    if n_bins <= 0:
        raise PackingError(f"need at least one bin, got {n_bins}")
    items = list(items)
    bins = [Bin(capacity=None) for _ in range(n_bins)]
    if not items:
        return bins
    total = sum(it.size for it in items)

    if preserve_order:
        share = total / n_bins
        idx = 0
        running = 0
        for it in items:
            # Advance to the next bin when this one has met its share, but
            # never beyond the last bin.
            while idx < n_bins - 1 and running + it.size / 2 >= share * (idx + 1):
                idx += 1
            bins[idx].append_unchecked(it)
            running += it.size
        return bins

    for it in sorted(items, key=lambda i: (-i.size, i.key)):
        target = min(bins, key=lambda b: b.used)
        target.append_unchecked(it)
    return bins
