"""``repro.resilience`` — the policy layer that absorbs injected faults.

:mod:`repro.chaos` decides what goes wrong; this package decides what the
campaign does about it, using only *observable* signals (a rejected
launch, a boot that has not completed by a timeout, a measured-slow
probe) — never the injector's ground truth:

* :class:`RetryPolicy` — exponential backoff with decorrelated jitter on
  **simulated** time, capped by attempts and a wall-time budget; the one
  backoff implementation every runner shares;
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-availability-zone
  closed→open→half-open breakers that steer launches away from zones
  that keep refusing them;
* :class:`ResilientLauncher` — retries, breaker steering, and hedged
  launches (a boot exceeding the p99 of the boot-delay distribution is
  abandoned and re-tried) behind one ``launch()`` call;
* :func:`acquire_replacement` — the shared replacement-acquisition and
  penalty-timing helper the dynamic and fault-tolerant runners both use;
* :class:`DegradationPlanner` — when capacity cannot be acquired at all,
  re-packs the orphaned work onto the surviving instances and recomputes
  the residual-based adjusted deadline instead of silently missing;
* :func:`hedged_retrieval` — tail-tolerant S3 fetches (best of two
  request draws per object);
* :class:`SpotLadder` / :class:`SpotFallbackPolicy` — the spot-market
  fallback ladder (re-bid AZ → re-type → queue → on-demand) with
  deadline-aware preemptive escalation (:func:`buffer_seconds`).

``experiments/exp_chaos.py`` sweeps scenarios × policies and shows the
paper's ≤10 % miss bound holding under faults only when this layer is on.
"""

from repro.resilience.breaker import BreakerBoard, BreakerState, CircuitBreaker
from repro.resilience.degrade import DegradationPlanner, ReplanResult
from repro.resilience.launch import (
    Acquisition,
    CapacityError,
    ResilientLauncher,
    acquire_replacement,
    launch_fleet,
)
from repro.resilience.retry import RetryPolicy, hedged_retrieval, hedged_transfer_time
from repro.resilience.spot import (
    RUNGS,
    FallbackDecision,
    SpotFallbackPolicy,
    SpotLadder,
    buffer_seconds,
)

__all__ = [
    "Acquisition",
    "BreakerBoard",
    "BreakerState",
    "CapacityError",
    "CircuitBreaker",
    "DegradationPlanner",
    "FallbackDecision",
    "ReplanResult",
    "ResilientLauncher",
    "RetryPolicy",
    "RUNGS",
    "SpotFallbackPolicy",
    "SpotLadder",
    "acquire_replacement",
    "buffer_seconds",
    "hedged_retrieval",
    "hedged_transfer_time",
    "launch_fleet",
]
