"""Graceful degradation: re-pack orphaned work, restate the deadline.

When acquisition fails outright (every zone refusing, retry budget
exhausted) the static plan's bins outnumber the instances that actually
exist.  Silently dropping the orphaned bins would under-report cost and
over-report deadline compliance; raising would throw away the capacity
already bought.  The :class:`DegradationPlanner` does the honest third
thing: spread the orphaned units over the survivors (largest unit onto
the least-loaded bin — the same greedy LPT shape the packers use) and
recompute what deadline the degraded fleet can still promise, using the
predictor's residual spread exactly as §5.2 derives the planning deadline
from the nominal one: ``advisory = predict(v_max) * (1 + a)`` with
``a = 1.29 sigma + mu`` over relative residuals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import Unit

__all__ = ["ReplanResult", "DegradationPlanner"]


@dataclass(frozen=True)
class ReplanResult:
    """Outcome of absorbing orphaned work onto the surviving bins."""

    assignments: tuple[tuple, ...]      # units per surviving bin, post-merge
    predicted_times: tuple[float, ...]  # per-bin predicted seconds
    moved_units: int                    # orphans re-homed
    moved_volume: int                   # bytes re-homed
    advisory_deadline: float | None     # residual-adjusted promise, if known

    @property
    def max_predicted(self) -> float:
        """Slowest surviving bin's predicted seconds after the merge."""
        return max(self.predicted_times, default=0.0)


class DegradationPlanner:
    """Re-packs residual work onto survivors after capacity loss.

    ``predictor`` is any ``predict(volume) -> seconds`` model (the fitted
    affine models the planners use); without one, per-bin times scale
    proportionally with the added volume, which keeps the greedy choice
    meaningful but leaves ``advisory_deadline`` unset.
    """

    def __init__(self, predictor=None, *, miss_probability: float = 0.10) -> None:
        self.predictor = predictor
        self.miss_probability = miss_probability
        self.replans: list[ReplanResult] = []

    def _predict(self, volume: int) -> float | None:
        if self.predictor is None:
            return None
        try:
            return float(self.predictor.predict(volume))
        except Exception:
            return None

    def replan(
        self,
        survivors: Sequence[Sequence["Unit"]],
        orphans: Sequence["Unit"],
        *,
        predicted_times: Sequence[float] | None = None,
    ) -> ReplanResult:
        """Spread ``orphans`` over ``survivors``; recompute the promise.

        ``predicted_times`` seeds the per-bin load estimates (falls back
        to the predictor, then to raw volume).  Returns the merged
        assignments in survivor order.
        """
        if not survivors:
            raise ValueError("no surviving bins to absorb orphaned work")
        bins = [list(units) for units in survivors]
        volumes = [sum(u.size for u in units) for units in bins]
        if predicted_times is not None and len(predicted_times) == len(bins):
            times = [float(t) for t in predicted_times]
        else:
            times = [self._predict(v) or float(v) for v in volumes]
        # Per-bin seconds-per-byte lets us grow each estimate as units
        # land, without re-querying the predictor inside the loop.
        rates = [t / v if v else 0.0 for t, v in zip(times, volumes)]

        moved_units = 0
        moved_volume = 0
        for unit in sorted(orphans, key=lambda u: u.size, reverse=True):
            i = min(range(len(bins)), key=lambda j: times[j])
            bins[i].append(unit)
            volumes[i] += unit.size
            times[i] += unit.size * (rates[i] or _mean(rates))
            moved_units += 1
            moved_volume += unit.size

        advisory = None
        v_max = max(volumes, default=0)
        base = self._predict(v_max)
        if base is not None:
            a = self._adjustment()
            advisory = base * (1.0 + a) if a is not None else base

        result = ReplanResult(
            assignments=tuple(tuple(b) for b in bins),
            predicted_times=tuple(times),
            moved_units=moved_units,
            moved_volume=moved_volume,
            advisory_deadline=advisory,
        )
        self.replans.append(result)
        return result

    def _adjustment(self) -> float | None:
        """§5.2 residual adjustment ``a`` for the configured predictor."""
        from repro.core.deadline import adjustment_factor

        try:
            return adjustment_factor(self.predictor,
                                     miss_probability=self.miss_probability)
        except Exception:
            return None


def _mean(xs: Sequence[float]) -> float:
    vals = [x for x in xs if x > 0]
    return sum(vals) / len(vals) if vals else 1.0
