"""Per-availability-zone circuit breakers.

A zone that keeps rejecting launches (capacity crunch, outage) should
stop being asked: after ``failure_threshold`` consecutive failures the
breaker **opens** and the launcher steers elsewhere; after ``cooldown``
simulated seconds it goes **half-open** and admits one trial launch — a
success closes it, a failure re-opens it.  All state transitions are
driven by explicit timestamps (the caller's simulated clock), never the
wall clock, so breaker behaviour replays deterministically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Obs

__all__ = ["BreakerState", "CircuitBreaker", "BreakerBoard"]


class BreakerState(enum.Enum):
    """Where a zone's breaker sits in the closed→open→half-open cycle."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Gauge encoding of the state, so dashboards can plot transitions.
_STATE_LEVEL = {BreakerState.CLOSED: 0, BreakerState.HALF_OPEN: 1,
                BreakerState.OPEN: 2}


@dataclass
class CircuitBreaker:
    """One zone's closed→open→half-open state machine."""

    zone: str
    failure_threshold: int = 3
    cooldown: float = 300.0
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    opened_at: float | None = None
    transitions: list[tuple[float, BreakerState]] = field(default_factory=list)
    _obs: "Obs | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown <= 0:
            raise ValueError("cooldown must be positive")

    # -- queries -----------------------------------------------------------

    def allows(self, now: float) -> bool:
        """May a launch be attempted in this zone at ``now``?"""
        if self.state is BreakerState.OPEN:
            if self.opened_at is not None and now - self.opened_at >= self.cooldown:
                self._transition(BreakerState.HALF_OPEN, now)
                return True
            return False
        return True

    # -- feedback ----------------------------------------------------------

    def record_success(self, now: float) -> None:
        """A launch in this zone succeeded; reset (and close) the breaker."""
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        """A launch failed; open the breaker at the threshold (or re-open)."""
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.OPEN, now)
        elif (self.state is BreakerState.CLOSED
              and self.consecutive_failures >= self.failure_threshold):
            self._transition(BreakerState.OPEN, now)

    def _transition(self, to: BreakerState, now: float) -> None:
        self.state = to
        self.opened_at = now if to is BreakerState.OPEN else self.opened_at
        self.transitions.append((now, to))
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.metrics.counter("resilience.breaker.transitions",
                                zone=self.zone, to=to.value).inc()
            obs.metrics.gauge("resilience.breaker.state",
                              zone=self.zone).set(_STATE_LEVEL[to])
            obs.tracer.instant("resilience.breaker." + to.value,
                               cat="resilience", track=self.zone)


class BreakerBoard:
    """The launcher's view: one breaker per zone, created on demand."""

    def __init__(self, *, failure_threshold: int = 3, cooldown: float = 300.0,
                 obs: "Obs | None" = None) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.obs = obs
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, zone: str) -> CircuitBreaker:
        """The (lazily created) breaker for ``zone``."""
        b = self._breakers.get(zone)
        if b is None:
            b = CircuitBreaker(zone, failure_threshold=self.failure_threshold,
                               cooldown=self.cooldown, _obs=self.obs)
            self._breakers[zone] = b
        return b

    def allows(self, zone: str, now: float) -> bool:
        """May a launch be attempted in ``zone`` at ``now``?"""
        return self.breaker(zone).allows(now)

    def states(self) -> dict[str, str]:
        """Zone → state snapshot (for reports and the chaos sweep)."""
        return {z: b.state.value for z, b in sorted(self._breakers.items())}
