"""Retry/backoff policy on simulated time, plus hedged S3 requests.

One backoff implementation for the whole codebase: exponential growth
with *decorrelated jitter* (each delay drawn uniformly between the base
delay and three times the previous delay, capped), which spreads
synchronized retry storms better than plain exponential-with-full-jitter.
All delays are drawn from a caller-supplied
:class:`~repro.sim.random.RngStream` and elapse on **simulated** seconds,
so retries are deterministic under the campaign seed and never touch the
wall clock.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.sim.random import RngStream

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.s3 import S3Store

__all__ = ["RetryPolicy", "hedged_transfer_time", "hedged_retrieval"]


@dataclass(frozen=True)
class RetryPolicy:
    """Budget-capped exponential backoff with decorrelated jitter.

    ``max_attempts`` bounds how many times an operation may be *tried*
    (first try included); ``budget_seconds`` bounds the total simulated
    time spent sleeping between tries — whichever runs out first ends the
    retry loop.  ``jitter`` is ``"decorrelated"`` (default), ``"full"``
    (uniform in ``[0, exp]``), or ``"none"``.
    """

    base_delay: float = 2.0
    max_delay: float = 120.0
    multiplier: float = 2.0
    jitter: str = "decorrelated"
    max_attempts: int = 6
    budget_seconds: float = 900.0

    def __post_init__(self) -> None:
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 < base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter not in ("decorrelated", "full", "none"):
            raise ValueError("jitter must be decorrelated, full, or none")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.budget_seconds < 0:
            raise ValueError("budget_seconds must be non-negative")

    def next_delay(self, attempt: int, prev_delay: float,
                   rng: RngStream) -> float:
        """Backoff seconds after failed try ``attempt`` (1-based).

        ``prev_delay`` is the delay that preceded this try (0.0 before the
        first).  Deterministic given the stream.
        """
        exp = min(self.max_delay,
                  self.base_delay * self.multiplier ** max(0, attempt - 1))
        if self.jitter == "none":
            return exp
        draw = rng.fork(f"delay.{attempt}")
        if self.jitter == "full":
            return draw.uniform(0.0, exp)
        # Decorrelated: uniform between base and 3x the previous delay.
        hi = max(self.base_delay * self.multiplier,
                 3.0 * (prev_delay or self.base_delay))
        return min(self.max_delay, draw.uniform(self.base_delay, hi))

    def delays(self, rng: RngStream) -> Iterator[float]:
        """The backoff schedule: at most ``max_attempts - 1`` sleeps.

        Stops early once the cumulative sleep would exceed the budget;
        the final sleep is clipped to exactly exhaust it.
        """
        spent = 0.0
        prev = 0.0
        for attempt in range(1, self.max_attempts):
            d = self.next_delay(attempt, prev, rng)
            if spent + d > self.budget_seconds:
                d = self.budget_seconds - spent
                if d <= 0:
                    return
            spent += d
            prev = d
            yield d


def hedged_transfer_time(store: "S3Store", size: int, rng: RngStream,
                         *, hedges: int = 2) -> float:
    """Deferred-hedge request time for one object transfer.

    A brownout fattens the latency tail far more than it moves the
    median, so a backup request fired once the first exceeds the
    *nominal* p95 latency — and taking whichever completes first —
    recovers most of the loss.  Because the trigger sits at the healthy
    p95, calm-weather transfers almost never fire the hedge and pay
    nothing; only tail requests race.  Each additional hedge fires one
    trigger interval later.
    """
    if hedges < 1:
        raise ValueError("need at least one request")
    first = store.transfer_time(size, rng.fork("hedge.0"))
    if hedges == 1:
        return first
    expected = store.base_latency + size / store.bandwidth
    trigger = expected * math.exp(1.645 * store.latency_sigma)  # nominal p95
    best = first
    for i in range(1, hedges):
        if best <= trigger * i:
            break   # finished before this hedge would have fired
        backup = store.transfer_time(size, rng.fork(f"hedge.{i}"))
        best = min(best, trigger * i + backup)
    return best


def hedged_retrieval(store: "S3Store", keys: Sequence[str],
                     rng: RngStream, *, hedges: int = 2) -> float:
    """Sequential result fetch with per-object hedged requests."""
    return sum(
        hedged_transfer_time(store, store.get(k).size, rng.fork(f"key.{i}"),
                             hedges=hedges)
        for i, k in enumerate(keys)
    )
