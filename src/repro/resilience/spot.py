"""The spot fallback ladder and deadline-aware on-demand escalation.

An interruption (the market reclaimed a spot instance) is answered by
walking a ladder, cheapest rung first:

1. **rebid-az** — re-bid the same instance type in a *different* zone
   whose current price the bid covers (zone markets are independent, so a
   local price spike rarely hits all four);
2. **retype** — fall back to a different instance type whose (rate-scaled)
   market the bid still covers; its price *and* its performance scale with
   the type's compute ratio, so the cost/deadline arithmetic stays honest;
3. **queue** — no market is affordable right now: queue the orphaned work
   and wait for the earliest ``(zone, hour)`` the bid covers again
   (work that cannot even be *queued* safely falls through to rung 4);
4. **on-demand** — escalate to a full-rate instance that the market can
   never take back.

Escalation is also *preemptive*: whenever the perfmodel's predicted
remaining work plus a restart-overhead-aware safety buffer
(:func:`buffer_seconds`, the sky_spot "can't be late" rule) exceeds the
time to deadline, the ladder short-circuits straight to on-demand —
waiting for a cheaper rung would already risk the deadline.

The ladder only *decides*; acquiring, billing and progress accounting
live in :class:`repro.runner.spot.SpotAcquisition`.  Work that cannot be
placed at acquisition time at all is queued for the
:class:`~repro.resilience.degrade.DegradationPlanner` exactly like any
other failed launch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cloud.spot import TWO_MINUTE_WARNING, SpotMarketBoard
from repro.cloud.types import LARGE, SMALL, InstanceType
from repro.units import HOUR

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos import FaultInjector

__all__ = ["FallbackDecision", "SpotFallbackPolicy", "SpotLadder",
           "buffer_seconds", "RUNGS"]

#: Ladder rungs in preference order (Snippet-2 vocabulary).
RUNGS = ("rebid-az", "retype", "queue", "on-demand")


def buffer_seconds(restart_overhead: float, *, safety_factor: float = 1.25,
                   warning: float = TWO_MINUTE_WARNING) -> float:
    """The "can't be late" safety buffer before the deadline.

    A spot plan must keep enough slack to absorb one more interruption:
    the restart overhead (boot + checkpoint restore), inflated by a
    safety factor for prediction error, plus the warning window whose
    work an interruption throws away.  When remaining work plus this
    buffer no longer fits before the deadline, the only safe rung is
    on-demand.
    """
    if restart_overhead < 0 or safety_factor < 1.0 or warning < 0:
        raise ValueError("buffer inputs must be non-negative (factor >= 1)")
    return safety_factor * restart_overhead + warning


@dataclass(frozen=True)
class SpotFallbackPolicy:
    """Frozen knobs for one campaign's spot survival strategy.

    ``bid`` is in reference (small-instance) terms — the board scales it
    per type.  ``ladder=False`` is the §1.1 strawman the paper rejects: a
    naive persistent request that waits for its own zone to come back and
    restarts from scratch (no checkpoint), which is exactly the baseline
    the experiments show missing deadlines.  ``escalate=False`` disables
    the on-demand rung (rung 4 then reports give-up).
    """

    bid: float = 0.06
    itype: InstanceType = SMALL
    fallback_itype: InstanceType = LARGE
    checkpoint: bool = True
    restart_overhead: float = 180.0
    escalate: bool = True
    ladder: bool = True
    safety_factor: float = 1.25
    max_interruptions: int = 16
    horizon_hours: int = 48

    def __post_init__(self) -> None:
        if self.bid <= 0:
            raise ValueError("bid must be positive")
        if self.restart_overhead < 0:
            raise ValueError("restart overhead must be non-negative")
        if self.max_interruptions < 1:
            raise ValueError("max_interruptions must be at least 1")

    def buffer_seconds(self) -> float:
        """This policy's escalation buffer (see :func:`buffer_seconds`)."""
        return buffer_seconds(self.restart_overhead,
                              safety_factor=self.safety_factor)

    def at_risk(self, remaining_predicted: float,
                deadline_remaining: float) -> bool:
        """Would anything but on-demand now endanger the deadline?"""
        return remaining_predicted + self.buffer_seconds() > deadline_remaining


@dataclass(frozen=True)
class FallbackDecision:
    """Where one interrupted (or not-yet-started) bin's work goes next.

    ``rung`` is one of :data:`RUNGS` plus the two terminal outcomes
    ``"wait-same-zone"`` (the ladder-off baseline) and ``"give-up"``
    (nothing affordable and escalation disabled).  ``resume_at`` is the
    absolute second capacity is usable again (before the restart
    overhead); ``queued_seconds`` is the market wait absorbed by the
    queue rung.
    """

    rung: str
    zone: str | None = None
    itype: InstanceType | None = None
    resume_at: float = 0.0
    queued_seconds: float = 0.0


class SpotLadder:
    """Decide, never acquire: the fallback ladder over one market board.

    Deterministic and draw-free — every answer is a pure function of the
    board's (cached) prices, the installed chaos state and the decision
    inputs, so replaying a run re-makes identical decisions.
    """

    def __init__(self, board: SpotMarketBoard, *,
                 policy: SpotFallbackPolicy | None = None,
                 chaos: "FaultInjector | None" = None) -> None:
        self.board = board
        self.policy = policy or SpotFallbackPolicy()
        self.chaos = chaos

    # -- zone health -------------------------------------------------------

    def _usable(self, zone: str, t: float) -> bool:
        """Is ``zone`` accepting capacity at ``t`` (no AZ outage)?"""
        return self.chaos is None or not self.chaos.zone_down(zone, t)

    # -- entry points ------------------------------------------------------

    def initial_zone(self, t: float) -> str | None:
        """Cheapest zone the bid covers at ``t`` for the primary type."""
        p = self.policy
        dead = {z for z in self.board.zones if not self._usable(z, t)}
        return self.board.cheapest_zone(int(t // HOUR), p.bid,
                                        itype=p.itype, exclude=dead)

    def should_escalate(self, remaining_predicted: float,
                        deadline_remaining: float) -> bool:
        """The preemptive check run at every segment start."""
        return self.policy.escalate and self.policy.at_risk(
            remaining_predicted, deadline_remaining)

    def decide(self, *, now: float, zone: str, remaining_predicted: float,
               deadline_remaining: float) -> FallbackDecision:
        """Walk the ladder for work interrupted at ``now`` in ``zone``.

        The reclaimed zone holds no spot capacity for this workload until
        the next market hour, so rung 1 looks elsewhere; rung 3's wait is
        itself checked against the deadline buffer before being offered.
        """
        p = self.policy
        if p.escalate and p.at_risk(remaining_predicted, deadline_remaining):
            return FallbackDecision("on-demand", itype=p.itype, resume_at=now)
        hour_now = int(now // HOUR)
        if not p.ladder:
            # Naive persistent request: same zone, next hour it is both
            # repopulated (post-reclaim hold) and affordable.
            hour = self.board.next_affordable_hour(
                zone, from_hour=hour_now + 1, bid=p.bid, itype=p.itype,
                horizon_hours=p.horizon_hours)
            if hour is None:
                return FallbackDecision("give-up", zone=zone)
            return FallbackDecision("wait-same-zone", zone=zone,
                                    itype=p.itype, resume_at=hour * HOUR,
                                    queued_seconds=hour * HOUR - now)
        dead = {z for z in self.board.zones if not self._usable(z, now)}
        # Rung 1: a different AZ, right now.
        z = self.board.cheapest_zone(hour_now, p.bid, itype=p.itype,
                                     exclude=dead | {zone})
        if z is not None:
            return FallbackDecision("rebid-az", zone=z, itype=p.itype,
                                    resume_at=now)
        # Rung 2: a different instance type (rate-scaled market), any zone.
        z = self.board.cheapest_zone(hour_now, p.bid, itype=p.fallback_itype,
                                     exclude=dead)
        if z is not None:
            return FallbackDecision("retype", zone=z, itype=p.fallback_itype,
                                    resume_at=now)
        # Rung 3: queue for the earliest (zone, hour) the bid covers again.
        best: tuple[int, str] | None = None
        for cand in self.board.zones:
            if cand in dead:
                continue
            hour = self.board.next_affordable_hour(
                cand, from_hour=hour_now + 1, bid=p.bid, itype=p.itype,
                horizon_hours=p.horizon_hours)
            if hour is not None and (best is None or hour < best[0]):
                best = (hour, cand)
        if best is not None:
            resume = best[0] * HOUR
            wait = resume - now
            if not (p.escalate and p.at_risk(remaining_predicted,
                                             deadline_remaining - wait)):
                return FallbackDecision("queue", zone=best[1], itype=p.itype,
                                        resume_at=resume, queued_seconds=wait)
        # Rung 4: nothing affordable in time.
        if p.escalate:
            return FallbackDecision("on-demand", itype=p.itype, resume_at=now)
        return FallbackDecision("give-up", zone=zone)
