"""Resilient instance acquisition: retries, zone steering, hedged boots.

:class:`ResilientLauncher` wraps ``cloud.launch_instance`` with the three
acquisition-failure defences real EC2 campaigns need:

* **retry with backoff** — an ``InsufficientInstanceCapacity``-style
  rejection is retried under the shared :class:`RetryPolicy`, with the
  backoff elapsing on *simulated* time (accounted as launch latency, not
  billed — the instance is not RUNNING yet);
* **breaker steering** — rejections feed the zone's
  :class:`~repro.resilience.breaker.CircuitBreaker`; an open breaker
  removes the zone from the candidate list, so a dead AZ stops eating
  retry budget after ``failure_threshold`` failures;
* **hedged boots** — a launch whose boot has not completed within the
  p99 of the boot-delay distribution is declared hung, abandoned (a
  PENDING instance is never billed), and replaced by a fresh attempt;
  the p99 wait is paid once per hang.

:func:`launch_fleet` is the shared front door all three runners use for
their initial fleet, and :func:`acquire_replacement` is the one
implementation of replacement acquisition + penalty timing that the
dynamic and fault-tolerant runners previously each hand-rolled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.resilience.breaker import BreakerBoard
from repro.resilience.retry import RetryPolicy
from repro.units import resume_time

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.cluster import Cloud
    from repro.cloud.instance import Instance
    from repro.fleet.lease import Lease, LeaseManager
    from repro.resilience.degrade import DegradationPlanner

__all__ = ["CapacityError", "Acquisition", "ResilientLauncher",
           "launch_fleet", "acquire_replacement"]


class CapacityError(RuntimeError):
    """No instance could be acquired within the retry policy's budget."""


@dataclass(frozen=True)
class Acquisition:
    """Outcome of one resilient launch."""

    instance: "Instance"
    zone: str
    attempts: int              # launch attempts made (success included)
    hedges: int                # boots declared hung and abandoned
    wait_seconds: float        # backoff + hung-boot waits before final boot
    faults: tuple[str, ...]    # reasons of the absorbed failures

    @property
    def ready_latency(self) -> float:
        """Submission-to-RUNNING seconds: absorbed waits + the final boot."""
        return self.wait_seconds + self.instance.boot_delay


class ResilientLauncher:
    """Retry/steer/hedge policy wrapper around one cloud's launch path.

    The launcher is deterministic under the cloud seed: its RNG forks off
    the cloud's root stream by name (a pure derivation — no draws are
    consumed from existing consumers) and each backoff delay forks again
    by a global attempt counter.
    """

    def __init__(self, cloud: "Cloud", *,
                 retry: RetryPolicy | None = None,
                 breakers: BreakerBoard | None = None,
                 boot_timeout_quantile: float = 0.99,
                 degradation: "DegradationPlanner | None" = None,
                 max_hedges: int = 4) -> None:
        if not 0 < boot_timeout_quantile <= 1:
            raise ValueError("boot_timeout_quantile must be in (0, 1]")
        if max_hedges < 0:
            raise ValueError("max_hedges must be non-negative")
        self.cloud = cloud
        self.retry = retry or RetryPolicy()
        self.breakers = breakers or BreakerBoard(obs=cloud.obs)
        self.degradation = degradation
        self.max_hedges = max_hedges
        lo, hi = cloud.boot_delay_range
        #: A boot still PENDING past this is treated as hung (§ hedging).
        self.boot_timeout = lo + boot_timeout_quantile * (hi - lo)
        self.rng = cloud.rng.fork("resilience.launcher")
        self.obs = cloud.obs
        #: Zones whose instances measured slow; deprioritised, not banned.
        self.slow_zones: set[str] = set()
        self.attempts = 0
        self.absorbed_faults = 0
        self.hedged_boots = 0
        self.wait_seconds_total = 0.0

    # -- zone choice -------------------------------------------------------

    def note_slow_zone(self, zone_name: str) -> None:
        """Observable feedback: a straggler replacement fled this zone."""
        self.slow_zones.add(zone_name)

    def _candidate_zones(self, now: float) -> list:
        """Region zones, breaker-allowed first, slow zones last."""
        zones = list(self.cloud.region.zones)
        allowed = [z for z in zones if self.breakers.allows(z.name, now)]
        pool = allowed or zones      # all open: trial in region order
        return sorted(pool, key=lambda z: (z.name in self.slow_zones,
                                           zones.index(z)))

    # -- acquisition -------------------------------------------------------

    def launch(self, *, at: float | None = None) -> Acquisition:
        """Acquire one RUNNING-bound instance or raise :class:`CapacityError`.

        Returns the instance still PENDING (as ``wait=False`` launches
        do); ``wait_seconds`` carries the backoff and hung-boot time the
        acquisition absorbed, which callers account as launch latency.
        """
        from repro.chaos import ChaosError

        cloud = self.cloud
        now = cloud.now if at is None else at
        obs = self.obs
        waited = 0.0
        hedges = 0
        faults: list[str] = []
        delays = self.retry.delays(self.rng.fork(f"acquire.{self.attempts}"))
        attempt = 0
        while attempt < self.retry.max_attempts:
            attempt += 1
            self.attempts += 1
            zone = self._candidate_zones(now + waited)[0]
            try:
                inst = cloud.launch_instance(zone=zone, wait=False)
            except ChaosError as e:
                reason = getattr(e, "reason", "rejected")
                faults.append(f"{zone.name}:{reason}")
                self.absorbed_faults += 1
                self.breakers.breaker(zone.name).record_failure(now + waited)
                if obs.enabled:
                    obs.metrics.counter("resilience.launch.rejected",
                                        zone=zone.name, reason=reason).inc()
                delay = next(delays, None)
                if delay is None:
                    break
                if obs.enabled:
                    obs.tracer.add_span("resilience.retry.backoff",
                                        now + waited, now + waited + delay,
                                        cat="resilience", track=zone.name,
                                        attempt=attempt, reason=reason)
                    obs.metrics.counter("resilience.retry.wait_seconds"
                                        ).inc(delay)
                waited += delay
                continue
            if inst.boot_delay > self.boot_timeout and hedges < self.max_hedges:
                # Hung boot: abandon the PENDING instance (never billed),
                # pay the timeout we waited before giving up on it.
                hedges += 1
                self.hedged_boots += 1
                faults.append(f"{zone.name}:boot-hang")
                self.breakers.breaker(zone.name).record_failure(now + waited)
                if obs.enabled:
                    obs.tracer.add_span("resilience.hedge.wait", now + waited,
                                        now + waited + self.boot_timeout,
                                        cat="resilience",
                                        track=inst.instance_id,
                                        zone=zone.name)
                    obs.metrics.counter("resilience.hedges",
                                        zone=zone.name).inc()
                waited += self.boot_timeout
                continue
            self.breakers.breaker(zone.name).record_success(now + waited)
            self.wait_seconds_total += waited
            if obs.enabled and (waited or faults):
                obs.tracer.instant("resilience.launch.recovered",
                                   cat="resilience", track=inst.instance_id,
                                   zone=zone.name, waited=round(waited, 1),
                                   absorbed=len(faults))
            return Acquisition(instance=inst, zone=zone.name,
                               attempts=attempt, hedges=hedges,
                               wait_seconds=waited, faults=tuple(faults))
        self.wait_seconds_total += waited
        if obs.enabled:
            obs.metrics.counter("resilience.launch.exhausted").inc()
        raise CapacityError(
            f"no capacity after {attempt} attempts / {waited:.0f}s of "
            f"backoff (faults: {', '.join(faults) or 'none'})")

    def stats(self) -> dict:
        """Acquisition-side facts for reports and the chaos sweep."""
        return {
            "attempts": self.attempts,
            "absorbed_faults": self.absorbed_faults,
            "hedged_boots": self.hedged_boots,
            "wait_seconds": round(self.wait_seconds_total, 1),
            "breakers": self.breakers.states(),
            "slow_zones": sorted(self.slow_zones),
        }


def launch_fleet(
    cloud: "Cloud",
    bins: list[int],
    *,
    launcher: ResilientLauncher | None = None,
) -> tuple[list[tuple[int, "Instance", float]], list[tuple[int, str]]]:
    """Launch one instance per bin index in ``bins``.

    Returns ``(granted, failed)`` where ``granted`` holds
    ``(bin_index, instance, wait_seconds)`` triples (instances still
    PENDING) and ``failed`` holds ``(bin_index, reason)`` for bins whose
    acquisition failed outright.  Without a launcher and without chaos
    installed this is byte-for-byte the runners' original launch loop;
    with chaos but no launcher, injected faults surface as failed bins
    (the resilience-off baseline); with a launcher, faults are absorbed
    per the retry/steer/hedge policy.
    """
    from repro.chaos import ChaosError

    granted: list[tuple[int, "Instance", float]] = []
    failed: list[tuple[int, str]] = []
    for idx in bins:
        try:
            if launcher is not None:
                acq = launcher.launch()
                granted.append((idx, acq.instance, acq.wait_seconds))
            else:
                granted.append((idx, cloud.launch_instance(wait=False), 0.0))
        except ChaosError as e:
            failed.append((idx, getattr(e, "reason", None) or str(e)))
        except CapacityError as e:
            failed.append((idx, f"capacity-exhausted: {e}"))
    if failed and cloud.obs.enabled:
        cloud.obs.metrics.counter("runner.launches.failed").inc(len(failed))
    return granted, failed


def acquire_replacement(
    cloud: "Cloud",
    *,
    at: float,
    est_seconds: float = 0.0,
    lease_manager: "LeaseManager | None" = None,
    launcher: ResilientLauncher | None = None,
    tenant: str = "runner",
    campaign: str | None = None,
    boot_attach_penalty: float = 180.0,
    warm_attach_penalty: float = 30.0,
) -> tuple["Instance", "Lease | None", float]:
    """Acquire a replacement instance; one penalty-timing implementation.

    Returns ``(instance, lease, penalty_seconds)``; the instance is
    RUNNING on return.  Preference order: a fleet lease when a manager is
    given (warm hit: only the volume move is paid; cold: the drawn boot
    plus attach), else a resilient launch when a launcher is given
    (absorbed waits count into the penalty), else a plain private boot at
    the flat §3.1 boot+attach penalty.  Raises
    :class:`~repro.fleet.lease.LeaseError` /:class:`CapacityError` /
    chaos errors exactly as the underlying path does.
    """
    if lease_manager is not None:
        lease = lease_manager.acquire(tenant, est_seconds=est_seconds, at=at,
                                      campaign=campaign)
        penalty = (lease.ready_at - at) + warm_attach_penalty
        return lease.instance, lease, penalty
    if launcher is not None:
        acq = launcher.launch(at=at)
        inst = acq.instance
        inst.mark_running(resume_time(cloud.now, inst.ready_at))
        return inst, None, acq.wait_seconds + boot_attach_penalty
    inst = cloud.launch_instance(wait=False)
    inst.mark_running(resume_time(cloud.now, inst.ready_at))
    return inst, None, boot_attach_penalty
