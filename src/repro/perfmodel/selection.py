"""Preferred-unit-size selection (§4, last paragraph).

"Collecting the results for all the sets of probes … we can inspect each
probe set to identify a possible preferable unit file size where the
execution time is minimal.  Sometimes we do not observe a single global
minimum, but rather a plateau … We give preference to choosing the
preferred unit file size as the minimum from later probe sets that are
more stable."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.perfmodel.measurement import ProbeSetResult

__all__ = ["PreferredUnit", "preferred_unit_size"]


@dataclass(frozen=True)
class PreferredUnit:
    """The selection outcome.

    ``label`` is ``"orig"`` (keep the original segmentation — the POS case)
    or a unit size in bytes (the grep case).  ``plateau`` lists every
    variant whose mean was within tolerance of the minimum.
    """

    label: str | int
    mean_time: float
    plateau: tuple[str | int, ...]
    from_volume: int


def preferred_unit_size(
    probe_sets: Sequence[ProbeSetResult],
    *,
    plateau_tolerance: float = 0.05,
    stability_cv: float = 0.25,
) -> PreferredUnit:
    """Pick the preferred unit size from measured probe sets.

    Later (larger-volume) probe sets are preferred; within the chosen set,
    all variants within ``plateau_tolerance`` of the minimal mean form the
    plateau, and the *smallest* unit size on the plateau is returned
    (smaller units keep more scheduling freedom at equal speed).  Unstable
    variants (high CV) are excluded from the plateau unless everything is
    unstable.
    """
    if not probe_sets:
        raise ValueError("no probe sets to select from")
    chosen = None
    for ps in reversed(probe_sets):
        if ps.stable(stability_cv):
            chosen = ps
            break
    if chosen is None:
        chosen = probe_sets[-1]

    stable_variants = {
        k: m for k, m in chosen.variants.items() if m.is_stable(stability_cv)
    } or dict(chosen.variants)
    best_mean = min(m.mean for m in stable_variants.values())
    cutoff = best_mean * (1.0 + plateau_tolerance)
    plateau = [k for k, m in stable_variants.items() if m.mean <= cutoff]

    def sort_key(label):
        # "orig" sorts before any size: it is the finest segmentation.
        return (0, 0) if label == "orig" else (1, label)

    plateau.sort(key=sort_key)
    label = plateau[0]
    return PreferredUnit(
        label=label,
        mean_time=chosen.variants[label].mean,
        plateau=tuple(plateau),
        from_volume=chosen.volume,
    )
