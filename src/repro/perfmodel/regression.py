"""Runtime predictors and their fits (§5, "Static provisioning").

The paper considers linear, power-law and exponential predictors, fit by
regression in logarithmic space "since our data points are not nearly
equidistant", plus the ``y = x^{a·ln x + b}`` family.  Its headline models
(Eqs. (1)–(4)) are affine fits ``f(x) = a + b·x``, so an affine OLS fit is
included as well and is what the provisioning pipeline uses.

Every fit returns a :class:`Predictor` exposing ``predict``, a closed-form
(or bracketed-numeric) ``inverse`` used to answer "how much data fits in a
deadline", goodness-of-fit in the original space, and the residual vectors
the §5.2 adjusted-deadline machinery consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FitError", "Predictor",
    "LinearPredictor", "AffinePredictor", "PowerPredictor",
    "ExponentialPredictor", "XLogXPredictor",
    "fit_linear", "fit_affine", "fit_power", "fit_exponential", "fit_xlogx",
    "fit_all", "select_best",
]


class FitError(ValueError):
    """Degenerate data (too few points, non-positive values in log space…)."""


def _validate(x, y, min_points: int, positive_x: bool = False, positive_y: bool = False):
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise FitError("x and y must be 1-D arrays of equal length")
    if x.size < min_points:
        raise FitError(f"need at least {min_points} points, got {x.size}")
    if positive_x and np.any(x <= 0):
        raise FitError("log-space fit requires positive x")
    if positive_y and np.any(y <= 0):
        raise FitError("log-space fit requires positive y")
    return x, y


@dataclass
class Predictor:
    """Base: a fitted runtime model ``y = f(x)`` (x bytes → y seconds)."""

    name: str = field(init=False, default="base")
    x: np.ndarray = field(repr=False, default=None)
    y: np.ndarray = field(repr=False, default=None)

    # subclasses implement the function and its inverse
    def _f(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def _f_inv(self, y: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def predict(self, x) -> np.ndarray | float:
        """Evaluate ``f(x)``; scalar in, scalar out."""
        arr = np.asarray(x, dtype=float)
        out = self._f(arr)
        return float(out) if np.isscalar(x) or arr.ndim == 0 else out

    def inverse(self, y: float) -> float:
        """Data volume processable in ``y`` seconds, per this model.

        Subclasses add family-specific domain checks.
        """
        return float(self._f_inv(y))

    # -- goodness of fit ----------------------------------------------------

    @property
    def fitted(self) -> np.ndarray:
        return self._f(self.x)

    @property
    def residuals(self) -> np.ndarray:
        """``y - f(x)`` in the original space."""
        return self.y - self.fitted

    @property
    def relative_residuals(self) -> np.ndarray:
        """``(y - f(x)) / f(x)`` — the §5.2 adjusted-deadline statistic."""
        return self.residuals / self.fitted

    @property
    def r2(self) -> float:
        ss_res = float(np.sum(self.residuals**2))
        ss_tot = float(np.sum((self.y - self.y.mean()) ** 2))
        if ss_tot == 0:
            return 1.0 if ss_res == 0 else 0.0
        return 1.0 - ss_res / ss_tot

    # -- curvature (Fig. 2 strategy rule) -----------------------------------

    def curvature_sign(self) -> int:
        """Sign of f'' on the fitted range: +1 convex, -1 concave, 0 linear.

        §5 / Fig. 2: convex models favour starting new instances (more data
        per hour at small volumes); concave models favour packing up to the
        deadline.
        """
        xs = np.linspace(max(1.0, float(np.min(self.x))), float(np.max(self.x)), 64)
        f = self._f(xs)
        second = np.diff(f, 2)
        tol = 1e-9 * max(1.0, float(np.max(np.abs(f))))
        if np.all(second > tol):
            return 1
        if np.all(second < -tol):
            return -1
        return 0


@dataclass
class LinearPredictor(Predictor):
    """``y = a·x`` fit in log space: ``Y = ln a + X``."""

    a: float = 0.0

    def __post_init__(self) -> None:
        self.name = "linear"

    def _f(self, x):
        return self.a * x

    def _f_inv(self, y):
        return y / self.a

    def inverse(self, y: float) -> float:
        """Volume whose predicted time equals ``y`` (domain-checked)."""
        if y <= 0:
            raise FitError("linear model needs positive target time")
        return float(self._f_inv(y))


@dataclass
class AffinePredictor(Predictor):
    """``y = a + b·x`` ordinary least squares (the Eq. (1)–(4) family)."""

    a: float = 0.0
    b: float = 0.0

    def __post_init__(self) -> None:
        self.name = "affine"

    def _f(self, x):
        return self.a + self.b * x

    def _f_inv(self, y):
        return (y - self.a) / self.b

    def inverse(self, y: float) -> float:
        """Volume whose predicted time equals ``y`` (domain-checked)."""
        if self.b <= 0:
            raise FitError("non-increasing affine model has no inverse")
        if y <= self.a:
            raise FitError(f"target {y}s is below the model intercept {self.a}s")
        return float(self._f_inv(y))


@dataclass
class PowerPredictor(Predictor):
    """``y = a·x^b`` fit by log–log OLS."""

    a: float = 0.0
    b: float = 0.0

    def __post_init__(self) -> None:
        self.name = "power"

    def _f(self, x):
        return self.a * np.power(np.maximum(x, 0.0), self.b)

    def _f_inv(self, y):
        return (y / self.a) ** (1.0 / self.b)

    def inverse(self, y: float) -> float:
        """Volume whose predicted time equals ``y`` (domain-checked)."""
        if y <= 0:
            raise FitError("power model needs positive target time")
        return float(self._f_inv(y))


@dataclass
class ExponentialPredictor(Predictor):
    """``y = a·e^{b·x}`` fit by semilog OLS."""

    a: float = 0.0
    b: float = 0.0

    def __post_init__(self) -> None:
        self.name = "exponential"

    def _f(self, x):
        return self.a * np.exp(self.b * x)

    def _f_inv(self, y):
        return np.log(y / self.a) / self.b

    def inverse(self, y: float) -> float:
        """Volume whose predicted time equals ``y`` (domain-checked)."""
        if y <= 0 or self.a <= 0 or self.b == 0:
            raise FitError("exponential inverse undefined")
        return float(self._f_inv(y))


@dataclass
class XLogXPredictor(Predictor):
    """``y = x^{a·ln x + b}``, i.e. ``ln y = a·(ln x)² + b·ln x`` (§5)."""

    a: float = 0.0
    b: float = 0.0

    def __post_init__(self) -> None:
        self.name = "xlogx"

    def _f(self, x):
        lx = np.log(np.maximum(np.asarray(x, dtype=float), 1e-300))
        return np.exp(self.a * lx**2 + self.b * lx)

    def _f_inv(self, y):
        # solve a·t² + b·t − ln y = 0 for t = ln x, take the root giving
        # the larger x (runtime grows with volume on the fitted branch).
        ly = np.log(y)
        if self.a == 0:
            return float(np.exp(ly / self.b))
        disc = self.b**2 + 4 * self.a * ly
        if disc < 0:
            raise FitError("no real inverse for this target")
        t = (-self.b + np.sqrt(disc)) / (2 * self.a)
        return float(np.exp(t))

    def inverse(self, y: float) -> float:
        """Volume whose predicted time equals ``y`` (domain-checked)."""
        if y <= 0:
            raise FitError("xlogx model needs positive target time")
        return float(self._f_inv(y))


# -- fitting routines ---------------------------------------------------------


def fit_linear(x, y) -> LinearPredictor:
    """Fit ``y = a·x`` in log space (the paper's first family)."""
    x, y = _validate(x, y, 1, positive_x=True, positive_y=True)
    ln_a = float(np.mean(np.log(y) - np.log(x)))
    p = LinearPredictor(a=float(np.exp(ln_a)))
    p.x, p.y = x, y
    return p


def fit_affine(x, y, weights=None) -> AffinePredictor:
    """OLS ``y = a + b·x``; optional per-point weights (§7 extension)."""
    x, y = _validate(x, y, 2)
    w = np.ones_like(x) if weights is None else np.asarray(weights, dtype=float)
    if w.shape != x.shape or np.any(w < 0) or np.all(w == 0):
        raise FitError("weights must be non-negative, same length, not all zero")
    A = np.stack([np.ones_like(x), x], axis=1) * np.sqrt(w)[:, None]
    coef, *_ = np.linalg.lstsq(A, y * np.sqrt(w), rcond=None)
    p = AffinePredictor(a=float(coef[0]), b=float(coef[1]))
    p.x, p.y = x, y
    return p


def fit_power(x, y) -> PowerPredictor:
    """Fit ``y = a·x^b`` by log–log least squares."""
    x, y = _validate(x, y, 2, positive_x=True, positive_y=True)
    coef = np.polyfit(np.log(x), np.log(y), 1)
    p = PowerPredictor(a=float(np.exp(coef[1])), b=float(coef[0]))
    p.x, p.y = x, y
    return p


def fit_exponential(x, y) -> ExponentialPredictor:
    """Fit ``y = a·e^{b·x}`` by semilog least squares."""
    x, y = _validate(x, y, 2, positive_y=True)
    coef = np.polyfit(x, np.log(y), 1)
    p = ExponentialPredictor(a=float(np.exp(coef[1])), b=float(coef[0]))
    p.x, p.y = x, y
    return p


def fit_xlogx(x, y) -> XLogXPredictor:
    """Fit ``y = x^{a·ln x + b}`` (the §5 fourth family)."""
    x, y = _validate(x, y, 3, positive_x=True, positive_y=True)
    lx, ly = np.log(x), np.log(y)
    coef = np.polyfit(lx, ly, 2)  # ly = a·lx² + b·lx + c; paper drops c
    # Re-fit without intercept to match the paper's Y = aX² + bX form.
    A = np.stack([lx**2, lx], axis=1)
    ab, *_ = np.linalg.lstsq(A, ly, rcond=None)
    p = XLogXPredictor(a=float(ab[0]), b=float(ab[1]))
    p.x, p.y = x, y
    return p


def fit_all(x, y) -> list[Predictor]:
    """Fit every candidate family that the data admits."""
    fits: list[Predictor] = []
    for fn in (fit_linear, fit_affine, fit_power, fit_exponential, fit_xlogx):
        try:
            fits.append(fn(x, y))
        except FitError:
            continue
    if not fits:
        raise FitError("no model family could be fitted")
    return fits


def select_best(fits: list[Predictor]) -> Predictor:
    """Highest R² in the original space wins."""
    if not fits:
        raise FitError("empty candidate list")
    return max(fits, key=lambda p: p.r2)
