"""Repeated measurements and probe-set results (§4).

"All performance measurements are repeated 5 times and the average and
standard deviation are noted."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

__all__ = ["Measurement", "repeat_measure", "ProbeSetResult", "DEFAULT_REPEATS"]

DEFAULT_REPEATS = 5


@dataclass(frozen=True)
class Measurement:
    """Summary of repeated timings of one probe."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a measurement needs at least one value")
        if any(v < 0 for v in self.values):
            raise ValueError("negative timing")

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if self.n > 1 else 0.0

    @property
    def cv(self) -> float:
        """Coefficient of variation — the §4 (in)stability signal."""
        return self.std / self.mean if self.mean > 0 else float("inf")

    def is_stable(self, cv_threshold: float = 0.25) -> bool:
        """Stable enough to trust, per the §4 escalation rule."""
        return self.cv <= cv_threshold


def repeat_measure(fn: Callable[[], float], repeats: int = DEFAULT_REPEATS) -> Measurement:
    """Call a timing function ``repeats`` times and summarise."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    return Measurement(values=tuple(fn() for _ in range(repeats)))


@dataclass(frozen=True)
class ProbeSetResult:
    """Measurements for all variants of one probe volume.

    ``variants`` maps a variant label — ``"orig"`` or the unit size in
    bytes as an int — to its measurement.
    """

    volume: int
    variants: Mapping[str | int, Measurement]

    def stable(self, cv_threshold: float = 0.25) -> bool:
        """A probe set is stable when every variant is."""
        return all(m.is_stable(cv_threshold) for m in self.variants.values())

    def best_variant(self) -> tuple[str | int, Measurement]:
        """Variant with the minimal mean time."""
        label = min(self.variants, key=lambda k: self.variants[k].mean)
        return label, self.variants[label]

    def ordered_unit_sizes(self) -> list[int]:
        """The numeric variant labels, ascending."""
        return sorted(k for k in self.variants if isinstance(k, int))
