"""Weighted curve fitting (§7 future work).

"To account for the larger standard deviation of measurements at small
data volumes, we can build a performance model using weighted curve
fitting demanding closer fits in the large data volume range and allowing
for looser fits in the small data volume range."

Two weighting schemes are provided:

* :func:`volume_weighted_fit` — weights ``(x/x_max)**power``, trusting
  large volumes more simply because they are large;
* :func:`variance_weighted_fit` — inverse-variance weights from repeated
  measurements, the statistically-motivated version (small probes get the
  large σ they earned in Fig. 3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.perfmodel.measurement import Measurement
from repro.perfmodel.regression import AffinePredictor, FitError, fit_affine

__all__ = ["volume_weighted_fit", "variance_weighted_fit"]


def volume_weighted_fit(x, y, *, power: float = 1.0) -> AffinePredictor:
    """Affine OLS with weights growing with volume."""
    if power < 0:
        raise FitError("power must be non-negative")
    x = np.asarray(x, dtype=float)
    if x.size == 0 or np.any(x <= 0):
        raise FitError("volume weighting requires positive volumes")
    w = (x / x.max()) ** power
    return fit_affine(x, y, weights=w)


def variance_weighted_fit(
    points: Sequence[tuple[float, Measurement]],
    *,
    floor_cv: float = 0.01,
) -> AffinePredictor:
    """Affine fit of measurement means, weighted by 1/σ².

    ``floor_cv`` bounds the weight of suspiciously-quiet measurements (a
    single-repeat probe has σ = 0, which would otherwise dominate).
    """
    if len(points) < 2:
        raise FitError("need at least two measurements")
    xs = np.array([p[0] for p in points], dtype=float)
    ys = np.array([p[1].mean for p in points], dtype=float)
    sigmas = np.array(
        [max(p[1].std, floor_cv * max(p[1].mean, 1e-12)) for p in points],
        dtype=float,
    )
    return fit_affine(xs, ys, weights=1.0 / sigmas**2)
