"""Instance-quality tracking with per-quality predictors (§7 future work).

"A further improvement can be made by tracking the quality of newly
acquired instances and including instance quality likelihood estimates
when devising an execution plan. … we may decide to invest in lightweight
tests to establish the quality of the instances and then use different
predictors for each instance quality level to decide how much data to
send to meet the deadline."

:class:`QualityTracker` buckets instances by their bonnie++ measurement,
accumulates per-bucket timing observations, fits a predictor per bucket,
and answers the planner's question — how many bytes can *this* instance
take by the deadline — bucket-aware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.bonnie import BonnieResult
from repro.perfmodel.regression import FitError, fit_affine
from repro.units import MB

__all__ = ["QualityTracker", "QualityError"]


class QualityError(ValueError):
    """Misconfigured quality bands or unanswerable queries."""


@dataclass
class QualityTracker:
    """Buckets instances by measured disk throughput.

    ``bands`` maps a label to its minimum block-read speed; classification
    picks the fastest band the measurement clears.  Observations and
    likelihoods are tracked per band.
    """

    bands: dict[str, float] = field(default_factory=lambda: {
        "fast": 75 * MB,
        "ok": 55 * MB,
        "slow": 0.0,
    })
    _points: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    _counts: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.bands:
            raise QualityError("need at least one quality band")
        if min(self.bands.values()) > 0:
            raise QualityError("lowest band must have threshold 0 (catch-all)")

    # -- classification ------------------------------------------------------

    def classify(self, result: BonnieResult) -> str:
        """Label for a vetting measurement (fastest band it clears)."""
        eligible = [(thr, name) for name, thr in self.bands.items()
                    if result.block_read >= thr]
        label = max(eligible)[1]
        self._counts[label] = self._counts.get(label, 0) + 1
        return label

    def likelihood(self, label: str) -> float:
        """Empirical probability of drawing this quality from the cloud."""
        total = sum(self._counts.values())
        if total == 0:
            raise QualityError("no instances classified yet")
        return self._counts.get(label, 0) / total

    @property
    def observed_labels(self) -> list[str]:
        return sorted(self._counts)

    # -- per-band models -------------------------------------------------------

    def record(self, label: str, volume: float, seconds: float) -> None:
        """Add a timing observation for an instance of this quality."""
        if label not in self.bands:
            raise QualityError(f"unknown band {label!r}")
        if volume <= 0 or seconds <= 0:
            raise QualityError("observations must be positive")
        self._points.setdefault(label, []).append((float(volume), float(seconds)))

    def observations(self, label: str) -> list[tuple[float, float]]:
        """Copies of one band's (volume, seconds) points."""
        return list(self._points.get(label, []))

    def predictor_for(self, label: str):
        """Band-specific predictor; pools all bands as a fallback when the
        band has too few points of its own.

        Clustered or noisy observations can make the affine slope
        non-positive (useless for capacity questions); the tracker then
        falls back to a through-origin rate fit, which always has a
        positive slope on positive data.
        """
        pts = self._points.get(label, [])
        if len(pts) < 2 or len({p[0] for p in pts}) < 2:
            pts = [p for band in self._points.values() for p in band]
        if len(pts) < 2:
            raise FitError(f"not enough observations to model band {label!r}")
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        model = fit_affine(xs, ys)
        if model.b <= 0:
            from repro.perfmodel.regression import fit_linear

            return fit_linear(xs, ys)
        return model

    def volume_for(self, label: str, deadline: float) -> float:
        """Bytes an instance of this quality processes by ``deadline``."""
        return self.predictor_for(label).inverse(deadline)

    # -- fleet planning -----------------------------------------------------

    def share_out(self, labels: list[str], total_volume: int,
                  deadline: float) -> list[int]:
        """Split ``total_volume`` across a fleet with known quality labels.

        Each instance receives data proportional to what its band can
        handle by the deadline — the §7 "decide how much data to send"
        step.  The shares sum exactly to ``total_volume``.
        """
        if not labels:
            raise QualityError("empty fleet")
        caps = [self.volume_for(lab, deadline) for lab in labels]
        total_cap = sum(caps)
        if total_cap <= 0:
            raise QualityError("fleet has no capacity")
        raw = [total_volume * c / total_cap for c in caps]
        shares = [int(r) for r in raw]
        # distribute the rounding remainder to the largest fractional parts
        remainder = total_volume - sum(shares)
        order = sorted(range(len(raw)), key=lambda i: raw[i] - shares[i],
                       reverse=True)
        for i in order[:remainder]:
            shares[i] += 1
        return shares
