"""Empirical performance estimation (§4 and §5 of the paper).

This package implements the paper's measurement methodology *as a user of
the cloud*: it only ever sees measured execution times, never the
simulator's ground-truth cost profiles.

Pipeline:

1. :mod:`repro.perfmodel.probes` builds probe sets ``P^V_orig`` and
   ``P^V_{s0..sn}`` by reshaping the head of the catalogue at several unit
   file sizes, and runs the escalating §4 protocol (discard unstable small
   probes, grow the volume until measurements stabilise);
2. :mod:`repro.perfmodel.selection` picks the preferred unit file size
   (plateau detection, later probe sets preferred);
3. :mod:`repro.perfmodel.regression` fits the paper's candidate predictors
   — linear ``y=ax``, affine ``y=a+bx``, power ``y=ax^b``, exponential
   ``y=a·e^{bx}`` and ``y=x^{a·ln x+b}`` — with the log-space handling the
   paper uses for non-equidistant samples;
4. :mod:`repro.perfmodel.sampling` refits with random samples of the full
   data set (Eq. (2), Eq. (4)).
"""

from repro.perfmodel.measurement import Measurement, ProbeSetResult, repeat_measure
from repro.perfmodel.probes import ProbeCampaign, ProbeSet, build_probe_set
from repro.perfmodel.regression import (
    AffinePredictor,
    ExponentialPredictor,
    LinearPredictor,
    PowerPredictor,
    Predictor,
    XLogXPredictor,
    fit_affine,
    fit_all,
    fit_exponential,
    fit_linear,
    fit_power,
    fit_xlogx,
    select_best,
)
from repro.perfmodel.analytical import AnalyticalStreamModel, calibrate_stream_model
from repro.perfmodel.crossval import CvScore, cross_validate, select_by_cv
from repro.perfmodel.history import HistoricalPredictor, RunHistory, RunRecord
from repro.perfmodel.quality import QualityTracker
from repro.perfmodel.refine import RefinementResult, refine_unit_size
from repro.perfmodel.sampling import collect_sample_points, refit_with_samples
from repro.perfmodel.selection import PreferredUnit, preferred_unit_size
from repro.perfmodel.weighted import variance_weighted_fit, volume_weighted_fit

__all__ = [
    "Measurement",
    "ProbeSetResult",
    "repeat_measure",
    "ProbeCampaign",
    "ProbeSet",
    "build_probe_set",
    "Predictor",
    "LinearPredictor",
    "AffinePredictor",
    "PowerPredictor",
    "ExponentialPredictor",
    "XLogXPredictor",
    "fit_linear",
    "fit_affine",
    "fit_power",
    "fit_exponential",
    "fit_xlogx",
    "fit_all",
    "select_best",
    "collect_sample_points",
    "refit_with_samples",
    "PreferredUnit",
    "preferred_unit_size",
    "QualityTracker",
    "volume_weighted_fit",
    "variance_weighted_fit",
    "CvScore",
    "cross_validate",
    "select_by_cv",
    "AnalyticalStreamModel",
    "calibrate_stream_model",
    "HistoricalPredictor",
    "RunHistory",
    "RunRecord",
    "RefinementResult",
    "refine_unit_size",
]
