"""Analytical (white-box) runtime modelling (§4's alternative [3, 13]).

The PACE-style approach: decompose runtime into primitive resource costs
measured by microbenchmarks, then compose a closed-form prediction.  For a
streaming text tool:

``t(V, n_files) = setup + n_files·c_open + V / bw``

where ``bw`` comes from a bonnie pass and ``(setup, c_open)`` from two
differential probes.  The paper prefers the empirical model because the
cloud's characteristics are "volatile and opaque" — an analytical model
calibrated in one corner (one placement, one instant) silently carries
those conditions into every prediction.  The comparison bench quantifies
that gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.bonnie import bonnie_probe
from repro.cloud.ebs import EbsVolume
from repro.cloud.instance import Instance
from repro.cloud.service import ExecutionService, Workload
from repro.perfmodel.probes import build_probe_set
from repro.perfmodel.regression import AffinePredictor, FitError
from repro.vfs.files import Catalogue

__all__ = ["AnalyticalStreamModel", "calibrate_stream_model"]


@dataclass(frozen=True)
class AnalyticalStreamModel:
    """Closed-form model for streaming tools (grep/extract)."""

    setup: float                # seconds per run
    per_file: float             # seconds per file opened
    bandwidth: float            # bytes per second sustained

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise FitError("bandwidth must be positive")
        if self.per_file < 0 or self.setup < 0:
            raise FitError("cost primitives must be non-negative")

    def predict(self, volume: float, n_files: int) -> float:
        """Closed-form seconds for ``volume`` bytes over ``n_files`` files."""
        if volume < 0 or n_files < 0:
            raise FitError("volume and file count must be non-negative")
        return self.setup + n_files * self.per_file + volume / self.bandwidth

    def as_predictor(self, unit_size: int) -> AffinePredictor:
        """Affine view at a fixed unit file size (files = volume / unit)."""
        if unit_size <= 0:
            raise FitError("unit size must be positive")
        p = AffinePredictor(a=self.setup,
                            b=1.0 / self.bandwidth + self.per_file / unit_size)
        import numpy as np

        p.x = np.array([float(unit_size)])
        p.y = np.array([self.predict(unit_size, 1)])
        p.name = "analytical"
        return p


def calibrate_stream_model(
    service: ExecutionService,
    instance: Instance,
    workload: Workload,
    catalogue: Catalogue,
    *,
    probe_volume: int,
    small_unit: int,
    storage: EbsVolume | None = None,
    repeats: int = 3,
) -> AnalyticalStreamModel:
    """Measure the three primitives with microbenchmarks.

    * ``bandwidth`` — one bonnie pass (block read);
    * ``per_file`` — differential probe: the same volume as one big unit
      vs many ``small_unit`` files; the time difference is pure per-file
      overhead;
    * ``setup`` — the big-unit probe time minus its streaming share.
    """
    if repeats < 1:
        raise FitError("repeats must be >= 1")
    bw = bonnie_probe(service.cloud, instance).block_read

    ps = build_probe_set(catalogue, probe_volume, [small_unit, probe_volume])
    big_units = ps.variants[probe_volume]
    small_units = ps.variants[small_unit]
    volume = sum(u.size for u in big_units)

    def measure(units, directory):
        if storage is not None:
            storage.store(directory)
        vals = [service.run(instance, units, workload, storage=storage,
                            directory=directory) for _ in range(repeats)]
        return sum(vals) / len(vals)

    t_big = measure(big_units, "analytical/big")
    t_small = measure(small_units, "analytical/small")

    n_big = len(big_units)
    n_small = len(small_units)
    if n_small <= n_big:
        raise FitError("small-unit probe did not increase the file count")
    per_file = max(0.0, (t_small - t_big) / (n_small - n_big))
    setup = max(0.0, t_big - volume / bw - n_big * per_file)
    return AnalyticalStreamModel(setup=setup, per_file=per_file, bandwidth=bw)
