"""Historical-data runtime prediction (§4's alternative [17]).

"Performance estimation can be done through analytical modeling,
empirically and by relying on historical data [Smith, Foster, Taylor]."
The paper rejects history because the cloud is "volatile and opaque"; this
module implements the approach so the comparison is runnable
(``benchmarks/test_prediction_approaches.py``).

:class:`RunHistory` accumulates past run records (the execution service
can append automatically); :class:`HistoricalPredictor` predicts by
volume interpolation over the aggregated history — which inherits the
quality mix of whatever instances happened to serve past runs, exactly the
weakness the paper calls out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.perfmodel.regression import FitError, Predictor

__all__ = ["RunRecord", "RunHistory", "HistoricalPredictor"]


@dataclass(frozen=True)
class RunRecord:
    """One past execution."""

    app: str
    volume: int
    seconds: float
    instance_id: str = ""
    n_units: int = 0

    def __post_init__(self) -> None:
        if self.volume <= 0 or self.seconds <= 0:
            raise ValueError("run records need positive volume and time")


class RunHistory:
    """Append-only store of past runs, filterable by application.

    Histories persist as JSON-lines (:meth:`save` / :meth:`load`) so a real
    deployment can accumulate them across campaigns — the [17] premise of
    "predicting application run times using historical information".
    """

    def __init__(self) -> None:
        self._records: list[RunRecord] = []

    def append(self, record: RunRecord) -> None:
        """Add a pre-built record."""
        self._records.append(record)

    def record(self, app: str, volume: int, seconds: float, **kw) -> RunRecord:
        """Build and store a record from its fields."""
        rec = RunRecord(app=app, volume=volume, seconds=seconds, **kw)
        self.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def for_app(self, app: str) -> list[RunRecord]:
        """Records of one application."""
        return [r for r in self._records if r.app == app]

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        """Write the history as JSON-lines."""
        import json
        from dataclasses import asdict
        from pathlib import Path

        lines = [json.dumps(asdict(r), sort_keys=True) for r in self._records]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""),
                              encoding="utf-8")

    @classmethod
    def load(cls, path) -> "RunHistory":
        """Read a history written by :meth:`save` (bad lines are an error)."""
        import json
        from pathlib import Path

        h = cls()
        for lineno, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                h.append(RunRecord(**json.loads(line)))
            except (TypeError, ValueError, KeyError) as e:
                raise ValueError(f"{path}:{lineno}: bad history record: {e}") from e
        return h

    def points(self, app: str) -> tuple[np.ndarray, np.ndarray]:
        """(volumes, seconds) arrays for one application."""
        recs = self.for_app(app)
        if not recs:
            return np.zeros(0), np.zeros(0)
        x = np.array([r.volume for r in recs], dtype=float)
        y = np.array([r.seconds for r in recs], dtype=float)
        return x, y


@dataclass
class HistoricalPredictor(Predictor):
    """Volume-interpolated predictor over aggregated history.

    Records are bucketed by volume (identical volumes pooled), means are
    made monotone with a running maximum (runtime cannot decrease with
    volume), predictions interpolate between buckets, and extrapolation
    beyond the observed range uses the marginal rate of the outermost
    bucket pair.
    """

    volumes: np.ndarray = field(default=None, repr=False)
    times: np.ndarray = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.name = "historical"

    @classmethod
    def from_history(cls, history: RunHistory, app: str) -> "HistoricalPredictor":
        x, y = history.points(app)
        if x.size < 2:
            raise FitError(f"need at least two historical runs of {app!r}")
        vols = np.unique(x)
        if vols.size < 2:
            raise FitError("history covers a single volume; cannot interpolate")
        means = np.array([float(y[x == v].mean()) for v in vols])
        means = np.maximum.accumulate(means)  # enforce monotone runtime
        p = cls(volumes=vols, times=means)
        p.x, p.y = x, y
        return p

    # -- Predictor interface -------------------------------------------------

    def _rate(self, lo: int, hi: int) -> float:
        dv = self.volumes[hi] - self.volumes[lo]
        dt = self.times[hi] - self.times[lo]
        return dt / dv if dv > 0 else 0.0

    def _f(self, x):
        x = np.asarray(x, dtype=float)
        out = np.interp(x, self.volumes, self.times)
        below = x < self.volumes[0]
        above = x > self.volumes[-1]
        if np.any(below):
            r = self._rate(0, 1)
            out = np.where(
                below,
                np.maximum(0.0, self.times[0] - (self.volumes[0] - x) * r),
                out,
            )
        if np.any(above):
            r = self._rate(-2, -1)
            out = np.where(above, self.times[-1] + (x - self.volumes[-1]) * r, out)
        return out

    def _f_inv(self, y):
        times = self.times
        if y <= times[0]:
            r = self._rate(0, 1)
            if r <= 0:
                raise FitError("history is flat; inverse undefined below range")
            return self.volumes[0] - (times[0] - y) / r
        if y >= times[-1]:
            r = self._rate(-2, -1)
            if r <= 0:
                raise FitError("history is flat; inverse undefined above range")
            return self.volumes[-1] + (y - times[-1]) / r
        return float(np.interp(y, times, self.volumes))

    def inverse(self, y: float) -> float:
        """Volume processable in ``y`` seconds per the history."""
        if y <= 0:
            raise FitError("target time must be positive")
        v = float(self._f_inv(y))
        if v <= 0:
            raise FitError(f"no volume completes in {y}s according to history")
        return v
