"""Probe construction and the escalating measurement protocol (§4).

A *probe set* for volume ``V`` contains the head of the catalogue in its
original segmentation (``P^V_orig``) plus reshaped variants ``P^V_s`` for a
range of unit file sizes ``s0..sn``.  Per the paper, the bin packing runs
once at the base size ``s0`` and variants at multiples of ``s0`` are derived
by coalescing consecutive bins; non-multiple sizes are packed directly.

The protocol starts at a small volume, discards measurements that are "too
unstable" (small means, large deviations — dominated by setup overheads),
and escalates the volume by a factor ``k`` until a stable probe set is
obtained or the budget runs out.

Packing goes through a :class:`~repro.packing.cache.PackingCache`: the base
size ``s0`` is packed once per probe volume, multiples of ``s0`` are derived
by coalescing consecutive base bins, and repeated probe-set construction
(re-planning per deadline, protocol re-runs) hits the memo instead of
re-packing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.apps.base import Unit
from repro.cloud.ebs import EbsVolume
from repro.cloud.instance import Instance
from repro.cloud.service import ExecutionService, Workload
from repro.packing import PackingCache
from repro.packing.index import BinLayout
from repro.perfmodel.measurement import DEFAULT_REPEATS, Measurement, ProbeSetResult
from repro.vfs.files import Catalogue, Segment, VirtualFile

__all__ = ["ProbeSet", "build_probe_set", "ProbeCampaign", "ProtocolResult"]


def _layouts_to_segments(layouts: Sequence[BinLayout],
                         files: Sequence[VirtualFile],
                         prefix: str) -> list[Segment]:
    return [
        Segment(name=f"{prefix}/unit{idx:05d}",
                members=tuple(files[i] for i in l.indices))
        for idx, l in enumerate(layouts)
        if l.indices
    ]


@dataclass(frozen=True)
class ProbeSet:
    """All variants of one probe volume, ready to run."""

    volume: int
    variants: dict[str | int, tuple[Unit, ...]]

    def labels(self) -> list[str | int]:
        """Variant labels: ``"orig"`` first, then unit sizes ascending."""
        return ["orig"] + sorted(k for k in self.variants if isinstance(k, int))


def build_probe_set(
    catalogue: Catalogue,
    volume: int,
    unit_sizes: Sequence[int],
    *,
    cache: PackingCache | None = None,
) -> ProbeSet:
    """Construct ``P^V_orig`` and ``P^V_{s}`` for each requested unit size.

    Reuses one base packing for sizes that are multiples of ``unit_sizes[0]``
    (the §4 efficiency trick) and packs other sizes directly.  A shared
    ``cache`` (e.g. a campaign's) additionally memoises across calls, so
    re-building the same probe set packs nothing at all.
    """
    if volume <= 0:
        raise ValueError("probe volume must be positive")
    sizes = sorted(set(int(s) for s in unit_sizes))
    if any(s <= 0 for s in sizes):
        raise ValueError("unit sizes must be positive")
    head = catalogue.head_by_volume(volume)
    files = head.files
    variants: dict[str | int, tuple[Unit, ...]] = {"orig": tuple(head)}
    if not sizes:
        return ProbeSet(volume=volume, variants=variants)

    if cache is None:
        cache = PackingCache()
    s0 = sizes[0]
    for s in sizes:
        # derive_from=s0 routes multiples of the base through bin
        # coalescing and packs non-multiples directly — the seed behaviour,
        # now memoised.
        layouts = cache.pack_layout(head, s, heuristic="subset_sum",
                                    preserve_order=True, derive_from=s0)
        variants[s] = tuple(
            _layouts_to_segments(layouts, files, f"probe_v{volume}_s{s}")
        )
    return ProbeSet(volume=volume, variants=variants)


@dataclass
class ProtocolResult:
    """Outcome of the escalating protocol: every probe set measured."""

    probe_sets: list[ProbeSetResult] = field(default_factory=list)
    stable: bool = False

    @property
    def final(self) -> ProbeSetResult:
        if not self.probe_sets:
            raise ValueError("protocol produced no probe sets")
        return self.probe_sets[-1]


class ProbeCampaign:
    """Runs probe sets on a vetted instance, §4-style.

    Each variant is staged into its own EBS directory (when a volume is
    given), so distinct variants can land on placements of different
    quality — which is both realistic and the mechanism behind the Fig. 5
    spikes.
    """

    def __init__(
        self,
        service: ExecutionService,
        instance: Instance,
        workload: Workload,
        *,
        storage: EbsVolume | None = None,
        repeats: int = DEFAULT_REPEATS,
    ) -> None:
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.service = service
        self.instance = instance
        self.workload = workload
        self.storage = storage
        self.repeats = repeats
        self.pack_cache = PackingCache()
        self._obs = service.cloud.obs
        self._observations: list[tuple[int, str | int, Measurement]] = []

    # -- low-level -----------------------------------------------------------

    def measure(self, units: Sequence[Unit], directory: str) -> Measurement:
        """Time one probe ``repeats`` times (mean/std recorded)."""
        if self.storage is not None:
            self.storage.store(directory)
        obs = self._obs
        # Probe runs advance the simulated clock, so a live span brackets
        # all repeats of this probe on simulated time.
        with obs.tracer.span("perfmodel.probe.measure", cat="perfmodel",
                             track="probes", directory=directory,
                             units=len(units), repeats=self.repeats):
            values = tuple(
                self.service.run(
                    self.instance, units, self.workload,
                    storage=self.storage, directory=directory,
                )
                for _ in range(self.repeats)
            )
        if obs.enabled:
            obs.metrics.counter("perfmodel.probe.runs").inc(self.repeats)
        return Measurement(values=values)

    def measure_labeled(self, volume: int, label: str | int,
                        units: Sequence[Unit], directory: str) -> Measurement:
        """Measure one variant and record it as a regression observation."""
        m = self.measure(units, directory)
        self._observations.append((volume, label, m))
        return m

    def run_probe_set(self, probe_set: ProbeSet) -> ProbeSetResult:
        """Measure every variant of one probe set."""
        results: dict[str | int, Measurement] = {}
        for label, units in probe_set.variants.items():
            directory = f"probes/v{probe_set.volume}/{label}"
            m = self.measure(units, directory)
            results[label] = m
            self._observations.append((probe_set.volume, label, m))
        return ProbeSetResult(volume=probe_set.volume, variants=results)

    # -- the §4 protocol -----------------------------------------------------

    def run_protocol(
        self,
        catalogue: Catalogue,
        *,
        initial_volume: int,
        unit_sizes_for,
        growth: int = 5,
        stability_cv: float = 0.25,
        max_rounds: int = 6,
    ) -> ProtocolResult:
        """Escalate probe volume until measurements stabilise.

        ``unit_sizes_for(volume)`` supplies the unit-size sweep for a given
        volume (the paper caps ``sn`` at the probe volume itself).
        """
        if initial_volume <= 0 or growth < 2:
            raise ValueError("need positive initial volume and growth >= 2")
        result = ProtocolResult()
        obs = self._obs
        volume = initial_volume
        for round_no in range(max_rounds):
            sizes = [s for s in unit_sizes_for(volume) if s <= volume]
            ps = build_probe_set(catalogue, volume, sizes, cache=self.pack_cache)
            measured = self.run_probe_set(ps)
            result.probe_sets.append(measured)
            if obs.enabled:
                obs.tracer.instant("perfmodel.protocol.round",
                                   cat="perfmodel", track="probes",
                                   round=round_no, volume=volume,
                                   stable=measured.stable(stability_cv))
                obs.metrics.counter("perfmodel.protocol.rounds").inc()
            if measured.stable(stability_cv):
                result.stable = True
                if obs.enabled:
                    obs.metrics.counter("perfmodel.protocol.stabilised").inc()
                break
            if obs.enabled:
                # Unstable round: its measurements are discarded and the
                # volume escalates (§4's "too unstable" rule).
                obs.metrics.counter("perfmodel.protocol.unstable_rounds").inc()
            if volume >= catalogue.total_size:
                break
            volume = min(volume * growth, catalogue.total_size)
        return result

    # -- model input -----------------------------------------------------------

    def observations_for(self, label: str | int) -> list[tuple[float, float]]:
        """(volume, mean time) points for one variant across probe sets."""
        return [(float(v), m.mean) for v, lab, m in self._observations if lab == label]

    def timing_points(self, label: str | int) -> tuple[list[float], list[float]]:
        """Raw per-repeat points for regression: every repeat is a sample."""
        xs: list[float] = []
        ys: list[float] = []
        for v, lab, m in self._observations:
            if lab == label:
                for t in m.values:
                    xs.append(float(v))
                    ys.append(t)
        return xs, ys
