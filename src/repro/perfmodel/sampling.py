"""Random-sample model refits (§5.1 Eq. (2), §5.2 Eq. (4)).

"A possible source of improvement for the predictive power of our
performance model is to consider random samples from our entire data set
and re-estimate our predictor."  Samples are drawn without replacement;
each sample is measured at its full volume and at a few smaller head
subsets ("and a few of their smaller subsets"), then pooled with the
original probe points for a refit.
"""

from __future__ import annotations

from typing import Sequence

from repro.packing import subset_sum_layout
from repro.perfmodel.probes import ProbeCampaign, _layouts_to_segments
from repro.perfmodel.regression import AffinePredictor, fit_affine
from repro.sim.random import RngStream
from repro.vfs.files import Catalogue

__all__ = ["collect_sample_points", "refit_with_samples"]


def collect_sample_points(
    campaign: ProbeCampaign,
    catalogue: Catalogue,
    rng: RngStream,
    *,
    n_samples: int,
    sample_volume: int,
    unit_size: int | None,
    subset_fractions: Sequence[float] = (0.5,),
) -> list[tuple[float, float]]:
    """Measure random samples; returns ``(volume, seconds)`` points.

    ``unit_size=None`` keeps the original segmentation (the POS choice);
    otherwise each sample is reshaped with subset-sum first-fit before
    measuring (the grep choice, "we consider these samples already in the
    chosen 100 MB unit file size").
    """
    if n_samples < 1 or sample_volume <= 0:
        raise ValueError("need n_samples >= 1 and a positive sample volume")
    for f in subset_fractions:
        if not 0 < f < 1:
            raise ValueError("subset fractions must be in (0, 1)")
    points: list[tuple[float, float]] = []
    taken: set[str] = set()
    for i in range(n_samples):
        sample = catalogue.sample_by_volume(sample_volume, rng.fork(f"sample.{i}"),
                                            exclude=taken)
        taken.update(f.path for f in sample)
        if sample.total_size == 0:
            break
        volumes = [sample.total_size] + [
            int(sample.total_size * f) for f in subset_fractions
        ]
        for v in volumes:
            part = sample.head_by_volume(v)
            if len(part) == 0:
                continue
            if unit_size is None:
                units = tuple(part)
            else:
                layouts = subset_sum_layout(part.sizes().tolist(), unit_size)
                units = tuple(
                    _layouts_to_segments(layouts, part.files, f"sample{i}_v{v}")
                )
            m = campaign.measure(units, directory=f"samples/{i}/v{v}")
            points.append((float(part.total_size), m.mean))
    return points


def refit_with_samples(
    base_points: Sequence[tuple[float, float]],
    sample_points: Sequence[tuple[float, float]],
) -> AffinePredictor:
    """Pool probe and sample observations and refit the affine model.

    "Including the new measurements, we obtain another linear fit of good
    quality" — the refit uses *all* observations, not just the samples.
    """
    pts = list(base_points) + list(sample_points)
    if len(pts) < 2:
        raise ValueError("need at least two points to refit")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    return fit_affine(xs, ys)
