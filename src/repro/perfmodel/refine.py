"""Adaptive unit-size refinement (§5.1's "more careful sampling").

The coarse probe sweep (decade-spaced unit sizes) finds the plateau; the
paper then samples the range more finely and discovers it "is not smooth"
(Fig. 5).  This module automates that refinement: starting from a coarse
sweep, it repeatedly measures the midpoints flanking the current best unit
size, narrowing geometrically until the bracket is tight or the budget is
spent.  Because EBS placement makes the response *noisy in unit size*
(spikes), the refinement tracks the best measured point rather than
assuming unimodality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmodel.measurement import Measurement
from repro.perfmodel.probes import ProbeCampaign, build_probe_set
from repro.vfs.files import Catalogue

__all__ = ["RefinementResult", "refine_unit_size"]


@dataclass
class RefinementResult:
    """Outcome of the adaptive search."""

    best_unit: int
    best_mean: float
    measurements: dict[int, Measurement] = field(default_factory=dict)
    rounds: int = 0

    @property
    def sampled_units(self) -> list[int]:
        return sorted(self.measurements)


def refine_unit_size(
    campaign: ProbeCampaign,
    catalogue: Catalogue,
    volume: int,
    coarse_sizes: list[int],
    *,
    rounds: int = 3,
    min_gap_ratio: float = 1.15,
) -> RefinementResult:
    """Search for the fastest unit size by midpoint refinement.

    Each round measures the geometric midpoints between the current best
    unit size and its nearest sampled neighbours; refinement stops after
    ``rounds`` rounds or when the bracket's neighbours are within
    ``min_gap_ratio`` of the best (nothing left to resolve).
    """
    if volume <= 0:
        raise ValueError("volume must be positive")
    sizes = sorted({int(s) for s in coarse_sizes if 0 < s <= volume})
    if len(sizes) < 2:
        raise ValueError("need at least two coarse unit sizes within the volume")
    if rounds < 0 or min_gap_ratio <= 1.0:
        raise ValueError("rounds must be >= 0 and min_gap_ratio > 1")

    result = RefinementResult(best_unit=0, best_mean=float("inf"))

    def measure(unit: int) -> None:
        if unit in result.measurements:
            return
        ps = build_probe_set(catalogue, volume, [unit])
        m = campaign.measure(ps.variants[unit], directory=f"refine/v{volume}/{unit}")
        result.measurements[unit] = m
        if m.mean < result.best_mean:
            result.best_mean = m.mean
            result.best_unit = unit

    for s in sizes:
        measure(s)

    for _ in range(rounds):
        sampled = result.sampled_units
        i = sampled.index(result.best_unit)
        candidates: list[int] = []
        if i > 0:
            lo = sampled[i - 1]
            if result.best_unit / lo > min_gap_ratio:
                candidates.append(int(round((lo * result.best_unit) ** 0.5)))
        if i + 1 < len(sampled):
            hi = sampled[i + 1]
            if hi / result.best_unit > min_gap_ratio:
                candidates.append(int(round((hi * result.best_unit) ** 0.5)))
        candidates = [c for c in candidates if c not in result.measurements]
        if not candidates:
            break
        for c in candidates:
            measure(c)
        result.rounds += 1
    return result
