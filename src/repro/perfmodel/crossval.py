"""Cross-validated model-family selection (§7 "more complex statistics").

R² on the training points (what §5 uses) rewards flexible families even
when they extrapolate badly; the provisioning question is *predictive*.
:func:`cross_validate` scores each candidate family by K-fold prediction
error, and :func:`select_by_cv` picks the family that actually transfers —
typically the affine model for these workloads, now for a defensible
reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.perfmodel.regression import (
    FitError,
    Predictor,
    fit_affine,
    fit_exponential,
    fit_linear,
    fit_power,
    fit_xlogx,
)

__all__ = ["CvScore", "cross_validate", "select_by_cv", "DEFAULT_FAMILIES"]

DEFAULT_FAMILIES: dict[str, Callable] = {
    "linear": fit_linear,
    "affine": fit_affine,
    "power": fit_power,
    "exponential": fit_exponential,
    "xlogx": fit_xlogx,
}


@dataclass(frozen=True)
class CvScore:
    """K-fold result for one family."""

    family: str
    rmse: float                 # root mean squared prediction error
    mean_relative_error: float
    folds_used: int

    def __lt__(self, other: "CvScore") -> bool:  # pragma: no cover - trivial
        return self.rmse < other.rmse


def _fold_indices(n: int, k: int) -> list[np.ndarray]:
    """Deterministic interleaved folds (no RNG: point order is meaningful
    and probe volumes repeat, so interleaving spreads volumes across folds)."""
    return [np.arange(i, n, k) for i in range(k)]


def cross_validate(
    x: Sequence[float],
    y: Sequence[float],
    *,
    k: int = 5,
    families: dict[str, Callable] | None = None,
) -> list[CvScore]:
    """Score each fittable family by K-fold prediction error.

    Families that cannot fit some fold (log-space domain violations, too
    few points) are scored only on the folds they survive; families that
    fit nothing are omitted.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise FitError("x and y must be 1-D arrays of equal length")
    if x.size < 4:
        raise FitError("cross-validation needs at least 4 points")
    k = min(k, x.size)
    families = families or DEFAULT_FAMILIES

    scores: list[CvScore] = []
    for name, fit in families.items():
        sq_errors: list[float] = []
        rel_errors: list[float] = []
        folds_used = 0
        for test_idx in _fold_indices(x.size, k):
            train = np.ones(x.size, dtype=bool)
            train[test_idx] = False
            try:
                model = fit(x[train], y[train])
            except FitError:
                continue
            pred = np.asarray(model.predict(x[test_idx]), dtype=float)
            if not np.all(np.isfinite(pred)):
                continue
            folds_used += 1
            sq_errors.extend(((pred - y[test_idx]) ** 2).tolist())
            denom = np.maximum(np.abs(y[test_idx]), 1e-12)
            rel_errors.extend((np.abs(pred - y[test_idx]) / denom).tolist())
        if folds_used:
            scores.append(CvScore(
                family=name,
                rmse=float(np.sqrt(np.mean(sq_errors))),
                mean_relative_error=float(np.mean(rel_errors)),
                folds_used=folds_used,
            ))
    if not scores:
        raise FitError("no family survived cross-validation")
    return sorted(scores, key=lambda s: s.rmse)


def select_by_cv(
    x: Sequence[float],
    y: Sequence[float],
    *,
    k: int = 5,
    families: dict[str, Callable] | None = None,
) -> tuple[Predictor, list[CvScore]]:
    """Fit the CV-winning family on all points; returns (model, scores)."""
    scores = cross_validate(x, y, k=k, families=families)
    winner = (families or DEFAULT_FAMILIES)[scores[0].family]
    return winner(np.asarray(x, dtype=float), np.asarray(y, dtype=float)), scores
