"""Residual-based deadline adjustment (§5.2).

"Based on the residuals for the model in (4), we consider it is acceptable
to assume that the relative residuals (y−f(x))/f(x) are normally
distributed. … Then D = f(x)(1+a), where a = 1.29·σ_X + μ_X. … in order to
have a 10% chance of missing the deadline D, we need to choose x such that
f(x) = D/(1+a)."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.perfmodel.regression import Predictor

__all__ = ["ResidualAnalysis", "adjustment_factor", "adjusted_deadline",
           "general_strategy", "miss_probability_of", "expected_misses"]


@dataclass(frozen=True)
class ResidualAnalysis:
    """Sample moments of the relative residuals of a fitted model."""

    mu: float
    sigma: float
    n: int

    @classmethod
    def from_predictor(cls, predictor: Predictor) -> "ResidualAnalysis":
        rel = np.asarray(predictor.relative_residuals, dtype=float)
        if rel.size < 2:
            raise ValueError("need at least two residuals")
        return cls(mu=float(rel.mean()), sigma=float(rel.std(ddof=1)), n=int(rel.size))

    def factor(self, miss_probability: float = 0.10) -> float:
        """``a = z·σ + μ`` with ``z`` the upper quantile for the miss odds.

        For the paper's 10 % target, z = 1.29 (rounded; scipy gives
        1.2816) — the paper's own rounding is preserved when
        ``miss_probability == 0.10`` so the reproduction matches its
        arithmetic exactly.
        """
        if not 0 < miss_probability < 1:
            raise ValueError("miss probability must be in (0, 1)")
        z = 1.29 if abs(miss_probability - 0.10) < 1e-12 else float(
            stats.norm.ppf(1.0 - miss_probability)
        )
        return z * self.sigma + self.mu


def adjustment_factor(predictor: Predictor, miss_probability: float = 0.10) -> float:
    """Convenience: ``a`` straight from a fitted predictor."""
    return ResidualAnalysis.from_predictor(predictor).factor(miss_probability)


def adjusted_deadline(deadline: float, a: float) -> float:
    """``D₁ = D/(1+a)`` — plan for this, miss the real D with ≤ target odds."""
    if deadline <= 0:
        raise ValueError("deadline must be positive")
    if a <= -1:
        raise ValueError("adjustment factor must exceed -1")
    return deadline / (1.0 + a)


def miss_probability_of(
    predicted: float, deadline: float, analysis: ResidualAnalysis
) -> float:
    """P(actual > deadline) for one instance, under the §5.2 residual model.

    Relative residuals are assumed normal with the fitted moments, so
    ``actual = predicted·(1+X)`` and the miss probability is the upper tail
    of ``X`` beyond ``deadline/predicted − 1``.
    """
    if predicted <= 0:
        return 0.0
    if analysis.sigma <= 0:
        return 1.0 if predicted * (1 + analysis.mu) > deadline else 0.0
    z = (deadline / predicted - 1.0 - analysis.mu) / analysis.sigma
    return float(1.0 - stats.norm.cdf(z))


def expected_misses(
    predicted_times, deadline: float, predictor: Predictor,
) -> float:
    """Expected number of instances missing ``deadline``.

    The pre-execution counterpart of the post-hoc miss counts in Figs. 8–9:
    summing each instance's §5.2 miss probability.  The figure benches
    compare this expectation against observed misses — the calibration
    check the paper's 10 % target implies but never reports.
    """
    analysis = ResidualAnalysis.from_predictor(predictor)
    return float(sum(miss_probability_of(t, deadline, analysis)
                     for t in predicted_times))


def general_strategy(
    predictor: Predictor,
    volume: int,
    deadline: float,
    *,
    miss_probability: float = 0.10,
) -> dict:
    """The §5.2 closing strategy: pick the effective planning deadline.

    1. ``i = ⌈V/V_D⌉`` instances from the plain model inverse;
    2. uniform distribution gives each instance ``V/i`` bytes, finishing at
       ``D₁' = f(V/i)``;
    3. if the risk-adjusted deadline ``D/(1+a)`` is *looser* than ``D₁'``,
       uniform bins over ``i`` instances already carry ≤ the target miss
       odds — keep them; otherwise schedule for ``D/(1+a)`` (more
       instances).
    """
    if volume <= 0:
        raise ValueError("volume must be positive")
    a = adjustment_factor(predictor, miss_probability)
    d_adj = adjusted_deadline(deadline, a)
    v_d = predictor.inverse(deadline)
    i = max(1, math.ceil(volume / v_d))
    d1_uniform = float(predictor.predict(volume / i))
    if d_adj >= d1_uniform:
        return {
            "planning_deadline": d1_uniform,
            "instances": i,
            "adjusted": False,
            "a": a,
        }
    v_adj = predictor.inverse(d_adj)
    i_adj = max(1, math.ceil(volume / v_adj))
    return {
        "planning_deadline": d_adj,
        "instances": i_adj,
        "adjusted": True,
        "a": a,
    }
