"""Procurement choice: on-demand vs spot under a deadline (§1.1).

"[Spot] is advantageous when time is less important of a consideration
than cost.  … In our work, we are interested in being able to give cost
effective execution plans when there are makespan constraints and so we
use instances that can be acquired on demand."

This module turns that prose into a quantitative decision: simulate many
spot-market paths, estimate the completion probability of every candidate
bid within the deadline horizon, and pick the cheapest procurement that
meets a confidence target — which is on-demand exactly when the deadline
is tight relative to the work, reproducing the paper's choice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cloud.spot import SpotMarket, SpotRequest
from repro.sim.random import RngStream

__all__ = ["ProcurementDecision", "spot_completion_probability", "choose_procurement"]


@dataclass(frozen=True)
class ProcurementDecision:
    """The advisor's verdict."""

    mode: str                   # "on-demand" | "spot"
    bid: float | None           # spot bid, if mode == "spot"
    expected_cost: float
    completion_probability: float
    on_demand_cost: float

    @property
    def saving(self) -> float:
        """Expected saving over pure on-demand (0 for on-demand itself)."""
        return self.on_demand_cost - self.expected_cost


def spot_completion_probability(
    rng: RngStream,
    bid: float,
    work_hours: float,
    deadline_hours: int,
    *,
    n_paths: int = 200,
    market_kwargs: dict | None = None,
) -> tuple[float, float]:
    """Monte-Carlo completion probability and mean cost for one bid.

    Each path draws an independent market from ``rng``; the request runs
    whenever the bid clears (resume-capable work, as §1.1 requires).
    Returns ``(p_complete, mean_cost_over_completing_paths)``.
    """
    if n_paths < 1:
        raise ValueError("need at least one path")
    if deadline_hours < 1:
        raise ValueError("deadline must be at least one hour")
    kwargs = market_kwargs or {}
    done = 0
    costs: list[float] = []
    req = SpotRequest(bid=bid)
    for i in range(n_paths):
        market = SpotMarket(rng=rng.fork(f"path.{i}"), **kwargs)
        sim = req.simulate_progress(market, deadline_hours, work_hours)
        if sim["done"]:
            done += 1
            costs.append(sim["cost"])
    p = done / n_paths
    mean_cost = sum(costs) / len(costs) if costs else float("inf")
    return p, mean_cost


def choose_procurement(
    rng: RngStream,
    work_hours: float,
    deadline_hours: int,
    *,
    on_demand_rate: float = 0.085,
    confidence: float = 0.95,
    candidate_bid_factors: tuple[float, ...] = (0.9, 1.0, 1.1, 1.3, 1.6, 2.0),
    n_paths: int = 200,
    market_kwargs: dict | None = None,
) -> ProcurementDecision:
    """Cheapest procurement meeting the completion-confidence target.

    On-demand always completes ``work_hours`` of parallelisable work within
    any ``deadline_hours ≥ ceil(work_hours / fleet)`` by adding instances,
    so its completion probability is 1 at cost ``rate × ⌈work⌉``.  Spot
    candidates are admitted only when their simulated completion
    probability reaches ``confidence``.
    """
    if work_hours <= 0:
        raise ValueError("work must be positive")
    if not 0 < confidence <= 1:
        raise ValueError("confidence must be in (0, 1]")
    on_demand_cost = on_demand_rate * math.ceil(work_hours)

    kwargs = market_kwargs or {}
    mean_price = kwargs.get("mean_price", SpotMarket(rng=RngStream(0)).mean_price)
    best: ProcurementDecision | None = None
    for factor in candidate_bid_factors:
        bid = round(mean_price * factor, 6)
        p, cost = spot_completion_probability(
            rng.fork(f"bid.{factor}"), bid, work_hours, deadline_hours,
            n_paths=n_paths, market_kwargs=kwargs)
        if p >= confidence and cost < on_demand_cost:
            cand = ProcurementDecision(
                mode="spot", bid=bid, expected_cost=cost,
                completion_probability=p, on_demand_cost=on_demand_cost)
            if best is None or cand.expected_cost < best.expected_cost:
                best = cand
    if best is not None:
        return best
    return ProcurementDecision(
        mode="on-demand", bid=None, expected_cost=on_demand_cost,
        completion_probability=1.0, on_demand_cost=on_demand_cost)
