"""Static provisioning (§5).

Given a fitted runtime predictor, a data volume ``V`` and a user deadline
``D``, decide how many instances to rent and how to split the data so the
deadline is met at minimal ceil-hour cost.

The §5 cost function for predicted total processing time ``P`` (hours):

* ``D ≥ 1 h``   → ``cost = r·⌈P⌉``  (pack an hour of work per instance);
* ``D < 1 h``   → ``cost = r·⌈P/D⌉``  (a full hour is paid for instances
  that only run for ``D``), valid only when ``D`` exceeds the processing
  time of the largest unsplittable file.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.apps.base import Unit
from repro.packing import (
    first_fit_layout,
    pack_into_n_bins_layout,
    uniform_layout,
)
from repro.packing.index import BinLayout
from repro.perfmodel.regression import FitError, Predictor
from repro.units import HOUR, billed_hours

__all__ = ["PlanError", "plan_cost", "ebs_assignment", "ProvisioningPlan", "StaticProvisioner"]


class PlanError(ValueError):
    """Infeasible provisioning request (deadline below model floor, …)."""


def plan_cost(predicted_hours: float, deadline_hours: float, rate: float) -> float:
    """The §5 piecewise cost ``f(d)`` in USD."""
    if predicted_hours < 0 or deadline_hours <= 0 or rate <= 0:
        raise PlanError("cost function needs positive inputs")
    if predicted_hours == 0:
        return 0.0
    if deadline_hours >= 1.0:
        return rate * math.ceil(predicted_hours)
    return rate * math.ceil(predicted_hours / deadline_hours)


def ebs_assignment(volume: int, per_device_volume: int, volume_by_deadline: float) -> dict:
    """EBS device assignment (§5.1).

    Data is pre-staged in chunks of ``per_device_volume`` (``V⁰``) across
    devices.  An instance can absorb ``⌊V_D/V⁰⌋`` devices within the
    deadline, demanding ``⌈V/(⌊V_D/V⁰⌋·V⁰)⌉`` instances.  A deadline whose
    ``V_D`` is below ``V⁰`` cannot be met without re-staging — the paper's
    granularity caveat ("the unit of splitting … determines the coarseness
    of deadlines we can meet").
    """
    if volume <= 0 or per_device_volume <= 0:
        raise PlanError("volumes must be positive")
    n_devices = math.ceil(volume / per_device_volume)
    devices_per_instance = int(volume_by_deadline // per_device_volume)
    if devices_per_instance < 1:
        raise PlanError(
            f"deadline admits only {volume_by_deadline:.0f} B per instance, below "
            f"the {per_device_volume} B device granularity — restage required"
        )
    instances = math.ceil(volume / (devices_per_instance * per_device_volume))
    return {
        "devices": n_devices,
        "devices_per_instance": devices_per_instance,
        "instances": instances,
    }


@dataclass
class ProvisioningPlan:
    """A concrete execution plan: per-instance unit-file assignments."""

    deadline: float                     # seconds
    planning_deadline: float            # seconds actually planned against
    strategy: str                       # "first-fit" | "uniform" | "adjusted"
    predictor_name: str
    assignments: list[list[Unit]]
    predicted_times: list[float] = field(default_factory=list)
    #: Lease provenance per executed bin, filled in by a fleet scheduler:
    #: ``bin index -> "warm:lease-000007" | "cold:lease-000001" |
    #: "extension:lease-000009"``.  Empty for privately-booted runs.
    lease_sources: dict[int, str] = field(default_factory=dict)

    @property
    def n_instances(self) -> int:
        return len(self.assignments)

    def annotate_lease(self, bin_index: int, source: str, lease_id: str) -> None:
        """Record which lease (and provenance) served ``bin_index``."""
        self.lease_sources[bin_index] = f"{source}:{lease_id}"

    @property
    def reused_bins(self) -> int:
        """Bins that rode an already-paid hour instead of booting."""
        return sum(1 for v in self.lease_sources.values()
                   if not v.startswith("cold"))

    @property
    def total_volume(self) -> int:
        return sum(u.size for b in self.assignments for u in b)

    def max_predicted_time(self) -> float:
        """Largest per-instance predicted time (the makespan bound)."""
        return max(self.predicted_times) if self.predicted_times else 0.0

    def predicted_cost(self, rate: float) -> float:
        """Ceil-hour cost if every instance matches its prediction."""
        return sum(
            rate * billed_hours(t) for t in self.predicted_times
        )


class StaticProvisioner:
    """Builds :class:`ProvisioningPlan` objects from a fitted predictor."""

    def __init__(self, predictor: Predictor, rate: float = 0.085) -> None:
        if rate <= 0:
            raise PlanError("rate must be positive")
        self.predictor = predictor
        self.rate = rate

    # -- model queries -----------------------------------------------------

    def volume_for(self, deadline: float) -> float:
        """``V_D = f⁻¹(D)`` — bytes one instance processes by the deadline."""
        try:
            v = self.predictor.inverse(deadline)
        except FitError as e:
            raise PlanError(f"deadline {deadline}s infeasible for model: {e}") from e
        if v <= 0:
            raise PlanError(f"deadline {deadline}s admits no data")
        return v

    def instances_for(self, volume: int, deadline: float) -> int:
        """``i = ⌈V/⌊x₀⌋⌉`` (§5.2: "⌈26.1⌉ = 27 instances")."""
        if volume <= 0:
            raise PlanError("volume must be positive")
        x0 = math.floor(self.volume_for(deadline))
        if x0 < 1:
            raise PlanError("deadline admits less than one byte per instance")
        return math.ceil(volume / x0)

    # -- planning -----------------------------------------------------------

    def _predict_times(
        self, layouts: Sequence[BinLayout], units: Sequence[Unit]
    ) -> tuple[list[list[Unit]], list[float]]:
        assignments: list[list[Unit]] = []
        times: list[float] = []
        for l in layouts:
            assignments.append([units[i] for i in l.indices])
            times.append(float(self.predictor.predict(l.used)))
        return assignments, times

    def plan(
        self,
        units: Sequence[Unit],
        deadline: float,
        *,
        strategy: str = "first-fit",
        planning_deadline: float | None = None,
    ) -> ProvisioningPlan:
        """Assign unit files to instances for the given deadline.

        Strategies:

        ``first-fit``
            capacity-driven first-fit in the original order (§5.2's initial
            scheme; bins can be uneven, Fig. 8(a));
        ``uniform``
            the same instance count, but volumes balanced (Fig. 8(b):
            "reduce the chance of missing the deadline, while still paying
            the same cost");
        ``hour-pack``
            §5's observation for loose deadlines: "the best strategy is to
            fit an hour of computation into as many instances as needed" —
            one billed hour of work per instance, minimum makespan at the
            same instance-hours (requires ``deadline ≥ 1 h``; the paper
            notes real startup times and instance-count limits argue for
            deadline-packing instead, which is what ``first-fit``/
            ``uniform`` do).

        ``planning_deadline`` lets the §5.2 adjusted-deadline strategy plan
        against ``D/(1+a)`` while reporting misses against the real ``D``.
        """
        if not units:
            raise PlanError("nothing to plan")
        eff_deadline = planning_deadline if planning_deadline is not None else deadline
        if eff_deadline <= 0 or deadline <= 0:
            raise PlanError("deadlines must be positive")
        # Columnar: the packers consume the size column directly; units are
        # regrouped by index afterwards, so no Item dataclasses or key dicts
        # are built per call.
        sizes = [u.size for u in units]
        volume = sum(sizes)
        if len({self._key(u) for u in units}) != len(units):
            raise PlanError("unit names are not unique")

        if strategy == "first-fit":
            n = self.instances_for(volume, eff_deadline)
            x0 = math.floor(self.volume_for(eff_deadline))
            layouts = pack_into_n_bins_layout(sizes, n_bins=n, capacity=x0)
        elif strategy == "uniform":
            n = self.instances_for(volume, eff_deadline)
            layouts = uniform_layout(sizes, n_bins=n, preserve_order=True)
        elif strategy == "hour-pack":
            if eff_deadline < HOUR:
                raise PlanError("hour-pack needs a deadline of at least one hour")
            x_hour = math.floor(self.volume_for(HOUR))
            if x_hour < 1:
                raise PlanError("model admits no data within one hour")
            layouts = first_fit_layout(sizes, x_hour)
        else:
            raise PlanError(f"unknown strategy {strategy!r}")

        assignments, times = self._predict_times(layouts, units)
        label = strategy if planning_deadline is None else "adjusted"
        return ProvisioningPlan(
            deadline=deadline,
            planning_deadline=eff_deadline,
            strategy=label,
            predictor_name=self.predictor.name,
            assignments=assignments,
            predicted_times=times,
        )

    @staticmethod
    def _key(u: Unit) -> str:
        return getattr(u, "path", None) or getattr(u, "name")

    # -- Fig. 2 marginal rule -------------------------------------------------

    def marginal_rule(self) -> str:
        """Which §5 regime the fitted curve shape implies.

        Convex (f''>0): "it will always be better to start a new instance";
        concave (f''<0): "better to pack as much data as possible by ⌈D⌉
        than start a new instance"; linear: indifferent.
        """
        sign = self.predictor.curvature_sign()
        if sign > 0:
            return "start-new-instances"
        if sign < 0:
            return "pack-to-deadline"
        return "indifferent"
