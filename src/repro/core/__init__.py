"""The paper's primary contribution: reshape + model + provision (§4–§5).

* :mod:`repro.core.reshape` — turn a catalogue of small files into unit
  files of the preferred size (subset-sum first-fit merge);
* :mod:`repro.core.deadline` — the §5.2 residual analysis: relative
  residuals assumed normal, ``a = z·σ + μ`` for a chosen miss probability,
  adjusted deadline ``D/(1+a)``, and the closing "general strategy";
* :mod:`repro.core.planner` — static provisioning: instance counts from
  the model inverse, per-instance bins (first-fit original order or
  uniform), EBS volume assignment, and the §5 cost function;
* :mod:`repro.core.campaign` — the end-to-end pipeline from raw catalogue
  to an executed, billed run on the simulated cloud.
"""

from repro.core.deadline import (
    ResidualAnalysis,
    adjusted_deadline,
    adjustment_factor,
    expected_misses,
    general_strategy,
    miss_probability_of,
)
from repro.core.planner import (
    PlanError,
    ProvisioningPlan,
    StaticProvisioner,
    ebs_assignment,
    plan_cost,
)
from repro.core.campaign import Campaign, CampaignResult
from repro.core.procurement import (
    ProcurementDecision,
    choose_procurement,
    spot_completion_probability,
)
from repro.core.reshape import ReshapePlan, reshape
from repro.core.workflow import (
    TextWorkflow,
    WorkflowError,
    WorkflowStage,
    assign_subdeadlines,
    derived_catalogue,
    execute_workflow,
)

__all__ = [
    "Campaign",
    "CampaignResult",
    "ProcurementDecision",
    "choose_procurement",
    "spot_completion_probability",
    "TextWorkflow",
    "WorkflowError",
    "WorkflowStage",
    "assign_subdeadlines",
    "derived_catalogue",
    "execute_workflow",
    "ResidualAnalysis",
    "adjustment_factor",
    "adjusted_deadline",
    "expected_misses",
    "general_strategy",
    "miss_probability_of",
    "PlanError",
    "ProvisioningPlan",
    "StaticProvisioner",
    "ebs_assignment",
    "plan_cost",
    "ReshapePlan",
    "reshape",
]
