"""End-to-end campaign: the full §4→§5 pipeline on one object.

``acquire → probe → select unit size → fit → (refit with samples) →
reshape → provision → execute``.  This is the "execution plan that meets a
user specified deadline while minimizing cost" of the abstract, and what
``examples/quickstart.py`` drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cloud.bonnie import acquire_good_instance
from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.deadline import adjusted_deadline, adjustment_factor
from repro.core.planner import ProvisioningPlan, StaticProvisioner
from repro.core.reshape import ReshapePlan, reshape
from repro.perfmodel.measurement import ProbeSetResult
from repro.perfmodel.probes import ProbeCampaign
from repro.perfmodel.regression import AffinePredictor, Predictor, fit_affine
from repro.perfmodel.sampling import collect_sample_points, refit_with_samples
from repro.perfmodel.selection import PreferredUnit, preferred_unit_size
from repro.runner.execute import ExecutionReport, execute_plan
from repro.vfs.files import Catalogue

__all__ = ["CampaignResult", "Campaign"]


@dataclass
class CampaignResult:
    """Everything a campaign learned and did."""

    acquisition_attempts: int
    probe_sets: list[ProbeSetResult]
    preferred: PreferredUnit
    model: AffinePredictor
    refit_model: AffinePredictor | None
    reshape_plan: ReshapePlan
    plan: ProvisioningPlan
    report: ExecutionReport

    @property
    def final_model(self) -> Predictor:
        return self.refit_model if self.refit_model is not None else self.model

    def summary(self) -> dict:
        """Headline campaign facts in one flat dict."""
        out = {
            "acquisition_attempts": self.acquisition_attempts,
            "preferred_unit": self.preferred.label,
            "model": f"f(x) = {self.final_model.a:.4g} + {self.final_model.b:.4g}·x",
            "units": self.reshape_plan.n_units,
        }
        out.update(self.report.summary())
        return out


class Campaign:
    """Drives the whole pipeline against one catalogue and workload."""

    def __init__(
        self,
        cloud: Cloud,
        workload: Workload,
        catalogue: Catalogue,
        *,
        use_ebs: bool = False,
        probe_repeats: int = 5,
    ) -> None:
        self.cloud = cloud
        self.workload = workload
        self.catalogue = catalogue
        self.use_ebs = use_ebs
        self.probe_repeats = probe_repeats

    def run(
        self,
        deadline: float,
        *,
        initial_volume: int,
        unit_sizes_for: Callable[[int], Sequence[int]],
        strategy: str = "uniform",
        refit_samples: int = 0,
        sample_volume: int = 0,
        use_adjusted_deadline: bool = False,
        miss_probability: float = 0.10,
        max_probe_rounds: int = 5,
        refine_rounds: int = 0,
    ) -> CampaignResult:
        """Execute the full pipeline and return every intermediate artefact."""
        cloud = self.cloud
        obs = cloud.obs
        t_campaign_start = cloud.now
        # §4: vet an instance before trusting any measurement.
        probe_instance, attempts = acquire_good_instance(cloud)
        svc = ExecutionService(cloud)
        storage = None
        if self.use_ebs:
            storage = cloud.create_volume(size_gb=1000, zone=probe_instance.zone)
            storage.attach(probe_instance)
        probes = ProbeCampaign(svc, probe_instance, self.workload,
                               storage=storage, repeats=self.probe_repeats)
        protocol = probes.run_protocol(
            self.catalogue,
            initial_volume=initial_volume,
            unit_sizes_for=unit_sizes_for,
            max_rounds=max_probe_rounds,
        )
        preferred = preferred_unit_size(protocol.probe_sets)

        # Optional §5.1-style fine sampling around the coarse winner.
        if refine_rounds > 0 and isinstance(preferred.label, int):
            from repro.perfmodel.refine import refine_unit_size

            final_ps = protocol.probe_sets[-1]
            coarse = final_ps.ordered_unit_sizes()
            if len(coarse) >= 2:
                refined = refine_unit_size(
                    probes, self.catalogue, final_ps.volume, coarse,
                    rounds=refine_rounds,
                )
                if refined.best_mean < preferred.mean_time:
                    preferred = PreferredUnit(
                        label=refined.best_unit,
                        mean_time=refined.best_mean,
                        plateau=preferred.plateau,
                        from_volume=final_ps.volume,
                    )

        # A regression needs observations at several volumes; if the §4
        # protocol stabilised early, keep measuring the preferred variant
        # at escalating volumes ("we continue to profile the application
        # performance for larger volumes").
        from repro.perfmodel.probes import build_probe_set

        xs, ys = probes.timing_points(preferred.label)
        vol = max((int(x) for x in xs), default=initial_volume)
        while len(set(xs)) < 3 and vol < self.catalogue.total_size:
            vol = min(vol * 4, self.catalogue.total_size)
            sizes = [preferred.label] if isinstance(preferred.label, int) else []
            ps = build_probe_set(self.catalogue, vol, sizes)
            units = ps.variants[preferred.label]
            actual = sum(u.size for u in units)
            probes.measure_labeled(actual, preferred.label, units,
                                   directory=f"probes/extend/v{vol}")
            xs, ys = probes.timing_points(preferred.label)
        model = fit_affine(xs, ys)
        if obs.enabled:
            obs.metrics.counter("perfmodel.model.fits").inc()

        refit = None
        if refit_samples > 0:
            pts = collect_sample_points(
                probes, self.catalogue, cloud.rng.fork("campaign.samples"),
                n_samples=refit_samples,
                sample_volume=sample_volume or initial_volume,
                unit_size=preferred.label if isinstance(preferred.label, int) else None,
            )
            refit = refit_with_samples(list(zip(xs, ys)), pts)
            if obs.enabled:
                obs.metrics.counter("perfmodel.model.refits").inc()

        if storage is not None:
            storage.detach()
        cloud.terminate_instance(probe_instance)

        final_model = refit if refit is not None else model
        unit_size = preferred.label if isinstance(preferred.label, int) else None
        reshape_plan = reshape(self.catalogue, unit_size)

        provisioner = StaticProvisioner(final_model)
        planning_deadline = None
        if use_adjusted_deadline:
            a = adjustment_factor(final_model, miss_probability)
            planning_deadline = adjusted_deadline(deadline, a)
        plan = provisioner.plan(
            list(reshape_plan.units), deadline,
            strategy=strategy, planning_deadline=planning_deadline,
        )
        report = execute_plan(cloud, self.workload, plan, service=svc)
        if obs.enabled:
            obs.tracer.add_span("core.campaign.run", t_campaign_start,
                                cloud.now, cat="core", track="campaign",
                                strategy=strategy,
                                preferred_unit=str(preferred.label),
                                instances=plan.n_instances)
        return CampaignResult(
            acquisition_attempts=attempts,
            probe_sets=protocol.probe_sets,
            preferred=preferred,
            model=model,
            refit_model=refit,
            reshape_plan=reshape_plan,
            plan=plan,
            report=report,
        )
