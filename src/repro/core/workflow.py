"""Workflow scheduling with full-hour subdeadlines (§7 future work).

"A direction for our future research is also to devise good execution
plans for more complex workflows arising in text processing.  We can
schedule such workflows while making sure we assign full hour subdeadlines
to groups of tasks [22]."

A :class:`TextWorkflow` is a DAG of stages (e.g. grep-filter → extract →
POS-tag) whose intermediate volumes are predicted from each application's
output accounting.  :func:`assign_subdeadlines` splits a total deadline
across stages proportionally to predicted work and then snaps the splits
to *full-hour* boundaries where the budget allows — under ceil-hour
pricing, a stage that releases its instances mid-hour wastes money, so
hour-aligned subdeadlines are the cost-efficient cut points (the [22]
observation the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import StaticProvisioner
from repro.perfmodel.regression import Predictor
from repro.runner.execute import ExecutionReport
from repro.sim.random import stable_seed
from repro.units import HOUR
from repro.vfs.files import Catalogue, VirtualFile

__all__ = ["WorkflowStage", "TextWorkflow", "WorkflowError",
           "assign_subdeadlines", "derived_catalogue", "execute_workflow"]


class WorkflowError(ValueError):
    """Malformed workflow (cycle, unknown dependency, bad deadline split)."""


@dataclass
class WorkflowStage:
    """One processing stage.

    ``predictor`` maps input bytes to seconds on a reference instance (fit
    empirically per stage, like any other model in this package).
    ``output_ratio`` is bytes-out per byte-in for the data handed to
    dependent stages (e.g. a grep filter keeping 10 % of articles has
    ``output_ratio=0.1``; extraction keeps ≈1−markup).
    ``strips_markup`` marks extraction-like stages whose output is plain
    text regardless of input markup.
    """

    name: str
    workload: Workload
    predictor: Predictor
    output_ratio: float = 1.0
    strips_markup: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.output_ratio <= 1.0:
            raise WorkflowError(f"stage {self.name!r}: output_ratio must be in [0, 1]")


class TextWorkflow:
    """A DAG of stages over one input catalogue."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()

    def add_stage(self, stage: WorkflowStage, *, after: list[str] | None = None) -> None:
        """Add a stage, optionally after named predecessors."""
        if stage.name in self._graph:
            raise WorkflowError(f"duplicate stage {stage.name!r}")
        self._graph.add_node(stage.name, stage=stage)
        for dep in after or []:
            if dep not in self._graph:
                raise WorkflowError(f"unknown dependency {dep!r} for {stage.name!r}")
            self._graph.add_edge(dep, stage.name)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_node(stage.name)
            raise WorkflowError(f"adding {stage.name!r} would create a cycle")

    def stages(self) -> list[WorkflowStage]:
        """Stages in a deterministic topological order."""
        order = list(nx.lexicographical_topological_sort(self._graph))
        return [self._graph.nodes[n]["stage"] for n in order]

    def stage(self, name: str) -> WorkflowStage:
        """Look up a stage by name."""
        try:
            return self._graph.nodes[name]["stage"]
        except KeyError:
            raise WorkflowError(f"no stage {name!r}") from None

    def predecessors(self, name: str) -> list[str]:
        """Sorted names of a stage's direct predecessors."""
        return sorted(self._graph.predecessors(name))

    def __len__(self) -> int:
        return len(self._graph)

    # -- volume flow ---------------------------------------------------------

    def stage_volumes(self, input_volume: int) -> dict[str, int]:
        """Predicted input volume of each stage.

        A stage with several predecessors consumes the sum of their
        outputs; roots consume the workflow input.
        """
        volumes: dict[str, int] = {}
        for stage in self.stages():
            preds = self.predecessors(stage.name)
            if preds:
                vin = sum(
                    int(self.stage(p).output_ratio * volumes[p]) for p in preds
                )
            else:
                vin = input_volume
            volumes[stage.name] = vin
        return volumes


def assign_subdeadlines(
    workflow: TextWorkflow,
    input_volume: int,
    deadline: float,
    *,
    hour_align: bool = True,
) -> dict[str, float]:
    """Split ``deadline`` seconds across stages.

    Shares are proportional to each stage's predicted serial work; with
    ``hour_align`` and enough budget, each share is then rounded to a
    whole number of hours (largest-remainder apportionment of
    ``floor(D/1h)`` hours), so no stage's fleet releases instances
    mid-hour.
    """
    if deadline <= 0:
        raise WorkflowError("deadline must be positive")
    stages = workflow.stages()
    if not stages:
        raise WorkflowError("empty workflow")
    volumes = workflow.stage_volumes(input_volume)
    work = {s.name: max(1e-9, float(s.predictor.predict(volumes[s.name])))
            for s in stages}
    total = sum(work.values())
    shares = {n: deadline * w / total for n, w in work.items()}

    whole_hours = int(deadline // HOUR)
    if not hour_align or whole_hours < len(stages):
        return shares

    # Largest-remainder apportionment of whole hours, at least 1 per stage.
    ideal = {n: shares[n] / HOUR for n in shares}
    base = {n: max(1, int(ideal[n])) for n in ideal}
    while sum(base.values()) > whole_hours:
        # take an hour back from the stage with the most slack
        victim = max((n for n in base if base[n] > 1),
                     key=lambda n: base[n] - ideal[n], default=None)
        if victim is None:
            return shares
        base[victim] -= 1
    remaining = whole_hours - sum(base.values())
    # Remainders relative to the *assigned* base (not int(ideal)): a stage
    # bumped to 1 by the minimum already holds more than its share and must
    # rank below genuinely-underfunded stages, or light stages can leapfrog
    # heavy ones (apportionment paradox caught by the property tests).
    by_remainder = sorted(ideal, key=lambda n: ideal[n] - base[n],
                          reverse=True)
    for n in by_remainder[:remaining]:
        base[n] += 1
    return {n: base[n] * HOUR for n in base}


def derived_catalogue(
    source: Catalogue, stage: WorkflowStage, seed_tag: str
) -> Catalogue:
    """The synthetic catalogue a stage's output forms for its dependents.

    Output bytes are apportioned so the catalogue's total is *exactly*
    ``int(source.total_size * stage.output_ratio)`` — the same value
    :meth:`TextWorkflow.stage_volumes` predicts for dependent stages.
    Truncating per file instead (the old behaviour) leaked up to one byte
    per file, so predicted and materialised volumes drifted apart on
    catalogues with many small files and the drift compounded per stage.
    Per-file shares use largest-remainder rounding: floor each share,
    then hand the leftover bytes to the files with the largest fractional
    parts (ties by catalogue order).
    """
    files_in = list(source)
    target = int(source.total_size * stage.output_ratio)
    shares = [f.size * stage.output_ratio for f in files_in]
    sizes = [int(s) for s in shares]
    rem = target - sum(sizes)
    if rem and files_in:
        n = len(files_in)
        # Most-underfunded first for handing out bytes; walk the same
        # ranking backwards to claw bytes back if float error overshot.
        order = sorted(range(n), key=lambda i: sizes[i] - shares[i])
        i = 0
        while rem > 0:
            sizes[order[i % n]] += 1
            rem -= 1
            i += 1
        while rem < 0:
            j = order[-1 - (i % n)]
            if sizes[j] > 0:
                sizes[j] -= 1
                rem += 1
            i += 1
    files = []
    for f, out_size in zip(files_in, sizes):
        if out_size <= 0:
            continue
        stats = f.stats
        if stage.strips_markup and stats.markup_fraction > 0:
            from repro.vfs.files import TextStats

            stats = TextStats(avg_word_len=stats.avg_word_len,
                              avg_sentence_words=stats.avg_sentence_words,
                              markup_fraction=0.0)
        files.append(VirtualFile(
            path=f"{stage.name}/{f.path}",
            size=out_size,
            stats=stats,
            content_seed=stable_seed(f.content_seed, seed_tag),
        ))
    return Catalogue(files, name=f"{source.name}->{stage.name}")


#: Backwards-compatible alias (pre-DAG callers used the private name).
_derived_catalogue = derived_catalogue


@dataclass
class WorkflowReport:
    """Per-stage execution results plus workflow-level rollups."""

    deadline: float
    subdeadlines: dict[str, float]
    stage_reports: dict[str, ExecutionReport] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Critical-path makespan under the per-stage barriers."""
        return sum(r.makespan for r in self.stage_reports.values())

    @property
    def instance_hours(self) -> int:
        return sum(r.instance_hours for r in self.stage_reports.values())

    @property
    def cost(self) -> float:
        return sum(r.cost for r in self.stage_reports.values())

    @property
    def met_deadline(self) -> bool:
        return self.makespan <= self.deadline

    def summary(self) -> dict:
        """Per-stage summaries plus workflow rollups."""
        return {
            "stages": {n: r.summary() for n, r in self.stage_reports.items()},
            "makespan_s": round(self.makespan, 1),
            "deadline_s": self.deadline,
            "met": self.met_deadline,
            "instance_hours": self.instance_hours,
            "cost_usd": round(self.cost, 4),
        }


def execute_workflow(
    cloud: Cloud,
    workflow: TextWorkflow,
    catalogue: Catalogue,
    deadline: float,
    *,
    strategy: str = "uniform",
    hour_align: bool = True,
    service: ExecutionService | None = None,
) -> WorkflowReport:
    """Plan and run every stage against its subdeadline, in DAG order.

    Stages run as barriers (a stage starts when all predecessors finish),
    the simple §7 setting.  Each stage provisions its own fleet through
    :class:`StaticProvisioner`; intermediate catalogues are derived from
    the stage output ratios.
    """
    # Imported here (as in runner.execute) to break the package cycle:
    # runner.core pulls in core.planner, which initialises this module.
    from repro.runner.core import (
        ExecutionCore,
        FleetLaunchAcquisition,
        RunToCompletion,
        StaticCompletion,
    )

    svc = service or ExecutionService(cloud)
    subdeadlines = assign_subdeadlines(workflow, catalogue.total_size, deadline,
                                       hour_align=hour_align)
    report = WorkflowReport(deadline=deadline, subdeadlines=subdeadlines)
    produced: dict[str, Catalogue] = {}
    for stage in workflow.stages():
        preds = workflow.predecessors(stage.name)
        if preds:
            merged: list[VirtualFile] = []
            for p in preds:
                merged.extend(produced[p])
            stage_input = Catalogue(merged, name=f"input->{stage.name}")
        else:
            stage_input = catalogue
        prov = StaticProvisioner(stage.predictor)
        plan = prov.plan(list(stage_input), subdeadlines[stage.name],
                         strategy=strategy)
        core = ExecutionCore(
            cloud, stage.workload, plan,
            acquisition=FleetLaunchAcquisition(),
            progress=RunToCompletion(),
            completion=StaticCompletion(),
            service=svc,
            label=f"workflow.{stage.name}",
        )
        report.stage_reports[stage.name] = core.run().report
        produced[stage.name] = derived_catalogue(stage_input, stage,
                                                 seed_tag=stage.name)
    return report
