"""Data reshaping: merge small files into preferred-size unit files (§1, §4).

"Using the subset-sum first fit heuristic we reshape the input data by
merging files in order to match as closely as possible the desired file
size."  The output is a catalogue of :class:`~repro.vfs.Segment` unit files
that any text application can consume unmodified (concatenation is
transparent to grep and the tagger).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import Unit
from repro.packing import subset_sum_layout
from repro.vfs.files import Catalogue, Segment

__all__ = ["ReshapePlan", "reshape"]


@dataclass(frozen=True)
class ReshapePlan:
    """The result of reshaping a catalogue.

    ``unit_size`` of ``None`` means the original segmentation was kept (the
    Fig. 7 outcome for the POS workload).
    """

    unit_size: int | None
    units: tuple[Unit, ...]
    n_input_files: int

    @property
    def n_units(self) -> int:
        return len(self.units)

    @property
    def total_size(self) -> int:
        return sum(u.size for u in self.units)

    def fill_stats(self) -> dict:
        """How closely unit files match the desired size."""
        if self.unit_size is None or not self.units:
            return {"target": self.unit_size, "mean_fill": None, "min_fill": None}
        fills = np.array([min(1.0, u.size / self.unit_size) for u in self.units])
        return {
            "target": self.unit_size,
            "mean_fill": float(fills.mean()),
            "min_fill": float(fills.min()),
            "oversized_units": int(sum(u.size > self.unit_size for u in self.units)),
        }


def reshape(
    catalogue: Catalogue,
    unit_size: int | None,
    *,
    preserve_order: bool = True,
    name_prefix: str = "reshaped",
) -> ReshapePlan:
    """Merge ``catalogue`` into unit files of ≈``unit_size`` bytes.

    ``unit_size=None`` (or the string label ``"orig"`` upstream) keeps the
    original files untouched.  With ``preserve_order`` the paper's §5.2
    choice is honoured: files are considered "in the order in which they
    are provided" rather than sorted descending, to avoid front-loading
    large files.
    """
    if unit_size is None:
        return ReshapePlan(unit_size=None, units=tuple(catalogue),
                           n_input_files=len(catalogue))
    if unit_size <= 0:
        raise ValueError("unit size must be positive")
    # Columnar fast path: pack the cached size column and regroup the
    # catalogue's files by index — no per-file Item dataclasses, no key dict.
    files = catalogue.files
    layouts = subset_sum_layout(
        catalogue.sizes().tolist(), unit_size,
        preserve_order=preserve_order,
        keys=None if preserve_order else [f.path for f in files],
    )
    units = tuple(
        Segment(name=f"{name_prefix}/unit{i:06d}",
                members=tuple(files[j] for j in l.indices))
        for i, l in enumerate(layouts)
        if l.indices
    )
    return ReshapePlan(unit_size=unit_size, units=units,
                       n_input_files=len(catalogue))
