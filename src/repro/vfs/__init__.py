"""Virtual file system for corpora far larger than local disk.

The paper's data sets (900 GB of HTML, 18 million files) cannot and need not
be materialised: every experiment consumes either (a) file *metadata* — size,
token statistics — or (b) the actual bytes of a *small* probe subset.  This
package provides:

* :class:`VirtualFile` — size + text statistics + a deterministic,
  seed-derived content generator, so ``materialize()`` always yields the
  same bytes without storing them;
* :class:`Segment` — the concatenation of several virtual files, which is
  exactly what the reshaper produces (unit files built by merging);
* :class:`Catalogue` — an ordered collection with totals, slicing, volume
  sampling and histogramming.
"""

from repro.vfs.files import Catalogue, LiteralFile, Segment, TextStats, VirtualFile

__all__ = ["Catalogue", "LiteralFile", "Segment", "TextStats", "VirtualFile"]
