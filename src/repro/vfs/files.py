"""Virtual files, segments and catalogues."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.packing.bins import Item
from repro.sim.random import RngStream

__all__ = ["TextStats", "VirtualFile", "Segment", "Catalogue"]


@dataclass(frozen=True)
class TextStats:
    """Summary text statistics carried as file metadata.

    These drive the POS tagger's work estimate without materialising bytes:
    ``avg_sentence_words`` is the paper's key complexity parameter ("average
    sentence length is an important parameter for POS tagging", §5.2) and
    ``avg_word_len`` converts bytes to token counts.
    """

    avg_word_len: float = 5.0
    avg_sentence_words: float = 18.0
    markup_fraction: float = 0.0  # fraction of bytes that is HTML markup

    def __post_init__(self) -> None:
        if self.avg_word_len <= 0 or self.avg_sentence_words <= 0:
            raise ValueError("text statistics must be positive")
        if not 0.0 <= self.markup_fraction < 1.0:
            raise ValueError("markup fraction must be in [0, 1)")

    def tokens_in(self, n_bytes: int) -> int:
        """Estimated token count in ``n_bytes`` of this text."""
        text_bytes = n_bytes * (1.0 - self.markup_fraction)
        return int(text_bytes / (self.avg_word_len + 1.0))  # +1 for separator

    def sentences_in(self, n_bytes: int) -> int:
        """Estimated sentence count in ``n_bytes`` of this text."""
        return max(1, int(self.tokens_in(n_bytes) / self.avg_sentence_words)) if n_bytes else 0


@dataclass(frozen=True)
class VirtualFile:
    """One corpus file: metadata always available, bytes generated on demand.

    ``content_seed`` plus the (pluggable) generator make materialisation
    deterministic: the same file always renders to the same bytes.
    """

    path: str
    size: int
    stats: TextStats = field(default_factory=TextStats)
    content_seed: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"file {self.path!r} has negative size")

    # -- packing interop ---------------------------------------------------

    def as_item(self) -> Item:
        """Packing-layer view of this file."""
        return Item(key=self.path, size=self.size)

    # -- materialisation ---------------------------------------------------

    def materialize(self, renderer: Callable[["VirtualFile"], bytes] | None = None) -> bytes:
        """Render this file's bytes (deterministic in ``content_seed``).

        A custom ``renderer`` may be supplied (the corpus package installs a
        realistic text renderer); the default emits seeded pseudo-text that
        honours the size exactly.
        """
        if renderer is not None:
            data = renderer(self)
        else:
            from repro.corpus.text import render_virtual_file

            data = render_virtual_file(self)
        if len(data) != self.size:
            raise ValueError(
                f"renderer produced {len(data)} bytes for {self.path!r}, expected {self.size}"
            )
        return data


@dataclass(frozen=True)
class LiteralFile(VirtualFile):
    """A virtual file with its exact bytes attached.

    Used where the *same* content must feed both the native application and
    the metadata estimator (the novels experiment, targeted unit tests).
    """

    content: bytes = b""

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.content) != self.size:
            raise ValueError(
                f"literal file {self.path!r}: content is {len(self.content)} bytes, "
                f"size says {self.size}"
            )

    @classmethod
    def from_text(cls, path: str, text: str, stats: TextStats | None = None) -> "LiteralFile":
        data = text.encode("ascii")
        return cls(path=path, size=len(data), stats=stats or TextStats(), content=data)

    def materialize(self, renderer=None) -> bytes:
        """Render this unit's exact bytes."""
        return self.content


@dataclass(frozen=True)
class Segment:
    """A reshaped unit file: the concatenation of member virtual files.

    The paper's applications "do not need to be further modified to be
    capable to consume the concatenated larger input files" (§1), so a
    segment materialises as members joined by a newline.
    """

    name: str
    members: tuple[VirtualFile, ...]

    @property
    def size(self) -> int:
        # Separator newlines between members count toward nothing in the
        # paper's accounting; keep size as the exact member sum.
        return sum(m.size for m in self.members)

    @property
    def n_members(self) -> int:
        return len(self.members)

    def stats(self) -> TextStats:
        """Volume-weighted aggregate statistics of the members."""
        total = self.size
        if total == 0:
            return TextStats()
        w = [m.size / total for m in self.members]
        return TextStats(
            avg_word_len=sum(wi * m.stats.avg_word_len for wi, m in zip(w, self.members)),
            avg_sentence_words=sum(
                wi * m.stats.avg_sentence_words for wi, m in zip(w, self.members)
            ),
            markup_fraction=sum(wi * m.stats.markup_fraction for wi, m in zip(w, self.members)),
        )

    def materialize(self) -> bytes:
        """Render this unit's exact bytes."""
        return b"\n".join(m.materialize() for m in self.members) if self.members else b""


class Catalogue:
    """Ordered, immutable-ish collection of virtual files.

    Supports the operations the experiments need: totals, slicing by count
    or by volume (probe construction, §4), random volume samples without
    replacement (§5.1/§5.2 refits), and size histograms (Fig. 1).
    """

    def __init__(self, files: Iterable[VirtualFile], name: str = "catalogue") -> None:
        self._files: list[VirtualFile] = list(files)
        self.name = name
        seen: set[str] = set()
        for f in self._files:
            if f.path in seen:
                raise ValueError(f"duplicate path in catalogue: {f.path!r}")
            seen.add(f.path)
        self._sizes = np.array([f.size for f in self._files], dtype=np.int64)
        self._cum = np.cumsum(self._sizes) if self._files else np.array([])
        self._fingerprint: str | None = None

    # -- basics ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._files)

    def __iter__(self) -> Iterator[VirtualFile]:
        return iter(self._files)

    def __getitem__(self, idx: int) -> VirtualFile:
        return self._files[idx]

    @property
    def files(self) -> Sequence[VirtualFile]:
        return tuple(self._files)

    @property
    def total_size(self) -> int:
        return int(self._cum[-1]) if len(self._files) else 0

    @property
    def max_file_size(self) -> int:
        return int(self._sizes.max()) if len(self._files) else 0

    def items(self) -> list[Item]:
        """Packing items for every file, in order."""
        return [f.as_item() for f in self._files]

    def sizes(self) -> np.ndarray:
        """File sizes in catalogue order as a cached ``np.int64`` column.

        This is the packing engine's fast path: the ``*_layout`` kernels
        consume it directly, so reshaping and provisioning never materialise
        per-file :class:`Item` dataclasses.  Treat the array as read-only.
        """
        return self._sizes

    def fingerprint(self) -> str:
        """Content hash of the size column, for packing-cache keys.

        Layouts produced by the engine's order-preserving kernels are pure
        functions of the size column, so catalogues with equal columns may
        share cached packings regardless of path names.
        """
        if self._fingerprint is None:
            import hashlib

            h = hashlib.blake2b(digest_size=16)
            h.update(len(self._files).to_bytes(8, "little"))
            h.update(self._sizes.tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    # -- probe/sample construction ------------------------------------------

    def head_by_volume(self, volume: int) -> "Catalogue":
        """Smallest prefix (in original order) reaching at least ``volume``.

        This is how §4 builds ``P^V_orig``: take the data "in its original
        form" up to the requested probe volume.
        """
        if volume <= 0:
            return Catalogue([], name=f"{self.name}[:0B]")
        if volume >= self.total_size:
            return Catalogue(self._files, name=f"{self.name}[:all]")
        k = int(bisect.bisect_left(self._cum, volume)) + 1
        return Catalogue(self._files[:k], name=f"{self.name}[:{volume}B]")

    def sample_by_volume(
        self, volume: int, rng: RngStream, *, exclude: set[str] | None = None
    ) -> "Catalogue":
        """Random sample of ≈``volume`` bytes without replacement.

        Files already in ``exclude`` are never drawn, supporting the paper's
        repeated non-overlapping samples ("10 random samples (without
        replacement) of 2 GB", §5.1).
        """
        if volume < 0:
            raise ValueError("sample volume must be non-negative")
        pool = [f for f in self._files if not exclude or f.path not in exclude]
        order = list(range(len(pool)))
        rng.shuffle(order)
        picked: list[VirtualFile] = []
        acc = 0
        for i in order:
            if acc >= volume:
                break
            picked.append(pool[i])
            acc += pool[i].size
        # Restore catalogue order so downstream packing sees original order.
        picked.sort(key=lambda f: f.path)
        return Catalogue(picked, name=f"{self.name}[sample {volume}B]")

    def filter(self, predicate) -> "Catalogue":
        """Files satisfying ``predicate`` (original order preserved)."""
        return Catalogue([f for f in self._files if predicate(f)],
                         name=f"{self.name}[filtered]")

    def sorted_by_size(self, *, descending: bool = False) -> "Catalogue":
        """Size-ordered copy (the paper builds initial probes 'among the
        smallest' files, §4)."""
        ordered = sorted(self._files, key=lambda f: (f.size, f.path),
                         reverse=descending)
        return Catalogue(ordered, name=f"{self.name}[by-size]")

    @staticmethod
    def concat(parts: Sequence["Catalogue"], name: str = "concat") -> "Catalogue":
        """Concatenate catalogues (paths must stay globally unique)."""
        files: list[VirtualFile] = []
        for p in parts:
            files.extend(p)
        return Catalogue(files, name=name)

    def partition_volumes(self, n_parts: int) -> list["Catalogue"]:
        """Split into ``n_parts`` contiguous, ≈equal-volume catalogues.

        Models staging data "equally across 100 EBS storage volumes" (§5.1).
        """
        from repro.packing import uniform_layout

        layouts = uniform_layout(self._sizes.tolist(), n_bins=n_parts,
                                 preserve_order=True)
        return [
            Catalogue(
                [self._files[j] for j in l.indices], name=f"{self.name}/part{i}"
            )
            for i, l in enumerate(layouts)
        ]

    # -- analytics -----------------------------------------------------------

    def size_histogram(self, bin_width: int, max_size: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Frequency distribution of file sizes (Fig. 1).

        Returns ``(bin_edges, counts)`` with edges at multiples of
        ``bin_width``; sizes beyond ``max_size`` are excluded from the plot
        (the paper shows Fig. 1(a) "up to files of size 300 kB").
        """
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        sizes = self._sizes
        if max_size is not None:
            sizes = sizes[sizes <= max_size]
        if sizes.size == 0:
            return np.array([0, bin_width]), np.array([0])
        top = int(sizes.max() // bin_width + 1) * bin_width
        edges = np.arange(0, top + bin_width, bin_width)
        counts, _ = np.histogram(sizes, bins=edges)
        return edges, counts

    def describe(self) -> dict:
        """Summary row used by the dataset figures and EXPERIMENTS.md."""
        sizes = self._sizes
        if sizes.size == 0:
            return {"name": self.name, "files": 0, "total": 0}
        return {
            "name": self.name,
            "files": int(sizes.size),
            "total": int(sizes.sum()),
            "mean": float(sizes.mean()),
            "median": float(np.median(sizes)),
            "max": int(sizes.max()),
            "p90": float(np.percentile(sizes, 90)),
        }
