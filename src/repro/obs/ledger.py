"""Persistent run ledger — the flight recorder behind every runner.

Every runner/experiment/sweep invocation can emit a schema-versioned
:class:`RunRecord` — config + seed + scheduler, the metrics registry's
``dump()``, span-stat rollups, billing totals, deadline outcomes, and a
wall-time/simulated-time phase profile — appended as one JSON line to a
ledger under ``.repro/runs/``.  The ledger is the queryable history the
SLO engine (:mod:`repro.obs.slo`) evaluates over and the diff engine
(:mod:`repro.obs.diff`) compares runs from.

Activation is explicit, mirroring the metrics/trace default bundle: the
module default ledger starts as ``None`` (nothing is written), the CLI
installs a file-backed ledger per invocation, and tests capture records
in-memory with :func:`capture_runs`.  Emission sites (``runner/core.py``,
``runner/columnar.py``, the sweep harness, the experiments) all guard on
``get_run_ledger() is not None`` so un-ledgered runs pay one global read.

Determinism note: ``run_id`` and ``created_at`` identify a record and are
wall-clock flavoured; everything the diff engine treats as *deterministic*
(metrics, spans, billing, deadline, sim-time profile) is bit-reproducible
for a fixed seed.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterator

from repro.obs import get_obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "SCHEMA_VERSION", "RunRecord", "RunLedger", "LedgerError",
    "get_run_ledger", "set_run_ledger", "configure_run_ledger",
    "capture_runs", "record_experiment",
    "encode_metrics_dump", "decode_metrics_dump", "span_rollup",
]

#: Bumped whenever RunRecord's serialized shape changes incompatibly.
SCHEMA_VERSION = 1

DEFAULT_ROOT = ".repro/runs"
LEDGER_FILENAME = "ledger.jsonl"


class LedgerError(ValueError):
    """Unresolvable run reference, malformed record, or bad ledger root."""


# -- serialization helpers ------------------------------------------------

def _jsonable(value: Any) -> Any:
    """Recursively coerce to plain JSON types (numpy scalars duck-typed)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):        # numpy scalar without importing numpy
        return _jsonable(value.item())
    return str(value)


def encode_metrics_dump(rows: list) -> list:
    """JSON-safe form of :meth:`MetricsRegistry.dump` (tuples → lists).

    Python's ``json`` round-trips finite floats exactly and writes
    ``Infinity`` for the empty-histogram sentinels, so the encoded rows
    decode back bit-identical (see :func:`decode_metrics_dump`).
    """
    out = []
    for name, labels, kind, state in rows:
        if kind == "histogram":
            bounds, counts, count, total, vmin, vmax = state
            enc_state = [list(bounds), list(counts), count, total, vmin, vmax]
        else:
            enc_state = state
        out.append([name, [[str(k), _jsonable(v)] for k, v in labels],
                    kind, enc_state])
    return out


def decode_metrics_dump(rows: list) -> list:
    """Inverse of :func:`encode_metrics_dump`: rows ready for ``merge_dump``."""
    out = []
    for name, labels, kind, state in rows:
        if kind == "histogram":
            bounds, counts, count, total, vmin, vmax = state
            dec_state = (tuple(bounds), tuple(counts), count, total, vmin, vmax)
        else:
            dec_state = state
        out.append((name, tuple((k, v) for k, v in labels), kind, dec_state))
    return out


def span_rollup(tracer: Tracer) -> dict[str, dict[str, float]]:
    """Per-name span stats straight off the raw tuples (no materialisation)."""
    out: dict[str, dict[str, float]] = {}
    for row in tracer._raw_spans:
        name, t0, t1 = row[0], row[2], row[3]
        agg = out.get(name)
        if agg is None:
            agg = out[name] = {"count": 0, "total_s": 0.0}
        agg["count"] += 1
        agg["total_s"] += t1 - t0
    return out


# -- the record -----------------------------------------------------------

@dataclass
class RunRecord:
    """One run's flight-recorder entry (see module docstring for fields)."""

    kind: str                       # "runner" | "columnar" | "sweep-cell" | ...
    label: str                      # entry point / experiment name
    run_id: str = ""                # assigned by the ledger on append if empty
    created_at: str = ""            # ISO-8601 UTC wall clock
    schema_version: int = SCHEMA_VERSION
    config: dict = field(default_factory=dict)
    metrics: list = field(default_factory=list)      # encoded dump rows
    spans: dict = field(default_factory=dict)        # name -> {count, total_s}
    billing: dict = field(default_factory=dict)      # BillingLedger.summary()
    deadline: dict = field(default_factory=dict)     # outcome fields
    profile: dict = field(default_factory=dict)      # wall/sim phase profile
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready mapping of this record (inverse of ``from_dict``)."""
        return {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "kind": self.kind,
            "label": self.label,
            "created_at": self.created_at,
            "config": _jsonable(self.config),
            "metrics": self.metrics,
            "spans": _jsonable(self.spans),
            "billing": _jsonable(self.billing),
            "deadline": _jsonable(self.deadline),
            "profile": _jsonable(self.profile),
            "extra": _jsonable(self.extra),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunRecord":
        try:
            return cls(
                kind=d["kind"], label=d["label"],
                run_id=d.get("run_id", ""),
                created_at=d.get("created_at", ""),
                schema_version=d.get("schema_version", SCHEMA_VERSION),
                config=d.get("config", {}) or {},
                metrics=d.get("metrics", []) or [],
                spans=d.get("spans", {}) or {},
                billing=d.get("billing", {}) or {},
                deadline=d.get("deadline", {}) or {},
                profile=d.get("profile", {}) or {},
                extra=d.get("extra", {}) or {},
            )
        except KeyError as exc:
            raise LedgerError(f"run record missing field {exc}") from None

    # -- queries ----------------------------------------------------------

    def metric_rows(self) -> list:
        """Decoded dump rows (merge-ready tuples)."""
        return decode_metrics_dump(self.metrics)

    def metrics_registry(self) -> MetricsRegistry:
        """A fresh registry holding this record's metrics."""
        reg = MetricsRegistry()
        reg.merge_dump(self.metric_rows())
        return reg

    def metric_value(self, name: str, **labels: Any) -> float:
        """Counter/gauge value for a series (0.0 if absent)."""
        want = tuple(sorted((str(k), _jsonable(v)) for k, v in labels.items()))
        for rname, rlabels, kind, state in self.metric_rows():
            if rname == name and tuple(sorted(rlabels)) == want \
                    and kind != "histogram":
                return state
        return 0.0

    def get(self, path: str, default: Any = None) -> Any:
        """Dotted-path lookup into the record dict (``"billing.cost_usd"``)."""
        node: Any = self.to_dict()
        for part in path.split("."):
            if not isinstance(node, dict) or part not in node:
                return default
            node = node[part]
        return node


# -- the ledger -----------------------------------------------------------

class RunLedger:
    """Append-only JSONL run ledger; file-backed or in-memory.

    With ``root`` set, every append writes one line to
    ``root/ledger.jsonl`` (created on first append) and reads re-scan the
    file, so concurrent appenders interleave safely at line granularity.
    With ``root=None`` the ledger is a plain in-memory buffer — the shape
    sweep workers and tests use.
    """

    def __init__(self, root: str | os.PathLike | None = DEFAULT_ROOT, *,
                 filename: str = LEDGER_FILENAME) -> None:
        self.root = Path(root) if root is not None else None
        self.filename = filename
        self._buffer: list[RunRecord] = []

    @property
    def path(self) -> Path | None:
        return self.root / self.filename if self.root is not None else None

    def __len__(self) -> int:
        return len(self.records())

    # -- writing ----------------------------------------------------------

    def append(self, record: RunRecord) -> RunRecord:
        """Stamp identity fields if unset, persist, and return the record."""
        if not record.created_at:
            record.created_at = datetime.now(timezone.utc).isoformat(
                timespec="seconds")
        if not record.run_id:
            n = len(self._buffer) if self.root is None else self._count_lines()
            record.run_id = f"{record.label}-{n + 1:04d}"
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            line = json.dumps(record.to_dict(), sort_keys=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        else:
            self._buffer.append(record)
        obs = get_obs()
        if obs.metrics.enabled:
            obs.metrics.counter("obs.ledger.records", kind=record.kind).inc()
        return record

    def _count_lines(self) -> int:
        path = self.path
        if path is None or not path.exists():
            return 0
        with open(path, "rb") as fh:
            return sum(1 for _ in fh)

    # -- reading ----------------------------------------------------------

    def _iter_records(self) -> Iterator[RunRecord]:
        if self.root is None:
            yield from self._buffer
            return
        path = self.path
        if path is None or not path.exists():
            return
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield RunRecord.from_dict(json.loads(line))
                except (json.JSONDecodeError, LedgerError) as exc:
                    raise LedgerError(
                        f"{path}:{lineno}: malformed run record: {exc}"
                    ) from None

    def records(self, *, kind: str | None = None,
                label: str | None = None) -> list[RunRecord]:
        """All records, oldest first, optionally filtered."""
        out = list(self._iter_records())
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if label is not None:
            out = [r for r in out if r.label == label]
        return out

    def resolve(self, ref: str, *, label: str | None = None) -> RunRecord:
        """A record by ``run_id``, or by negative index (``-1`` = latest)."""
        records = self.records(label=label)
        if not records:
            raise LedgerError("ledger is empty"
                              + (f" (path {self.path})" if self.path else ""))
        for rec in records:
            if rec.run_id == ref:
                return rec
        try:
            idx = int(ref)
        except ValueError:
            raise LedgerError(
                f"no run {ref!r} in ledger"
                + (f" (path {self.path})" if self.path else "")) from None
        try:
            return records[idx]
        except IndexError:
            raise LedgerError(
                f"index {idx} out of range for {len(records)} records"
            ) from None


# -- module default -------------------------------------------------------

_active: RunLedger | None = None


def get_run_ledger() -> RunLedger | None:
    """The module-default ledger emission sites write to (None = off)."""
    return _active


def set_run_ledger(ledger: RunLedger | None) -> RunLedger | None:
    """Install ``ledger`` as the default; returns the previous one."""
    global _active
    previous, _active = _active, ledger
    return previous


def configure_run_ledger(root: str | os.PathLike = DEFAULT_ROOT) -> RunLedger:
    """Install a file-backed default ledger under ``root`` and return it."""
    ledger = RunLedger(root)
    set_run_ledger(ledger)
    return ledger


@contextmanager
def capture_runs() -> Iterator[RunLedger]:
    """Install an in-memory default ledger for the ``with`` body."""
    ledger = RunLedger(None)
    previous = set_run_ledger(ledger)
    try:
        yield ledger
    finally:
        set_run_ledger(previous)


def record_experiment(label: str, *, config: dict | None = None,
                      extra: dict | None = None,
                      deadline: dict | None = None,
                      billing: dict | None = None,
                      kind: str = "experiment") -> RunRecord | None:
    """Append an experiment-level record to the active ledger (no-op if off).

    The experiments call this once per figure with their headline stats in
    ``extra`` — cell-level records are emitted by the runners/sweep
    underneath, so this is the roll-up row a ``runs list`` shows.
    """
    ledger = get_run_ledger()
    if ledger is None:
        return None
    obs = get_obs()
    record = RunRecord(
        kind=kind, label=label,
        config=config or {},
        metrics=(encode_metrics_dump(obs.metrics.dump())
                 if obs.metrics.enabled else []),
        spans=span_rollup(obs.tracer) if obs.tracer.enabled else {},
        deadline=deadline or {},
        billing=billing or {},
        extra=extra or {},
    )
    return ledger.append(record)
