"""Counters, gauges and fixed-bucket histograms with labelled series.

Metric names follow the ``layer.component.name`` convention (lowercase,
dot-separated, at least two dots' worth of structure is encouraged but two
segments are accepted): ``packing.cache.hits``, ``runner.deadline.margin``,
``cloud.instance.boot_seconds``.  A *series* is a name plus a sorted label
set (``heuristic=subset_sum``); asking for the same series twice returns
the same instrument, so hot paths can keep a reference and skip the lookup
entirely.

The registry is deliberately primitive: plain Python attributes, no locks,
no background threads.  ``snapshot()`` returns nested plain dicts (JSON-
ready); ``merge()`` folds another registry's snapshot in (counters and
histograms add, gauges take the incoming value), which is what a sharded
or multi-process campaign will need.

Disabled fast path: a registry created with ``enabled=False`` hands out
shared null instruments whose ``inc``/``set``/``observe`` are no-ops, so
instrumented code never needs an ``if`` at the call site.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Iterator

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_BUCKETS", "MetricsError",
]

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: Default histogram bucket upper bounds (seconds-flavoured; an implicit
#: +inf overflow bucket always follows the last bound).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0, 3600.0,
)


class MetricsError(ValueError):
    """Bad metric name, label clash, or incompatible merge."""


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise MetricsError("counters only go up")
        self.value += n


class Gauge:
    """Last-written value (deadline margin, cache size, …)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, v: float) -> None:
        """Overwrite the gauge with ``v``."""
        self.value = float(v)

    def add(self, d: float) -> None:
        """Shift the gauge by ``d`` (either sign)."""
        self.value += d


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow.

    Buckets are chosen at creation and never change, so two snapshots of
    the same series merge bucket-wise with no re-binning.
    """

    __slots__ = ("bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricsError("histogram bounds must be sorted and unique")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)   # last = overflow
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, v: float) -> None:
        """Record one sample into its bucket and the running stats."""
        self.counts[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.total += v
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-ready dump: count/sum/min/max plus non-empty buckets."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "buckets": {
                ("inf" if i == len(self.bounds) else repr(self.bounds[i])): c
                for i, c in enumerate(self.counts) if c
            },
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: float = 1.0) -> None:  # noqa: ARG002
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, v: float) -> None:  # noqa: ARG002
        pass

    def add(self, d: float) -> None:  # noqa: ARG002
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, v: float) -> None:  # noqa: ARG002
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def series_key(name: str, labels: dict) -> str:
    """Canonical printable series id: ``name{k=v,…}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Registry of labelled counter/gauge/histogram series."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._series: dict[tuple[str, tuple[tuple[str, Any], ...]], Any] = {}
        self._kinds: dict[str, str] = {}

    # -- instrument access ------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter series for ``name`` + ``labels`` (created on first use)."""
        if not self.enabled:
            return _NULL_COUNTER
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge series for ``name`` + ``labels`` (created on first use)."""
        if not self.enabled:
            return _NULL_GAUGE
        return self._get("gauge", name, labels)

    def histogram(self, name: str, *, buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        """The histogram series for ``name`` + ``labels``; ``buckets`` apply
        only on first creation (bounds are fixed for a series' lifetime)."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        key = (name, tuple(sorted(labels.items())))
        found = self._series.get(key)
        if found is None:
            self._check(name, "histogram")
            found = self._series[key] = Histogram(buckets)
        elif self._kinds[name] != "histogram":
            raise MetricsError(
                f"{name!r} is already a {self._kinds[name]}, not a histogram")
        return found

    def _get(self, kind: str, name: str, labels: dict) -> Any:
        # Unlabelled series (the hot-path majority) skip the sort.
        key = (name, ()) if not labels else (name, tuple(sorted(labels.items())))
        found = self._series.get(key)
        if found is None:
            self._check(name, kind)
            found = self._series[key] = _KINDS[kind]()
        elif self._kinds[name] != kind:
            raise MetricsError(
                f"{name!r} is already a {self._kinds[name]}, not a {kind}")
        return found

    def _check(self, name: str, kind: str) -> None:
        if not _NAME_RE.match(name):
            raise MetricsError(
                f"metric name {name!r} violates the layer.component.name "
                "convention (lowercase dot-separated segments)")
        known = self._kinds.setdefault(name, kind)
        if known != kind:
            raise MetricsError(f"{name!r} is already a {known}, not a {kind}")

    # -- inspection -------------------------------------------------------

    def series(self) -> Iterator[tuple[str, str, Any]]:
        """Yield ``(kind, series_id, instrument)`` sorted by series id."""
        items = [
            (self._kinds[name], series_key(name, dict(labels)), inst)
            for (name, labels), inst in self._series.items()
        ]
        yield from sorted(items, key=lambda t: t[1])

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter/gauge series (0.0 if never touched)."""
        inst = self._series.get((name, tuple(sorted(labels.items()))))
        return inst.value if inst is not None else 0.0

    def snapshot(self) -> dict:
        """Nested JSON-ready dump: kind -> series id -> value/dict."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for kind, sid, inst in self.series():
            if kind == "counter":
                out["counters"][sid] = inst.value
            elif kind == "gauge":
                out["gauges"][sid] = inst.value
            else:
                out["histograms"][sid] = inst.to_dict()
        return out

    # -- lifecycle --------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` in: counters/histograms add, gauges overwrite."""
        for key, inst in other._series.items():
            name = key[0]
            kind = other._kinds[name]
            mine = self._series.get(key)
            if mine is None:
                self._check(name, kind)
                if kind == "histogram":
                    mine = self._series[key] = Histogram(inst.bounds)
                else:
                    mine = self._series[key] = _KINDS[kind]()
            elif self._kinds[name] != kind:
                raise MetricsError(f"merge: {name!r} kind mismatch")
            if kind == "counter":
                mine.inc(inst.value)
            elif kind == "gauge":
                mine.set(inst.value)
            else:
                if mine.bounds != inst.bounds:
                    raise MetricsError(f"merge: {name!r} bucket bounds differ")
                for i, c in enumerate(inst.counts):
                    mine.counts[i] += c
                mine.count += inst.count
                mine.total += inst.total
                mine.vmin = min(mine.vmin, inst.vmin)
                mine.vmax = max(mine.vmax, inst.vmax)

    def dump(self) -> list:
        """Picklable flat dump for cross-process merging.

        Each row is ``(name, labels, kind, state)`` with ``state`` a plain
        tuple — no instrument objects cross the process boundary.  The
        multiprocess sweep harness ships worker registries back as dumps
        and folds them into the parent with :meth:`merge_dump`.
        """
        rows = []
        for (name, labels), inst in self._series.items():
            kind = self._kinds[name]
            if kind == "histogram":
                state = (inst.bounds, tuple(inst.counts), inst.count,
                         inst.total, inst.vmin, inst.vmax)
            else:
                state = inst.value
            rows.append((name, labels, kind, state))
        return rows

    def merge_dump(self, rows: list) -> None:
        """Fold a :meth:`dump` in (same semantics as :meth:`merge`).

        Accepts rows that round-tripped through JSON (the run ledger's
        encoding turns label tuples into lists), so label pairs are
        re-normalised to hashable tuples here.
        """
        for name, labels, kind, state in rows:
            key = (name, tuple((k, v) for k, v in labels))
            mine = self._series.get(key)
            if mine is None:
                self._check(name, kind)
                if kind == "histogram":
                    mine = self._series[key] = Histogram(tuple(state[0]))
                else:
                    mine = self._series[key] = _KINDS[kind]()
            elif self._kinds[name] != kind:
                raise MetricsError(f"merge: {name!r} kind mismatch")
            if kind == "counter":
                mine.inc(state)
            elif kind == "gauge":
                mine.set(state)
            else:
                bounds, counts, count, total, vmin, vmax = state
                if mine.bounds != tuple(bounds):
                    raise MetricsError(f"merge: {name!r} bucket bounds differ")
                for i, c in enumerate(counts):
                    mine.counts[i] += c
                mine.count += count
                mine.total += total
                mine.vmin = min(mine.vmin, vmin)
                mine.vmax = max(mine.vmax, vmax)

    def reset(self) -> None:
        """Forget every series and kind registration."""
        self._series.clear()
        self._kinds.clear()
