"""Exporters: Chrome ``trace_event`` JSON, JSONL streams, ASCII tables.

The Chrome format (loadable in ``chrome://tracing`` or Perfetto) maps the
tracer's model directly: each track becomes a named thread, positive-length
spans become matched ``B``/``E`` begin/end pairs, zero-length spans (common
on simulated time: packing happens "between ticks") become ``X`` complete
events with ``dur: 0``, and instants become ``i`` events.  Timestamps are
microseconds; simulated seconds are scaled by 1e6, so one simulated second
reads as one second in the viewer.

Event ordering at equal timestamps is chosen so nesting stays valid:
ends sort before begins, outer spans open first and close last.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "chrome_trace_events", "to_chrome_trace", "write_chrome_trace",
    "iter_jsonl_lines", "write_jsonl", "render_metrics_table",
]

_US = 1e6  # seconds -> trace_event microseconds
_PID = 1


def _tid_map(tracer: Tracer) -> dict[str, int]:
    return {track: i + 1 for i, track in enumerate(tracer.tracks())}


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """All trace events, metadata first, payload sorted by timestamp."""
    tids = _tid_map(tracer)
    events: list[dict] = [
        {"ph": "M", "pid": _PID, "tid": tid, "ts": 0,
         "name": "thread_name", "args": {"name": track}}
        for track, tid in tids.items()
    ]

    # key: (ts_us, end-before-begin, nesting tie-break, record tie-break)
    keyed: list[tuple[tuple, dict]] = []
    for idx, s in enumerate(tracer.spans):
        tid = tids[s.track]
        t0, t1 = s.t0 * _US, s.t1 * _US
        base = {"pid": _PID, "tid": tid, "name": s.name, "cat": s.cat or "span"}
        if t1 > t0:
            keyed.append(((t0, 1, -t1, -idx),
                          {**base, "ph": "B", "ts": t0, "args": s.args}))
            keyed.append(((t1, 0, -t0, idx), {**base, "ph": "E", "ts": t1}))
        else:
            keyed.append(((t0, 1, -t0, -idx),
                          {**base, "ph": "X", "ts": t0, "dur": 0,
                           "args": s.args}))
    for idx, i in enumerate(tracer.instants):
        ts = i.t * _US
        keyed.append(((ts, 1, -ts, idx),
                      {"ph": "i", "pid": _PID, "tid": tids[i.track],
                       "name": i.name, "cat": i.cat or "instant", "ts": ts,
                       "s": "t", "args": i.args}))

    keyed.sort(key=lambda kv: kv[0])
    events.extend(ev for _, ev in keyed)
    return events


def to_chrome_trace(tracer: Tracer) -> dict:
    """The full ``trace_event`` document as a plain dict."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated-seconds",
            "spans": tracer.span_count,
            "instants": len(tracer.instants),
            "dropped": tracer.dropped,
        },
    }


def write_chrome_trace(tracer: Tracer, path) -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    p = Path(path)
    p.write_text(json.dumps(to_chrome_trace(tracer)), encoding="utf-8")
    return p


# -- JSONL -----------------------------------------------------------------


def iter_jsonl_lines(tracer: Tracer) -> Iterator[str]:
    """One JSON object per record, time-ordered, spans and instants mixed."""
    records: list[tuple[float, dict]] = []
    for s in tracer.spans:
        records.append((s.t0, {"type": "span", "name": s.name, "cat": s.cat,
                               "t0": s.t0, "t1": s.t1, "track": s.track,
                               "depth": s.depth, "args": s.args}))
    for i in tracer.instants:
        records.append((i.t, {"type": "instant", "name": i.name, "cat": i.cat,
                              "t": i.t, "track": i.track, "args": i.args}))
    records.sort(key=lambda r: r[0])
    for _, rec in records:
        yield json.dumps(rec)


def write_jsonl(tracer: Tracer, path) -> Path:
    """Write the JSONL event log; returns the path written."""
    p = Path(path)
    p.write_text("\n".join(iter_jsonl_lines(tracer)) + "\n", encoding="utf-8")
    return p


# -- ASCII metrics table ---------------------------------------------------


def _fmt(v: float) -> str:
    if isinstance(v, float) and v != int(v):
        return f"{v:,.4g}"
    return f"{int(v):,}"


def render_metrics_table(metrics: MetricsRegistry, *,
                         title: str = "metrics") -> str:
    """Aligned text table in the style of ``report.figures.render_ascii``."""
    rows = list(metrics.series())
    out = [f"== {title} =="]
    if not rows:
        out.append("   (no series recorded)")
        return "\n".join(out)
    sid_w = max(len(sid) for _, sid, _ in rows)
    for kind, sid, inst in rows:
        if kind in ("counter", "gauge"):
            out.append(f"   {sid:<{sid_w}}  {_fmt(inst.value):>12}  [{kind}]")
        else:
            if inst.count:
                detail = (f"n={inst.count} mean={inst.mean:.4g} "
                          f"min={inst.vmin:.4g} max={inst.vmax:.4g}")
            else:
                detail = "n=0"
            out.append(f"   {sid:<{sid_w}}  {detail}  [histogram]")
    return "\n".join(out)
