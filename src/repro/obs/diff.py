"""Run diffing and perf-regression gating over ledger records.

:func:`diff_runs` compares two :class:`~repro.obs.ledger.RunRecord`\\ s
field by field, splitting the comparison into two families:

* **deterministic** fields — metric series (counter/gauge values and
  histogram state), span-count rollups, billing totals, deadline
  outcomes, and *simulated-time* profile fields.  For a fixed seed these
  are bit-reproducible, so two identical-seed runs must diff **clean**:
  zero deltas beyond the (tight, default 5%) threshold and bit-identical
  metric dumps.
* **perf** fields — wall-clock profile numbers (``wall_s``,
  ``events_per_s`` and phase wall times).  These are noisy, direction-
  aware (wall time regresses *up*, throughput regresses *down*), and
  judged against a looser threshold (default 15%, matching the CI
  regression gate).

:func:`regression_gate` applies the same direction-aware 15% rule to a
committed baseline (the BENCH trajectory) vs. freshly measured values —
the check CI runs so the bench trajectory maintains itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.obs.ledger import RunRecord
from repro.obs.metrics import series_key

__all__ = [
    "Delta", "RunDiff", "diff_runs", "render_diff_table",
    "GateViolation", "regression_gate", "render_gate_report",
]

#: Profile keys judged as perf (wall-clock flavoured) rather than
#: deterministic; everything else in ``profile`` diffs strictly.
PERF_PROFILE_KEYS = ("wall_s", "events_per_s")


@dataclass
class Delta:
    """One numeric field that differs between the two runs."""

    field: str
    a: float
    b: float
    direction: str = "either"    # "lower" / "higher" = better; "either"

    @property
    def abs_delta(self) -> float:
        return self.b - self.a

    @property
    def rel_delta(self) -> float | None:
        """Relative change vs. run A (None when A is zero)."""
        if self.a == 0:
            return None
        return (self.b - self.a) / abs(self.a)

    def exceeds(self, threshold: float) -> bool:
        """True when the relative change is beyond ``threshold`` either way."""
        rel = self.rel_delta
        if rel is None:
            return self.b != self.a
        return abs(rel) > threshold

    def regressed(self, threshold: float) -> bool:
        """Worse than A beyond ``threshold`` in this field's direction."""
        rel = self.rel_delta
        if rel is None:
            return self.b != self.a and self.direction != "either"
        if self.direction == "lower":      # lower is better: growth regresses
            return rel > threshold
        if self.direction == "higher":     # higher is better: drop regresses
            return rel < -threshold
        return abs(rel) > threshold

    def to_dict(self) -> dict:
        """JSON-ready mapping of this delta."""
        return {"field": self.field, "a": self.a, "b": self.b,
                "abs": self.abs_delta, "rel": self.rel_delta,
                "direction": self.direction}


def _numeric_items(d: Mapping, prefix: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for key, value in d.items():
        path = f"{prefix}.{key}"
        if isinstance(value, bool):
            out[path] = float(value)
        elif isinstance(value, (int, float)):
            out[path] = float(value)
        elif isinstance(value, dict):
            out.update(_numeric_items(value, path))
    return out


def _deltas(a: Mapping, b: Mapping, prefix: str, *,
            directions: Mapping[str, str] | None = None) -> list[Delta]:
    fa, fb = _numeric_items(a, prefix), _numeric_items(b, prefix)
    out = []
    for path in sorted(fa.keys() | fb.keys()):
        va, vb = fa.get(path, 0.0), fb.get(path, 0.0)
        if va != vb:
            direction = (directions or {}).get(path.rsplit(".", 1)[-1],
                                               "either")
            out.append(Delta(path, va, vb, direction))
    return out


def _metric_series(record: RunRecord) -> dict[str, tuple]:
    """series id -> (kind, state) with hashable state."""
    out = {}
    for name, labels, kind, state in record.metric_rows():
        out[series_key(name, dict(labels))] = (kind, state)
    return out


@dataclass
class RunDiff:
    """Structured comparison of two run records."""

    a_id: str
    b_id: str
    threshold: float
    perf_threshold: float
    metric_deltas: list[Delta] = field(default_factory=list)
    added_series: list[str] = field(default_factory=list)
    removed_series: list[str] = field(default_factory=list)
    span_drift: list[Delta] = field(default_factory=list)
    sim_deltas: list[Delta] = field(default_factory=list)
    perf_deltas: list[Delta] = field(default_factory=list)
    identical_metrics: bool = True

    @property
    def significant(self) -> list[Delta]:
        """Deterministic deltas beyond the strict threshold."""
        dets = self.metric_deltas + self.span_drift + self.sim_deltas
        return [d for d in dets if d.exceeds(self.threshold)]

    @property
    def perf_regressions(self) -> list[Delta]:
        """Wall-clock fields where run B is *worse* beyond perf_threshold."""
        return [d for d in self.perf_deltas
                if d.regressed(self.perf_threshold)]

    @property
    def clean(self) -> bool:
        """No significant deterministic drift and bit-identical metrics."""
        return (not self.significant and not self.added_series
                and not self.removed_series and self.identical_metrics)

    def to_dict(self) -> dict:
        """JSON-ready mapping of the full diff."""
        return {
            "a": self.a_id, "b": self.b_id,
            "threshold": self.threshold,
            "perf_threshold": self.perf_threshold,
            "clean": self.clean,
            "identical_metrics": self.identical_metrics,
            "metric_deltas": [d.to_dict() for d in self.metric_deltas],
            "added_series": self.added_series,
            "removed_series": self.removed_series,
            "span_drift": [d.to_dict() for d in self.span_drift],
            "sim_deltas": [d.to_dict() for d in self.sim_deltas],
            "perf_deltas": [d.to_dict() for d in self.perf_deltas],
            "significant": [d.to_dict() for d in self.significant],
            "perf_regressions": [d.to_dict() for d in self.perf_regressions],
        }


def diff_runs(a: RunRecord, b: RunRecord, *, threshold: float = 0.05,
              perf_threshold: float = 0.15) -> RunDiff:
    """Diff two records: deterministic drift strict, wall-clock loose."""
    diff = RunDiff(a_id=a.run_id or "a", b_id=b.run_id or "b",
                   threshold=threshold, perf_threshold=perf_threshold)

    # Metric series: value deltas for counters/gauges, sample-count deltas
    # for histograms, plus added/removed series and bit-identity overall.
    sa, sb = _metric_series(a), _metric_series(b)
    diff.identical_metrics = sa == sb
    diff.added_series = sorted(sb.keys() - sa.keys())
    diff.removed_series = sorted(sa.keys() - sb.keys())
    for sid in sorted(sa.keys() & sb.keys()):
        (ka, sta), (kb, stb) = sa[sid], sb[sid]
        if ka != kb or sta == stb:
            continue
        if ka == "histogram":
            # Compare sample counts and sums; bucket drift shows up there.
            diff.metric_deltas.append(
                Delta(f"metrics.{sid}.count", float(sta[2]), float(stb[2])))
            if sta[3] != stb[3]:
                diff.metric_deltas.append(
                    Delta(f"metrics.{sid}.sum", float(sta[3]), float(stb[3])))
        else:
            diff.metric_deltas.append(
                Delta(f"metrics.{sid}", float(sta), float(stb)))

    # Span-count drift from the rollups.
    names = sorted(set(a.spans) | set(b.spans))
    for name in names:
        ca = float(a.spans.get(name, {}).get("count", 0))
        cb = float(b.spans.get(name, {}).get("count", 0))
        if ca != cb:
            diff.span_drift.append(Delta(f"spans.{name}.count", ca, cb))

    # Billing + deadline: deterministic, direction-aware where obvious.
    directions = {"cost_usd": "lower", "missed": "lower", "miss_rate": "lower",
                  "failed": "lower", "wasted_seconds": "lower"}
    diff.sim_deltas.extend(_deltas(a.billing, b.billing, "billing",
                                   directions=directions))
    diff.sim_deltas.extend(_deltas(a.deadline, b.deadline, "deadline",
                                   directions=directions))

    # Profile: split simulated-time fields (strict) from wall-clock (loose).
    pa, pb = _numeric_items(a.profile, "profile"), \
        _numeric_items(b.profile, "profile")
    for path in sorted(pa.keys() | pb.keys()):
        va, vb = pa.get(path, 0.0), pb.get(path, 0.0)
        if va == vb:
            continue
        leaf = path.rsplit(".", 1)[-1]
        if leaf in PERF_PROFILE_KEYS or leaf.startswith("wall"):
            direction = "higher" if leaf == "events_per_s" else "lower"
            diff.perf_deltas.append(Delta(path, va, vb, direction))
        else:
            diff.sim_deltas.append(Delta(path, va, vb))
    return diff


def _fmt_rel(d: Delta) -> str:
    rel = d.rel_delta
    return f"{rel:+.1%}" if rel is not None else "new"


def render_diff_table(diff: RunDiff, *, max_rows: int = 40) -> str:
    """ASCII diff report in the ``report`` module's table style."""
    lines = [f"== run diff: {diff.a_id} vs {diff.b_id} =="]
    sections = [
        ("deterministic drift", diff.significant, diff.threshold),
        ("perf (wall-clock)", diff.perf_deltas, diff.perf_threshold),
    ]
    for title, deltas, threshold in sections:
        lines.append(f"   -- {title} (threshold {threshold:.0%}) --")
        if not deltas:
            lines.append("   (none)")
            continue
        rows = [("field", "a", "b", "delta")]
        for d in deltas[:max_rows]:
            rows.append((d.field, f"{d.a:.6g}", f"{d.b:.6g}", _fmt_rel(d)))
        widths = [max(len(r[i]) for r in rows) for i in range(4)]
        for r in rows:
            lines.append(
                "   " + "  ".join(c.ljust(w) for c, w in zip(r, widths)))
        if len(deltas) > max_rows:
            lines.append(f"   ... {len(deltas) - max_rows} more")
    for sid in diff.added_series:
        lines.append(f"   + series only in {diff.b_id}: {sid}")
    for sid in diff.removed_series:
        lines.append(f"   - series only in {diff.a_id}: {sid}")
    regs = diff.perf_regressions
    if regs:
        worst = max(regs, key=lambda d: abs(d.rel_delta or 0))
        lines.append(f"   ! PERF REGRESSION: {worst.field} {_fmt_rel(worst)} "
                     f"(beyond {diff.perf_threshold:.0%})")
    lines.append("   => " + ("CLEAN" if diff.clean else
                             f"{len(diff.significant)} significant deltas")
                 + (", bit-identical metrics" if diff.identical_metrics
                    else ", metrics differ"))
    return "\n".join(lines)


# -- the CI regression gate ----------------------------------------------

@dataclass
class GateViolation:
    metric: str
    baseline: float
    current: float
    direction: str
    threshold: float

    @property
    def rel_delta(self) -> float:
        return ((self.current - self.baseline) / abs(self.baseline)
                if self.baseline else 0.0)

    def describe(self) -> str:
        """One-line human summary of the violated budget."""
        want = "fell" if self.direction == "higher" else "grew"
        return (f"{self.metric} {want} {abs(self.rel_delta):.1%} "
                f"(baseline {self.baseline:.6g} -> {self.current:.6g}, "
                f"budget {self.threshold:.0%})")


def regression_gate(baseline: Mapping[str, float],
                    current: Mapping[str, float],
                    tracked: Mapping[str, str], *,
                    threshold: float = 0.15) -> list[GateViolation]:
    """Direction-aware regression check of ``current`` vs ``baseline``.

    ``tracked`` maps metric name -> direction ("higher" = should stay
    high, e.g. events/s; "lower" = should stay low, e.g. wall seconds).
    Returns the violations — metrics worse than baseline by more than
    ``threshold``.  Missing metrics on either side are skipped (a new
    metric has no baseline to regress against).
    """
    violations = []
    for metric, direction in tracked.items():
        base, cur = baseline.get(metric), current.get(metric)
        if base is None or cur is None or base == 0:
            continue
        delta = Delta(metric, float(base), float(cur), direction)
        if delta.regressed(threshold):
            violations.append(GateViolation(
                metric, float(base), float(cur), direction, threshold))
    return violations


def render_gate_report(baseline: Mapping[str, float],
                       current: Mapping[str, float],
                       tracked: Mapping[str, str],
                       violations: list[GateViolation], *,
                       threshold: float = 0.15) -> str:
    """ASCII gate report listing every tracked metric and its verdict."""
    lines = [f"== perf regression gate (budget {threshold:.0%}) =="]
    rows = [("metric", "dir", "baseline", "current", "delta", "status")]
    bad = {v.metric for v in violations}
    for metric, direction in sorted(tracked.items()):
        base, cur = baseline.get(metric), current.get(metric)
        if base is None or cur is None:
            rows.append((metric, direction, "-", "-", "-", "SKIP"))
            continue
        rel = (cur - base) / abs(base) if base else 0.0
        rows.append((metric, direction, f"{base:.6g}", f"{cur:.6g}",
                     f"{rel:+.1%}", "FAIL" if metric in bad else "PASS"))
    widths = [max(len(r[i]) for r in rows) for i in range(6)]
    for r in rows:
        lines.append("   " + "  ".join(c.ljust(w) for c, w in zip(r, widths)))
    verdict = "FAIL" if violations else "PASS"
    lines.append(f"   => {verdict} ({len(violations)} regressions)")
    return "\n".join(lines)
