"""``repro.obs`` — zero-dependency observability for the reproduction.

The paper's method is measurement-driven (probe runs, regression
residuals, adjusted deadlines); this package gives the *reproduction* the
same discipline about itself:

* :class:`~repro.obs.trace.Tracer` — hierarchical spans and instant
  events on **simulated time** (the cloud binds it to its engine clock),
  with a no-op fast path when disabled;
* :class:`~repro.obs.metrics.MetricsRegistry` — labelled counters,
  gauges and fixed-bucket histograms with cheap snapshot/merge;
* exporters — Chrome ``trace_event`` JSON (``chrome://tracing`` /
  Perfetto), JSONL event streams, and an ASCII metrics table matching
  the ``report`` module's style;
* :mod:`~repro.obs.log` — a stdlib-``logging`` bridge so diagnostics
  share the trace.

Wiring
------
Every instrumented layer reads the *module default* bundle via
:func:`get_obs` unless handed one explicitly (``Cloud(obs=...)``).  The
default starts **disabled** — a tracer whose ``span`` returns a shared
null context manager and a registry that hands out null instruments — so
un-traced runs pay one attribute check per call site.  Enable before
building the objects you want observed::

    import repro.obs as obs

    o = obs.configure()                 # tracing + metrics on
    cloud = Cloud(seed=7)               # binds the tracer to sim time
    ... run a campaign ...
    obs.write_chrome_trace(o.tracer, "trace.json")
    print(obs.render_metrics_table(o.metrics))
    obs.disable()

or use ``python -m repro.cli trace <demo> --out trace.json``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.export import (
    chrome_trace_events,
    iter_jsonl_lines,
    render_metrics_table,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.log import TracerHandler, bridge_to_tracer, get_logger, install
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.trace import NULL_SPAN, InstantRecord, Span, SpanRecord, Tracer

__all__ = [
    "Obs", "get_obs", "set_obs", "configure", "disable",
    "Tracer", "Span", "SpanRecord", "InstantRecord", "NULL_SPAN",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "MetricsError",
    "DEFAULT_BUCKETS",
    "chrome_trace_events", "to_chrome_trace", "write_chrome_trace",
    "iter_jsonl_lines", "write_jsonl", "render_metrics_table",
    "get_logger", "install", "TracerHandler", "bridge_to_tracer",
    "RunRecord", "RunLedger", "LedgerError",
    "get_run_ledger", "set_run_ledger", "configure_run_ledger",
    "capture_runs", "record_experiment",
    "Objective", "SloPolicy", "SloReport", "render_slo_table",
    "RunDiff", "diff_runs", "render_diff_table",
    "regression_gate", "render_gate_report",
]


@dataclass(frozen=True)
class Obs:
    """One tracer + one metrics registry, passed around as a unit."""

    tracer: Tracer
    metrics: MetricsRegistry

    @property
    def enabled(self) -> bool:
        """True if *either* half records anything."""
        return self.tracer.enabled or self.metrics.enabled

    @classmethod
    def off(cls) -> "Obs":
        return cls(Tracer(enabled=False), MetricsRegistry(enabled=False))

    @classmethod
    def on(cls, *, trace: bool = True, metrics: bool = True,
           clock=None) -> "Obs":
        return cls(Tracer(clock, enabled=trace),
                   MetricsRegistry(enabled=metrics))


_DISABLED = Obs.off()
_default: Obs = _DISABLED


def get_obs() -> Obs:
    """The module-default bundle instrumented code falls back to."""
    return _default


def set_obs(obs: Obs) -> Obs:
    """Install ``obs`` as the module default; returns the previous one."""
    global _default
    previous, _default = _default, obs
    return previous


def configure(*, trace: bool = True, metrics: bool = True, clock=None) -> Obs:
    """Build an enabled bundle, install it as the default, and return it.

    Call *before* constructing the :class:`~repro.cloud.cluster.Cloud`
    (and caches/campaigns) you want observed — components capture the
    default at construction time.
    """
    obs = Obs.on(trace=trace, metrics=metrics, clock=clock)
    set_obs(obs)
    return obs


def disable() -> Obs:
    """Restore the disabled default; returns the bundle that was active."""
    return set_obs(_DISABLED)


# The flight-recorder layer reads get_obs() at call time, so these imports
# live after the default-bundle machinery to keep the cycle one-way.
from repro.obs.diff import (  # noqa: E402
    RunDiff,
    diff_runs,
    regression_gate,
    render_diff_table,
    render_gate_report,
)
from repro.obs.ledger import (  # noqa: E402
    LedgerError,
    RunLedger,
    RunRecord,
    capture_runs,
    configure_run_ledger,
    get_run_ledger,
    record_experiment,
    set_run_ledger,
)
from repro.obs.slo import (  # noqa: E402
    Objective,
    SloPolicy,
    SloReport,
    render_slo_table,
)
