"""Hierarchical span tracing on simulated (or any monotone) time.

A :class:`Tracer` records two kinds of facts:

* **spans** — named intervals ``[t0, t1]`` on a *track* (one row per
  instance, per subsystem, …), either measured live through the context
  manager returned by :meth:`Tracer.span`, or recorded retrospectively
  with :meth:`Tracer.add_span` (the plan runners compute per-instance
  elapsed times against a common start without advancing the shared
  clock, so their intervals are only known after the fact);
* **instants** — point events (engine schedule/fire/cancel, billing
  ticks, crash detections) recorded with :meth:`Tracer.instant`.

Time comes from a pluggable zero-argument ``clock``.  The cloud binds the
tracer to its simulation engine (``lambda: engine.now``), so every span is
on *simulated* seconds — one trace of a deterministic run is itself
deterministic, which wall-clock tracers can never promise.  An unbound
tracer reads ``0.0`` until :meth:`bind_clock` is called; wall-clock tracing
is just ``Tracer(clock=time.perf_counter)``.

Disabled fast path
------------------
``Tracer(enabled=False)`` costs one attribute check per call site:
:meth:`span` returns the shared :data:`NULL_SPAN` singleton (no object is
allocated) and :meth:`instant` returns immediately without recording.
The perf guard in ``benchmarks/`` holds this under 3 % on the hot packing
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

__all__ = ["SpanRecord", "InstantRecord", "Span", "Tracer", "NULL_SPAN"]

Clock = Callable[[], float]


def _zero_clock() -> float:
    return 0.0


@dataclass(frozen=True)
class SpanRecord:
    """One finished interval."""

    name: str
    cat: str
    t0: float
    t1: float
    track: str
    depth: int
    args: dict

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class InstantRecord:
    """One point event."""

    name: str
    cat: str
    t: float
    track: str
    args: dict


class _NullSpan:
    """Shared no-op context manager handed out by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args: Any) -> "_NullSpan":
        return self


#: The one instance a disabled tracer ever returns (identity-testable:
#: ``tracer.span(...) is NULL_SPAN`` proves no allocation happened).
NULL_SPAN = _NullSpan()


class Span:
    """A live span; it records itself into the tracer on exit.

    If the guarded block raises, the span still closes and gains an
    ``error`` argument with the exception type name.
    """

    __slots__ = ("_tracer", "name", "cat", "track", "t0", "args", "_depth")

    def __init__(self, tracer: "Tracer", name: str, cat: str, track: str,
                 args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.track = track
        self.args = args
        self.t0 = 0.0
        self._depth = 0

    def set(self, **args: Any) -> "Span":
        """Attach or update span arguments; chainable."""
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        self.t0 = self._tracer._clock()
        self._depth = self._tracer._push(self.track)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._tracer._pop(self.track)
        self._tracer._finish(self)
        return False


class Tracer:
    """Span + instant recorder with a no-op fast path when disabled.

    Hot-path storage is columnar-ish: records land as plain tuples in
    append-only lists (no dataclass construction, no argument-dict copy —
    ``**args`` is already a fresh dict per call) and are materialised into
    :class:`SpanRecord`/:class:`InstantRecord` objects lazily, the first
    time :attr:`spans`/:attr:`instants` is read.  Recording a span at
    scale is one tuple + one ``list.append``; the object cost is paid only
    by inspection code, and only once per record.
    """

    def __init__(self, clock: Clock | None = None, *, enabled: bool = True,
                 max_records: int = 1_000_000) -> None:
        self.enabled = enabled
        self._clock: Clock = clock or _zero_clock
        # raw rows: (name, cat, t0, t1, track, depth, args) / (name, cat,
        # t, track, args); materialised record caches trail them.
        self._raw_spans: list[tuple] = []
        self._raw_instants: list[tuple] = []
        self._span_cache: list[SpanRecord] = []
        self._instant_cache: list[InstantRecord] = []
        self._count = 0
        self._depths: dict[str, int] = {}
        self.max_records = max_records
        self.dropped = 0

    # -- clock -----------------------------------------------------------

    def bind_clock(self, clock: Clock) -> None:
        """Point the tracer at a time source (e.g. a simulation engine).

        A tracer has exactly one clock; binding again re-points it, so a
        tracer shared across several clouds reads the *last* bound engine.
        """
        self._clock = clock

    @property
    def now(self) -> float:
        """Current reading of the bound clock (0.0 while unbound)."""
        return self._clock()

    # -- recording -------------------------------------------------------

    def span(self, name: str, cat: str = "", *, track: str = "main",
             **args: Any):
        """Open a span as a context manager; no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, cat, track, args)

    def add_span(self, name: str, t0: float, t1: float, cat: str = "", *,
                 track: str = "main", **args: Any) -> None:
        """Record an interval whose endpoints are already known."""
        if not self.enabled:
            return
        if t1 < t0:
            raise ValueError(f"span {name!r} ends before it starts: [{t0}, {t1}]")
        if self._full():
            return
        self._count += 1
        self._raw_spans.append((name, cat, t0, t1, track,
                                self._depths.get(track, 0), args))

    def add_spans(self, name: str, t0s: Iterable[float], t1s: Iterable[float],
                  cat: str = "", *, track: str = "main") -> int:
        """Bulk :meth:`add_span`: one call records a whole column of
        intervals (numpy arrays welcome) sharing a name/cat/track.

        Returns how many were recorded; the remainder past ``max_records``
        is counted in :attr:`dropped`.  Endpoint validation is vectorised
        up front — either the whole batch is well-formed or nothing lands.
        """
        if not self.enabled:
            return 0
        rows = [(float(a), float(b)) for a, b in zip(t0s, t1s)]
        for a, b in rows:
            if b < a:
                raise ValueError(
                    f"span {name!r} ends before it starts: [{a}, {b}]")
        room = self.max_records - self._count
        if room <= 0:
            self.dropped += len(rows)
            return 0
        kept = rows[:room]
        self.dropped += len(rows) - len(kept)
        depth = self._depths.get(track, 0)
        append = self._raw_spans.append
        for a, b in kept:
            append((name, cat, a, b, track, depth, None))
        self._count += len(kept)
        return len(kept)

    def instant(self, name: str, cat: str = "", *, track: str = "main",
                **args: Any) -> None:
        """Record a point event at the current clock reading."""
        if not self.enabled or self._full():
            return
        self._count += 1
        self._raw_instants.append((name, cat, self._clock(), track, args))

    # -- live-span plumbing ----------------------------------------------

    def _push(self, track: str) -> int:
        depth = self._depths.get(track, 0)
        self._depths[track] = depth + 1
        return depth

    def _pop(self, track: str) -> None:
        depth = self._depths.get(track, 0)
        if depth > 1:
            self._depths[track] = depth - 1
        else:
            self._depths.pop(track, None)

    def _finish(self, span: Span) -> None:
        if self._full():
            return
        self._count += 1
        self._raw_spans.append((span.name, span.cat, span.t0, self._clock(),
                                span.track, span._depth, span.args))

    def _full(self) -> bool:
        if self._count >= self.max_records:
            self.dropped += 1
            return True
        return False

    # -- inspection ------------------------------------------------------

    def _materialized_spans(self) -> list[SpanRecord]:
        """Materialise the raw tail into the record cache (idempotent)."""
        cache = self._span_cache
        raw = self._raw_spans
        for i in range(len(cache), len(raw)):
            name, cat, t0, t1, track, depth, args = raw[i]
            cache.append(SpanRecord(name, cat, t0, t1, track, depth,
                                    args if args is not None else {}))
        return cache

    def _materialized_instants(self) -> list[InstantRecord]:
        cache = self._instant_cache
        raw = self._raw_instants
        for i in range(len(cache), len(raw)):
            name, cat, t, track, args = raw[i]
            cache.append(InstantRecord(name, cat, t, track,
                                       args if args is not None else {}))
        return cache

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        """Finished spans in completion order (children before parents)."""
        return tuple(self._materialized_spans())

    @property
    def instants(self) -> tuple[InstantRecord, ...]:
        return tuple(self._materialized_instants())

    @property
    def span_count(self) -> int:
        return len(self._raw_spans)

    @property
    def event_count(self) -> int:
        """Total records (spans + instants)."""
        return self._count

    def categories(self) -> set[str]:
        """Distinct non-empty ``cat`` values across spans and instants."""
        cats = {row[1] for row in self._raw_spans if row[1]}
        cats.update(row[1] for row in self._raw_instants if row[1])
        return cats

    def tracks(self) -> list[str]:
        """Track names in order of first appearance."""
        seen: dict[str, None] = {}
        for row in self._raw_spans:
            seen.setdefault(row[4])
        for row in self._raw_instants:
            seen.setdefault(row[3])
        return list(seen)

    def spans_named(self, name: str) -> list[SpanRecord]:
        """All finished spans with this exact name."""
        return [s for s in self._materialized_spans() if s.name == name]

    def reset(self) -> None:
        """Drop every record (the clock binding survives)."""
        self._raw_spans.clear()
        self._raw_instants.clear()
        self._span_cache.clear()
        self._instant_cache.clear()
        self._count = 0
        self._depths.clear()
        self.dropped = 0
