"""Stdlib-``logging`` bridge for the observability layer.

All repro code logs under the ``repro`` logger namespace via
:func:`get_logger`; :func:`install` attaches one concise stderr handler
(idempotent — safe to call from every entry point), and
:class:`TracerHandler` mirrors log records into a tracer's structured
event stream so a recorded trace carries the textual breadcrumbs too.

This replaces the ad-hoc ``print(..., file=sys.stderr)`` calls that used
to live in the CLI and experiment drivers: user-facing *results* still go
to stdout, but diagnostics flow through here, where a trace run can
capture them.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

from repro.obs.trace import Tracer

__all__ = ["ROOT_LOGGER", "get_logger", "install", "TracerHandler",
           "bridge_to_tracer"]

ROOT_LOGGER = "repro"

_FORMAT = "%(levelname).1s %(name)s: %(message)s"


def get_logger(name: str = "") -> logging.Logger:
    """Logger under the ``repro`` namespace (``get_logger("cli")`` →
    ``repro.cli``); no handler is attached here."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def install(level: int = logging.INFO,
            stream=None) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root logger (idempotent).

    Repeated calls only adjust the level.  Returns the root logger.
    """
    root = get_logger()
    root.setLevel(level)
    for h in root.handlers:
        if getattr(h, "_repro_obs_handler", False):
            h.setLevel(level)
            return root
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler.setLevel(level)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    return root


class TracerHandler(logging.Handler):
    """Mirror log records into a tracer as ``log.<level>`` instants."""

    def __init__(self, tracer: Tracer, level: int = logging.INFO) -> None:
        super().__init__(level)
        self.tracer = tracer

    def emit(self, record: logging.LogRecord) -> None:
        """Record the log line as a structured instant on the log track."""
        try:
            self.tracer.instant(
                f"log.{record.levelname.lower()}", cat="log", track="log",
                logger=record.name, message=record.getMessage())
        except Exception:  # pragma: no cover - never break the logged code
            self.handleError(record)


def bridge_to_tracer(tracer: Tracer,
                     level: int = logging.INFO) -> Optional[TracerHandler]:
    """Attach a :class:`TracerHandler` to the ``repro`` root logger.

    Returns the handler (detach with ``logger.removeHandler``), or ``None``
    for a disabled tracer.
    """
    if not tracer.enabled:
        return None
    root = get_logger()
    if root.level == logging.NOTSET or root.level > level:
        root.setLevel(level)
    handler = TracerHandler(tracer, level)
    root.addHandler(handler)
    return handler
