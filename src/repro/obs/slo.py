"""SLO engine: declared objectives evaluated over ledger run records.

An :class:`SloPolicy` names a set of :class:`Objective`\\ s — "miss rate
≤ 10%", "mean cost ≤ $2", "p99 deadline margin ≥ 0", "events/s ≥ 50k" —
and evaluates them over a sequence of :class:`~repro.obs.ledger.RunRecord`
in simulated-time order.  Each objective aggregates a dotted field path
across the records (``ratio`` objectives divide two summed fields, the
way an error-budget SLI divides bad events by total events), compares
against its threshold, and reports a **burn rate**: attained value over
threshold for ceilings, threshold over attained for floors — burn > 1
means the budget is being spent faster than allowed.

Burn-rate alerting follows the two-window SRE convention scaled down to
campaign length: the *overall* window is every record, the *recent*
window the last quarter.  Recent burn ≥ 2 pages, overall burn > 1
tickets.  Evaluation surfaces ``obs.slo.*`` counters on the active
metrics registry and renders as an ASCII table matching the ``report``
module's style.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs.ledger import RunRecord

__all__ = [
    "Objective", "ObjectiveResult", "SloAlert", "SloReport", "SloPolicy",
    "SloError", "render_slo_table",
]


class SloError(ValueError):
    """Bad objective declaration or unevaluable record set."""


_OPS = ("<=", ">=")
_AGGREGATES = ("mean", "sum", "max", "min", "p99", "ratio")


@dataclass(frozen=True)
class Objective:
    """One declared objective over a dotted record field.

    ``metric`` is a dotted path into the record dict ("deadline.miss_rate",
    "billing.cost_usd", "profile.events_per_s").  ``aggregate="ratio"``
    ignores ``metric`` and instead divides ``sum(num)`` by ``sum(den)`` —
    the exact form of a miss-rate SLI (missed bins over total bins).
    """

    name: str
    metric: str
    op: str                      # "<=" (ceiling) or ">=" (floor)
    threshold: float
    aggregate: str = "mean"
    num: str | None = None       # ratio numerator path
    den: str | None = None       # ratio denominator path

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise SloError(f"objective {self.name!r}: op must be one of {_OPS}")
        if self.aggregate not in _AGGREGATES:
            raise SloError(
                f"objective {self.name!r}: unknown aggregate {self.aggregate!r}")
        if self.aggregate == "ratio" and not (self.num and self.den):
            raise SloError(
                f"objective {self.name!r}: ratio needs num= and den= paths")

    def describe(self) -> str:
        """Compact ``aggregate(metric)`` / ``num / den`` description."""
        if self.aggregate == "ratio":
            return f"{self.num} / {self.den}"
        return f"{self.aggregate}({self.metric})"

    # -- evaluation over a window -----------------------------------------

    def _values(self, records: Sequence[RunRecord], path: str) -> list[float]:
        out = []
        for rec in records:
            v = rec.get(path)
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                out.append(float(v))
        return out

    def value_over(self, records: Sequence[RunRecord]) -> float | None:
        """The attained value over ``records`` (None if no data)."""
        if self.aggregate == "ratio":
            num = sum(self._values(records, self.num or ""))
            den = sum(self._values(records, self.den or ""))
            return num / den if den else None
        values = self._values(records, self.metric)
        if not values:
            return None
        if self.aggregate == "mean":
            return sum(values) / len(values)
        if self.aggregate == "sum":
            return sum(values)
        if self.aggregate == "max":
            return max(values)
        if self.aggregate == "min":
            return min(values)
        # p99 — nearest-rank on the sorted sample.
        rank = max(0, math.ceil(0.99 * len(values)) - 1)
        return sorted(values)[rank]

    def burn_rate(self, value: float | None) -> float | None:
        """Budget-spend speed: >1 means the objective is being violated."""
        if value is None:
            return None
        if self.op == "<=":
            if self.threshold == 0:
                return math.inf if value > 0 else 0.0
            return value / self.threshold
        if value == 0:
            return math.inf if self.threshold > 0 else 0.0
        return self.threshold / value

    def ok(self, value: float | None) -> bool:
        """Whether ``value`` satisfies the objective (vacuous on no data)."""
        if value is None:
            return True          # no data is not a violation
        return value <= self.threshold if self.op == "<=" else \
            value >= self.threshold


@dataclass
class ObjectiveResult:
    objective: Objective
    value: float | None
    ok: bool
    burn: float | None           # overall burn rate
    recent_burn: float | None    # burn over the last-quarter window
    n_records: int

    def to_dict(self) -> dict:
        """JSON-ready mapping of this objective's evaluation."""
        return {
            "name": self.objective.name,
            "metric": self.objective.describe(),
            "op": self.objective.op,
            "threshold": self.objective.threshold,
            "value": self.value,
            "ok": self.ok,
            "burn": self.burn,
            "recent_burn": self.recent_burn,
            "n_records": self.n_records,
        }


@dataclass
class SloAlert:
    """Burn-rate alert: ``page`` for fast burn, ``ticket`` for slow burn."""

    objective: str
    severity: str                # "page" | "ticket"
    burn: float
    window: str                  # "recent" | "overall"

    def to_dict(self) -> dict:
        """JSON-ready mapping of this alert."""
        return {"objective": self.objective, "severity": self.severity,
                "burn": self.burn, "window": self.window}


@dataclass
class SloReport:
    policy: str
    results: list[ObjectiveResult] = field(default_factory=list)
    alerts: list[SloAlert] = field(default_factory=list)
    n_records: int = 0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def to_dict(self) -> dict:
        """JSON-ready mapping of the full report."""
        return {
            "policy": self.policy,
            "ok": self.ok,
            "n_records": self.n_records,
            "objectives": [r.to_dict() for r in self.results],
            "alerts": [a.to_dict() for a in self.alerts],
        }


class SloPolicy:
    """A named set of objectives evaluated together over run records."""

    def __init__(self, name: str, objectives: Iterable[Objective]) -> None:
        self.name = name
        self.objectives = tuple(objectives)
        if not self.objectives:
            raise SloError(f"policy {name!r} declares no objectives")

    def evaluate(self, records: Sequence[RunRecord], *,
                 obs: Any = None) -> SloReport:
        """Evaluate every objective; emit ``obs.slo.*`` counters if enabled.

        ``records`` should be in simulated-time (= append) order — the
        recent-burn window is the trailing quarter of the sequence.
        """
        from repro.obs import get_obs

        records = list(records)
        recent = records[-max(1, len(records) // 4):] if records else []
        report = SloReport(policy=self.name, n_records=len(records))
        metrics = (obs or get_obs()).metrics
        for objective in self.objectives:
            value = objective.value_over(records)
            recent_value = objective.value_over(recent)
            burn = objective.burn_rate(value)
            recent_burn = objective.burn_rate(recent_value)
            ok = objective.ok(value)
            report.results.append(ObjectiveResult(
                objective=objective, value=value, ok=ok, burn=burn,
                recent_burn=recent_burn, n_records=len(records)))
            if recent_burn is not None and recent_burn >= 2.0:
                report.alerts.append(SloAlert(
                    objective.name, "page", recent_burn, "recent"))
            elif burn is not None and burn > 1.0:
                report.alerts.append(SloAlert(
                    objective.name, "ticket", burn, "overall"))
            if metrics.enabled:
                metrics.counter("obs.slo.objectives_evaluated",
                                policy=self.name).inc()
                if not ok:
                    metrics.counter("obs.slo.objectives_violated",
                                    policy=self.name,
                                    objective=objective.name).inc()
        if metrics.enabled:
            for alert in report.alerts:
                metrics.counter("obs.slo.alerts", policy=self.name,
                                severity=alert.severity).inc()
        return report


def _fmt(v: float | None) -> str:
    if v is None:
        return "-"
    if v == math.inf:
        return "inf"
    return f"{v:.4g}"


def render_slo_table(report: SloReport) -> str:
    """ASCII SLO report in the ``report`` module's table style."""
    head = f"== SLO: {report.policy} ({report.n_records} records) =="
    rows = [("objective", "target", "value", "burn", "recent", "status")]
    for res in report.results:
        obj = res.objective
        rows.append((
            f"{obj.name} [{obj.describe()}]",
            f"{obj.op} {obj.threshold:g}",
            _fmt(res.value), _fmt(res.burn), _fmt(res.recent_burn),
            "PASS" if res.ok else "FAIL",
        ))
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = [head]
    for r in rows:
        lines.append("   " + "  ".join(c.ljust(w) for c, w in zip(r, widths)))
    for alert in report.alerts:
        lines.append(f"   ! {alert.severity.upper()}: {alert.objective} "
                     f"burning at {alert.burn:.2f}x ({alert.window} window)")
    n_ok = sum(1 for r in report.results if r.ok)
    verdict = "PASS" if report.ok else "FAIL"
    lines.append(f"   => {verdict} ({n_ok}/{len(report.results)} objectives)")
    return "\n".join(lines)
