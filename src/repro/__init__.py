"""repro — reproduction of "Reshaping text data for efficient processing
on Amazon EC2" (Turcu, Foster & Nestorov, Scientific Programming 19, 2011).

The package rebuilds the paper's full stack: a deterministic EC2 simulator
(:mod:`repro.cloud`), real text applications with work accounting
(:mod:`repro.apps`), synthetic corpora matching the paper's data sets
(:mod:`repro.corpus`), the reshaping heuristics (:mod:`repro.packing`),
the empirical performance-modelling methodology (:mod:`repro.perfmodel`),
and the provisioning/planning contribution itself (:mod:`repro.core`,
:mod:`repro.runner`).  See README.md for the tour and DESIGN.md for the
per-experiment index.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
