"""Multi-tenant fleet scheduling: fair-share queues over shared leases.

The :class:`FleetScheduler` accepts campaign submissions through the
:class:`~repro.fleet.tenants.AdmissionController`, expands admitted plans
into per-bin tasks, and schedules them greedily in weighted-fair-share
order: the tenant with the least service per unit weight goes next, its
bin is placed on the best-fitting warm lease (or a cold boot while the
fleet may grow), and per-tenant concurrency quotas delay starts rather
than drop work.  Everything runs on *simulated* time against the shared
:class:`~repro.cloud.cluster.Cloud`; billing truth lives in the ledger
via the :class:`~repro.fleet.lease.LeaseManager`'s retroactive retires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import ProvisioningPlan
from repro.fleet.lease import LeaseManager
from repro.fleet.report import BinRun, CampaignOutcome, FleetReport
from repro.fleet.tenants import AdmissionController, AdmissionDecision

__all__ = ["FleetRequest", "FleetScheduler"]

#: Queue-wait buckets: seconds a bin waited between submission and work
#: start (boot delays land in the first few buckets; contention beyond).
WAIT_BUCKETS: tuple[float, ...] = (30.0, 60.0, 120.0, 300.0, 600.0,
                                   1800.0, 3600.0)


@dataclass
class FleetRequest:
    """One campaign asking for fleet capacity."""

    tenant: str
    workload: Workload
    plan: ProvisioningPlan
    name: str
    priority: int = 0          # higher = earlier within the tenant's queue
    submitted_at: float | None = None


@dataclass
class _Task:
    request: FleetRequest
    bin_index: int
    units: list
    est_seconds: float


@dataclass
class _TenantState:
    weight: float
    quota: int
    served: float = 0.0                      # busy seconds granted so far
    tasks: list[_Task] = field(default_factory=list)
    busy: list[tuple[float, float]] = field(default_factory=list)


class FleetScheduler:
    """Admission, queueing, and placement for concurrent campaigns."""

    def __init__(self, cloud: Cloud, leases: LeaseManager,
                 admission: AdmissionController, *,
                 service: ExecutionService | None = None) -> None:
        self.cloud = cloud
        self.leases = leases
        self.admission = admission
        self.registry = admission.registry
        self.svc = service or ExecutionService(cloud)
        self.obs = cloud.obs
        self.decisions: list[tuple[FleetRequest, AdmissionDecision]] = []
        self._queued: list[FleetRequest] = []

    # -- submission --------------------------------------------------------

    def submit(self, request: FleetRequest) -> AdmissionDecision:
        """Review one campaign; enqueue it unless rejected."""
        if request.submitted_at is None:
            request.submitted_at = self.cloud.now
        active = sum(1 for r in self._queued if r.tenant == request.tenant)
        decision = self.admission.review(
            request, queue_depth=len(self._queued),
            tenant_active_campaigns=active)
        self.decisions.append((request, decision))
        if decision.enqueued:
            self._queued.append(request)
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("fleet.admission.decisions",
                                kind=decision.kind).inc()
            obs.metrics.gauge("fleet.queue.depth").set(len(self._queued))
            obs.tracer.instant("fleet.admission", cat="fleet", track="fleet",
                               tenant=request.tenant, campaign=request.name,
                               kind=decision.kind, reason=decision.reason)
        return decision

    # -- scheduling --------------------------------------------------------

    def run(self) -> FleetReport:
        """Drain the queue; returns the fleet-wide report.

        Greedy weighted fair share: repeatedly pick the tenant with the
        least served-seconds per weight among those with pending bins,
        place its next bin, and charge the service to its share.  Bin
        placement annotates the originating plan with the lease source
        (``warm``/``cold``/``extension``), so plans record how much paid
        capacity they recycled.
        """
        tenants = self._expand_queue()
        outcomes = {id(r): CampaignOutcome(request=r, decision=d, runs=[])
                    for r, d in self.decisions if d.enqueued}
        obs = self.obs
        horizon = self.cloud.now

        while any(st.tasks for st in tenants.values()):
            name = min(
                (n for n, st in tenants.items() if st.tasks),
                key=lambda n: (tenants[n].served / tenants[n].weight, n),
            )
            st = tenants[name]
            task = st.tasks.pop(0)
            run = self._place(name, st, task)
            outcomes[id(task.request)].runs.append(run)
            st.served += run.duration
            st.busy.append((run.start, run.end))
            horizon = max(horizon, run.end)
            if obs.enabled:
                obs.tracer.add_span("fleet.bin.run", run.start, run.end,
                                    cat="fleet", track=run.instance_id,
                                    tenant=name, campaign=task.request.name,
                                    bin=task.bin_index, source=run.source)
                obs.metrics.histogram("fleet.queue.wait_seconds",
                                      buckets=WAIT_BUCKETS
                                      ).observe(run.wait_seconds)

        for outcome in outcomes.values():
            outcome.finished_at = max((r.end for r in outcome.runs),
                                      default=outcome.request.submitted_at or 0.0)
        if horizon > self.cloud.now:
            self.cloud.advance(horizon - self.cloud.now)
        self.leases.shutdown()
        self._queued.clear()

        if obs.enabled:
            shares = [st.served / st.weight for st in tenants.values()
                      if st.served > 0]
            if shares:
                jain = (sum(shares) ** 2) / (len(shares) * sum(s * s for s in shares))
                obs.metrics.gauge("fleet.fairness.jain").set(round(jain, 4))
            for n, st in tenants.items():
                obs.metrics.gauge("fleet.fairness.served_seconds",
                                  tenant=n).set(round(st.served, 1))

        return FleetReport(
            outcomes=list(outcomes.values()),
            rejected=[(r, d) for r, d in self.decisions if d.rejected],
            records=list(self.leases.records),
            slices=list(self.leases.slices),
            lease_stats=self.leases.stats(),
        )

    # -- internals ---------------------------------------------------------

    def _expand_queue(self) -> dict[str, _TenantState]:
        """Per-tenant task lists, campaigns ordered by priority then FIFO."""
        tenants: dict[str, _TenantState] = {}
        order = sorted(range(len(self._queued)),
                       key=lambda i: (-self._queued[i].priority, i))
        for i in order:
            request = self._queued[i]
            tenant = self.registry.get(request.tenant)
            st = tenants.setdefault(request.tenant, _TenantState(
                weight=tenant.weight, quota=tenant.max_concurrent_instances))
            times = request.plan.predicted_times
            for b, units in enumerate(request.plan.assignments):
                if not units:
                    continue
                est = times[b] if b < len(times) else 0.0
                st.tasks.append(_Task(request, b, list(units), est))
        return tenants

    def _place(self, tenant: str, st: _TenantState, task: _Task) -> BinRun:
        """Assign one bin to a lease and measure it."""
        s = task.request.submitted_at or 0.0
        s = self._quota_start(st, s)
        lease = self.leases.acquire(tenant, est_seconds=task.est_seconds,
                                    at=s, campaign=task.request.name)
        duration = self.svc.run(lease.instance, task.units,
                                task.request.workload, advance_clock=False)
        end = lease.ready_at + duration
        self.leases.release(lease, end)
        task.request.plan.annotate_lease(task.bin_index, lease.source,
                                         lease.lease_id)
        return BinRun(
            campaign=task.request.name,
            tenant=tenant,
            bin_index=task.bin_index,
            lease_id=lease.lease_id,
            instance_id=lease.instance.instance_id,
            source=lease.source,
            start=lease.ready_at,
            end=end,
            wait_seconds=lease.ready_at - (task.request.submitted_at or 0.0),
        )

    @staticmethod
    def _quota_start(st: _TenantState, s: float) -> float:
        """Earliest time ≥ ``s`` with a free slot under the tenant's quota."""
        while True:
            covering = [e for (b, e) in st.busy if b <= s < e]
            if len(covering) < st.quota:
                return s
            s = min(covering)
