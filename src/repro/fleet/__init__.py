"""``repro.fleet`` — a multi-tenant control plane over the simulated cloud.

The paper's economics hinge on flat ceil-hour billing (``cost = r·⌈P⌉``,
§1.1): terminating an instance mid-hour throws paid capacity away, and §7
points at reassigning remaining work to "new **or existing** instances".
This package makes the *existing* half real for concurrent campaigns:

* :class:`~repro.fleet.lease.LeaseManager` — owns instance lifecycles,
  hands out time-bounded :class:`~repro.fleet.lease.Lease`\\ s, and parks
  released instances in a :class:`~repro.fleet.lease.WarmPool` keyed by
  remaining paid-hour seconds (a
  :class:`~repro.packing.index.FreeSpaceIndex` best-fit in O(log B)) —
  a recycled lease skips the boot delay and its first ``⌈·⌉`` charge;
* :class:`~repro.fleet.scheduler.FleetScheduler` — per-tenant weighted
  fair-share queues with priorities and a bounded queue depth
  (backpressure → explicit decisions, never silent drops);
* :class:`~repro.fleet.tenants.TenantRegistry` +
  :class:`~repro.fleet.tenants.AdmissionController` — per-tenant
  concurrent-instance quotas and cost budgets enforced at submission;
* :class:`~repro.fleet.report.FleetReport` — per-tenant cost attribution
  that splits each billed hour across the campaigns that used it,
  summing exactly to the fleet's ledger total.

Quick sketch::

    from repro.fleet import (AdmissionController, FleetRequest,
                             FleetScheduler, LeaseManager, Tenant,
                             TenantRegistry)

    registry = TenantRegistry()
    registry.register(Tenant("acme", max_concurrent_instances=4))
    leases = LeaseManager(cloud, max_instances=8)
    sched = FleetScheduler(cloud, leases, AdmissionController(registry))
    decision = sched.submit(FleetRequest("acme", workload, plan, "nightly"))
    report = sched.run()
    print(report.per_tenant_cost())

See ``examples/fleet_sharing.py`` and ``python -m repro.cli fleet``.
"""

from repro.fleet.lease import (
    Lease,
    LeaseError,
    LeaseManager,
    LeaseState,
    UsageSlice,
    WarmPool,
)
from repro.fleet.report import BinRun, CampaignOutcome, FleetReport
from repro.fleet.scheduler import FleetRequest, FleetScheduler
from repro.fleet.tenants import (
    ADMITTED,
    DEFERRED,
    REJECTED,
    AdmissionController,
    AdmissionDecision,
    Tenant,
    TenantRegistry,
)

__all__ = [
    "Lease", "LeaseError", "LeaseManager", "LeaseState", "UsageSlice",
    "WarmPool",
    "Tenant", "TenantRegistry", "AdmissionController", "AdmissionDecision",
    "ADMITTED", "DEFERRED", "REJECTED",
    "FleetRequest", "FleetScheduler",
    "BinRun", "CampaignOutcome", "FleetReport",
]
