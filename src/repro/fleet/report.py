"""Fleet outcome reporting and per-tenant cost attribution.

Shared instances make "what did my campaign cost?" non-trivial: one
billed hour may have served three campaigns from two tenants, plus an
idle remainder.  :class:`FleetReport` splits every instance's ceil-hour
charge across the usage slices that actually occupied it, proportionally
to busy seconds (idle/wasted seconds are spread the same way — somebody
bought them), with the float residual folded into the largest share so
the attribution sums *exactly* to the ledger total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cloud.billing import UsageRecord
from repro.fleet.lease import UsageSlice
from repro.fleet.tenants import AdmissionDecision

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.scheduler import FleetRequest

__all__ = ["BinRun", "CampaignOutcome", "FleetReport"]


@dataclass(frozen=True)
class BinRun:
    """One campaign bin executed on one lease."""

    campaign: str
    tenant: str
    bin_index: int
    lease_id: str
    instance_id: str
    source: str                # warm | cold | extension
    start: float               # work start (post-boot / post-wait)
    end: float
    wait_seconds: float        # submission → work start

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CampaignOutcome:
    """Everything one enqueued campaign experienced."""

    request: "FleetRequest"
    decision: AdmissionDecision
    runs: list[BinRun] = field(default_factory=list)
    finished_at: float = 0.0

    @property
    def deadline(self) -> float:
        return self.request.plan.deadline

    @property
    def elapsed(self) -> float:
        """Submission to last bin completion."""
        return self.finished_at - (self.request.submitted_at or 0.0)

    @property
    def n_missed(self) -> int:
        """Bins finishing past the campaign deadline (measured from submit)."""
        submit = self.request.submitted_at or 0.0
        return sum(1 for r in self.runs if r.end - submit > self.deadline)

    @property
    def met_deadline(self) -> bool:
        return self.n_missed == 0

    @property
    def warm_runs(self) -> int:
        return sum(1 for r in self.runs if r.source != "cold")


@dataclass
class FleetReport:
    """Fleet-wide outcome: campaigns, billing, reuse, attribution."""

    outcomes: list[CampaignOutcome]
    rejected: list[tuple["FleetRequest", AdmissionDecision]]
    records: list[UsageRecord]
    slices: list[UsageSlice]
    lease_stats: dict = field(default_factory=dict)

    # -- billing -----------------------------------------------------------

    @property
    def total_cost(self) -> float:
        return sum(r.cost for r in self.records)

    @property
    def total_billed_hours(self) -> int:
        return sum(r.hours for r in self.records)

    @property
    def total_wasted_seconds(self) -> float:
        return sum(r.wasted_seconds for r in self.records)

    def _attribute(self, key) -> dict:
        """Split every record's cost over its slices by ``key(slice)``.

        Shares are proportional to busy seconds, then snapped to the grid
        of ``ulp(total_cost)`` with the integer remainder folded into the
        largest share.  Every returned value is a multiple of that grain
        and partial sums stay below ``2^53`` grains, so float addition is
        *exact* in any order: ``sum(values()) == total_cost``, not ≈.
        """
        by_instance: dict[str, list[UsageSlice]] = {}
        for s in self.slices:
            by_instance.setdefault(s.instance_id, []).append(s)
        out: dict = {}
        for rec in self.records:
            slices = by_instance.get(rec.instance_id, [])
            busy = sum(s.seconds for s in slices)
            if not slices or busy <= 0:
                out["(unattributed)"] = out.get("(unattributed)", 0.0) + rec.cost
                continue
            for s in slices:
                k = key(s)
                out[k] = out.get(k, 0.0) + rec.cost * (s.seconds / busy)
        if not out:
            return out
        total = self.total_cost
        if total == 0.0:
            return {k: 0.0 for k in out}
        grain = math.ulp(total)
        largest = max(out, key=lambda k: out[k])
        exact: dict = {}
        acc = 0
        for k, v in out.items():
            if k == largest:
                continue
            q = round(v / grain)
            exact[k] = q * grain
            acc += q
        exact[largest] = (round(total / grain) - acc) * grain
        return exact

    def per_tenant_cost(self) -> dict[str, float]:
        """USD each tenant owes; sums exactly to :attr:`total_cost`."""
        return self._attribute(lambda s: s.tenant)

    def per_campaign_cost(self) -> dict[tuple[str, str], float]:
        """USD per (tenant, campaign); same exact-sum guarantee."""
        return self._attribute(lambda s: (s.tenant, s.campaign or ""))

    # -- service quality ---------------------------------------------------

    @property
    def n_bins(self) -> int:
        return sum(len(o.runs) for o in self.outcomes)

    @property
    def n_missed(self) -> int:
        return sum(o.n_missed for o in self.outcomes)

    @property
    def miss_rate(self) -> float:
        return self.n_missed / self.n_bins if self.n_bins else 0.0

    @property
    def warm_hit_rate(self) -> float:
        return self.lease_stats.get("hit_rate", 0.0)

    def summary(self) -> dict:
        """Headline fleet facts in one flat dict."""
        kinds = {"admitted": 0, "deferred": 0, "rejected": 0}
        for o in self.outcomes:
            kinds[o.decision.kind] += 1
        kinds["rejected"] = len(self.rejected)
        return {
            "campaigns": len(self.outcomes),
            **kinds,
            "bins": self.n_bins,
            "missed": self.n_missed,
            "instances": len(self.records),
            "instance_hours": self.total_billed_hours,
            "cost_usd": round(self.total_cost, 4),
            "wasted_seconds": round(self.total_wasted_seconds, 1),
            "warm_hit_rate": round(self.warm_hit_rate, 4),
        }

    def render_attribution(self) -> str:
        """ASCII per-tenant bill, matching the report module's table style."""
        per_tenant = self.per_tenant_cost()
        busy: dict[str, float] = {}
        for s in self.slices:
            busy[s.tenant] = busy.get(s.tenant, 0.0) + s.seconds
        width = max([len("tenant")] + [len(t) for t in per_tenant])
        lines = [f"{'tenant':>{width}}  {'busy_s':>9}  {'cost_usd':>9}"]
        for tenant in sorted(per_tenant):
            lines.append(f"{tenant:>{width}}  {busy.get(tenant, 0.0):>9.1f}  "
                         f"{per_tenant[tenant]:>9.4f}")
        lines.append(f"{'total':>{width}}  {sum(busy.values()):>9.1f}  "
                     f"{self.total_cost:>9.4f}")
        return "\n".join(lines)
