"""Instance leases and the warm pool — paid-hour reuse made explicit.

The §7 sentence this module implements: reassign remaining work "to new
**or existing** instances".  Under ``cost = r·⌈P⌉`` billing every
mid-hour termination throws away a remainder (now visible as
``UsageRecord.wasted_seconds``); a :class:`LeaseManager` keeps released
instances in a :class:`WarmPool` keyed by those remainders instead, so
the next campaign's bin can ride the hour that is already paid for —
skipping both the boot delay and the first ``⌈·⌉`` charge.

Lease/instance state machine::

            acquire (pool miss)                acquire (pool hit)
    ┌──────┐  boot Δ   ┌────────┐   release   ┌────────┐
    │ cold │──────────▶│ LEASED │────────────▶│  WARM  │──┐
    └──────┘           └────────┘  remainder  └────────┘  │ best-fit
                            ▲      ≥ floor        │       │ remainder
                            │                     │       │ (FreeSpaceIndex)
                            └─────────────────────┴───────┘
                                    │ remainder expired / shutdown
                                    ▼
                               ┌─────────┐
                               │ RETIRED │  terminate at last use;
                               └─────────┘  ledger bills ⌈P⌉, waste visible

The pool *is* the packing engine: remaining paid-hour seconds are bin
free-space, and a lease request of estimated duration ``d`` is an item
placed with :meth:`~repro.packing.index.FreeSpaceIndex.best_fit_slot` —
the smallest remainder that still fits, in O(log B).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.cloud.billing import UsageRecord
from repro.cloud.cluster import Cloud
from repro.cloud.instance import Instance, InstanceState
from repro.packing.index import FreeSpaceIndex

__all__ = ["LeaseError", "LeaseState", "Lease", "UsageSlice", "WarmPool",
           "LeaseManager"]


class LeaseError(RuntimeError):
    """Illegal lease transition or an exhausted fleet."""


class LeaseState(enum.Enum):
    """Lease lifecycle: granted (ACTIVE) until returned (RELEASED)."""

    ACTIVE = "active"
    RELEASED = "released"


@dataclass
class Lease:
    """A time-bounded right to run work on one fleet instance."""

    lease_id: str
    tenant: str
    instance: Instance
    requested_at: float        # simulated time the acquire happened
    ready_at: float            # when work can start (post-boot for cold)
    warm: bool                 # True = served from the pool, no boot
    extension: bool = False    # warm, but crossing into a new paid hour
    campaign: str | None = None
    state: LeaseState = LeaseState.ACTIVE
    released_at: float | None = None
    #: How the lease ended up: ``"ok"``, ``"instance-failed"`` (the
    #: instance died under the lease — e.g. an AZ outage), or
    #: ``"launch-fault-absorbed"`` (a cold boot was refused by the cloud
    #: and the fleet substituted a pooled extension).  Faults surface
    #: here as explicit outcomes instead of vanishing into exceptions.
    outcome: str = "ok"

    @property
    def source(self) -> str:
        """Provenance tag used in plan annotations and metrics labels."""
        if not self.warm:
            return "cold"
        return "extension" if self.extension else "warm"


@dataclass(frozen=True)
class UsageSlice:
    """One lease's occupancy of one instance — the attribution atom."""

    instance_id: str
    lease_id: str
    tenant: str
    campaign: str | None
    t0: float
    t1: float

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0


@dataclass
class _PoolEntry:
    instance: Instance
    available_at: float        # when the previous lease released it
    boundary: float            # end of the hour already paid at release
    slot: int                  # FreeSpaceIndex slot


class WarmPool:
    """Released instances indexed by remaining paid-hour seconds.

    A :class:`~repro.packing.index.FreeSpaceIndex` holds one slot per
    pooled instance whose free-space is the integer remainder of its paid
    hour.  :meth:`take` answers "smallest remainder that still fits this
    estimated duration" via ``best_fit_slot`` in O(log B); keys observed
    to be stale (the instance was released earlier than the request time,
    so its remainder has since shrunk) are lazily re-keyed and the query
    retried, mirroring the index's own lazy heap discipline.
    """

    def __init__(self) -> None:
        self._index = FreeSpaceIndex()
        self._entries: dict[int, _PoolEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[_PoolEntry]:
        """Snapshot of the pooled entries (for reaping and inspection)."""
        return list(self._entries.values())

    def put(self, instance: Instance, available_at: float,
            boundary: float) -> None:
        """Pool ``instance``, free from ``available_at`` until ``boundary``."""
        remaining = max(0, int(boundary - available_at))
        slot = self._index.append(remaining, 0)
        self._entries[slot] = _PoolEntry(instance, available_at, boundary, slot)

    def take(self, need_seconds: float, at: float) -> tuple[_PoolEntry, float] | None:
        """Best-fit entry whose paid remainder covers ``need_seconds``.

        Returns ``(entry, effective_start)`` — work starts at
        ``max(at, entry.available_at)`` — or ``None`` when no pooled
        remainder fits.  The taken entry leaves the pool.
        """
        need = max(1, math.ceil(need_seconds))
        index = self._index
        while True:
            slot = index.best_fit_slot(need)
            if slot < 0:
                return None
            entry = self._entries.get(slot)
            if entry is None:  # pragma: no cover - dead slots keep free 0
                return None
            eff = max(at, entry.available_at)
            usable = entry.boundary - eff
            if usable >= need:
                self._remove(slot)
                return entry, eff
            # The key predates `at`; shrink it to the current remainder
            # (strictly, so the loop terminates) and ask the index again.
            new_key = max(0, min(int(usable), index.free_of(slot) - 1))
            index.consume(slot, index.free_of(slot) - new_key)

    def take_earliest(self, at: float) -> tuple[_PoolEntry, float] | None:
        """Earliest-available entry regardless of remainder (extension path)."""
        if not self._entries:
            return None
        entry = min(self._entries.values(), key=lambda e: (e.available_at, e.slot))
        self._remove(entry.slot)
        return entry, max(at, entry.available_at)

    def _remove(self, slot: int) -> None:
        self._index.consume(slot, self._index.free_of(slot))
        del self._entries[slot]


class LeaseManager:
    """Owns fleet instance lifecycles; hands out and recycles leases.

    ``max_instances`` caps concurrently live instances (leased + pooled).
    Released instances join the warm pool; instances are only terminated
    at :meth:`shutdown` (or explicit :meth:`reap`), retroactively at their
    last use, so idle tail seconds are never billed and every thrown-away
    remainder surfaces as ``wasted_seconds`` on the ledger.
    """

    def __init__(self, cloud: Cloud, *, max_instances: int | None = None,
                 tag: str = "fleet") -> None:
        if max_instances is not None and max_instances < 1:
            raise LeaseError("max_instances must be at least 1")
        self.cloud = cloud
        self.max_instances = max_instances
        self.tag = tag
        self.pool = WarmPool()
        self.obs = cloud.obs
        self._leases: dict[str, Lease] = {}
        self._active: set[str] = set()
        self._known: set[str] = set()
        self._count = 0
        self.slices: list[UsageSlice] = []
        self.records: list[UsageRecord] = []
        # Plain counters so reports work with observability disabled.
        self.pool_hits = 0
        self.pool_misses = 0
        self.pool_extensions = 0
        self.reaped = 0
        self.pool_evicted = 0      # pooled instances lost (dead zone/crash)
        self.launch_faults = 0     # cold boots the cloud refused (chaos)
        # Warm takes whose previous lease belonged to a different campaign
        # (e.g. a DAG stage inheriting paid hours an earlier stage
        # released) — the cross-stage handoff a shared fleet exists for.
        self.cross_campaign_hits = 0
        self._last_campaign: dict[str, str | None] = {}

    # -- capacity ----------------------------------------------------------

    @property
    def live_instances(self) -> int:
        """Instances currently held by a lease or warming in the pool."""
        return len(self._active) + len(self.pool)

    def can_boot(self) -> bool:
        """True while the fleet is allowed to grow by one more instance."""
        return self.max_instances is None or self.live_instances < self.max_instances

    # -- lease lifecycle ---------------------------------------------------

    def acquire(self, tenant: str, *, est_seconds: float, at: float,
                campaign: str | None = None,
                allow_extension: bool = True) -> Lease:
        """Grant a lease at simulated time ``at``.

        Order of preference: a pooled remainder that fits (warm hit — no
        boot, no new ``⌈·⌉`` charge), then a cold boot if the fleet may
        grow, then — with ``allow_extension`` — the earliest pooled
        instance even though it must enter a new paid hour (still saves
        the boot delay).  Raises :class:`LeaseError` when none apply.
        """
        from repro.chaos import ChaosError

        if est_seconds < 0:
            raise LeaseError("estimated duration must be non-negative")
        taken = self._take_healthy(est_seconds, at)
        extension = False
        fault: str | None = None
        instance = None
        if taken is not None:
            entry, ready = taken
            instance, warm = entry.instance, True
            self.pool_hits += 1
        else:
            if self.can_boot():
                try:
                    instance = self.cloud.launch_instance(wait=False)
                except ChaosError as e:
                    # The cloud refused the boot; surface the fault and
                    # fall through to a pooled extension if one exists.
                    fault = getattr(e, "reason", None) or str(e)
                    self.launch_faults += 1
                    if self.obs.enabled:
                        self.obs.metrics.counter("fleet.lease.launch_faults",
                                                 reason=fault).inc()
                else:
                    ready = at + instance.boot_delay
                    instance.mark_running(ready)
                    warm = False
                    self.pool_misses += 1
            if instance is None:
                taken = (self._take_earliest_healthy(at)
                         if allow_extension else None)
                if taken is None:
                    if fault is not None:
                        raise LeaseError(
                            f"cold boot refused ({fault}) and no pooled "
                            "lease available")
                    raise LeaseError(
                        f"fleet at capacity ({self.max_instances} instances) "
                        "with no pooled lease available")
                entry, ready = taken
                instance, warm, extension = entry.instance, True, True
                self.pool_extensions += 1

        self._count += 1
        lease = Lease(
            lease_id=f"lease-{self._count:06d}",
            tenant=tenant,
            instance=instance,
            requested_at=at,
            ready_at=ready,
            warm=warm,
            extension=extension,
            campaign=campaign,
        )
        if fault is not None:
            lease.outcome = "launch-fault-absorbed"
        if warm and instance.instance_id in self._last_campaign \
                and self._last_campaign[instance.instance_id] != campaign:
            self.cross_campaign_hits += 1
            if self.obs.enabled:
                self.obs.metrics.counter("fleet.lease.cross_campaign_hits",
                                         source=lease.source).inc()
        self._leases[lease.lease_id] = lease
        self._active.add(instance.instance_id)
        self._known.add(instance.instance_id)
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("fleet.lease.granted", source=lease.source).inc()
            obs.metrics.gauge("fleet.pool.size").set(len(self.pool))
            if warm and not extension:
                obs.metrics.histogram(
                    "fleet.pool.reuse_headroom_s",
                    buckets=(60, 300, 900, 1800, 2700, 3600),
                ).observe(max(0.0, est_seconds))
            obs.tracer.instant("fleet.lease.acquired", cat="lease",
                               track=instance.instance_id, lease=lease.lease_id,
                               tenant=tenant, source=lease.source)
        return lease

    def _take_healthy(self, est_seconds: float,
                      at: float) -> tuple[_PoolEntry, float] | None:
        """Best-fit pool take that skips (and evicts) dead instances."""
        while True:
            taken = self.pool.take(est_seconds, at)
            if taken is None:
                return None
            if taken[0].instance.state is InstanceState.RUNNING:
                return taken
            self._note_evicted(taken[0].instance)

    def _take_earliest_healthy(self, at: float) -> tuple[_PoolEntry, float] | None:
        """Earliest-available pool take that skips dead instances."""
        while True:
            taken = self.pool.take_earliest(at)
            if taken is None:
                return None
            if taken[0].instance.state is InstanceState.RUNNING:
                return taken
            self._note_evicted(taken[0].instance)

    def _note_evicted(self, instance: Instance) -> None:
        self.pool_evicted += 1
        if self.obs.enabled:
            self.obs.metrics.counter("fleet.pool.evicted").inc()
            self.obs.tracer.instant("fleet.pool.evicted", cat="lease",
                                    track=instance.instance_id)

    def evict_dead_zones(self, now: float) -> int:
        """Drop pooled instances that died or whose zone is dark at ``now``.

        With a :class:`~repro.chaos.injector.FaultInjector` installed on
        the cloud, still-RUNNING instances parked in a zone under an
        active outage are failed (billing their partial hours) before
        eviction — the pool must not hand out capacity in a dead AZ.
        Returns the number of entries evicted.
        """
        chaos = getattr(self.cloud, "chaos", None)
        n = 0
        for entry in self.pool.entries():
            inst = entry.instance
            dead_zone = (chaos is not None
                         and chaos.zone_down(inst.zone.name, now))
            if inst.state is InstanceState.RUNNING and not dead_zone:
                continue
            if inst.state is InstanceState.RUNNING and dead_zone:
                self.cloud.fail_instance(inst)
            self.pool._remove(entry.slot)
            self._note_evicted(inst)
            n += 1
        return n

    def release(self, lease: Lease, at: float) -> None:
        """Return the lease; the instance joins the warm pool.

        ``at`` must not precede the lease's work-ready time.  The usage
        slice ``[ready_at, at]`` is recorded for cost attribution, and the
        instance re-enters the pool keyed by what is left of the hour that
        is paid through ``at``.
        """
        if lease.state is not LeaseState.ACTIVE:
            raise LeaseError(f"{lease.lease_id} already released")
        if at < lease.ready_at:
            raise LeaseError(f"{lease.lease_id} released before it was ready")
        lease.state = LeaseState.RELEASED
        lease.released_at = at
        inst = lease.instance
        self._active.discard(inst.instance_id)
        self._last_campaign[inst.instance_id] = lease.campaign
        self.slices.append(UsageSlice(
            instance_id=inst.instance_id, lease_id=lease.lease_id,
            tenant=lease.tenant, campaign=lease.campaign,
            t0=lease.ready_at, t1=at,
        ))
        if inst.state is not InstanceState.RUNNING:
            # The instance died under the lease (crash, AZ outage kill).
            # Its hours are already billed by whoever failed it; surface
            # the fault as an outcome and keep the corpse out of the pool.
            lease.outcome = "instance-failed"
            if self.obs.enabled:
                self.obs.metrics.counter("fleet.lease.failed").inc()
                self.obs.tracer.instant("fleet.lease.failed", cat="lease",
                                        track=inst.instance_id,
                                        lease=lease.lease_id)
            return
        boundary = self.cloud.paid_through(inst, at)
        self.pool.put(inst, at, boundary)
        obs = self.obs
        if obs.enabled:
            obs.tracer.add_span("fleet.lease.hold", lease.ready_at, at,
                                cat="lease", track=inst.instance_id,
                                lease=lease.lease_id, tenant=lease.tenant,
                                campaign=lease.campaign or "",
                                source=lease.source)
            obs.metrics.counter("fleet.lease.busy_seconds").inc(at - lease.ready_at)
            obs.metrics.gauge("fleet.pool.size").set(len(self.pool))

    # -- retirement --------------------------------------------------------

    def reap(self, now: float) -> int:
        """Retire pooled instances whose paid remainder has expired by ``now``.

        Termination is retroactive at each instance's last use, so the
        idle tail past the final lease is never billed.  Returns the
        number of instances retired.  Requires the cloud clock to have
        reached ``now``.
        """
        n = 0
        for entry in self.pool.entries():
            if entry.boundary <= now:
                self.pool._remove(entry.slot)
                self._retire(entry.instance, entry.available_at)
                n += 1
        self.reaped += n
        return n

    def shutdown(self) -> None:
        """Retire every pooled instance at its last use.

        Active leases must be released first.  Call after the cloud clock
        has advanced past the fleet's last activity.
        """
        if self._active:
            raise LeaseError(f"{len(self._active)} lease(s) still active")
        for entry in self.pool.entries():
            self.pool._remove(entry.slot)
            self._retire(entry.instance, entry.available_at)

    def _retire(self, instance: Instance, at: float) -> None:
        if instance.state is not InstanceState.RUNNING:
            # Killed while pooled (e.g. AZ outage): the kill already
            # billed its hours — terminating again would double-bill.
            self._note_evicted(instance)
            return
        rec = self.cloud.terminate_instance(instance, at=min(at, self.cloud.now))
        if rec is not None:
            self.records.append(rec)
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("fleet.instance.retired").inc()
            if rec is not None:
                obs.metrics.counter("fleet.instance.wasted_seconds").inc(
                    rec.wasted_seconds)

    # -- introspection -----------------------------------------------------

    @property
    def leases(self) -> tuple[Lease, ...]:
        return tuple(self._leases.values())

    def owns(self, instance_id: str) -> bool:
        """True if this manager ever granted a lease on ``instance_id``."""
        return instance_id in self._known

    def hit_rate(self) -> float:
        """Warm-pool hit rate over all acquire decisions."""
        total = self.pool_hits + self.pool_misses + self.pool_extensions
        return self.pool_hits / total if total else 0.0

    def stats(self) -> dict:
        """Pool behaviour in one dict (mirrored into metrics when enabled)."""
        return {
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "pool_extensions": self.pool_extensions,
            "hit_rate": round(self.hit_rate(), 4),
            "reaped": self.reaped,
            "leases": len(self._leases),
            "pool_evicted": self.pool_evicted,
            "launch_faults": self.launch_faults,
            "cross_campaign_hits": self.cross_campaign_hits,
        }
