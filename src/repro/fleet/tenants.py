"""Tenants, quotas, budgets, and admission decisions.

The ROADMAP's "heavy traffic from millions of users" scenario needs the
control plane to say *no* out loud: every submission gets an explicit
:class:`AdmissionDecision` — ``admitted``, ``deferred`` (accepted but
queued behind a saturated quota), or ``rejected`` (budget exhausted,
backpressure, unknown tenant) — never a silent drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.scheduler import FleetRequest

__all__ = ["Tenant", "TenantRegistry", "AdmissionDecision",
           "AdmissionController", "ADMITTED", "DEFERRED", "REJECTED"]

ADMITTED = "admitted"
DEFERRED = "deferred"
REJECTED = "rejected"


@dataclass(frozen=True)
class Tenant:
    """One paying customer of the shared fleet.

    ``weight`` scales the fair share (2.0 = twice the service of a
    weight-1 tenant under contention); ``max_concurrent_instances`` caps
    simultaneously leased instances; ``budget_usd`` is a hard cost ceiling
    checked against committed estimates at admission (``None`` = no cap).
    """

    name: str
    weight: float = 1.0
    max_concurrent_instances: int = 4
    budget_usd: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a name")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.max_concurrent_instances < 1:
            raise ValueError("quota must allow at least one instance")
        if self.budget_usd is not None and self.budget_usd < 0:
            raise ValueError("budget must be non-negative")


class TenantRegistry:
    """Known tenants plus their committed spend."""

    def __init__(self) -> None:
        self._tenants: dict[str, Tenant] = {}
        self._committed: dict[str, float] = {}

    def register(self, tenant: Tenant) -> Tenant:
        """Add a tenant (names are unique); returns it for chaining."""
        if tenant.name in self._tenants:
            raise ValueError(f"tenant {tenant.name!r} already registered")
        self._tenants[tenant.name] = tenant
        self._committed[tenant.name] = 0.0
        return tenant

    def get(self, name: str) -> Tenant | None:
        """The tenant registered under ``name``, or ``None``."""
        return self._tenants.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def __iter__(self):
        return iter(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)

    def committed_usd(self, name: str) -> float:
        """Estimated spend admitted so far (admission-time accounting)."""
        return self._committed.get(name, 0.0)

    def commit(self, name: str, usd: float) -> None:
        """Reserve ``usd`` of estimated spend against the tenant's budget."""
        self._committed[name] = self._committed.get(name, 0.0) + usd

    def remaining_budget(self, name: str) -> float | None:
        """Budget minus committed spend; ``None`` when the tenant has no cap."""
        t = self._tenants[name]
        if t.budget_usd is None:
            return None
        return t.budget_usd - self.committed_usd(name)


@dataclass(frozen=True)
class AdmissionDecision:
    """The explicit outcome of one submission."""

    kind: str                  # ADMITTED | DEFERRED | REJECTED
    reason: str
    est_cost_usd: float = 0.0

    @property
    def admitted(self) -> bool:
        return self.kind == ADMITTED

    @property
    def deferred(self) -> bool:
        return self.kind == DEFERRED

    @property
    def rejected(self) -> bool:
        return self.kind == REJECTED

    @property
    def enqueued(self) -> bool:
        """Admitted and deferred campaigns enter the queue; rejected don't."""
        return self.kind != REJECTED


@dataclass
class AdmissionController:
    """Quota/budget/backpressure gate in front of the scheduler queue.

    ``max_queue_depth`` bounds the total number of queued campaigns — the
    scheduler's backpressure valve: beyond it submissions are *rejected*
    (bounded queue, explicit signal), not buffered without limit.
    """

    registry: TenantRegistry
    max_queue_depth: int = 64
    rate: float = 0.085

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("queue depth bound must be at least 1")

    def review(self, request: "FleetRequest", *, queue_depth: int,
               tenant_active_campaigns: int = 0) -> AdmissionDecision:
        """Decide one submission given current queue/tenant state."""
        tenant = self.registry.get(request.tenant)
        if tenant is None:
            return AdmissionDecision(REJECTED, f"unknown tenant {request.tenant!r}")
        est = request.plan.predicted_cost(self.rate)
        remaining = self.registry.remaining_budget(request.tenant)
        if remaining is not None and est > remaining:
            return AdmissionDecision(
                REJECTED,
                f"budget: est ${est:.3f} exceeds remaining ${remaining:.3f}",
                est_cost_usd=est)
        if queue_depth >= self.max_queue_depth:
            return AdmissionDecision(
                REJECTED,
                f"backpressure: queue depth {queue_depth} at bound "
                f"{self.max_queue_depth}", est_cost_usd=est)
        self.registry.commit(request.tenant, est)
        if (request.plan.n_instances > tenant.max_concurrent_instances
                or tenant_active_campaigns > 0):
            return AdmissionDecision(
                DEFERRED,
                f"quota: {request.plan.n_instances} bin(s) vs concurrency "
                f"cap {tenant.max_concurrent_instances}; will run throttled",
                est_cost_usd=est)
        return AdmissionDecision(ADMITTED, "ok", est_cost_usd=est)
