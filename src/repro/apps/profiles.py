"""Cost profiles: work → reference-instance seconds.

A profile is the *ground truth* the EC2 simulator charges for running an
application — the thing the paper's empirical methodology (probes, curve
fits) estimates from the outside.  Nothing in :mod:`repro.perfmodel` or
:mod:`repro.core` may read these constants; they only observe measured
times.

Each profile splits service time into a :class:`TimeBreakdown`:

``setup``
    per-run overhead (process/JVM start, argument parsing) — the source of
    the "domination of unstable setup overheads" on tiny probes (Fig. 3);
``io``
    storage-bound seconds on the reference device (divided by the
    instance's I/O factor and the EBS placement factor by the executor);
``cpu``
    compute-bound seconds on the reference core (divided by the instance's
    CPU factor).

Calibration targets (§5 of the paper): grep streams at ≈75 MB/s
(Eq. (1) slope 1.324e-8 s/B) with a per-file penalty that makes the
original small-file layout ≈5.6× slower than 100 MB units (Fig. 6); POS
tagging costs ≈0.865e-4 s/B on the probe mix (Eq. (3)), degrades
"pronouncedly" on large unit files (Fig. 7), and roughly doubles between
simple and complex prose at equal word count (§5.2 novels).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2
from typing import Iterable

from repro.apps.base import UnitMeta
from repro.apps.postagger import CONTEXT_EXPONENT
from repro.sim.random import RngStream
from repro.units import MB

__all__ = ["TimeBreakdown", "GrepCostProfile", "PosCostProfile"]


@dataclass(frozen=True)
class TimeBreakdown:
    """Reference-instance seconds, split by bottleneck resource."""

    setup: float
    io: float
    cpu: float

    @property
    def total(self) -> float:
        return self.setup + self.io + self.cpu

    def __post_init__(self) -> None:
        if min(self.setup, self.io, self.cpu) < 0:
            raise ValueError("time components must be non-negative")


@dataclass(frozen=True)
class GrepCostProfile:
    """I/O-bound search: per-file open/seek penalty plus streaming.

    ``per_file_overhead`` models EBS metadata + random placement seeks for
    each file open — the quantity that data reshaping amortises.
    """

    setup_median: float = 0.18       # seconds; lognormal median
    setup_sigma: float = 0.9         # large spread → unstable small probes
    per_file_overhead: float = 0.004  # seconds per file opened
    # io + cpu per byte = 1.224e-8 + 0.1e-8 = 1.324e-8 s/B, the Eq. (1) slope.
    stream_bandwidth: float = 81.7 * MB  # bytes/s sequential read
    cpu_per_byte: float = 1.0e-9     # pattern automaton cost
    cpu_per_match: float = 2.0e-6    # formatting matched lines

    def draw_setup(self, rng: RngStream) -> float:
        """Per-run startup seconds (lognormal)."""
        import math

        return rng.lognormal(math.log(self.setup_median), self.setup_sigma)

    def draw_setups(self, rng: RngStream, n: int):
        """``n`` per-run startup draws in one vector (columnar runs)."""
        import math

        return rng.lognormals(math.log(self.setup_median), self.setup_sigma, n)

    def breakdown(self, units: Iterable[UnitMeta], *, matches: int = 0) -> TimeBreakdown:
        """Reference-time split for processing ``units``."""
        n_files = 0
        n_bytes = 0
        for u in units:
            n_files += 1
            n_bytes += u.size
        io = n_files * self.per_file_overhead + n_bytes / self.stream_bandwidth
        cpu = n_bytes * self.cpu_per_byte + matches * self.cpu_per_match
        return TimeBreakdown(setup=0.0, io=io, cpu=cpu)


@dataclass(frozen=True)
class PosCostProfile:
    """Memory/CPU-bound tagging.

    The memory-residency penalty ``1 + rate·log2(size/knee)`` (capped)
    charges extra for unit files that overflow the tagger's working set —
    the mechanism behind Fig. 7's "degradation for working with large files
    is pronounced".  Context work uses the same superlinear sentence-length
    exponent as the native tagger, making prose complexity a first-class
    cost driver (§5.2 novels experiment).
    """

    jvm_startup_median: float = 3.0   # seconds; the Eq. (4) intercept ≈3.086
    jvm_startup_sigma: float = 0.25
    per_file_overhead: float = 2.0e-4  # wrapped tagger: no JVM restart per file
    local_read_bandwidth: float = 100.0 * MB
    # Calibrated so the probe mix (≈8.1 B/token, ≈20 words/sentence) costs
    # ≈0.865e-4 s/B — the Eq. (3) slope.
    per_token: float = 1.3e-4
    per_context_op: float = 4.2e-5
    mem_penalty_knee: int = 800       # bytes; files beyond this thrash caches
    mem_penalty_rate: float = 0.08
    mem_penalty_cap: float = 2.2

    def draw_setup(self, rng: RngStream) -> float:
        """Per-run startup seconds (lognormal)."""
        import math

        return rng.lognormal(math.log(self.jvm_startup_median), self.jvm_startup_sigma)

    def draw_setups(self, rng: RngStream, n: int):
        """``n`` per-run startup draws in one vector (columnar runs)."""
        import math

        return rng.lognormals(math.log(self.jvm_startup_median),
                              self.jvm_startup_sigma, n)

    def memory_penalty(self, size: int) -> float:
        """Working-set multiplier for a unit file of ``size`` bytes."""
        if size <= self.mem_penalty_knee:
            return 1.0
        return min(self.mem_penalty_cap,
                   1.0 + self.mem_penalty_rate * log2(size / self.mem_penalty_knee))

    def breakdown(self, units: Iterable[UnitMeta], *, matches: int = 0) -> TimeBreakdown:
        """Reference-time split for processing ``units``."""
        # ``matches`` accepted for interface parity with the grep profile;
        # tagging cost does not depend on it.
        io = 0.0
        cpu = 0.0
        for u in units:
            tokens = u.stats.tokens_in(u.size)
            avg_len = max(1.0, u.stats.avg_sentence_words)
            ctx_ops = tokens * avg_len ** (CONTEXT_EXPONENT - 1.0)
            unit_cpu = tokens * self.per_token + ctx_ops * self.per_context_op
            cpu += unit_cpu * self.memory_penalty(u.size)
            io += self.per_file_overhead + u.size / self.local_read_bandwidth
        return TimeBreakdown(setup=0.0, io=io, cpu=cpu)
