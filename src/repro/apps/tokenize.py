"""Tokenisation utilities shared by the applications.

The paper motivates full-traversal grep as "a processing pattern that occurs
often in basic Natural Language Processing applications (e.g., tokenization)"
— so the tokenizer here is a real, tested component, also used as the POS
tagger's front end.
"""

from __future__ import annotations

import re

__all__ = ["strip_markup", "tokenize", "sentences"]

_TAG_RE = re.compile(r"<[^>]*>")
_TOKEN_RE = re.compile(r"[A-Za-z]+(?:'[A-Za-z]+)?|\d+(?:\.\d+)?|[.,;:!?()\"'-]")
_SENT_END = {".", "!", "?"}


def strip_markup(text: str) -> str:
    """Remove HTML tags, keeping the visible text (cheap, regex-based)."""
    return _TAG_RE.sub(" ", text)


def tokenize(text: str) -> list[str]:
    """Split ``text`` into word, number and punctuation tokens."""
    return _TOKEN_RE.findall(text)


def sentences(text: str) -> list[list[str]]:
    """Tokenise and group into sentences on terminal punctuation.

    A trailing unterminated fragment still forms a sentence, so no token is
    ever dropped (a tagger invariant the tests rely on).
    """
    out: list[list[str]] = []
    cur: list[str] = []
    for tok in tokenize(text):
        cur.append(tok)
        if tok in _SENT_END:
            out.append(cur)
            cur = []
    if cur:
        out.append(cur)
    return out
