"""A streaming pattern-search application (the paper's grep workload).

Mirrors the §5.1 usage: searching for "simple patterns consisting of English
dictionary words", usually "a nonsense word to increase as much as possible
the likelihood that it is not found" — the full-traversal worst case.  Both
literal and regex patterns are supported; matching is per line, like grep.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from repro.apps.base import AppResult, TextApplication, Unit, UnitMeta, WorkAccount

__all__ = ["GrepApplication", "NONSENSE_WORD"]

#: The paper's trick pattern — guaranteed absent from generated corpora
#: (our synthetic vocabulary never produces a "q" without "u").
NONSENSE_WORD = "zqxjkvqz"


class GrepApplication(TextApplication):
    """Search unit files for a pattern, reporting matched lines.

    Parameters
    ----------
    pattern:
        Literal string or regular expression to search for.
    regex:
        Interpret ``pattern`` as a regex ("complex search patterns can tip
        the execution profile towards intense memory and CPU usage", §5.1).
    expected_hit_rate:
        Matches per byte used by :meth:`estimate_work`; 0 for the paper's
        nonsense-word scenario.
    """

    name = "grep"

    def __init__(self, pattern: str = NONSENSE_WORD, *, regex: bool = False,
                 expected_hit_rate: float = 0.0) -> None:
        if not pattern:
            raise ValueError("empty pattern")
        if expected_hit_rate < 0:
            raise ValueError("expected_hit_rate must be non-negative")
        self.pattern = pattern
        self.regex = regex
        self.expected_hit_rate = expected_hit_rate
        self._compiled = re.compile(pattern) if regex else None

    # -- native path -------------------------------------------------------

    def _match_line(self, line: str) -> bool:
        if self._compiled is not None:
            return self._compiled.search(line) is not None
        return self.pattern in line

    def run_native(self, units: Sequence[Unit]) -> AppResult:
        """Materialise the units and search them line by line."""
        work = WorkAccount()
        matched_lines: list[str] = []
        for unit in units:
            data = unit.materialize()
            work.files_opened += 1
            work.bytes_read += len(data)
            text = data.decode("ascii", errors="replace")
            for line in text.splitlines():
                if self._match_line(line):
                    work.matches += 1
                    work.output_bytes += len(line) + 1
                    matched_lines.append(line)
        work.validate()
        return AppResult(work=work, outputs={"lines": matched_lines})

    # -- metadata path -------------------------------------------------------

    def estimate_work(self, units: Iterable[UnitMeta]) -> WorkAccount:
        """Predict search work from metadata alone."""
        work = WorkAccount()
        for u in units:
            work.files_opened += 1
            work.bytes_read += u.size
            est_matches = int(u.size * self.expected_hit_rate)
            work.matches += est_matches
            # grep emits the whole matching line (~80 B typical line).
            work.output_bytes += est_matches * 80
        work.validate()
        return work
