"""HTML→text extraction — the pipeline stage between the paper's data sets.

The Text_400K corpus was "extracted from a subset of HTML English language
articles" (§3.2); this application performs that extraction: strip markup,
normalise whitespace, keep the visible text.  It is the middle stage of the
§7 "more complex workflows arising in text processing"
(grep-filter → extract → tag) that :mod:`repro.core.workflow` schedules.

Cost shape: streaming I/O plus a light per-byte parse — between grep and
the tagger, leaning toward grep.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.apps.base import AppResult, TextApplication, Unit, UnitMeta, WorkAccount
from repro.apps.profiles import TimeBreakdown
from repro.apps.tokenize import strip_markup
from repro.sim.random import RngStream
from repro.units import MB

__all__ = ["ExtractorApplication", "ExtractCostProfile"]

_WS_RE = re.compile(r"[ \t]+")
_BLANK_RE = re.compile(r"\n{3,}")


def extract_text(html: str) -> str:
    """Visible text of an HTML document, whitespace-normalised."""
    text = strip_markup(html)
    text = _WS_RE.sub(" ", text)
    text = "\n".join(line.strip() for line in text.splitlines())
    return _BLANK_RE.sub("\n\n", text).strip()


class ExtractorApplication(TextApplication):
    """Extract visible text from HTML unit files."""

    name = "extract"

    def run_native(self, units: Sequence[Unit]) -> AppResult:
        """Materialise and extract text from every unit."""
        work = WorkAccount()
        extracted: list[str] = []
        for unit in units:
            data = unit.materialize()
            work.files_opened += 1
            work.bytes_read += len(data)
            text = extract_text(data.decode("ascii", errors="replace"))
            work.output_bytes += len(text)
            extracted.append(text)
        work.validate()
        return AppResult(work=work, outputs={"texts": extracted})

    def estimate_work(self, units: Iterable[UnitMeta]) -> WorkAccount:
        """Predict extraction work from metadata alone."""
        work = WorkAccount()
        for u in units:
            work.files_opened += 1
            work.bytes_read += u.size
            visible = 1.0 - u.stats.markup_fraction
            work.output_bytes += int(u.size * visible)
        work.validate()
        return work


@dataclass(frozen=True)
class ExtractCostProfile:
    """Streaming parse: I/O-bound with a modest per-byte CPU term."""

    setup_median: float = 0.25
    setup_sigma: float = 0.6
    per_file_overhead: float = 0.004      # same storage penalty as grep
    stream_bandwidth: float = 81.7 * MB
    parse_per_byte: float = 6.0e-9        # regex scanning + rewrite
    write_per_byte: float = 1.0e-8        # emitting the extracted text

    def draw_setup(self, rng: RngStream) -> float:
        """Per-run startup seconds (lognormal)."""
        import math

        return rng.lognormal(math.log(self.setup_median), self.setup_sigma)

    def breakdown(self, units: Iterable[UnitMeta], *, matches: int = 0) -> TimeBreakdown:
        """Reference-time split for extracting ``units``."""
        io = 0.0
        cpu = 0.0
        for u in units:
            visible = 1.0 - u.stats.markup_fraction
            io += self.per_file_overhead + u.size / self.stream_bandwidth
            io += u.size * visible * self.write_per_byte
            cpu += u.size * self.parse_per_byte
        return TimeBreakdown(setup=0.0, io=io, cpu=cpu)
