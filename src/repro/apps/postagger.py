"""A real part-of-speech tagger (the paper's §5.2 workload).

The Stanford left3words tagger is closed-source Java; this reproduction
implements a transparent three-stage tagger with the same *computational
shape*:

1. **Lexicon lookup** for closed-class words (determiners, pronouns,
   prepositions, conjunctions, auxiliaries) — O(1) per token;
2. **Suffix rules** for open-class words (``-tion`` → NN, ``-ly`` → RB,
   ``-ize`` → VB, …) — O(1) per token;
3. **Context transformation rules** (Brill-style) applied per sentence,
   where the window work grows superlinearly in sentence length — this is
   what makes "average sentence length … an important parameter for POS
   tagging" (§5.2) and complex prose ≈2× slower at equal word count.

The tagset is a Penn-Treebank subset: DT PRP IN CC MD VB VBD VBZ NN NNS JJ
RB CD PUNCT.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.apps.base import AppResult, TextApplication, Unit, UnitMeta, WorkAccount
from repro.apps.tokenize import sentences as split_sentences
from repro.apps.tokenize import strip_markup

__all__ = ["PosTaggerApplication", "tag_sentence", "CONTEXT_EXPONENT"]

#: Work for the context pass over a sentence of length L is ``L**CONTEXT_EXPONENT``
#: (window comparisons against a history whose effective width grows with
#: clause nesting).  Calibrated so complex prose (≈27 words/sentence) costs
#: ≈1.7× simple prose (≈13 words/sentence) per token, matching the paper's
#: Dubliners vs Agnes Grey observation.
CONTEXT_EXPONENT = 1.85

_LEXICON = {
    **{w: "DT" for w in ("the", "a", "an", "this", "that", "these", "those")},
    **{w: "PRP" for w in ("he", "she", "it", "they", "we", "you", "i")},
    **{w: "IN" for w in ("of", "in", "on", "at", "by", "with", "from", "under", "over")},
    **{w: "CC" for w in ("and", "but", "or", "while", "because", "although")},
    **{w: "VBZ" for w in ("is", "has")},
    **{w: "VBD" for w in ("was", "were", "had")},
    **{w: "VB" for w in ("are",)},
    **{w: "MD" for w in ("will", "would", "can", "could", "may", "might")},
}

_PUNCT = set(".,;:!?()\"'-")

# (suffix, tag) checked longest-first.
_SUFFIX_RULES: list[tuple[str, str]] = [
    ("tion", "NN"), ("ment", "NN"), ("ness", "NN"), ("ism", "NN"), ("ist", "NN"),
    ("able", "JJ"), ("ous", "JJ"), ("ful", "JJ"), ("ive", "JJ"),
    ("ize", "VB"), ("ate", "VB"), ("ify", "VB"),
    ("ly", "RB"),
    ("ed", "VBD"),
    ("al", "JJ"),
    ("er", "NN"),
    ("s", "NNS"),
]


def _lexical_tag(token: str) -> str:
    low = token.lower()
    if low in _LEXICON:
        return _LEXICON[low]
    if token in _PUNCT:
        return "PUNCT"
    if token[0].isdigit():
        return "CD"
    for suffix, tag in _SUFFIX_RULES:
        if len(low) > len(suffix) + 1 and low.endswith(suffix):
            return tag
    return "NN"


def tag_sentence(tokens: Sequence[str]) -> tuple[list[str], float]:
    """Tag one sentence; returns ``(tags, context_ops)``.

    The context pass re-examines each position against a trigram history
    whose effective width grows with sentence length (clause nesting pushes
    antecedents further away), so its work is ``L**CONTEXT_EXPONENT``.
    """
    tags = [_lexical_tag(t) for t in tokens]
    n = len(tags)
    # Brill-style transformations over (prev, cur, next) windows.
    for i in range(n):
        prev_tag = tags[i - 1] if i > 0 else "BOS"
        next_tag = tags[i + 1] if i + 1 < n else "EOS"
        cur = tags[i]
        # DT _ : determiner is followed by a nominal head, not a bare verb.
        if prev_tag == "DT" and cur in ("VB", "VBD"):
            tags[i] = "NN"
        # MD _ : modal takes a base verb.
        elif prev_tag == "MD" and cur in ("NN", "NNS"):
            tags[i] = "VB"
        # PRP _ : pronoun subject is followed by a verb.
        elif prev_tag == "PRP" and cur == "NNS":
            tags[i] = "VBZ"
        # _ NN with current RB: adverb before a noun is really an adjective.
        elif cur == "RB" and next_tag in ("NN", "NNS"):
            tags[i] = "JJ"
    context_ops = float(n) ** CONTEXT_EXPONENT if n else 0.0
    return tags, context_ops


class PosTaggerApplication(TextApplication):
    """Tag every token of every unit file.

    Like the paper's wrapper around the Stanford tagger, one "run" starts a
    single tagger process for all files ("we wrap the default POS tagger
    class … such that we process a set of files avoiding the startup cost of
    a new JVM for every file").
    """

    name = "postag"

    def run_native(self, units: Sequence[Unit]) -> AppResult:
        """Materialise, tokenise and tag every unit."""
        work = WorkAccount()
        tag_counts: dict[str, int] = {}
        for unit in units:
            data = unit.materialize()
            work.files_opened += 1
            work.bytes_read += len(data)
            text = strip_markup(data.decode("ascii", errors="replace"))
            for sent in split_sentences(text):
                tags, ops = tag_sentence(sent)
                work.tokens += len(tags)
                work.sentences += 1
                work.context_ops += ops
                work.output_bytes += sum(len(t) + len(g) + 2 for t, g in zip(sent, tags))
                for g in tags:
                    tag_counts[g] = tag_counts.get(g, 0) + 1
        work.validate()
        return AppResult(work=work, outputs={"tag_counts": tag_counts})

    def estimate_work(self, units: Iterable[UnitMeta]) -> WorkAccount:
        """Predict tagging work from metadata alone."""
        work = WorkAccount()
        for u in units:
            tokens = u.stats.tokens_in(u.size)
            sents = u.stats.sentences_in(u.size)
            avg_len = max(1.0, u.stats.avg_sentence_words)
            work.files_opened += 1
            work.bytes_read += u.size
            work.tokens += tokens
            work.sentences += sents
            # sum over sentences of L^e  ≈  n_sent * avg_len^e = tokens * avg_len^(e-1)
            work.context_ops += tokens * avg_len ** (CONTEXT_EXPONENT - 1.0)
            work.output_bytes += int(tokens * (u.stats.avg_word_len + 4))
        work.validate()
        return work
