"""Application protocol and work accounting."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

from repro.vfs.files import Segment, TextStats, VirtualFile

__all__ = ["WorkAccount", "AppResult", "UnitMeta", "as_unit_meta", "TextApplication", "Unit"]

#: A processable unit: either an original file or a reshaped segment.
Unit = Union[VirtualFile, Segment]


@dataclass
class WorkAccount:
    """Deterministic work counters for one application run.

    Wall-clock time on EC2 is noisy and machine-dependent; work counters are
    exact and portable.  The cost profiles in :mod:`repro.apps.profiles`
    convert them to reference seconds, and instance heterogeneity is applied
    on top by the cloud simulator.
    """

    files_opened: int = 0
    bytes_read: int = 0
    tokens: int = 0
    sentences: int = 0
    matches: int = 0
    output_bytes: int = 0
    context_ops: float = 0.0  # superlinear per-sentence tagger work

    def __add__(self, other: "WorkAccount") -> "WorkAccount":
        return WorkAccount(
            files_opened=self.files_opened + other.files_opened,
            bytes_read=self.bytes_read + other.bytes_read,
            tokens=self.tokens + other.tokens,
            sentences=self.sentences + other.sentences,
            matches=self.matches + other.matches,
            output_bytes=self.output_bytes + other.output_bytes,
            context_ops=self.context_ops + other.context_ops,
        )

    def validate(self) -> None:
        """Reject negative counters (corrupted accounting)."""
        for name in ("files_opened", "bytes_read", "tokens", "sentences",
                     "matches", "output_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"negative work counter {name}")
        if self.context_ops < 0:
            raise ValueError("negative context_ops")


@dataclass
class AppResult:
    """Outcome of a native run: exact work plus application outputs."""

    work: WorkAccount
    outputs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class UnitMeta:
    """The metadata slice of a unit that cost models consume."""

    size: int
    stats: TextStats
    n_members: int = 1

    def __post_init__(self) -> None:
        if self.size < 0 or self.n_members < 0:
            raise ValueError("unit metadata must be non-negative")


def as_unit_meta(unit: Unit) -> UnitMeta:
    """Normalise a file or segment to :class:`UnitMeta`."""
    if isinstance(unit, Segment):
        return UnitMeta(size=unit.size, stats=unit.stats(), n_members=unit.n_members)
    if isinstance(unit, VirtualFile):
        return UnitMeta(size=unit.size, stats=unit.stats, n_members=1)
    raise TypeError(f"not a processable unit: {type(unit).__name__}")


class TextApplication(ABC):
    """A text tool that consumes unit files and reports its work.

    Implementations guarantee that for units whose metadata is faithful,
    ``estimate_work`` approximates the counters ``run_native`` produces
    (tests pin the agreement tolerance).
    """

    name: str = "app"

    @abstractmethod
    def run_native(self, units: Sequence[Unit]) -> AppResult:
        """Materialise and actually process ``units``."""

    @abstractmethod
    def estimate_work(self, units: Iterable[UnitMeta]) -> WorkAccount:
        """Predict the work counters from metadata alone."""

    def estimate_for(self, units: Sequence[Unit]) -> WorkAccount:
        """Convenience: :meth:`estimate_work` over live unit objects."""
        return self.estimate_work(as_unit_meta(u) for u in units)
