"""Text-processing applications (the paper's §5.1 and §5.2 workloads).

Two real applications with identical interfaces:

* :class:`GrepApplication` — streaming pattern search, the I/O-bound
  workload of §5.1 (the paper uses GNU grep 2.5.1 searching for a nonsense
  word, i.e. a full-traversal worst case);
* :class:`PosTaggerApplication` — a lexicon + suffix + context part-of-
  speech tagger, the memory/CPU-bound workload of §5.2 (the paper wraps the
  Stanford tagger to avoid a JVM start per file).

Each application supports two evaluation paths that must agree:

``run_native(units)``
    materialise the unit files and actually process the bytes, returning
    exact :class:`WorkAccount` numbers — used by tests, examples, and probe
    calibration at small scale;
``estimate_work(units)``
    predict the same work from file *metadata* only — used by the EC2
    simulator so that 100 GB experiments never materialise 100 GB.

:mod:`repro.apps.profiles` maps work to reference-instance seconds; those
profiles are the simulator's hidden ground truth which the paper's
empirical methodology (probes + regression) estimates from the outside.
"""

from repro.apps.base import AppResult, TextApplication, UnitMeta, WorkAccount, as_unit_meta
from repro.apps.extractor import ExtractCostProfile, ExtractorApplication
from repro.apps.grep import GrepApplication
from repro.apps.postagger import PosTaggerApplication
from repro.apps.profiles import GrepCostProfile, PosCostProfile, TimeBreakdown
from repro.apps.tokenize import sentences, strip_markup, tokenize

__all__ = [
    "AppResult",
    "TextApplication",
    "UnitMeta",
    "WorkAccount",
    "as_unit_meta",
    "ExtractorApplication",
    "ExtractCostProfile",
    "GrepApplication",
    "PosTaggerApplication",
    "GrepCostProfile",
    "PosCostProfile",
    "TimeBreakdown",
    "tokenize",
    "sentences",
    "strip_markup",
]
