"""One event-driven execution kernel behind every runner entry point.

The five public runners — :func:`~repro.runner.execute.execute_plan`,
:func:`~repro.runner.event_driven.execute_plan_event_driven`,
:func:`~repro.runner.dynamic.execute_with_monitoring`,
:func:`~repro.runner.fault_tolerant.execute_fault_tolerant` and
:func:`~repro.runner.fleet.execute_on_fleet` — used to each carry their own
copy of the launch → boot-barrier → process → bill → terminate loop.
:class:`ExecutionCore` is that loop written once, on the cloud's
:class:`~repro.sim.engine.SimulationEngine`: fleet start is an engine event
at the boot barrier, every bin completion is an engine event (which is what
feeds the :class:`FleetTimeline` for *all* runners, not just the event-driven
one), and every decision is delegated to three policy protocols:

* :class:`AcquisitionPolicy` — how instances are obtained: a plain or
  resilient fleet launch (:class:`FleetLaunchAcquisition`) or per-bin warm
  leases from a :class:`~repro.fleet.lease.LeaseManager`
  (:class:`LeaseAcquisition`).  The same policy also answers *replacement*
  acquisition, so straggler and crash recovery share one penalty-timing
  implementation (:func:`~repro.resilience.launch.acquire_replacement`)
  instead of hand-rolling it per runner.
* :class:`ProgressPolicy` — how one bin's units become a duration: run to
  completion (:class:`RunToCompletion`), probe-and-replace stragglers
  (:class:`StragglerProgress`), or batch with crash recovery
  (:class:`CrashProgress`).
* :class:`CompletionPolicy` — how outcomes are settled and the run wound
  down: billing truth, failed-bin reporting, degradation replans, horizon
  advance and termination (:class:`StaticCompletion` and friends).

Every entry point is now a ~ten-line policy configuration over this core,
and each reproduces its seed implementation bit-for-bit — durations,
makespans, misses, bills, ledger records, lease and fault counters
(``tests/test_runner_core_differential.py`` proves it against the frozen
copies in ``tests/reference_runners.py``).

Span/metric taxonomy (one vocabulary for all runners, ``cat="runner"``):

========================================  =====================================
``runner.task.run`` (span)                a bin (or bin remainder) processing
``runner.probe.chunk`` (span)             straggler-probe head of a bin
``runner.batch.run`` (span)               one crash-recovery batch
``runner.replacement.penalty`` (span)     boot/attach gap before a replacement
``runner.crash.recovery`` (span)          detection + replacement window
``runner.straggler.replaced`` (instant)   a slow instance was retired
``runner.replacement.unavailable``        replacement denied under faults
``runner.crash.detected`` (instant)       a crash was noticed
``runner.bin.failed`` (instant)           a bin gave up (exhausted/faulted)
``runner.tasks.completed`` (counter)      completed bins, by strategy
``runner.batches.completed`` (counter)    completed crash-recovery batches
``runner.crashes.detected`` (counter)     crashes noticed
``runner.units.requeued`` (counter)       units redone after a lost batch
``runner.replacements`` (counter)         straggler replacements, by source
``runner.replacements.unavailable``       replacements denied
``runner.bins.failed`` (counter)          failed bins, by reason
``runner.launches.failed`` (counter)      fleet launches refused outright
``runner.task.seconds`` (histogram)       completed-bin durations
``runner.probe.ratio`` (histogram)        expected/observed probe throughput
``runner.deadline.margin`` (gauge)        deadline − makespan, by strategy
``runner.deadline.misses`` (counter)      per-instance deadline misses
========================================  =====================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Protocol

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import ProvisioningPlan
from repro.obs.ledger import (
    RunRecord,
    encode_metrics_dump,
    get_run_ledger,
    span_rollup,
)
from repro.runner.execute import ExecutionReport, FailedBin, InstanceRun
from repro.units import HOUR, billed_hours

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.instance import Instance
    from repro.fleet.lease import Lease, LeaseManager
    from repro.resilience.launch import ResilientLauncher

__all__ = [
    "AcquisitionPolicy",
    "BinGrant",
    "BinOutcome",
    "CompletionPolicy",
    "CoreResult",
    "CrashEvent",
    "CrashProgress",
    "EventCompletion",
    "ExecutionCore",
    "FleetLaunchAcquisition",
    "FleetTimeline",
    "LeaseAcquisition",
    "LeaseCompletion",
    "MonitoredCompletion",
    "CrashCompletion",
    "ProgressPolicy",
    "ReplacementEvent",
    "RunToCompletion",
    "StagePolicy",
    "StaticCompletion",
    "StragglerProgress",
]


# --------------------------------------------------------------------------
# shared result shapes
# --------------------------------------------------------------------------


@dataclass
class FleetTimeline:
    """Progress snapshots collected as completion events fire."""

    points: list[tuple[float, int, int]] = field(default_factory=list)
    # (simulated time, instances still working, instances completed)

    def record(self, t: float, working: int, completed: int) -> None:
        """Append one snapshot."""
        self.points.append((t, working, completed))

    @property
    def completion_times(self) -> list[float]:
        return [t for t, _, c in self.points]

    def completed_at(self, t: float) -> int:
        """Instances completed by simulated time ``t``."""
        done = 0
        for when, _, completed in self.points:
            if when <= t:
                done = completed
        return done


@dataclass
class ReplacementEvent:
    """A straggler was retired in favour of a fresh/leased instance."""

    bin_index: int
    old_instance: str
    new_instance: str
    at_progress: float
    observed_ratio: float


@dataclass(frozen=True)
class CrashEvent:
    """One detected crash (progress of the in-flight batch was lost)."""

    bin_index: int
    instance_id: str
    at_elapsed: float          # seconds into the bin's work
    lost_batch_units: int


@dataclass
class BinGrant:
    """One bin's acquired capacity, ready to process.

    ``launch_wait`` is resilience-absorbed latency (backoff, hung boots)
    before the final boot; ``boot_delay`` is the full submission-to-work
    latency the report carries; ``work_start`` is the absolute simulated
    time processing begins.
    """

    index: int
    units: list
    instance: "Instance"
    launch_wait: float = 0.0
    boot_delay: float = 0.0
    work_start: float = 0.0
    predicted: float = 0.0
    lease: "Lease | None" = None
    span_extra: dict = field(default_factory=dict)


@dataclass
class BinOutcome:
    """What processing one bin produced.

    Exactly one of ``run`` / ``failure`` is set.  ``active`` is the
    instance that finished the bin (a replacement after straggler or
    crash recovery), ``active_since`` the bin-relative second it took
    over, and ``end`` the absolute completion time the engine event
    fires at.
    """

    run: InstanceRun | None = None
    failure: FailedBin | None = None
    active: "Instance | None" = None
    active_lease: "Lease | None" = None
    active_since: float = 0.0
    duration: float = 0.0
    end: float = 0.0


@dataclass
class CoreResult:
    """Everything one core run produced."""

    report: ExecutionReport
    timeline: FleetTimeline
    events: list


@dataclass
class CoreContext:
    """Mutable state shared by the core and its policies during one run."""

    cloud: Cloud
    svc: ExecutionService
    plan: ProvisioningPlan
    workload: Workload
    acquisition: "AcquisitionPolicy"
    report: ExecutionReport
    bill: bool = True
    timeline: FleetTimeline = field(default_factory=FleetTimeline)
    events: list = field(default_factory=list)
    occupied: list[tuple[int, list]] = field(default_factory=list)
    by_index: dict[int, list] = field(default_factory=dict)
    predicted: dict[int, float] = field(default_factory=dict)
    grants: list[BinGrant] = field(default_factory=list)
    ends: list[float] = field(default_factory=list)
    work_start: float = 0.0
    working: int = 0
    completed: int = 0

    @property
    def engine(self):
        return self.cloud.engine

    @property
    def obs(self):
        return self.cloud.obs


# --------------------------------------------------------------------------
# policy protocols
# --------------------------------------------------------------------------


class AcquisitionPolicy(Protocol):
    """How instances are obtained — for the fleet and for replacements."""

    def acquire_fleet(self, ctx: CoreContext) -> None:
        """Obtain up-front capacity; record launch failures on the report."""

    def work_start_time(self, ctx: CoreContext) -> float | None:
        """Absolute time work begins, or ``None`` if there is nothing to run."""

    def on_work_start(self, ctx: CoreContext) -> None:
        """Fleet-ready hook: transition instances to RUNNING, set the rate."""

    def grants(self, ctx: CoreContext) -> Iterable[BinGrant]:
        """Yield one grant per occupied bin, in bin order."""

    def replacement(self, ctx: CoreContext, *, at: float,
                    est_seconds: float = 0.0, bin_index: int | None = None,
                    boot_attach_penalty: float = 180.0,
                    warm_attach_penalty: float = 30.0):
        """Acquire a replacement instance; returns (instance, lease, penalty)."""


class ProgressPolicy(Protocol):
    """How one granted bin's units become a duration (and maybe events)."""

    def execute(self, ctx: CoreContext, grant: BinGrant) -> BinOutcome:
        """Process one bin; return its run-or-failure outcome."""
        ...


class CompletionPolicy:
    """How outcomes are settled: billing truth, replans, wind-down.

    The base class is the common shape; each runner's completion policy
    overrides the hooks whose semantics differ (what gets billed where,
    who terminates instances, whether the clock is the cloud's
    outage-stepping ``advance`` or the bare engine).
    """

    def after_acquisition(self, ctx: CoreContext) -> None:
        """Between launch and boot barrier (degradation replans live here)."""

    def run_to_start(self, ctx: CoreContext, start: float,
                     process: Callable[[], None]) -> None:
        """Advance the clock to ``start`` with ``process`` scheduled there.

        The default drives the *cloud* clock so chaos outage onsets step
        exactly as the seed runners' ``cloud.advance`` calls did; the
        event target is computed with the same float arithmetic the cloud
        uses, so the callback fires at the precise post-advance clock.
        """
        now = ctx.cloud.now
        if start > now:
            seconds = start - now
            ctx.engine.schedule_at(now + seconds, process, label="fleet-ready")
            ctx.cloud.advance(seconds)
        else:
            ctx.engine.schedule_at(ctx.engine.now, process, label="fleet-ready")
            ctx.engine.run(until=ctx.engine.now)

    def settle_bin(self, ctx: CoreContext, grant: BinGrant,
                   outcome: BinOutcome) -> None:
        """Record the outcome on the report (subclasses add billing)."""
        if outcome.failure is not None:
            ctx.report.failures.append(outcome.failure)
        else:
            ctx.report.runs.append(outcome.run)

    def on_bin_complete(self, ctx: CoreContext, grant: BinGrant,
                        outcome: BinOutcome) -> None:
        """Fired by the engine at the bin's completion time."""

    def finalize(self, ctx: CoreContext) -> None:
        """Advance to the horizon, terminate, emit fleet-level metrics."""

    # -- shared helpers ----------------------------------------------------

    def _advance_to_horizon(self, ctx: CoreContext) -> None:
        """Seed-exact horizon advance: ``advance(max(run durations))``."""
        runs = ctx.report.runs
        if runs:
            ctx.cloud.advance(max(r.duration for r in runs))

    def _emit_fleet_metrics(self, ctx: CoreContext) -> None:
        obs = ctx.obs
        if not obs.enabled:
            return
        report = ctx.report
        obs.metrics.gauge("runner.deadline.margin", strategy=report.strategy
                          ).set(report.deadline - report.makespan)
        if report.n_missed:
            obs.metrics.counter("runner.deadline.misses",
                                strategy=report.strategy).inc(report.n_missed)


# --------------------------------------------------------------------------
# acquisition policies
# --------------------------------------------------------------------------


def FleetLaunchAcquisition(*, launcher: "ResilientLauncher | None" = None,
                           lease_manager: "LeaseManager | None" = None,
                           on_fault: str = "fail-bin",
                           replacement_tenant: str = "runner"):
    """Private fleet: one (possibly resilient) launch per occupied bin.

    A factory over :class:`~repro.capacity.BrokerAcquisition`: with a
    ``launcher`` the stack is a
    :class:`~repro.capacity.ResilientBroker`, otherwise a plain
    :class:`~repro.capacity.OnDemandBroker`.  ``on_fault="fail-bin"``
    records refused launches as :class:`~repro.runner.execute.FailedBin`
    entries (the resilience-off baseline); ``on_fault="raise"``
    propagates the fault — the event-driven runner's legacy contract,
    which also bypasses the launcher exactly as the seed runner did.
    Replacements route through
    :func:`~repro.resilience.launch.acquire_replacement` with this
    policy's launcher and (optional) lease manager, so warm re-attach vs
    fresh-boot penalty timing is decided in exactly one place.
    """
    from repro.capacity import BrokerAcquisition, OnDemandBroker, ResilientBroker

    broker = (OnDemandBroker() if on_fault == "raise" or launcher is None
              else ResilientBroker(launcher))
    return BrokerAcquisition(
        broker, on_fault=on_fault, launcher=launcher,
        lease_manager=lease_manager, replacement_tenant=replacement_tenant)


def LeaseAcquisition(manager: "LeaseManager", *, tenant: str = "default",
                     campaign: str | None = None):
    """Shared fleet: every bin draws (and returns) a lease from a manager.

    A factory over a lazy :class:`~repro.capacity.BrokerAcquisition`
    stacked on one :class:`~repro.capacity.WarmLeaseBroker`: grants are
    requested one bin at a time, because releasing bin *n*'s lease back
    to the warm pool is what lets bin *n+1* warm-hit it — the
    acquire/run/release interleaving is part of the fleet's economics
    and is preserved exactly.
    """
    from repro.capacity import BrokerAcquisition, WarmLeaseBroker

    return BrokerAcquisition(
        WarmLeaseBroker(manager, tenant=tenant, campaign=campaign),
        lazy=True, lease_manager=manager, replacement_tenant=tenant,
        campaign=campaign)


# --------------------------------------------------------------------------
# progress policies
# --------------------------------------------------------------------------


class RunToCompletion:
    """The null progress policy: one measured run per bin, no monitoring."""

    def execute(self, ctx: CoreContext, grant: BinGrant) -> BinOutcome:
        """Measure the whole bin in one run; emit the task span."""
        duration = ctx.svc.run(grant.instance, grant.units, ctx.workload,
                               advance_clock=False)
        run = InstanceRun(
            instance_id=grant.instance.instance_id,
            n_units=len(grant.units),
            volume=sum(u.size for u in grant.units),
            boot_delay=grant.boot_delay,
            duration=duration,
            predicted=grant.predicted,
        )
        end = grant.work_start + duration
        obs = ctx.obs
        if obs.enabled:
            # Instances work in parallel off a common start, so the span is
            # recorded retrospectively on the instance's own track.
            obs.tracer.add_span("runner.task.run", grant.work_start, end,
                                cat="runner", track=grant.instance.instance_id,
                                bin=grant.index, n_units=len(grant.units),
                                predicted=grant.predicted,
                                strategy=ctx.report.strategy,
                                **grant.span_extra)
            obs.metrics.counter("runner.tasks.completed",
                                strategy=ctx.report.strategy).inc()
            obs.metrics.histogram("runner.task.seconds").observe(duration)
        return BinOutcome(run=run, active=grant.instance,
                          duration=duration, end=end)


def _split_point(units: list, fraction: float) -> int:
    """Index splitting ``units`` so the head holds ≈``fraction`` of bytes."""
    total = sum(u.size for u in units)
    if total == 0:
        return len(units)
    acc = 0
    for i, u in enumerate(units):
        acc += u.size
        if acc >= fraction * total:
            return i + 1
    return len(units)


class StragglerProgress:
    """Probe each bin, retire measured-slow instances to a replacement.

    Implements the §7 monitor-and-reschedule loop: the probe chunk's
    observed throughput is compared to the plan's implied throughput;
    below the policy threshold the bin's remainder moves to a replacement
    drawn through the acquisition policy (warm lease re-attach or fresh
    boot — one shared penalty-timing path).  The retired straggler's
    partial hours are billed at retirement.
    """

    def __init__(self, policy) -> None:
        self.policy = policy

    def execute(self, ctx: CoreContext, grant: BinGrant) -> BinOutcome:
        """Probe the bin; retire the instance if measured slow."""
        from repro.chaos import ChaosError
        from repro.resilience.launch import CapacityError

        policy = self.policy
        obs = ctx.obs
        inst, idx, units = grant.instance, grant.index, grant.units
        work_start, predicted = grant.work_start, grant.predicted

        split = _split_point(units, policy.probe_fraction)
        probe, rest = units[:split], units[split:]
        probe_volume = sum(u.size for u in probe)
        volume = sum(u.size for u in units)

        t_probe = ctx.svc.run(inst, probe, ctx.workload, advance_clock=False)
        expected_probe = predicted * (probe_volume / volume) if volume else t_probe
        effective = max(t_probe - policy.setup_allowance, 1e-9)
        ratio = expected_probe / effective
        if obs.enabled:
            obs.tracer.add_span("runner.probe.chunk", work_start,
                                work_start + t_probe, cat="runner",
                                track=inst.instance_id, bin=idx,
                                observed_ratio=round(ratio, 4))
            obs.metrics.histogram("runner.probe.ratio",
                                  buckets=(0.25, 0.5, 0.7, 0.9, 1.0, 1.2, 2.0)
                                  ).observe(ratio)

        duration = t_probe
        active = inst
        active_lease = None   # set when the replacement is a fleet lease
        active_since = 0.0  # elapsed time at which `active` started working
        replacements = 0
        if (
            rest
            and ratio < policy.slow_threshold
            and replacements < policy.max_replacements_per_bin
        ):
            if policy.replace_at == "hour-boundary":
                # §7's cheaper variant: the straggler's hour is already
                # paid, so let it keep chewing through the bin until just
                # before the boundary, then hand over only what remains.
                boundary = HOUR * billed_hours(max(duration, 1.0))
                window = boundary - duration
                straggler_rate = probe_volume / max(t_probe, 1e-9)
                budget = straggler_rate * window
                done = 0
                acc = 0
                for u in rest:
                    if acc + u.size > budget:
                        break
                    acc += u.size
                    done += 1
                if done:
                    duration += ctx.svc.run(active, rest[:done], ctx.workload,
                                            advance_clock=False)
                    rest = rest[done:]
            rest_volume = sum(u.size for u in rest)
            est_rest = (predicted * (rest_volume / volume)
                        if volume else t_probe)
            launcher = getattr(ctx.acquisition, "launcher", None)
            if launcher is not None:
                # Observable feedback: this zone produced a straggler, so
                # later acquisitions deprioritise it.
                launcher.note_slow_zone(active.zone.name)
            replacement = None
            try:
                # Warm lease: already booted inside a paid hour — only
                # the EBS move is paid.  Cold/fresh: boot plus attach.
                replacement, lease, penalty = ctx.acquisition.replacement(
                    ctx, at=work_start + duration, est_seconds=est_rest,
                    bin_index=idx,
                    boot_attach_penalty=policy.replacement_penalty,
                    warm_attach_penalty=policy.attach_penalty)
            except (ChaosError, CapacityError):
                # No replacement to be had under the installed faults:
                # keep the straggler working (§7's "let them run"
                # fallback) rather than fail the bin outright.
                if obs.enabled:
                    obs.tracer.instant("runner.replacement.unavailable",
                                       cat="runner",
                                       track=active.instance_id, bin=idx)
                    obs.metrics.counter(
                        "runner.replacements.unavailable").inc()
            if replacement is not None:
                # Retire the straggler; its (partial) hours are billed
                # anyway.
                ctx.cloud.ledger.record(active.instance_id, active.itype.name,
                                        work_start, work_start + duration,
                                        active.itype.hourly_rate)
                ctx.events.append(ReplacementEvent(
                    bin_index=idx,
                    old_instance=active.instance_id,
                    new_instance=replacement.instance_id,
                    at_progress=(volume - sum(u.size for u in rest)) / volume
                    if volume else 1.0,
                    observed_ratio=ratio,
                ))
                if obs.enabled:
                    obs.tracer.instant("runner.straggler.replaced",
                                       cat="runner",
                                       track=active.instance_id, bin=idx,
                                       replacement=replacement.instance_id,
                                       source=lease.source if lease else "boot",
                                       observed_ratio=round(ratio, 4))
                    obs.tracer.add_span(
                        "runner.replacement.penalty", work_start + duration,
                        work_start + duration + penalty,
                        cat="runner", track=replacement.instance_id, bin=idx)
                    obs.metrics.counter("runner.replacements",
                                        mode=policy.replace_at,
                                        source=lease.source if lease else "boot",
                                        ).inc()
                active.terminate(max(ctx.cloud.now, work_start + duration))
                duration += penalty
                active = replacement
                active_lease = lease
                active_since = duration
                replacements += 1

        if rest:
            t_rest_start = duration
            duration += ctx.svc.run(active, rest, ctx.workload,
                                    advance_clock=False)
            if obs.enabled:
                obs.tracer.add_span("runner.task.run",
                                    work_start + t_rest_start,
                                    work_start + duration, cat="runner",
                                    track=active.instance_id, bin=idx,
                                    n_units=len(rest))

        run = InstanceRun(
            instance_id=active.instance_id,
            n_units=len(units),
            volume=volume,
            boot_delay=grant.launch_wait + active.boot_delay,
            duration=duration,
            predicted=predicted,
        )
        return BinOutcome(run=run, active=active, active_lease=active_lease,
                          active_since=active_since, duration=duration,
                          end=work_start + duration)


class CrashProgress:
    """Batch each bin and redo lost batches on replacement instances.

    Implements the §7 recovery loop: a crash mid-batch loses that batch's
    progress, the monitor notices after the detection timeout, and a
    replacement (drawn through the acquisition policy — fresh boot or
    warm lease, one shared penalty-timing path) redoes it.  Crashed
    instances bill their partial hours at the crash; exhausting the crash
    budget fails the bin (or raises, per policy).
    """

    def __init__(self, policy) -> None:
        self.policy = policy

    def execute(self, ctx: CoreContext, grant: BinGrant) -> BinOutcome:
        """Run the bin in batches, redoing any batch lost to a crash."""
        from repro.chaos import ChaosError
        from repro.fleet.lease import LeaseError
        from repro.resilience.launch import CapacityError

        policy = self.policy
        obs = ctx.obs
        inst, idx, units = grant.instance, grant.index, grant.units
        work_start = grant.work_start

        elapsed = 0.0
        crashes = 0
        active = inst
        active_lease = None
        active_started = 0.0  # elapsed at which `active` began working
        bin_billed_hours = 0  # hours already billed to crashed instances
        failed_bin: FailedBin | None = None
        batches = [units[i:i + policy.batch_units]
                   for i in range(0, len(units), policy.batch_units)]
        b = 0
        while b < len(batches):
            batch = batches[b]
            t_batch = ctx.svc.run(active, batch, ctx.workload,
                                  advance_clock=False)
            ttf = active.time_to_failure
            survives = (ttf is None
                        or elapsed - active_started + t_batch <= ttf)
            if survives:
                if obs.enabled:
                    obs.tracer.add_span(
                        "runner.batch.run", work_start + elapsed,
                        work_start + elapsed + t_batch, cat="runner",
                        track=active.instance_id, bin=idx, batch=b,
                        units=len(batch))
                    obs.metrics.counter("runner.batches.completed").inc()
                elapsed += t_batch
                b += 1
                continue
            # Crash mid-batch: progress of this batch is lost.
            crashes += 1
            crash_elapsed = active_started + (ttf or 0.0)
            if crashes > policy.max_crashes_per_bin:
                if policy.on_exhaustion == "raise":
                    raise RuntimeError(
                        f"bin {idx}: more than {policy.max_crashes_per_bin} "
                        "crashes; the cloud is unusable")
                # Report the bin as failed: the hours are billed, the
                # completed units counted, and the campaign continues.
                active.fail(ctx.cloud.now)
                rec = ctx.cloud.ledger.record(active.instance_id,
                                              active.itype.name,
                                              work_start + active_started,
                                              work_start + crash_elapsed,
                                              active.itype.hourly_rate)
                bin_billed_hours += rec.hours
                completed = sum(len(batches[i]) for i in range(b))
                failed_bin = FailedBin(
                    bin_index=idx, reason="crash-exhausted",
                    n_units=len(units),
                    volume=sum(u.size for u in units),
                    completed_units=completed,
                    elapsed=crash_elapsed + policy.detection_timeout,
                    billed_hours=bin_billed_hours)
                if obs.enabled:
                    obs.tracer.instant("runner.bin.failed", cat="runner",
                                       track=active.instance_id, bin=idx,
                                       crashes=crashes,
                                       completed_units=completed)
                    obs.metrics.counter("runner.bins.failed",
                                        reason="crash-exhausted").inc()
                break
            ctx.events.append(CrashEvent(
                bin_index=idx,
                instance_id=active.instance_id,
                at_elapsed=crash_elapsed,
                lost_batch_units=len(batch),
            ))
            if obs.enabled:
                obs.tracer.instant("runner.crash.detected", cat="runner",
                                   track=active.instance_id, bin=idx,
                                   lost_units=len(batch))
                obs.tracer.add_span(
                    "runner.crash.recovery", work_start + crash_elapsed,
                    work_start + crash_elapsed + policy.detection_timeout
                    + policy.replacement_penalty, cat="runner",
                    track=active.instance_id, bin=idx)
                obs.metrics.counter("runner.crashes.detected").inc()
                obs.metrics.counter("runner.units.requeued").inc(len(batch))
            elapsed = crash_elapsed + policy.detection_timeout
            # Bill the crashed instance for the hours it actually ran (the
            # runner tracks per-bin wall time off the global clock, so the
            # ledger entry is written explicitly rather than via
            # ``cloud.fail_instance``).
            active.fail(ctx.cloud.now)
            rec = ctx.cloud.ledger.record(active.instance_id,
                                          active.itype.name,
                                          work_start + active_started,
                                          work_start + crash_elapsed,
                                          active.itype.hourly_rate)
            bin_billed_hours += rec.hours
            try:
                active, active_lease, penalty = ctx.acquisition.replacement(
                    ctx, at=work_start + elapsed, bin_index=idx,
                    boot_attach_penalty=policy.replacement_penalty,
                    warm_attach_penalty=policy.attach_penalty)
            except (ChaosError, CapacityError, LeaseError) as e:
                completed = sum(len(batches[i]) for i in range(b))
                failed_bin = FailedBin(
                    bin_index=idx,
                    reason=f"replacement-failed: {e}",
                    n_units=len(units),
                    volume=sum(u.size for u in units),
                    completed_units=completed,
                    elapsed=elapsed,
                    billed_hours=bin_billed_hours)
                if obs.enabled:
                    obs.metrics.counter("runner.bins.failed",
                                        reason="replacement-failed").inc()
                break
            elapsed += penalty
            active_started = elapsed
            # loop re-runs batch ``b`` on the replacement

        if failed_bin is not None:
            return BinOutcome(failure=failed_bin, active=active,
                              duration=failed_bin.elapsed)
        run = InstanceRun(
            instance_id=active.instance_id,
            n_units=len(units),
            volume=sum(u.size for u in units),
            boot_delay=grant.launch_wait + inst.boot_delay,
            duration=elapsed,
            predicted=grant.predicted,
        )
        return BinOutcome(run=run, active=active, active_lease=active_lease,
                          active_since=active_started, duration=elapsed,
                          end=work_start + elapsed)


# --------------------------------------------------------------------------
# completion policies
# --------------------------------------------------------------------------


class StaticCompletion(CompletionPolicy):
    """``execute_plan`` semantics: ceil-hour bill per bin, replans, S3 pull."""

    def __init__(self, *, measure_retrieval: bool = False) -> None:
        self.measure_retrieval = measure_retrieval

    def after_acquisition(self, ctx: CoreContext) -> None:
        """Re-pack orphaned units onto survivors (degradation replan)."""
        launcher = getattr(ctx.acquisition, "launcher", None)
        if not (ctx.report.failures and ctx.grants and launcher is not None
                and launcher.degradation is not None):
            return
        # Graceful degradation: spread the orphaned units over the bins
        # that did get instances, scaling their predicted times so the
        # probe/miss logic still has a meaningful baseline.
        orphans = [u for f in ctx.report.failures
                   for u in ctx.by_index[f.bin_index]]
        replan = launcher.degradation.replan(
            [g.units for g in ctx.grants], orphans,
            predicted_times=[g.predicted for g in ctx.grants])
        for g, merged, t in zip(ctx.grants, replan.assignments,
                                replan.predicted_times):
            g.units = list(merged)
            ctx.by_index[g.index] = g.units
            g.predicted = t
            ctx.predicted[g.index] = t
        ctx.report.failures = [
            FailedBin(f.bin_index, f.reason, f.n_units, f.volume,
                      absorbed=True)
            for f in ctx.report.failures
        ]
        if ctx.obs.enabled:
            ctx.obs.tracer.instant("resilience.degradation.replan",
                                   cat="resilience", moved=replan.moved_units,
                                   survivors=len(ctx.grants))
            ctx.obs.metrics.counter("resilience.replans").inc()

    def settle_bin(self, ctx: CoreContext, grant: BinGrant,
                   outcome: BinOutcome) -> None:
        """Record the outcome; bill the whole bin span ceil-hour."""
        super().settle_bin(ctx, grant, outcome)
        if outcome.run is not None and ctx.bill:
            inst = grant.instance
            ctx.cloud.ledger.record(inst.instance_id, inst.itype.name,
                                    grant.work_start, outcome.end,
                                    inst.itype.hourly_rate)

    def finalize(self, ctx: CoreContext) -> None:
        """Advance to the horizon, terminate, emit metrics, measure S3."""
        self._advance_to_horizon(ctx)
        for g in ctx.grants:
            g.instance.terminate(ctx.cloud.now)
        self._emit_fleet_metrics(ctx)
        if self.measure_retrieval and ctx.report.runs:
            # Each processed unit file yields one result object in S3; the
            # §1 retrieval advantage of reshaping comes from this object
            # count.
            plan, cloud = ctx.plan, ctx.cloud
            meta_by_run: list[tuple[str, int]] = []
            for g in ctx.grants:
                for j, unit in enumerate(g.units):
                    key = f"results/{plan.strategy}/{g.instance.instance_id}/{j}"
                    # result size ~ proportional to the unit's input size
                    cloud.s3.put(key, max(1, unit.size // 100))
                    meta_by_run.append((key, unit.size))
            rng = cloud.rng.fork(f"retrieval.{plan.strategy}.{len(meta_by_run)}")
            ctx.report.retrieval_seconds = cloud.s3.retrieval_time(
                [k for k, _ in meta_by_run], rng)


class EventCompletion(CompletionPolicy):
    """``execute_plan_event_driven`` semantics: the bare engine clock.

    The seed event runner never touched ``cloud.advance`` (so no chaos
    outage stepping) and terminated each instance inside its completion
    event; both behaviours are preserved here.
    """

    def run_to_start(self, ctx: CoreContext, start: float,
                     process: Callable[[], None]) -> None:
        """Drive the bare engine (no outage stepping) to the barrier."""
        ctx.engine.schedule_at(start, process, label="fleet-ready")
        ctx.engine.run()

    def settle_bin(self, ctx: CoreContext, grant: BinGrant,
                   outcome: BinOutcome) -> None:
        """Record the outcome; bill the bin span ceil-hour."""
        super().settle_bin(ctx, grant, outcome)
        if outcome.run is not None and ctx.bill:
            inst = grant.instance
            ctx.cloud.ledger.record(inst.instance_id, inst.itype.name,
                                    grant.work_start, outcome.end,
                                    inst.itype.hourly_rate)

    def on_bin_complete(self, ctx: CoreContext, grant: BinGrant,
                        outcome: BinOutcome) -> None:
        """Terminate the instance inside its own completion event."""
        outcome.active.terminate(ctx.engine.now)

    def finalize(self, ctx: CoreContext) -> None:
        """Emit fleet-level metrics (the engine already drained)."""
        self._emit_fleet_metrics(ctx)


class MonitoredCompletion(CompletionPolicy):
    """``execute_with_monitoring`` semantics: bill only the active span.

    The retired straggler was billed at retirement (inside the progress
    policy); the finishing instance is billed for the span it actually
    worked — unless it is a leased replacement, which returns to the warm
    pool and is billed by the lease manager at retirement.
    """

    def __init__(self, *, lease_manager: "LeaseManager | None" = None) -> None:
        self.lease_manager = lease_manager

    def settle_bin(self, ctx: CoreContext, grant: BinGrant,
                   outcome: BinOutcome) -> None:
        """Bill (or release) only the finishing instance's active span."""
        super().settle_bin(ctx, grant, outcome)
        if outcome.run is None:
            return
        active = outcome.active
        if outcome.active_lease is not None:
            self.lease_manager.release(outcome.active_lease, outcome.end)
        else:
            ctx.cloud.ledger.record(active.instance_id, active.itype.name,
                                    grant.work_start + outcome.active_since,
                                    outcome.end, active.itype.hourly_rate)

    def finalize(self, ctx: CoreContext) -> None:
        """Advance, terminate non-leased instances, emit metrics."""
        self._advance_to_horizon(ctx)
        for inst in ctx.cloud.running_instances():
            if (self.lease_manager is not None
                    and self.lease_manager.owns(inst.instance_id)):
                continue
            inst.terminate(ctx.cloud.now)
        self._emit_fleet_metrics(ctx)


class CrashCompletion(CompletionPolicy):
    """``execute_fault_tolerant`` semantics: the survivor bills the bin.

    The finishing instance is billed for the *whole* bin span — crash
    detection and replacement penalties included — on top of the partial
    hours the crashed predecessors already billed; that is the seed
    runner's (conservative) billing truth and it is preserved.  A leased
    replacement is instead released back to the pool, where the manager
    settles its bill at retirement.
    """

    def __init__(self, *, lease_manager: "LeaseManager | None" = None) -> None:
        self.lease_manager = lease_manager

    def settle_bin(self, ctx: CoreContext, grant: BinGrant,
                   outcome: BinOutcome) -> None:
        """Bill (or release) the survivor for the whole bin span."""
        super().settle_bin(ctx, grant, outcome)
        if outcome.run is None:
            return
        active = outcome.active
        if outcome.active_lease is not None:
            self.lease_manager.release(outcome.active_lease, outcome.end)
        else:
            ctx.cloud.ledger.record(active.instance_id, active.itype.name,
                                    grant.work_start, outcome.end,
                                    active.itype.hourly_rate)

    def finalize(self, ctx: CoreContext) -> None:
        """Advance, terminate non-leased instances, emit metrics."""
        self._advance_to_horizon(ctx)
        for inst in ctx.cloud.running_instances():
            if (self.lease_manager is not None
                    and self.lease_manager.owns(inst.instance_id)):
                continue
            inst.terminate(ctx.cloud.now)
        self._emit_fleet_metrics(ctx)


class LeaseCompletion(CompletionPolicy):
    """``execute_on_fleet`` semantics: the manager owns billing truth."""

    def __init__(self, manager: "LeaseManager") -> None:
        self.manager = manager

    def settle_bin(self, ctx: CoreContext, grant: BinGrant,
                   outcome: BinOutcome) -> None:
        """Release the lease, annotate the plan, record the run."""
        lease = grant.lease
        self.manager.release(lease, outcome.end)
        ctx.plan.annotate_lease(grant.index, lease.source, lease.lease_id)
        ctx.report.rate = lease.instance.itype.hourly_rate
        super().settle_bin(ctx, grant, outcome)

    def finalize(self, ctx: CoreContext) -> None:
        """Advance to the lease horizon and emit fleet-level metrics."""
        if ctx.ends:
            horizon = max(ctx.ends)
            if horizon > ctx.cloud.now:
                ctx.cloud.advance(horizon - ctx.cloud.now)
        self._emit_fleet_metrics(ctx)


# --------------------------------------------------------------------------
# stage policies (multi-stage / DAG execution)
# --------------------------------------------------------------------------


@dataclass
class StagePolicy:
    """One DAG stage's policy triple over the execution core.

    A multi-stage scheduler (:mod:`repro.dag`) runs every ready stage
    through the same three protocols a single-plan run uses; a
    ``StagePolicy`` names the triple one stage executes under, plus how
    its capacity winds down.  With ``terminate_at_stage_end`` the
    scheduler terminates the stage's private instances when the stage
    completes (the :class:`StaticCompletion` fleet shape); leased stages
    leave wind-down to their shared
    :class:`~repro.fleet.lease.LeaseManager`, which is what lets a later
    stage warm-hit the paid hours an earlier stage released.
    """

    acquisition: AcquisitionPolicy
    progress: ProgressPolicy
    completion: CompletionPolicy
    terminate_at_stage_end: bool = False

    @classmethod
    def leased(cls, manager: "LeaseManager", *, tenant: str = "stage",
               campaign: str | None = None,
               progress: ProgressPolicy | None = None) -> "StagePolicy":
        """Shared-fleet stage: per-bin leases, manager-owned billing.

        Stages sharing one ``manager`` hand paid hours across stage
        boundaries — a bin released by stage *n* is a warm hit for stage
        *n+1* (or for a sibling running concurrently).
        """
        return cls(
            acquisition=LeaseAcquisition(manager, tenant=tenant,
                                         campaign=campaign),
            progress=progress if progress is not None else RunToCompletion(),
            completion=LeaseCompletion(manager),
            terminate_at_stage_end=False,
        )

    @classmethod
    def fleet(cls, *, launcher: "ResilientLauncher | None" = None,
              lease_manager: "LeaseManager | None" = None,
              on_fault: str = "fail-bin",
              progress: ProgressPolicy | None = None) -> "StagePolicy":
        """Private-fleet stage: ``execute_plan`` semantics per stage."""
        return cls(
            acquisition=FleetLaunchAcquisition(launcher=launcher,
                                               lease_manager=lease_manager,
                                               on_fault=on_fault),
            progress=progress if progress is not None else RunToCompletion(),
            completion=StaticCompletion(),
            terminate_at_stage_end=True,
        )

    @classmethod
    def spot(cls, board, ladder, *, stats=None, chaos=None,
             escalation=None,
             launcher: "ResilientLauncher | None" = None) -> "StagePolicy":
        """Market-capacity stage: ``execute_plan_spot`` semantics per stage.

        Stages sharing one ``board``/``ladder``/``stats`` triple see one
        coherent spot market across the whole DAG.  ``escalation`` is the
        broker stack escalated segments draw from — ``None`` means plain
        on-demand; a :class:`~repro.capacity.LadderBroker` over a
        :class:`~repro.capacity.WarmLeaseBroker` lets escalated segments
        warm-hit hours a sibling stage already paid for, so wind-down
        stays with the lease manager (``terminate_at_stage_end`` must be
        off: spot segments terminate themselves as they close).
        """
        from repro.capacity import BrokerAcquisition, SpotBroker
        from repro.runner.spot import SpotCompletion, SpotProgress, SpotRunStats

        stats = stats if stats is not None else SpotRunStats()
        broker = SpotBroker(board, ladder, stats=stats, escalation=escalation)
        acquisition = BrokerAcquisition(broker, launcher=launcher,
                                        replacement_tenant="spot")
        return cls(
            acquisition=acquisition,
            progress=SpotProgress(board, ladder, acquisition=acquisition,
                                  chaos=chaos, stats=stats),
            completion=SpotCompletion(stats=stats),
            terminate_at_stage_end=False,
        )


# --------------------------------------------------------------------------
# the core
# --------------------------------------------------------------------------


class ExecutionCore:
    """Run a :class:`ProvisioningPlan` under a policy triple.

    One event-driven loop: acquisition obtains capacity, the fleet-ready
    barrier is an engine event, every bin's processing schedules a
    completion event (feeding the :class:`FleetTimeline`), and the
    completion policy settles billing and winds the fleet down.
    """

    def __init__(
        self,
        cloud: Cloud,
        workload: Workload,
        plan: ProvisioningPlan,
        *,
        acquisition: AcquisitionPolicy,
        progress: ProgressPolicy,
        completion: CompletionPolicy,
        service: ExecutionService | None = None,
        strategy: str | None = None,
        bill: bool = True,
        label: str | None = None,
        record_kind: str = "runner",
    ) -> None:
        self.cloud = cloud
        self.workload = workload
        self.plan = plan
        self.acquisition = acquisition
        self.progress = progress
        self.completion = completion
        self.service = service
        self.strategy = strategy if strategy is not None else plan.strategy
        self.bill = bill
        self.label = label if label is not None else "core"
        self.record_kind = record_kind

    def run(self) -> CoreResult:
        """Execute the plan under the policy triple; return everything.

        When a run ledger is active (:func:`~repro.obs.ledger
        .get_run_ledger`), the run also emits one :class:`RunRecord` with
        the phase profile measured around the three stages below — this
        single hook point is what gives all five entry points flight
        recording.
        """
        ctx = self.build_context()
        engine = self.cloud.engine
        fired0 = engine.events_fired
        walls = [time.perf_counter()]
        sims = [engine.now]
        self.acquisition.acquire_fleet(ctx)
        self.completion.after_acquisition(ctx)
        walls.append(time.perf_counter())
        sims.append(engine.now)
        start = self.acquisition.work_start_time(ctx)
        if start is not None:
            self.completion.run_to_start(ctx, start,
                                         lambda: self._process(ctx))
        walls.append(time.perf_counter())
        sims.append(engine.now)
        self.completion.finalize(ctx)
        walls.append(time.perf_counter())
        sims.append(engine.now)
        ledger = get_run_ledger()
        if ledger is not None:
            self._emit_record(ledger, ctx, walls, sims,
                              engine.events_fired - fired0)
        return CoreResult(report=ctx.report, timeline=ctx.timeline,
                          events=ctx.events)

    def build_context(self) -> CoreContext:
        """The mutable per-run state, occupied bins resolved from the plan.

        :meth:`run` builds one implicitly; a multi-stage scheduler
        (:mod:`repro.dag`) builds one per stage and drives
        :meth:`process` from its own engine events instead of calling
        :meth:`run`, so several stages can be in flight on one engine.
        """
        plan = self.plan
        ctx = CoreContext(
            cloud=self.cloud,
            svc=self.service or ExecutionService(self.cloud),
            plan=plan,
            workload=self.workload,
            acquisition=self.acquisition,
            report=ExecutionReport(deadline=plan.deadline,
                                   strategy=self.strategy),
            bill=self.bill,
        )
        ctx.occupied = [(i, list(units))
                        for i, units in enumerate(plan.assignments) if units]
        ctx.by_index = dict(ctx.occupied)
        ctx.predicted = {
            idx: (plan.predicted_times[idx] if idx < len(plan.predicted_times)
                  else 0.0)
            for idx, _ in ctx.occupied
        }
        return ctx

    def process(self, ctx: CoreContext) -> None:
        """Public alias for the fleet-ready processing loop.

        Call at the stage's work-start time (the engine clock must sit at
        the barrier) after ``acquisition.acquire_fleet`` and
        ``completion.after_acquisition`` have run on ``ctx``.
        """
        self._process(ctx)

    def _emit_record(self, ledger, ctx: CoreContext, walls: list[float],
                     sims: list[float], events_fired: int) -> None:
        """Build this run's flight-recorder entry and append it."""
        report, obs = ctx.report, ctx.obs
        wall_s = walls[3] - walls[0]
        n_bins = len(ctx.by_index)
        phase_names = ("acquire", "execute", "finalize")
        ledger.append(RunRecord(
            kind=self.record_kind,
            label=self.label,
            config={
                "strategy": self.strategy,
                "seed": getattr(ctx.cloud.rng, "seed", None),
                "scheduler": ctx.engine.scheduler,
                "bins": n_bins,
                "units": sum(len(u) for u in ctx.by_index.values()),
                "bill": self.bill,
                "policies": {
                    "acquisition": type(self.acquisition).__name__,
                    "progress": type(self.progress).__name__,
                    "completion": type(self.completion).__name__,
                },
            },
            metrics=(encode_metrics_dump(obs.metrics.dump())
                     if obs.metrics.enabled else []),
            spans=span_rollup(obs.tracer) if obs.tracer.enabled else {},
            billing=ctx.cloud.ledger.summary(),
            deadline={
                "deadline_s": ctx.plan.deadline,
                "makespan_s": report.makespan,
                "margin_s": ctx.plan.deadline - report.makespan,
                "missed": report.n_missed,
                "failed": report.n_failed,
                "bins": n_bins,
                "miss_rate": (report.n_missed / n_bins) if n_bins else 0.0,
            },
            profile={
                "wall_s": wall_s,
                "sim_start": sims[0],
                "sim_end": sims[3],
                "sim_s": sims[3] - sims[0],
                "events_fired": events_fired,
                "events_per_s": events_fired / wall_s if wall_s > 0 else 0.0,
                "phases": {
                    name: {"wall_s": walls[i + 1] - walls[i],
                           "sim_s": sims[i + 1] - sims[i]}
                    for i, name in enumerate(phase_names)
                },
            },
        ))

    # -- the one processing loop ------------------------------------------

    def _process(self, ctx: CoreContext) -> None:
        """Fleet-ready event: process every bin, then batch-schedule the
        completion events.

        Completions are collected during the loop and scheduled in one
        :meth:`~repro.sim.engine.SimulationEngine.schedule_batch` call —
        nothing inside ``execute``/``settle_bin`` advances the engine
        clock, so deferring the scheduling to after the loop leaves the
        firing order (and therefore every report, ledger and timeline)
        bit-identical to per-grant ``schedule_at`` calls while amortising
        the per-event scheduling overhead across the fleet.
        """
        ctx.work_start = ctx.engine.now
        self.acquisition.on_work_start(ctx)
        done: list[tuple[BinGrant, BinOutcome]] = []
        for grant in self.acquisition.grants(ctx):
            outcome = self.progress.execute(ctx, grant)
            self.completion.settle_bin(ctx, grant, outcome)
            if outcome.run is not None:
                ctx.working += 1
                ctx.ends.append(outcome.end)
                done.append((grant, outcome))
        if done:
            ctx.engine.schedule_batch(
                [outcome.end for _, outcome in done],
                [self._completer(ctx, grant, outcome)
                 for grant, outcome in done],
                [f"complete:{outcome.run.instance_id}"
                 for _, outcome in done])

    def _completer(self, ctx: CoreContext, grant: BinGrant,
                   outcome: BinOutcome) -> Callable[[], None]:
        def complete() -> None:
            ctx.working -= 1
            ctx.completed += 1
            ctx.timeline.record(ctx.engine.now, ctx.working, ctx.completed)
            self.completion.on_bin_complete(ctx, grant, outcome)

        return complete
