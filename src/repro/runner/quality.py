"""Quality-aware fleet execution (§7 future work).

Before assigning data, each fleet member is given a lightweight bonnie
probe; the tracker classifies it and the §7 "different predictors for each
instance quality level" logic decides how much data each instance
receives.  On a heterogeneous fleet this narrows the spread of per-instance
finish times compared to uniform shares — fewer marginal misses for the
same instance count (probing time itself is charged).
"""

from __future__ import annotations

from repro.cloud.bonnie import BONNIE_DURATION, bonnie_probe
from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.perfmodel.quality import QualityTracker
from repro.runner.execute import ExecutionReport, InstanceRun
from repro.vfs.files import Catalogue

__all__ = ["execute_quality_aware"]


def execute_quality_aware(
    cloud: Cloud,
    workload: Workload,
    catalogue: Catalogue,
    deadline: float,
    n_instances: int,
    tracker: QualityTracker,
    *,
    service: ExecutionService | None = None,
) -> tuple[ExecutionReport, list[str]]:
    """Run ``catalogue`` on ``n_instances``, shares sized by measured quality.

    The tracker must already hold per-band observations (from probing or
    prior campaigns) so it can answer ``volume_for(band, deadline)``.
    Returns the report plus each instance's quality label.
    """
    if n_instances < 1:
        raise ValueError("need at least one instance")
    svc = service or ExecutionService(cloud)

    instances = [cloud.launch_instance(wait=False) for _ in range(n_instances)]
    latest = max(i.ready_at for i in instances)
    if latest > cloud.now:
        cloud.advance(latest - cloud.now)
    for inst in instances:
        inst.mark_running(cloud.now)

    # Lightweight vetting pass: one bonnie run per instance.  The probes
    # run concurrently, so wall-clock accounting (``work_start``, the
    # BONNIE_DURATION added to each duration below) treats them as one
    # 120 s fleet-wide step even though the engine clock steps serially.
    work_start = cloud.now
    labels: list[str] = []
    for inst in instances:
        res = bonnie_probe(cloud, inst)
        labels.append(tracker.classify(res))

    shares = tracker.share_out(labels, catalogue.total_size, deadline)
    # carve the catalogue into contiguous chunks of the prescribed sizes
    files = list(catalogue)
    assignments: list[list] = []
    idx = 0
    for share in shares:
        chunk = []
        acc = 0
        while idx < len(files) and acc < share:
            chunk.append(files[idx])
            acc += files[idx].size
            idx += 1
        assignments.append(chunk)
    while idx < len(files):  # rounding tail
        assignments[-1].append(files[idx])
        idx += 1

    report = ExecutionReport(deadline=deadline, strategy="quality-aware")
    runs: list[InstanceRun] = []
    for inst, units, label in zip(instances, assignments, labels):
        if not units:
            duration = 0.0
        else:
            duration = svc.run(inst, units, workload, advance_clock=False)
        duration += BONNIE_DURATION  # the probe is part of the wall clock
        runs.append(InstanceRun(
            instance_id=inst.instance_id,
            n_units=len(units),
            volume=sum(u.size for u in units),
            boot_delay=inst.boot_delay,
            duration=duration,
            predicted=float(tracker.predictor_for(label).predict(
                sum(u.size for u in units))) if units else 0.0,
        ))
        cloud.ledger.record(inst.instance_id, inst.itype.name,
                            work_start, work_start + duration,
                            inst.itype.hourly_rate)
    report.runs = runs
    report.rate = instances[0].itype.hourly_rate
    cloud.advance(max(r.duration for r in runs))
    for inst in instances:
        inst.terminate(cloud.now)
    return report, labels
