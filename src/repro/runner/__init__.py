"""Plan execution on the simulated cloud.

One event-driven loop — :class:`~repro.runner.core.ExecutionCore` — runs
every :class:`~repro.core.planner.ProvisioningPlan`, delegating each
decision to a policy triple (acquisition / progress / completion).  The
public entry points are thin configurations of it:

* :func:`~repro.runner.execute.execute_plan` — fresh instances, per-
  instance misses against the user deadline (Figs. 8–9), ceil-hour bill;
* :func:`~repro.runner.event_driven.execute_plan_event_driven` — the
  same semantics on the bare engine clock, returning the fleet timeline;
* :func:`~repro.runner.dynamic.execute_with_monitoring` — the paper's §7
  loop: monitor throughput, retire stragglers, re-attach their EBS
  volume to a replacement;
* :func:`~repro.runner.fault_tolerant.execute_fault_tolerant` — §7 crash
  recovery in unit batches;
* :func:`~repro.runner.fleet.execute_on_fleet` — warm leases from a
  shared fleet instead of private boots;
* :func:`~repro.runner.spot.execute_plan_spot` — spot-market capacity
  with interruption absorption, the fallback ladder, and deadline-aware
  on-demand escalation.
"""

from repro.runner.core import (
    AcquisitionPolicy,
    BinGrant,
    BinOutcome,
    CompletionPolicy,
    CoreResult,
    CrashCompletion,
    CrashProgress,
    EventCompletion,
    ExecutionCore,
    FleetLaunchAcquisition,
    LeaseAcquisition,
    LeaseCompletion,
    MonitoredCompletion,
    ProgressPolicy,
    RunToCompletion,
    StaticCompletion,
    StragglerProgress,
)
from repro.runner.columnar import (
    ColumnarReport,
    execute_plan_columnar,
    execute_uniform_fleet,
)
from repro.runner.dynamic import DynamicPolicy, ReplacementEvent, execute_with_monitoring
from repro.runner.ebs_plan import DeviceAssignment, execute_ebs_plan
from repro.runner.event_driven import FleetTimeline, execute_plan_event_driven
from repro.runner.execute import ExecutionReport, FailedBin, InstanceRun, execute_plan
from repro.runner.fault_tolerant import CrashEvent, FaultPolicy, execute_fault_tolerant
from repro.runner.fleet import execute_on_fleet
from repro.runner.quality import execute_quality_aware
from repro.runner.spot import (
    SpotAcquisition,
    SpotCompletion,
    SpotProgress,
    SpotRunResult,
    SpotRunStats,
    execute_plan_spot,
)

__all__ = [
    "ExecutionReport",
    "FailedBin",
    "InstanceRun",
    "execute_plan",
    "execute_on_fleet",
    "DynamicPolicy",
    "ReplacementEvent",
    "execute_with_monitoring",
    "CrashEvent",
    "FaultPolicy",
    "execute_fault_tolerant",
    "execute_quality_aware",
    "FleetTimeline",
    "execute_plan_event_driven",
    "ColumnarReport",
    "execute_plan_columnar",
    "execute_uniform_fleet",
    "DeviceAssignment",
    "execute_ebs_plan",
    "SpotAcquisition",
    "SpotCompletion",
    "SpotProgress",
    "SpotRunResult",
    "SpotRunStats",
    "execute_plan_spot",
    # the core and its policies
    "ExecutionCore",
    "CoreResult",
    "AcquisitionPolicy",
    "ProgressPolicy",
    "CompletionPolicy",
    "BinGrant",
    "BinOutcome",
    "FleetLaunchAcquisition",
    "LeaseAcquisition",
    "RunToCompletion",
    "StragglerProgress",
    "CrashProgress",
    "StaticCompletion",
    "EventCompletion",
    "MonitoredCompletion",
    "CrashCompletion",
    "LeaseCompletion",
]
