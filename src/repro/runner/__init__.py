"""Plan execution on the simulated cloud.

:mod:`repro.runner.execute` runs a :class:`~repro.core.planner.ProvisioningPlan`
on freshly launched instances — each instance processes its bin, misses are
counted per instance against the user deadline (as in Figs. 8–9), and the
ceil-hour bill is tallied.  :mod:`repro.runner.dynamic` adds the paper's §7
future-work loop: monitor throughput, retire stragglers at low cost, and
re-attach their EBS volume to a replacement.
"""

from repro.runner.dynamic import DynamicPolicy, execute_with_monitoring
from repro.runner.ebs_plan import DeviceAssignment, execute_ebs_plan
from repro.runner.event_driven import FleetTimeline, execute_plan_event_driven
from repro.runner.execute import ExecutionReport, FailedBin, InstanceRun, execute_plan
from repro.runner.fault_tolerant import CrashEvent, FaultPolicy, execute_fault_tolerant
from repro.runner.fleet import execute_on_fleet
from repro.runner.quality import execute_quality_aware

__all__ = [
    "ExecutionReport",
    "FailedBin",
    "InstanceRun",
    "execute_plan",
    "execute_on_fleet",
    "DynamicPolicy",
    "execute_with_monitoring",
    "CrashEvent",
    "FaultPolicy",
    "execute_fault_tolerant",
    "execute_quality_aware",
    "FleetTimeline",
    "execute_plan_event_driven",
    "DeviceAssignment",
    "execute_ebs_plan",
]
