"""Dynamic rescheduling — the paper's §7 future work, implemented.

"We can also monitor application performance during execution and make
dynamic scheduling decisions. … If we find that the application
performance is not satisfactory … we can decide to terminate poor
instances right away or to let them run up to close to a full hour and
then reassign the remaining work to new or existing instances.  Relying on
the persistent nature of EBS storage volumes … replacing poorly performing
instances can be done easily without explicit data transfers."

The §3.1 arithmetic this implements: a slow instance reading 60 MB/s could
process ≈210 GB in its next hour; swapping to a likely-fast instance costs
a ≈3 min boot+attach penalty yet still gains ≈57 GB of extra progress.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import ProvisioningPlan
from repro.runner.execute import ExecutionReport, FailedBin, InstanceRun
from repro.units import HOUR

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.lease import LeaseManager
    from repro.resilience.launch import ResilientLauncher

__all__ = ["DynamicPolicy", "execute_with_monitoring"]


@dataclass(frozen=True)
class DynamicPolicy:
    """When and how to replace stragglers.

    After ``probe_fraction`` of an instance's bin has been processed, its
    observed throughput is compared to the plan's implied throughput; below
    ``slow_threshold`` the instance is marked for replacement.  The
    replacement pays ``replacement_penalty`` seconds (new instance startup
    plus EBS volume attachment — the paper's ≈3 minutes).
    """

    probe_fraction: float = 0.2
    slow_threshold: float = 0.7
    replacement_penalty: float = 180.0
    max_replacements_per_bin: int = 1
    #: EBS re-attach seconds when the replacement comes from a warm-pool
    #: lease: the instance is already booted, so only the volume move is
    #: paid (vs ``replacement_penalty`` ≈ boot + attach for a fresh one).
    attach_penalty: float = 30.0
    #: Fixed per-run overhead (process/JVM start) netted out of the probe
    #: chunk before computing throughput — a tiny chunk would otherwise
    #: look slow on every instance.
    setup_allowance: float = 5.0
    #: When to retire a detected straggler: ``"immediately"`` (minimum
    #: wall-clock), or ``"hour-boundary"`` (§7: "let them run up to close
    #: to a full hour and then reassign the remaining work" — the already-
    #: paid hour keeps producing, so the replacement does less).
    replace_at: str = "immediately"

    def __post_init__(self) -> None:
        if not 0 < self.probe_fraction < 1:
            raise ValueError("probe_fraction must be in (0, 1)")
        if not 0 < self.slow_threshold < 1:
            raise ValueError("slow_threshold must be in (0, 1)")
        if self.replacement_penalty < 0:
            raise ValueError("replacement penalty must be non-negative")
        if self.setup_allowance < 0:
            raise ValueError("setup allowance must be non-negative")
        if self.attach_penalty < 0:
            raise ValueError("attach penalty must be non-negative")
        if self.replace_at not in ("immediately", "hour-boundary"):
            raise ValueError("replace_at must be 'immediately' or 'hour-boundary'")


@dataclass
class ReplacementEvent:
    bin_index: int
    old_instance: str
    new_instance: str
    at_progress: float
    observed_ratio: float


def _split_point(units: list, fraction: float) -> int:
    """Index splitting ``units`` so the head holds ≈``fraction`` of bytes."""
    total = sum(u.size for u in units)
    if total == 0:
        return len(units)
    acc = 0
    for i, u in enumerate(units):
        acc += u.size
        if acc >= fraction * total:
            return i + 1
    return len(units)


def execute_with_monitoring(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    policy: DynamicPolicy | None = None,
    service: ExecutionService | None = None,
    lease_manager: "LeaseManager | None" = None,
    launcher: "ResilientLauncher | None" = None,
) -> tuple[ExecutionReport, list[ReplacementEvent]]:
    """Execute a plan with straggler replacement.

    Each bin runs a probe chunk first; if the instance's observed time for
    that chunk exceeds the prediction-derived bound, the rest of the bin
    moves to a fresh instance (EBS re-attach penalty applies, no data
    copy).  Billing covers every instance that ran, including retired
    stragglers (their partial hour is still a full billed hour).

    With a ``lease_manager``, replacements draw from the fleet instead of
    booting privately: a warm-pool lease is already running inside a paid
    hour, so only ``policy.attach_penalty`` is paid and no new boot or
    ``⌈·⌉`` charge is incurred; on a pool miss the manager cold-boots and
    the usual boot + attach penalty applies.  Leased replacements are
    billed by the manager at retirement (call its ``shutdown()``), not by
    this runner.

    With a ``launcher``, launches (initial and replacement) ride the
    resilience layer: faults are retried with backoff, breakers steer
    around refusing zones, and a replacement that still cannot be
    acquired keeps the straggler instead of failing the bin.  The
    launcher is also fed ``note_slow_zone`` on each replacement, so
    measured-slow zones are deprioritised for later acquisitions.
    """
    from repro.chaos import ChaosError
    from repro.resilience.launch import CapacityError, acquire_replacement, launch_fleet

    policy = policy or DynamicPolicy()
    svc = service or ExecutionService(cloud)
    obs = cloud.obs
    report = ExecutionReport(deadline=plan.deadline, strategy=f"{plan.strategy}+dynamic")
    events: list[ReplacementEvent] = []

    occupied = [(i, list(units)) for i, units in enumerate(plan.assignments) if units]
    by_index = dict(occupied)
    granted, failed_launches = launch_fleet(cloud, [i for i, _ in occupied],
                                            launcher=launcher)
    for idx, reason in failed_launches:
        units = by_index[idx]
        report.failures.append(FailedBin(
            bin_index=idx, reason=reason, n_units=len(units),
            volume=sum(u.size for u in units)))
    instances = [inst for _, inst, _ in granted]
    if instances:
        latest = max(inst.ready_at + wait for _, inst, wait in granted)
        if latest > cloud.now:
            cloud.advance(latest - cloud.now)
        for inst in instances:
            inst.mark_running(cloud.now)
        report.rate = instances[0].itype.hourly_rate

    work_start = cloud.now
    runs: list[InstanceRun] = []
    for idx, inst, launch_wait in granted:
        units = by_index[idx]
        predicted = plan.predicted_times[idx] if idx < len(plan.predicted_times) else 0.0
        split = _split_point(units, policy.probe_fraction)
        probe, rest = units[:split], units[split:]
        probe_volume = sum(u.size for u in probe)
        volume = sum(u.size for u in units)

        t_probe = svc.run(inst, probe, workload, advance_clock=False)
        expected_probe = predicted * (probe_volume / volume) if volume else t_probe
        effective = max(t_probe - policy.setup_allowance, 1e-9)
        ratio = expected_probe / effective
        if obs.enabled:
            obs.tracer.add_span("runner.probe.chunk", work_start,
                                work_start + t_probe, cat="runner",
                                track=inst.instance_id, bin=idx,
                                observed_ratio=round(ratio, 4))
            obs.metrics.histogram("runner.probe.ratio",
                                  buckets=(0.25, 0.5, 0.7, 0.9, 1.0, 1.2, 2.0)
                                  ).observe(ratio)

        duration = t_probe
        active = inst
        active_lease = None   # set when the replacement is a fleet lease
        active_since = 0.0  # elapsed time at which `active` started working
        replacements = 0
        if (
            rest
            and ratio < policy.slow_threshold
            and replacements < policy.max_replacements_per_bin
        ):
            if policy.replace_at == "hour-boundary":
                # §7's cheaper variant: the straggler's hour is already
                # paid, so let it keep chewing through the bin until just
                # before the boundary, then hand over only what remains.
                boundary = HOUR * math.ceil(max(duration, 1.0) / HOUR)
                window = boundary - duration
                straggler_rate = probe_volume / max(t_probe, 1e-9)
                budget = straggler_rate * window
                done = 0
                acc = 0
                for u in rest:
                    if acc + u.size > budget:
                        break
                    acc += u.size
                    done += 1
                if done:
                    duration += svc.run(active, rest[:done], workload,
                                        advance_clock=False)
                    rest = rest[done:]
            rest_volume = sum(u.size for u in rest)
            est_rest = (predicted * (rest_volume / volume)
                        if volume else t_probe)
            if launcher is not None:
                # Observable feedback: this zone produced a straggler, so
                # later acquisitions deprioritise it.
                launcher.note_slow_zone(active.zone.name)
            replacement = None
            try:
                # Warm lease: already booted inside a paid hour — only
                # the EBS move is paid.  Cold/fresh: boot plus attach.
                replacement, lease, penalty = acquire_replacement(
                    cloud, at=work_start + duration, est_seconds=est_rest,
                    lease_manager=lease_manager, launcher=launcher,
                    tenant="dynamic", campaign=f"bin-{idx}",
                    boot_attach_penalty=policy.replacement_penalty,
                    warm_attach_penalty=policy.attach_penalty)
            except (ChaosError, CapacityError):
                # No replacement to be had under the installed faults:
                # keep the straggler working (§7's "let them run"
                # fallback) rather than fail the bin outright.
                if obs.enabled:
                    obs.tracer.instant("runner.replacement.unavailable",
                                       cat="runner",
                                       track=active.instance_id, bin=idx)
                    obs.metrics.counter(
                        "runner.replacements.unavailable").inc()
            if replacement is not None:
                # Retire the straggler; its (partial) hours are billed
                # anyway.
                cloud.ledger.record(active.instance_id, active.itype.name,
                                    work_start, work_start + duration,
                                    active.itype.hourly_rate)
                events.append(ReplacementEvent(
                    bin_index=idx,
                    old_instance=active.instance_id,
                    new_instance=replacement.instance_id,
                    at_progress=(volume - sum(u.size for u in rest)) / volume
                    if volume else 1.0,
                    observed_ratio=ratio,
                ))
                if obs.enabled:
                    obs.tracer.instant("runner.straggler.replaced",
                                       cat="runner",
                                       track=active.instance_id, bin=idx,
                                       replacement=replacement.instance_id,
                                       source=lease.source if lease else "boot",
                                       observed_ratio=round(ratio, 4))
                    obs.tracer.add_span(
                        "runner.replacement.penalty", work_start + duration,
                        work_start + duration + penalty,
                        cat="runner", track=replacement.instance_id, bin=idx)
                    obs.metrics.counter("runner.replacements",
                                        mode=policy.replace_at,
                                        source=lease.source if lease else "boot",
                                        ).inc()
                active.terminate(max(cloud.now, work_start + duration))
                duration += penalty
                active = replacement
                active_lease = lease
                active_since = duration
                replacements += 1

        if rest:
            t_rest_start = duration
            duration += svc.run(active, rest, workload, advance_clock=False)
            if obs.enabled:
                obs.tracer.add_span("runner.task.run",
                                    work_start + t_rest_start,
                                    work_start + duration, cat="runner",
                                    track=active.instance_id, bin=idx,
                                    n_units=len(rest))

        runs.append(InstanceRun(
            instance_id=active.instance_id,
            n_units=len(units),
            volume=volume,
            boot_delay=launch_wait + active.boot_delay,
            duration=duration,
            predicted=predicted,
        ))
        # Bill the currently-active instance only for the span it worked
        # (the retired straggler's span was billed at retirement).  A
        # leased replacement instead returns to the warm pool: its bill is
        # settled when the lease manager retires it.
        if active_lease is not None:
            lease_manager.release(active_lease, work_start + duration)
        else:
            cloud.ledger.record(active.instance_id, active.itype.name,
                                work_start + active_since,
                                work_start + duration,
                                active.itype.hourly_rate)

    report.runs = runs
    if runs:
        cloud.advance(max(r.duration for r in runs))
    for inst in cloud.running_instances():
        if lease_manager is not None and lease_manager.owns(inst.instance_id):
            continue
        inst.terminate(cloud.now)
    if obs.enabled:
        obs.metrics.gauge("runner.deadline.margin", strategy=report.strategy
                          ).set(report.deadline - report.makespan)
    return report, events
