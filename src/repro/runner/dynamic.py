"""Dynamic rescheduling — the paper's §7 future work, implemented.

"We can also monitor application performance during execution and make
dynamic scheduling decisions. … If we find that the application
performance is not satisfactory … we can decide to terminate poor
instances right away or to let them run up to close to a full hour and
then reassign the remaining work to new or existing instances.  Relying on
the persistent nature of EBS storage volumes … replacing poorly performing
instances can be done easily without explicit data transfers."

The §3.1 arithmetic this implements: a slow instance reading 60 MB/s could
process ≈210 GB in its next hour; swapping to a likely-fast instance costs
a ≈3 min boot+attach penalty yet still gains ≈57 GB of extra progress.

The monitoring loop itself is :class:`~repro.runner.core.StragglerProgress`
inside the shared :class:`~repro.runner.core.ExecutionCore`; this module
owns the policy knobs and the entry-point signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import ProvisioningPlan
from repro.runner.core import ReplacementEvent, _split_point  # noqa: F401  (re-export)
from repro.runner.execute import ExecutionReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.lease import LeaseManager
    from repro.resilience.launch import ResilientLauncher

__all__ = ["DynamicPolicy", "ReplacementEvent", "execute_with_monitoring"]


@dataclass(frozen=True)
class DynamicPolicy:
    """When and how to replace stragglers.

    After ``probe_fraction`` of an instance's bin has been processed, its
    observed throughput is compared to the plan's implied throughput; below
    ``slow_threshold`` the instance is marked for replacement.  The
    replacement pays ``replacement_penalty`` seconds (new instance startup
    plus EBS volume attachment — the paper's ≈3 minutes).
    """

    probe_fraction: float = 0.2
    slow_threshold: float = 0.7
    replacement_penalty: float = 180.0
    max_replacements_per_bin: int = 1
    #: EBS re-attach seconds when the replacement comes from a warm-pool
    #: lease: the instance is already booted, so only the volume move is
    #: paid (vs ``replacement_penalty`` ≈ boot + attach for a fresh one).
    attach_penalty: float = 30.0
    #: Fixed per-run overhead (process/JVM start) netted out of the probe
    #: chunk before computing throughput — a tiny chunk would otherwise
    #: look slow on every instance.
    setup_allowance: float = 5.0
    #: When to retire a detected straggler: ``"immediately"`` (minimum
    #: wall-clock), or ``"hour-boundary"`` (§7: "let them run up to close
    #: to a full hour and then reassign the remaining work" — the already-
    #: paid hour keeps producing, so the replacement does less).
    replace_at: str = "immediately"

    def __post_init__(self) -> None:
        if not 0 < self.probe_fraction < 1:
            raise ValueError("probe_fraction must be in (0, 1)")
        if not 0 < self.slow_threshold < 1:
            raise ValueError("slow_threshold must be in (0, 1)")
        if self.replacement_penalty < 0:
            raise ValueError("replacement penalty must be non-negative")
        if self.setup_allowance < 0:
            raise ValueError("setup allowance must be non-negative")
        if self.attach_penalty < 0:
            raise ValueError("attach penalty must be non-negative")
        if self.replace_at not in ("immediately", "hour-boundary"):
            raise ValueError("replace_at must be 'immediately' or 'hour-boundary'")


def execute_with_monitoring(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    policy: DynamicPolicy | None = None,
    service: ExecutionService | None = None,
    lease_manager: "LeaseManager | None" = None,
    launcher: "ResilientLauncher | None" = None,
) -> tuple[ExecutionReport, list[ReplacementEvent]]:
    """Execute a plan with straggler replacement.

    Each bin runs a probe chunk first; if the instance's observed time for
    that chunk exceeds the prediction-derived bound, the rest of the bin
    moves to a fresh instance (EBS re-attach penalty applies, no data
    copy).  Billing covers every instance that ran, including retired
    stragglers (their partial hour is still a full billed hour).

    With a ``lease_manager``, replacements draw from the fleet instead of
    booting privately: a warm-pool lease is already running inside a paid
    hour, so only ``policy.attach_penalty`` is paid and no new boot or
    ``⌈·⌉`` charge is incurred; on a pool miss the manager cold-boots and
    the usual boot + attach penalty applies.  Leased replacements are
    billed by the manager at retirement (call its ``shutdown()``), not by
    this runner.

    With a ``launcher``, launches (initial and replacement) ride the
    resilience layer: faults are retried with backoff, breakers steer
    around refusing zones, and a replacement that still cannot be
    acquired keeps the straggler instead of failing the bin.  The
    launcher is also fed ``note_slow_zone`` on each replacement, so
    measured-slow zones are deprioritised for later acquisitions.
    """
    from repro.runner.core import (
        ExecutionCore,
        FleetLaunchAcquisition,
        MonitoredCompletion,
        StragglerProgress,
    )

    core = ExecutionCore(
        cloud, workload, plan,
        acquisition=FleetLaunchAcquisition(
            launcher=launcher, lease_manager=lease_manager,
            replacement_tenant="dynamic"),
        progress=StragglerProgress(policy or DynamicPolicy()),
        completion=MonitoredCompletion(lease_manager=lease_manager),
        service=service,
        strategy=f"{plan.strategy}+dynamic",
        label="execute_with_monitoring",
    )
    result = core.run()
    return result.report, result.events
