"""Event-driven plan execution — the same semantics on the event engine.

:func:`repro.runner.execute.execute_plan` settles billing and the clock
through the cloud's outage-stepping ``advance``; this runner drives the
bare :class:`~repro.sim.engine.SimulationEngine` directly and terminates
each instance inside its own completion event.  Both are policy
configurations of the same :class:`~repro.runner.core.ExecutionCore`, and
both must agree exactly (``tests/test_event_driven.py`` checks
bit-equality of durations, makespan and misses) — a differential oracle
for the engine and the core.

The :class:`~repro.runner.core.FleetTimeline` (progress snapshots at
event granularity — the raw material for Gantt-style reporting) is now
produced by the core for *every* runner; this entry point returns it
explicitly.
"""

from __future__ import annotations

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import ProvisioningPlan
from repro.runner.core import (
    EventCompletion,
    ExecutionCore,
    FleetLaunchAcquisition,
    FleetTimeline,
    RunToCompletion,
)
from repro.runner.execute import ExecutionReport

__all__ = ["FleetTimeline", "execute_plan_event_driven"]


def execute_plan_event_driven(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    service: ExecutionService | None = None,
    bill: bool = True,
) -> tuple[ExecutionReport, FleetTimeline]:
    """Run the plan through scheduled events; returns (report, timeline).

    Launch, measurement and billing orders match the arithmetic runner
    call-for-call, so every deterministic draw is identical and the two
    runners are directly comparable.  Launch faults propagate
    (``on_fault="raise"``) — this runner predates the resilience layer
    and keeps its legacy contract.
    """
    core = ExecutionCore(
        cloud, workload, plan,
        acquisition=FleetLaunchAcquisition(on_fault="raise"),
        progress=RunToCompletion(),
        completion=EventCompletion(),
        service=service,
        bill=bill,
        label="execute_plan_event_driven",
    )
    result = core.run()
    return result.report, result.timeline
