"""Event-driven plan execution — the same semantics on the event engine.

:func:`repro.runner.execute.execute_plan` computes per-instance timelines
arithmetically; this runner schedules the identical launches, boots and
completions as discrete events on the cloud's
:class:`~repro.sim.engine.SimulationEngine`.  Both paths must agree
exactly (``tests/test_event_driven.py`` checks bit-equality of durations,
makespan and misses) — a differential oracle for the engine and the
runner.

The event form also yields what the arithmetic form cannot: a global
*fleet timeline* — progress snapshots at event granularity (instances
running / completed over simulated time), the raw material for Gantt-style
reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import ProvisioningPlan
from repro.runner.execute import ExecutionReport, InstanceRun

__all__ = ["FleetTimeline", "execute_plan_event_driven"]


@dataclass
class FleetTimeline:
    """Progress snapshots collected as completion events fire."""

    points: list[tuple[float, int, int]] = field(default_factory=list)
    # (simulated time, instances still working, instances completed)

    def record(self, t: float, working: int, completed: int) -> None:
        """Append one snapshot."""
        self.points.append((t, working, completed))

    @property
    def completion_times(self) -> list[float]:
        return [t for t, _, c in self.points]

    def completed_at(self, t: float) -> int:
        """Instances completed by simulated time ``t``."""
        done = 0
        for when, _, completed in self.points:
            if when <= t:
                done = completed
        return done


def execute_plan_event_driven(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    service: ExecutionService | None = None,
    bill: bool = True,
) -> tuple[ExecutionReport, FleetTimeline]:
    """Run the plan through scheduled events; returns (report, timeline).

    Launch, measurement and billing orders match the arithmetic runner
    call-for-call, so every deterministic draw is identical and the two
    runners are directly comparable.
    """
    svc = service or ExecutionService(cloud)
    report = ExecutionReport(deadline=plan.deadline, strategy=plan.strategy)
    timeline = FleetTimeline()
    occupied = [(i, units) for i, units in enumerate(plan.assignments) if units]

    instances = [cloud.launch_instance(wait=False) for _ in occupied]
    if not instances:
        return report, timeline
    report.rate = instances[0].itype.hourly_rate

    engine = cloud.engine
    state = {"working": 0, "completed": 0}
    runs_by_index: dict[int, InstanceRun] = {}

    # Fleet barrier: work starts when the slowest boot completes (same
    # semantics as the arithmetic runner).
    fleet_ready = max(i.ready_at for i in instances)

    def start_fleet() -> None:
        work_start = engine.now
        for inst, (idx, units) in zip(instances, occupied):
            inst.mark_running(engine.now)
            duration = svc.run(inst, units, workload, advance_clock=False)
            predicted = (plan.predicted_times[idx]
                         if idx < len(plan.predicted_times) else 0.0)
            run = InstanceRun(
                instance_id=inst.instance_id,
                n_units=len(units),
                volume=sum(u.size for u in units),
                boot_delay=inst.boot_delay,
                duration=duration,
                predicted=predicted,
            )
            runs_by_index[idx] = run
            state["working"] += 1
            if bill:
                cloud.ledger.record(inst.instance_id, inst.itype.name,
                                    work_start, work_start + duration,
                                    inst.itype.hourly_rate)

            def complete(inst=inst, run=run) -> None:
                state["working"] -= 1
                state["completed"] += 1
                timeline.record(engine.now, state["working"], state["completed"])
                inst.terminate(engine.now)

            engine.schedule_at(work_start + duration, complete,
                               label=f"complete:{inst.instance_id}")

    engine.schedule_at(fleet_ready, start_fleet, label="fleet-ready")
    engine.run()

    report.runs = [runs_by_index[idx] for idx, _ in occupied]
    return report, timeline
