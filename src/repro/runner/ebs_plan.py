"""Device-granular execution — the §5.1 operational model for grep.

"We perform our experiments on a random 100 GB volume of the data set …
and stage in this data equally across 100 EBS storage volumes.  The
deadline we wish to meet dictates how to attach the available volumes to
the required number of instances.  The unit of splitting of the data
across the EBS storage volumes determines the coarseness of deadlines we
can meet."

:func:`execute_ebs_plan` stages a catalogue across ``n_devices`` EBS
volumes, computes the §5.1 assignment (``⌊V_D/V⁰⌋`` devices per
instance), attaches each instance's devices and processes them
sequentially — each device carrying its own placement quality, which is
how device-level spikes leak into per-instance times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import PlanError, ebs_assignment
from repro.perfmodel.regression import Predictor
from repro.runner.execute import ExecutionReport, InstanceRun
from repro.vfs.files import Catalogue

__all__ = ["DeviceAssignment", "execute_ebs_plan"]


@dataclass
class DeviceAssignment:
    """Which devices each instance consumed, with their placement factors."""

    instance_id: str
    device_ids: list[str] = field(default_factory=list)
    placement_factors: list[float] = field(default_factory=list)


def execute_ebs_plan(
    cloud: Cloud,
    workload: Workload,
    catalogue: Catalogue,
    predictor: Predictor,
    deadline: float,
    *,
    n_devices: int,
    service: ExecutionService | None = None,
) -> tuple[ExecutionReport, list[DeviceAssignment]]:
    """Stage, assign and execute per the §5.1 EBS scheme.

    Raises :class:`~repro.core.planner.PlanError` when the deadline is
    finer than the device granularity permits (the paper's caveat).
    """
    if n_devices < 1:
        raise PlanError("need at least one device")
    svc = service or ExecutionService(cloud)

    parts = catalogue.partition_volumes(n_devices)
    per_device = max(p.total_size for p in parts)
    v_d = predictor.inverse(deadline)
    assignment = ebs_assignment(catalogue.total_size, per_device, v_d)
    per_instance = assignment["devices_per_instance"]
    n_instances = assignment["instances"]

    # Stage each partition onto its own volume.
    volumes = []
    for i, part in enumerate(parts):
        vol = cloud.create_volume(
            size_gb=max(1, math.ceil(part.total_size / 1e9)), zone=cloud.region.zones[0])
        vol.store("data")
        volumes.append(vol)

    instances = [cloud.launch_instance(wait=False) for _ in range(n_instances)]
    latest = max(i.ready_at for i in instances)
    if latest > cloud.now:
        cloud.advance(latest - cloud.now)
    for inst in instances:
        inst.mark_running(cloud.now)
    work_start = cloud.now

    report = ExecutionReport(deadline=deadline, strategy="ebs-devices")
    report.rate = instances[0].itype.hourly_rate
    assignments: list[DeviceAssignment] = []
    runs: list[InstanceRun] = []
    for k, inst in enumerate(instances):
        my_parts = parts[k * per_instance:(k + 1) * per_instance]
        my_vols = volumes[k * per_instance:(k + 1) * per_instance]
        da = DeviceAssignment(instance_id=inst.instance_id)
        duration = 0.0
        volume_bytes = 0
        n_units = 0
        for part, vol in zip(my_parts, my_vols):
            vol.attach(inst)
            duration += svc.run(inst, list(part), workload,
                                storage=vol, directory="data",
                                advance_clock=False)
            vol.detach()
            da.device_ids.append(vol.volume_id)
            da.placement_factors.append(vol.placement_factor("data"))
            volume_bytes += part.total_size
            n_units += len(part)
        assignments.append(da)
        runs.append(InstanceRun(
            instance_id=inst.instance_id,
            n_units=n_units,
            volume=volume_bytes,
            boot_delay=inst.boot_delay,
            duration=duration,
            predicted=float(predictor.predict(volume_bytes)),
        ))
        cloud.ledger.record(inst.instance_id, inst.itype.name,
                            work_start, work_start + duration,
                            inst.itype.hourly_rate)
    report.runs = runs
    if runs:
        cloud.advance(max(r.duration for r in runs))
    for inst in instances:
        inst.terminate(cloud.now)
    return report, assignments
