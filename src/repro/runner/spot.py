"""Spot-market provisioning: run a plan on capacity the market can reclaim.

:class:`SpotAcquisition` is an :class:`~repro.runner.core.AcquisitionPolicy`
that provisions each bin on spot capacity priced by a
:class:`~repro.cloud.spot.SpotMarketBoard`; :class:`SpotProgress` walks
each bin through *segments* — stretches of work on one instance between
interruptions.  An interruption (the per-AZ price crossing the bid, or a
replayed :class:`~repro.chaos.SpotInterruptionTrace` event) delivers the
two-minute warning, checkpoints what fits before it, bills the segment
under the 2010 spot rules (the market-cut trailing partial hour is free),
and asks the :class:`~repro.resilience.spot.SpotLadder` where the work
goes next: a different AZ, a different instance type, the queue, or a
full-rate on-demand instance the market cannot touch.  Escalation is
*preemptive* — checked at every segment boundary against the perfmodel's
predicted remaining work plus the restart-overhead safety buffer.

Billing is inline (per charged spot instance-hour at that hour's market
price; ceil-hour at the on-demand rate for escalated segments), so
:class:`SpotCompletion` deliberately skips the ceil-hour settle the
static policy would add.  Run records carry ``kind="spot"``.

Span/metric taxonomy (extends the ``runner.*`` vocabulary):

==========================================  ================================
``runner.spot.segment`` (span)              one instance's work stretch
``runner.spot.interruption`` (instant)      a reclaim hit a segment
``runner.spot.warning`` (instant)           its two-minute notice
``runner.spot.interruptions`` (counter)     reclaims absorbed, by source
``runner.spot.escalations`` (counter)       on-demand escalations, by reason
``runner.spot.rebids`` (counter)            rung-1 different-AZ re-bids
``runner.spot.retypes`` (counter)           rung-2 instance-type fallbacks
``runner.spot.queued`` (counter)            rung-3 market waits
``runner.spot.saved_seconds`` (histogram)   work a checkpoint preserved
``runner.spot.lost_seconds`` (histogram)    work an interruption destroyed
``runner.spot.discount`` (gauge)            realized cost / pure on-demand
==========================================  ================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.cloud.spot import TWO_MINUTE_WARNING, SpotMarketBoard
from repro.cloud.types import AvailabilityZone, InstanceType
from repro.core.planner import ProvisioningPlan
from repro.resilience.spot import FallbackDecision, SpotFallbackPolicy, SpotLadder
from repro.runner.core import (
    BinGrant,
    BinOutcome,
    CompletionPolicy,
    CoreContext,
    ExecutionCore,
    FleetTimeline,
    StaticCompletion,
)
from repro.runner.execute import ExecutionReport, FailedBin, InstanceRun
from repro.units import ceil_hour_cost, resume_time

if TYPE_CHECKING:  # pragma: no cover
    from repro.capacity import BrokerAcquisition, CapacityOffer
    from repro.chaos import FaultInjector
    from repro.cloud.instance import Instance
    from repro.resilience.launch import ResilientLauncher

__all__ = ["SpotAcquisition", "SpotBinState", "SpotCompletion", "SpotProgress",
           "SpotRunResult", "SpotRunStats", "execute_plan_spot"]


@dataclass
class SpotRunStats:
    """Aggregate spot economics for one run (shared across the policies)."""

    interruptions: int = 0
    escalations: int = 0
    preemptive_escalations: int = 0
    rebids: int = 0
    retypes: int = 0
    queued: int = 0
    queued_seconds: float = 0.0
    saved_seconds: float = 0.0
    lost_seconds: float = 0.0
    spot_cost: float = 0.0
    on_demand_cost: float = 0.0
    #: The counterfactual bill: each bin's first-instance uninterrupted
    #: duration, ceil-hour-priced at the primary type's on-demand rate.
    on_demand_equivalent: float = 0.0

    @property
    def total_cost(self) -> float:
        """Everything the run paid (spot hours + escalated hours)."""
        return self.spot_cost + self.on_demand_cost

    @property
    def discount(self) -> float | None:
        """Realized cost over the pure on-demand counterfactual (<1 = won)."""
        if self.on_demand_equivalent <= 0:
            return None
        return self.total_cost / self.on_demand_equivalent

    def summary(self) -> dict:
        """Headline spot facts in one flat dict (for sweeps and the CLI)."""
        out = {
            "interruptions": self.interruptions,
            "escalations": self.escalations,
            "preemptive_escalations": self.preemptive_escalations,
            "rebids": self.rebids,
            "retypes": self.retypes,
            "queued": self.queued,
            "queued_seconds": round(self.queued_seconds, 1),
            "saved_seconds": round(self.saved_seconds, 1),
            "lost_seconds": round(self.lost_seconds, 1),
            "spot_cost_usd": round(self.spot_cost, 4),
            "on_demand_cost_usd": round(self.on_demand_cost, 4),
            "on_demand_equivalent_usd": round(self.on_demand_equivalent, 4),
        }
        if self.discount is not None:
            out["discount"] = round(self.discount, 4)
        return out


from repro.capacity.brokers import SpotBinState  # noqa: E402  (re-export)


@dataclass
class SpotRunResult:
    """Everything one spot run produced."""

    report: ExecutionReport
    stats: SpotRunStats
    timeline: FleetTimeline = field(default_factory=FleetTimeline)


def _zone_of(cloud: Cloud, name: str) -> AvailabilityZone:
    """Resolve a zone name to the cloud's zone object."""
    for z in cloud.region.zones:
        if z.name == name:
            return z
    raise KeyError(f"no zone {name!r} in region {cloud.region.name}")


def SpotAcquisition(board: SpotMarketBoard, *, ladder: SpotLadder,
                    stats: SpotRunStats | None = None,
                    launcher: "ResilientLauncher | None" = None,
                    escalation=None):
    """Per-bin spot placement with preemptive on-demand starts.

    A factory over a :class:`~repro.capacity.BrokerAcquisition` stacked
    on a :class:`~repro.capacity.SpotBroker`: each occupied bin launches
    into the cheapest zone its bid covers; a bin whose predicted time
    plus the safety buffer already exceeds the plan deadline never
    touches the market (a *preemptive-start* escalation straight into
    the ``escalation`` broker — on-demand by default).  Bins that can
    get no capacity at all are reported as failures, which the
    completion policy's degradation replan re-homes when a ``launcher``
    with a :class:`~repro.resilience.degrade.DegradationPlanner` is
    attached.
    """
    from repro.capacity import BrokerAcquisition, SpotBroker

    broker = SpotBroker(board, ladder,
                        stats=stats if stats is not None else SpotRunStats(),
                        escalation=escalation)
    return BrokerAcquisition(broker, launcher=launcher,
                             replacement_tenant="spot")


class SpotProgress:
    """Walk one bin through interruption-bounded segments.

    Each segment measures the active instance's full-bin time (scaled by
    its type's compute ratio against the primary type the perfmodel
    assumed) and runs ``remaining × t_full`` of it; the next interruption
    is the earlier of the market's bid crossing and any replayed trace
    event in the zone.  Work completed before the two-minute warning is
    checkpointed (when the policy allows); the segment bills under the
    2010 spot rules; the ladder decides the next rung; the loop repeats
    until done, escalated, or out of patience.

    Escalated segments draw from the acquisition broker's ``escalation``
    stack when one is attached (the default
    :class:`~repro.capacity.OnDemandBroker` reproduces the direct
    full-rate launch exactly); a warm-lease escalation hands the segment
    an already-running pooled instance, and completion releases it back
    instead of terminating.
    """

    def __init__(self, board: SpotMarketBoard, ladder: SpotLadder, *,
                 acquisition: "BrokerAcquisition",
                 chaos: "FaultInjector | None" = None,
                 stats: SpotRunStats | None = None) -> None:
        self.board = board
        self.ladder = ladder
        self.acquisition = acquisition
        self.chaos = chaos
        self.stats = stats if stats is not None else SpotRunStats()

    # -- helpers -----------------------------------------------------------

    def _next_segment_instance(self, ctx: CoreContext, idx: int,
                               itype: InstanceType, at: float,
                               est_remaining: float
                               ) -> tuple["Instance", "CapacityOffer | None"]:
        """The next segment's machine, from the escalation broker stack.

        Chaos rejections propagate exactly as the direct
        ``launch_instance`` they replace did; callers decide whether a
        refusal fails the bin.
        """
        broker = getattr(self.acquisition, "broker", None)
        escalate = getattr(broker, "escalation_offer", None)
        if escalate is None:
            return ctx.cloud.launch_instance(itype, wait=False), None
        offer = escalate(ctx.cloud, at=at, predicted=est_remaining,
                         bin_index=idx, itype=itype)
        return offer.instance, offer

    def _measure(self, ctx: CoreContext, active: "Instance",
                 units: list) -> float:
        """Full-bin seconds on ``active``, compute-ratio scaled."""
        p = self.ladder.policy
        t = ctx.svc.run(active, units, ctx.workload, advance_clock=False)
        return t / (active.itype.compute_units / p.itype.compute_units)

    def _next_interruption(self, seg_start: float, zone: str,
                           itype: InstanceType) -> tuple[float, str] | None:
        """Earliest reclaim after ``seg_start``: market crossing or trace."""
        p = self.ladder.policy
        hits: list[tuple[float, str]] = []
        crossing = self.board.next_crossing(zone, after=seg_start, bid=p.bid,
                                            itype=itype)
        if crossing is not None:
            hits.append((crossing.at, "market"))
        if self.chaos is not None and self.chaos.has_spot_interruptions:
            at = self.chaos.next_spot_interruption(zone, seg_start)
            if at is not None:
                hits.append((at, "trace"))
        return min(hits) if hits else None

    def _bill_spot(self, ctx: CoreContext, active: "Instance", zone: str,
                   itype: InstanceType, start: float, end: float, *,
                   interrupted: bool) -> None:
        """Ledger the segment's charged spot hours at their market prices."""
        if not ctx.bill:
            return
        for s, e, price in self.board.bill_segment(zone, start, end,
                                                   itype=itype,
                                                   interrupted=interrupted):
            rec = ctx.cloud.ledger.record(active.instance_id, itype.name,
                                          s, e, price)
            self.stats.spot_cost += rec.cost

    def _bill_on_demand(self, ctx: CoreContext, active: "Instance",
                        itype: InstanceType, start: float,
                        end: float) -> None:
        """Ledger an escalated segment at the full ceil-hour rate."""
        if not ctx.bill:
            return
        rec = ctx.cloud.ledger.record(active.instance_id, itype.name,
                                      start, end, itype.hourly_rate)
        self.stats.on_demand_cost += rec.cost

    # -- the segment loop --------------------------------------------------

    def execute(self, ctx: CoreContext, grant: BinGrant) -> BinOutcome:
        """Run one bin to completion (or failure) across market segments."""
        from repro.chaos import ChaosError

        p = self.ladder.policy
        obs = ctx.obs
        stats = self.stats
        state = self.acquisition.bin_state(grant.index)
        idx, units = grant.index, grant.units
        volume = sum(u.size for u in units)
        work_start = grant.work_start
        deadline = ctx.plan.deadline

        active = grant.instance
        # The offer behind a leased grant: completion must release it to
        # the pool, never terminate or re-bill a manager-owned machine.
        active_offer: "CapacityOffer | None" = None
        if grant.lease is not None:
            bin_offer = getattr(self.acquisition, "bin_offer", None)
            active_offer = (bin_offer(grant.index)
                            if bin_offer is not None else None)
        zone, itype, on_demand = state.zone, state.itype, state.on_demand
        remaining = 1.0          # fraction of the bin still to do
        elapsed = 0.0            # bin-relative seconds (the report duration)
        interruptions = 0
        failed: FailedBin | None = None
        first_full: float | None = None

        while True:
            seg_start = work_start + elapsed
            t_full = self._measure(ctx, active, units)
            if first_full is None:
                first_full = t_full
            seg_need = remaining * t_full
            hit = (None if on_demand
                   else self._next_interruption(seg_start, zone, itype))
            if hit is None or seg_start + seg_need <= hit[0]:
                end = seg_start + seg_need
                leased = (active_offer is not None
                          and active_offer.lease is not None)
                if on_demand:
                    if not leased:  # a leased segment bills with its manager
                        self._bill_on_demand(ctx, active, itype, seg_start,
                                             end)
                else:
                    self._bill_spot(ctx, active, zone, itype, seg_start, end,
                                    interrupted=False)
                if obs.enabled:
                    obs.tracer.add_span(
                        "runner.spot.segment", seg_start, end, cat="runner",
                        track=active.instance_id, bin=idx,
                        market="on-demand" if on_demand else "spot",
                        zone=zone)
                    obs.metrics.counter("runner.tasks.completed",
                                        strategy=ctx.report.strategy).inc()
                    obs.metrics.histogram("runner.task.seconds"
                                          ).observe(seg_need)
                if leased:
                    active_offer.broker.settle(ctx.cloud, active_offer, end)
                else:
                    active.terminate(end)
                elapsed += seg_need
                break

            # -- an interruption lands inside this segment ------------------
            at, source = hit
            warning_at = max(seg_start, at - TWO_MINUTE_WARNING)
            interruptions += 1
            stats.interruptions += 1
            ran = at - seg_start
            if p.checkpoint:
                preserved = min(seg_need, max(0.0, warning_at - seg_start))
                remaining = max(0.0, remaining - preserved / t_full)
                stats.saved_seconds += preserved
                lost = min(seg_need, ran) - preserved
            else:
                # No checkpoints: every interruption restarts from scratch.
                preserved = 0.0
                remaining = 1.0
                lost = min(seg_need, ran)
            stats.lost_seconds += lost
            self._bill_spot(ctx, active, zone, itype, seg_start, at,
                            interrupted=True)
            if self.chaos is not None:
                self.chaos.record_spot_interruption(at, zone, detail=source)
            if obs.enabled:
                obs.tracer.add_span("runner.spot.segment", seg_start, at,
                                    cat="runner", track=active.instance_id,
                                    bin=idx, market="spot", zone=zone,
                                    interrupted=source)
                obs.tracer.instant("runner.spot.warning", cat="runner",
                                   track=active.instance_id, bin=idx,
                                   at=round(warning_at, 1))
                obs.tracer.instant("runner.spot.interruption", cat="runner",
                                   track=active.instance_id, bin=idx,
                                   zone=zone, source=source,
                                   at=round(at, 1))
                obs.metrics.counter("runner.spot.interruptions",
                                    source=source).inc()
                obs.metrics.histogram("runner.spot.saved_seconds"
                                      ).observe(preserved)
                obs.metrics.histogram("runner.spot.lost_seconds"
                                      ).observe(lost)
            active.terminate(at)
            elapsed = at - work_start

            if interruptions >= p.max_interruptions and not p.escalate:
                failed = FailedBin(
                    bin_index=idx, reason="spot-interruptions-exhausted",
                    n_units=len(units), volume=volume, elapsed=elapsed)
                break

            # -- the ladder decides the next rung ---------------------------
            # The perfmodel's prediction, corrected upward by what this
            # segment actually measured (a hidden-slow instance must not
            # talk the escalation check into optimism).
            est_remaining = remaining * max(grant.predicted, t_full)
            decision = self.ladder.decide(
                now=at, zone=zone, remaining_predicted=est_remaining,
                deadline_remaining=deadline - elapsed)
            if (interruptions >= p.max_interruptions
                    and decision.rung not in ("on-demand", "give-up")):
                decision = FallbackDecision("on-demand", itype=p.itype,
                                            resume_at=at)
            if decision.rung == "give-up":
                failed = FailedBin(
                    bin_index=idx, reason="spot-unaffordable",
                    n_units=len(units), volume=volume, elapsed=elapsed)
                break
            self._note_rung(obs, stats, decision)

            # -- acquire the next segment's instance ------------------------
            nxt_offer: "CapacityOffer | None" = None
            if decision.rung == "on-demand":
                on_demand = True
                itype = decision.itype or p.itype
                try:
                    nxt, nxt_offer = self._next_segment_instance(
                        ctx, idx, itype, at, est_remaining)
                except ChaosError as e:
                    failed = FailedBin(
                        bin_index=idx, reason=f"on-demand-refused: {e}",
                        n_units=len(units), volume=volume, elapsed=elapsed)
                    break
                zone = nxt.zone.name
            else:
                zone = decision.zone or zone
                itype = decision.itype or p.itype
                try:
                    nxt = ctx.cloud.launch_instance(
                        itype, _zone_of(ctx.cloud, zone), wait=False)
                except ChaosError as e:
                    if not p.escalate:
                        failed = FailedBin(
                            bin_index=idx, reason=f"launch-rejected: {e}",
                            n_units=len(units), volume=volume,
                            elapsed=elapsed)
                        break
                    on_demand = True
                    itype = p.itype
                    stats.escalations += 1
                    if obs.enabled:
                        obs.metrics.counter("runner.spot.escalations",
                                            reason="launch-rejected").inc()
                    nxt, nxt_offer = self._next_segment_instance(
                        ctx, idx, itype, at, est_remaining)
                    zone = nxt.zone.name
            lease = nxt_offer.lease if nxt_offer is not None else None
            ready = lease.ready_at if lease is not None else nxt.ready_at
            seg_restart = resume_time(decision.resume_at, ready,
                                      p.restart_overhead)
            if lease is None:
                nxt.mark_running(seg_restart)
            stats.queued_seconds += decision.queued_seconds
            elapsed = seg_restart - work_start
            active = nxt
            active_offer = nxt_offer if lease is not None else None
            # loop: measure the new instance, run what remains

        if first_full is not None:
            # The counterfactual: this bin, uninterrupted on its first
            # instance, at the primary type's on-demand ceil-hour rate.
            stats.on_demand_equivalent += ceil_hour_cost(
                first_full, p.itype.hourly_rate)

        if failed is not None:
            if obs.enabled:
                obs.tracer.instant("runner.bin.failed", cat="runner",
                                   track=active.instance_id, bin=idx,
                                   reason=failed.reason)
                obs.metrics.counter("runner.bins.failed",
                                    reason=failed.reason.split(":")[0]).inc()
            return BinOutcome(failure=failed, active=active,
                              duration=elapsed, end=work_start + elapsed)
        run = InstanceRun(
            instance_id=active.instance_id,
            n_units=len(units),
            volume=volume,
            boot_delay=grant.boot_delay,
            duration=elapsed,
            predicted=grant.predicted,
        )
        return BinOutcome(run=run, active=active, duration=elapsed,
                          end=work_start + elapsed)

    def _note_rung(self, obs, stats: SpotRunStats,
                   decision: FallbackDecision) -> None:
        """Count the rung the ladder chose, in stats and metrics."""
        if decision.rung == "rebid-az":
            stats.rebids += 1
            if obs.enabled:
                obs.metrics.counter("runner.spot.rebids").inc()
        elif decision.rung == "retype":
            stats.retypes += 1
            if obs.enabled:
                obs.metrics.counter("runner.spot.retypes").inc()
        elif decision.rung in ("queue", "wait-same-zone"):
            stats.queued += 1
            if obs.enabled:
                obs.metrics.counter("runner.spot.queued",
                                    mode=decision.rung).inc()
        elif decision.rung == "on-demand":
            stats.escalations += 1
            if obs.enabled:
                obs.metrics.counter("runner.spot.escalations",
                                    reason="deadline-risk").inc()


class SpotCompletion(StaticCompletion):
    """Spot wind-down: billing already happened inline, per segment.

    Inherits the static policy's degradation replan (orphaned bins are
    queued for the :class:`~repro.resilience.degrade.DegradationPlanner`
    through the acquisition's ``launcher``) but skips its ceil-hour
    settle — every charged hour was written to the ledger as its segment
    closed.  ``finalize`` terminates any stragglers *before* advancing,
    so a chaos-stepping advance can never double-bill a spot instance at
    the on-demand rate.
    """

    def __init__(self, *, stats: SpotRunStats | None = None) -> None:
        super().__init__(measure_retrieval=False)
        self.stats = stats if stats is not None else SpotRunStats()

    def settle_bin(self, ctx: CoreContext, grant: BinGrant,
                   outcome: BinOutcome) -> None:
        """Record the outcome only — segments billed themselves."""
        CompletionPolicy.settle_bin(self, ctx, grant, outcome)

    def finalize(self, ctx: CoreContext) -> None:
        """Terminate leftovers, advance, emit spot fleet metrics."""
        from repro.cloud.instance import InstanceState

        for g in ctx.grants:
            if g.lease is not None:
                continue  # manager-owned: released back to its warm pool
            if g.instance.state in (InstanceState.PENDING,
                                    InstanceState.RUNNING):
                g.instance.terminate(max(ctx.cloud.now, g.work_start))
        self._advance_to_horizon(ctx)
        self._emit_fleet_metrics(ctx)
        obs = ctx.obs
        if obs.enabled and self.stats.discount is not None:
            obs.metrics.gauge("runner.spot.discount").set(
                round(self.stats.discount, 4))


def execute_plan_spot(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    policy: SpotFallbackPolicy | None = None,
    board: SpotMarketBoard | None = None,
    launcher: "ResilientLauncher | None" = None,
    service: ExecutionService | None = None,
    bill: bool = True,
    label: str = "execute_plan_spot",
) -> SpotRunResult:
    """Run ``plan`` on spot capacity with the full fallback ladder.

    The default ``board`` is forked off the cloud's root stream under the
    ``spot.board`` namespace, so attaching the market leaves every other
    draw (instance quality, boot delays, measurement noise) untouched —
    re-running with the same seed reproduces the identical report, ledger
    and engine clock whether or not other consumers were added since.

    Returns a :class:`SpotRunResult`; ``result.stats.total_cost`` is the
    billing truth (the report's ceil-hour ``cost`` property does not
    apply to per-hour spot pricing — read the cloud ledger instead).
    """
    policy = policy if policy is not None else SpotFallbackPolicy()
    board = board if board is not None else SpotMarketBoard.for_cloud(cloud)
    ladder = SpotLadder(board, policy=policy, chaos=cloud.chaos)
    stats = SpotRunStats()
    acquisition = SpotAcquisition(board, ladder=ladder, stats=stats,
                                  launcher=launcher)
    core = ExecutionCore(
        cloud, workload, plan,
        acquisition=acquisition,
        progress=SpotProgress(board, ladder, acquisition=acquisition,
                              chaos=cloud.chaos, stats=stats),
        completion=SpotCompletion(stats=stats),
        service=service,
        bill=bill,
        label=label,
        record_kind="spot",
    )
    result = core.run()
    return SpotRunResult(report=result.report, stats=stats,
                         timeline=result.timeline)
