"""Execute a provisioning plan on a shared fleet instead of private boots.

``execute_on_fleet`` is the drop-in counterpart of
:func:`~repro.runner.execute.execute_plan` for callers that hold a
:class:`~repro.fleet.lease.LeaseManager`: every bin draws a lease — a
warm-pool hit starts on an already-paid hour with no boot delay — and
releases it when done, so consecutive campaigns (static, dynamic, or
fault-tolerant alike) recycle each other's remainders.

Billing truth differs from the private-boot runner: leased instances are
only billed when the manager retires them, so read campaign costs from
the fleet's :class:`~repro.fleet.report.FleetReport` /
:class:`~repro.cloud.billing.BillingLedger`, not from the returned
report's per-run ceil estimate.
"""

from __future__ import annotations

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import ProvisioningPlan
from repro.fleet.lease import LeaseManager
from repro.runner.execute import ExecutionReport, InstanceRun

__all__ = ["execute_on_fleet"]


def execute_on_fleet(
    leases: LeaseManager,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    tenant: str = "default",
    campaign: str | None = None,
    service: ExecutionService | None = None,
) -> ExecutionReport:
    """Run every occupied bin of ``plan`` on a leased fleet instance.

    Bins execute in parallel from the current simulated time; each
    acquires its own lease (best-fit warm remainder first, cold boot
    otherwise), and the plan is annotated with every bin's lease source.
    The returned report's ``boot_delay`` per run is the full
    submission-to-work latency — zero-ish for warm leases, the boot delay
    for cold ones — so ``missed(deadline, include_boot=True)`` reflects
    what the fleet's user actually waited.  The lease manager keeps the
    instances (pooled) afterwards; call its ``shutdown()`` to settle the
    bill.
    """
    cloud: Cloud = leases.cloud
    svc = service or ExecutionService(cloud)
    obs = cloud.obs
    label = campaign or f"{plan.strategy}-campaign"
    report = ExecutionReport(deadline=plan.deadline,
                             strategy=f"{plan.strategy}+fleet")
    t0 = cloud.now
    runs: list[InstanceRun] = []
    ends: list[float] = []
    for idx, units in enumerate(plan.assignments):
        if not units:
            continue
        predicted = (plan.predicted_times[idx]
                     if idx < len(plan.predicted_times) else 0.0)
        lease = leases.acquire(tenant, est_seconds=predicted, at=t0,
                               campaign=label)
        duration = svc.run(lease.instance, units, workload,
                           advance_clock=False)
        end = lease.ready_at + duration
        leases.release(lease, end)
        plan.annotate_lease(idx, lease.source, lease.lease_id)
        report.rate = lease.instance.itype.hourly_rate
        runs.append(InstanceRun(
            instance_id=lease.instance.instance_id,
            n_units=len(units),
            volume=sum(u.size for u in units),
            boot_delay=lease.ready_at - t0,
            duration=duration,
            predicted=predicted,
        ))
        ends.append(end)
        if obs.enabled:
            obs.tracer.add_span("runner.task.run", lease.ready_at, end,
                                cat="runner", track=lease.instance.instance_id,
                                bin=idx, n_units=len(units),
                                predicted=predicted, tenant=tenant,
                                source=lease.source,
                                strategy=report.strategy)
            obs.metrics.counter("runner.tasks.completed",
                                strategy=report.strategy).inc()
    report.runs = runs
    if ends:
        horizon = max(ends)
        if horizon > cloud.now:
            cloud.advance(horizon - cloud.now)
    if obs.enabled:
        obs.metrics.gauge("runner.deadline.margin", strategy=report.strategy
                          ).set(report.deadline - report.makespan)
        if report.n_missed:
            obs.metrics.counter("runner.deadline.misses",
                                strategy=report.strategy).inc(report.n_missed)
    return report
