"""Execute a provisioning plan on a shared fleet instead of private boots.

``execute_on_fleet`` is the drop-in counterpart of
:func:`~repro.runner.execute.execute_plan` for callers that hold a
:class:`~repro.fleet.lease.LeaseManager`: every bin draws a lease — a
warm-pool hit starts on an already-paid hour with no boot delay — and
releases it when done, so consecutive campaigns (static, dynamic, or
fault-tolerant alike) recycle each other's remainders.

Billing truth differs from the private-boot runner: leased instances are
only billed when the manager retires them, so read campaign costs from
the fleet's :class:`~repro.fleet.report.FleetReport` /
:class:`~repro.cloud.billing.BillingLedger`, not from the returned
report's per-run ceil estimate.
"""

from __future__ import annotations

from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import ProvisioningPlan
from repro.fleet.lease import LeaseManager
from repro.runner.execute import ExecutionReport

__all__ = ["execute_on_fleet"]


def execute_on_fleet(
    leases: LeaseManager,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    tenant: str = "default",
    campaign: str | None = None,
    service: ExecutionService | None = None,
) -> ExecutionReport:
    """Run every occupied bin of ``plan`` on a leased fleet instance.

    Bins execute in parallel from the current simulated time; each
    acquires its own lease (best-fit warm remainder first, cold boot
    otherwise), and the plan is annotated with every bin's lease source.
    The returned report's ``boot_delay`` per run is the full
    submission-to-work latency — zero-ish for warm leases, the boot delay
    for cold ones — so ``missed(deadline, include_boot=True)`` reflects
    what the fleet's user actually waited.  The lease manager keeps the
    instances (pooled) afterwards; call its ``shutdown()`` to settle the
    bill.
    """
    from repro.runner.core import (
        ExecutionCore,
        LeaseAcquisition,
        LeaseCompletion,
        RunToCompletion,
    )

    core = ExecutionCore(
        leases.cloud, workload, plan,
        acquisition=LeaseAcquisition(
            leases, tenant=tenant,
            campaign=campaign or f"{plan.strategy}-campaign"),
        progress=RunToCompletion(),
        completion=LeaseCompletion(leases),
        service=service,
        strategy=f"{plan.strategy}+fleet",
        label="execute_on_fleet",
    )
    return core.run().report
