"""Columnar plan execution: one engine event advances N instances.

The scalar runners schedule one completion event per bin — fine at 64
instances, hopeless at 100k.  This runner applies the PR-1 reshaping move
to fleet *state*: the fleet is an :class:`~repro.cloud.instance.InstanceColumn`
(parallel numpy arrays of boot delays and hidden factors), reference work
per bin is a numpy vector, and the whole campaign is exactly **two**
engine events —

1. ``column-ready`` at the fleet boot barrier: marks the column RUNNING
   and computes every member's measured duration in one vectorized
   :meth:`~repro.cloud.service.ExecutionService.run_column` call;
2. ``column-complete`` at the makespan: bulk-fills the
   :class:`~repro.runner.core.FleetTimeline` (one ``argsort`` instead of
   N callbacks), retires the column and writes one aggregate
   :class:`~repro.cloud.billing.ColumnUsage` ledger record.

Determinism: everything descends from ``column.*`` / ``exec.column.*``
RNG forks — namespaces the scalar path never touches — so columnar runs
are reproducible per seed *and* adding them to a campaign leaves every
scalar runner's draws byte-identical.  They are not draw-identical to N
scalar launches (different fork shapes, by design); the scalar-vs-columnar
contract is semantic, pinned by ``tests/test_columnar.py``: identical
duration composition given identical hidden state, identical ceil-hour
billing arithmetic, identical timeline ordering.

Scalar-path nuance that does **not** exist here, by design: per-instance
chaos faults, EBS placement factors, straggler/crash recovery.  Columnar
fleets model the homogeneous happy path whose cost is pure scale — the
regime where the paper's 100k-fleet questions live.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cloud.billing import ColumnUsage
from repro.cloud.cluster import Cloud
from repro.cloud.instance import InstanceColumn
from repro.cloud.service import ExecutionService, Workload
from repro.cloud.types import SMALL, InstanceType
from repro.core.planner import ProvisioningPlan
from repro.obs.ledger import (
    RunRecord,
    encode_metrics_dump,
    get_run_ledger,
    span_rollup,
)
from repro.runner.core import FleetTimeline

__all__ = ["ColumnarReport", "execute_plan_columnar", "execute_uniform_fleet"]


@dataclass
class ColumnarReport:
    """Outcome of one columnar fleet run.

    The vector analogue of :class:`~repro.runner.execute.ExecutionReport`:
    per-member durations stay a numpy array instead of ``InstanceRun``
    objects, and billing is the single aggregate ledger record.
    """

    column_id: str
    deadline: float
    work_start: float             # the fleet boot barrier (absolute)
    durations: np.ndarray         # measured processing seconds per member
    ends: np.ndarray              # absolute completion times per member
    timeline: FleetTimeline = field(default_factory=FleetTimeline)
    billing: ColumnUsage | None = None

    @property
    def n_instances(self) -> int:
        return int(self.durations.size)

    @property
    def makespan(self) -> float:
        return float(self.durations.max()) if self.durations.size else 0.0

    @property
    def n_missed(self) -> int:
        """Members whose processing time exceeded the deadline."""
        return int((self.durations > self.deadline).sum())

    @property
    def instance_hours(self) -> int:
        return self.billing.hours if self.billing is not None else 0

    @property
    def cost(self) -> float:
        return self.billing.cost if self.billing is not None else 0.0


def _reference_vectors(workload: Workload,
                       plan: ProvisioningPlan) -> tuple[list, np.ndarray, np.ndarray]:
    """Per-occupied-bin reference (io, cpu) seconds from the ground truth."""
    from repro.apps.base import as_unit_meta

    occupied = [(i, units) for i, units in enumerate(plan.assignments) if units]
    io_ref = np.empty(len(occupied))
    cpu_ref = np.empty(len(occupied))
    for row, (_, units) in enumerate(occupied):
        meta = [as_unit_meta(u) for u in units]
        work = workload.app.estimate_work(meta)
        b = workload.profile.breakdown(meta, matches=work.matches)
        io_ref[row] = b.io
        cpu_ref[row] = b.cpu
    return occupied, io_ref, cpu_ref


def _execute_column(
    cloud: Cloud,
    workload: Workload,
    column: InstanceColumn,
    io_ref: np.ndarray,
    cpu_ref: np.ndarray,
    *,
    deadline: float,
    service: ExecutionService | None,
    bill: bool,
    label: str = "columnar",
) -> ColumnarReport:
    """Drive one column through its two engine events; return the report."""
    svc = service or ExecutionService(cloud)
    engine = cloud.engine
    wall0 = time.perf_counter()
    sim0, fired0 = engine.now, engine.events_fired
    report = ColumnarReport(
        column_id=column.column_id, deadline=deadline,
        work_start=column.barrier,
        durations=np.empty(0), ends=np.empty(0),
    )

    def column_ready() -> None:
        column.mark_running_all(engine.now)
        durations = svc.run_column(column, workload, io_ref, cpu_ref)
        report.work_start = engine.now
        report.durations = durations
        report.ends = engine.now + durations
        engine.schedule_at(float(report.ends.max()), column_complete,
                           label=f"column-complete:{column.column_id}")

    def column_complete() -> None:
        # Bulk timeline fill: the argsort is the N completion callbacks
        # of the scalar runners collapsed into one event.  Ties keep
        # member order (stable sort), matching scalar (time, seq) order.
        ends = report.ends
        order = np.argsort(ends, kind="stable")
        n = ends.size
        record = report.timeline.record
        for rank, i in enumerate(order):
            record(float(ends[i]), n - rank - 1, rank + 1)
        if bill:
            report.billing = cloud.terminate_column(column, ends)
        else:
            column.terminate_all(ends)

    engine.schedule_at(column.barrier, column_ready,
                       label=f"column-ready:{column.column_id}")
    engine.run(until=column.barrier)
    if report.ends.size:
        engine.run(until=float(report.ends.max()))
    ledger = get_run_ledger()
    if ledger is not None:
        obs = cloud.obs
        wall_s = time.perf_counter() - wall0
        fired = engine.events_fired - fired0
        n = report.n_instances
        ledger.append(RunRecord(
            kind="columnar",
            label=label,
            config={
                "seed": getattr(cloud.rng, "seed", None),
                "scheduler": engine.scheduler,
                "instances": n,
                "itype": column.itype.name,
                "bill": bill,
            },
            metrics=(encode_metrics_dump(obs.metrics.dump())
                     if obs.metrics.enabled else []),
            spans=span_rollup(obs.tracer) if obs.tracer.enabled else {},
            billing=cloud.ledger.summary(),
            deadline={
                "deadline_s": deadline,
                "makespan_s": report.makespan,
                "margin_s": deadline - report.makespan,
                "missed": report.n_missed,
                "bins": n,
                "miss_rate": (report.n_missed / n) if n else 0.0,
            },
            profile={
                "wall_s": wall_s,
                "sim_start": sim0,
                "sim_end": engine.now,
                "sim_s": engine.now - sim0,
                "events_fired": fired,
                "events_per_s": fired / wall_s if wall_s > 0 else 0.0,
            },
        ))
    return report


def execute_plan_columnar(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    itype: InstanceType = SMALL,
    service: ExecutionService | None = None,
    bill: bool = True,
) -> ColumnarReport:
    """Run a provisioning plan with one column instead of per-bin instances.

    One column member per occupied bin; reference breakdowns come from the
    same ground-truth profile the scalar runners charge, so per-member
    durations have the identical composition (setup + io/io_factor +
    cpu/cpu_factor, noised) over columnar-drawn hidden state.
    """
    occupied, io_ref, cpu_ref = _reference_vectors(workload, plan)
    if not occupied:
        return ColumnarReport(column_id="c-empty", deadline=plan.deadline,
                              work_start=cloud.now,
                              durations=np.empty(0), ends=np.empty(0))
    column = cloud.launch_column(len(occupied), itype=itype)
    return _execute_column(cloud, workload, column, io_ref, cpu_ref,
                           deadline=plan.deadline, service=service, bill=bill,
                           label="execute_plan_columnar")


def execute_uniform_fleet(
    cloud: Cloud,
    workload: Workload,
    n_instances: int,
    units: list,
    *,
    deadline: float = float("inf"),
    itype: InstanceType = SMALL,
    service: ExecutionService | None = None,
    bill: bool = True,
) -> ColumnarReport:
    """Run ``n_instances`` members over one shared bin of ``units``.

    The homogeneous-fleet fast path: the reference breakdown is computed
    once and broadcast, so cost is O(n) numpy work — this is what the
    100k-instance bench drives.
    """
    from repro.apps.base import as_unit_meta

    if n_instances <= 0:
        raise ValueError(f"fleet size must be positive, got {n_instances}")
    meta = [as_unit_meta(u) for u in units]
    work = workload.app.estimate_work(meta)
    b = workload.profile.breakdown(meta, matches=work.matches)
    io_ref = np.full(n_instances, b.io)
    cpu_ref = np.full(n_instances, b.cpu)
    column = cloud.launch_column(n_instances, itype=itype)
    return _execute_column(cloud, workload, column, io_ref, cpu_ref,
                           deadline=deadline, service=service, bill=bill,
                           label="execute_uniform_fleet")
