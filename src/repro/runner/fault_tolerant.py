"""Fault-tolerant plan execution: crash detection and work reassignment.

Implements the §7 recovery loop against injected hardware failures
(:mod:`repro.cloud.failures`): each instance processes its bin in unit
batches; a crash mid-batch loses that batch's progress, the monitor
notices after a detection timeout, and a replacement instance (EBS
re-attach, no data copy) redoes the lost batch and continues.  Every
instance that ran — including crashed ones — bills its ceil-hours.

The recovery loop itself is :class:`~repro.runner.core.CrashProgress`
inside the shared :class:`~repro.runner.core.ExecutionCore`; this module
owns the policy knobs and the entry-point signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import ProvisioningPlan
from repro.runner.core import CrashEvent  # noqa: F401  (re-export)
from repro.runner.execute import ExecutionReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.lease import LeaseManager
    from repro.resilience.launch import ResilientLauncher

__all__ = ["FaultPolicy", "CrashEvent", "execute_fault_tolerant"]


@dataclass(frozen=True)
class FaultPolicy:
    """Recovery parameters.

    ``batch_units`` bounds how much progress one crash can destroy;
    ``detection_timeout`` is how long an unresponsive instance sits before
    the monitor "force[s] their termination" (§7); ``replacement_penalty``
    covers the fresh boot + EBS attach (§3.1's ~3 minutes);
    ``max_crashes_per_bin`` guards against a pathological cloud:
    ``on_exhaustion`` decides whether hitting it reports the bin as
    failed — hours already billed, completed units counted — and moves
    on (``"fail-bin"``, the default), or raises as the legacy behaviour
    did (``"raise"``).  Failing one bin loudly beats folding the whole
    campaign: the other bins' work and bills are still real.
    """

    batch_units: int = 25
    detection_timeout: float = 60.0
    replacement_penalty: float = 180.0
    max_crashes_per_bin: int = 8
    on_exhaustion: str = "fail-bin"
    #: EBS re-attach seconds when the replacement comes from a warm-pool
    #: lease (see ``execute_fault_tolerant``'s ``lease_manager``): the
    #: instance is already booted inside a paid hour, so only the volume
    #: move is paid (vs ``replacement_penalty`` ≈ boot + attach).
    attach_penalty: float = 30.0

    def __post_init__(self) -> None:
        if self.batch_units < 1:
            raise ValueError("batch_units must be >= 1")
        if self.detection_timeout < 0 or self.replacement_penalty < 0:
            raise ValueError("timeouts must be non-negative")
        if self.max_crashes_per_bin < 1:
            raise ValueError("max_crashes_per_bin must be >= 1")
        if self.on_exhaustion not in ("fail-bin", "raise"):
            raise ValueError("on_exhaustion must be 'fail-bin' or 'raise'")
        if self.attach_penalty < 0:
            raise ValueError("attach penalty must be non-negative")


def execute_fault_tolerant(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    policy: FaultPolicy | None = None,
    service: ExecutionService | None = None,
    launcher: "ResilientLauncher | None" = None,
    lease_manager: "LeaseManager | None" = None,
) -> tuple[ExecutionReport, list[CrashEvent]]:
    """Run a plan to completion despite instance crashes.

    Guarantees: every unit is processed exactly once by a surviving
    instance (lost batches are redone in full), and the report's durations
    include crash detection and replacement penalties.  A bin that cannot
    be completed (crashes exhausted, or no instance obtainable under
    chaos) is reported in ``report.failures`` with its billed hours and
    completed-unit count rather than aborting the whole campaign.

    With a ``lease_manager``, replacements draw from the shared fleet:
    a warm-pool lease pays only ``policy.attach_penalty`` (no fresh boot)
    and is billed by the manager at retirement rather than by this
    runner.  Without one, replacements boot privately at
    ``policy.replacement_penalty`` exactly as before.
    """
    from repro.runner.core import (
        CrashCompletion,
        CrashProgress,
        ExecutionCore,
        FleetLaunchAcquisition,
    )

    core = ExecutionCore(
        cloud, workload, plan,
        acquisition=FleetLaunchAcquisition(
            launcher=launcher, lease_manager=lease_manager,
            replacement_tenant="fault-tolerant"),
        progress=CrashProgress(policy or FaultPolicy()),
        completion=CrashCompletion(lease_manager=lease_manager),
        service=service,
        strategy=f"{plan.strategy}+fault-tolerant",
        label="execute_fault_tolerant",
    )
    result = core.run()
    return result.report, result.events
