"""Fault-tolerant plan execution: crash detection and work reassignment.

Implements the §7 recovery loop against injected hardware failures
(:mod:`repro.cloud.failures`): each instance processes its bin in unit
batches; a crash mid-batch loses that batch's progress, the monitor
notices after a detection timeout, and a replacement instance (EBS
re-attach, no data copy) redoes the lost batch and continues.  Every
instance that ran — including crashed ones — bills its ceil-hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import ProvisioningPlan
from repro.runner.execute import ExecutionReport, FailedBin, InstanceRun

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.launch import ResilientLauncher

__all__ = ["FaultPolicy", "CrashEvent", "execute_fault_tolerant"]


@dataclass(frozen=True)
class FaultPolicy:
    """Recovery parameters.

    ``batch_units`` bounds how much progress one crash can destroy;
    ``detection_timeout`` is how long an unresponsive instance sits before
    the monitor "force[s] their termination" (§7); ``replacement_penalty``
    covers the fresh boot + EBS attach (§3.1's ~3 minutes);
    ``max_crashes_per_bin`` guards against a pathological cloud:
    ``on_exhaustion`` decides whether hitting it reports the bin as
    failed — hours already billed, completed units counted — and moves
    on (``"fail-bin"``, the default), or raises as the legacy behaviour
    did (``"raise"``).  Failing one bin loudly beats folding the whole
    campaign: the other bins' work and bills are still real.
    """

    batch_units: int = 25
    detection_timeout: float = 60.0
    replacement_penalty: float = 180.0
    max_crashes_per_bin: int = 8
    on_exhaustion: str = "fail-bin"

    def __post_init__(self) -> None:
        if self.batch_units < 1:
            raise ValueError("batch_units must be >= 1")
        if self.detection_timeout < 0 or self.replacement_penalty < 0:
            raise ValueError("timeouts must be non-negative")
        if self.max_crashes_per_bin < 1:
            raise ValueError("max_crashes_per_bin must be >= 1")
        if self.on_exhaustion not in ("fail-bin", "raise"):
            raise ValueError("on_exhaustion must be 'fail-bin' or 'raise'")


@dataclass(frozen=True)
class CrashEvent:
    bin_index: int
    instance_id: str
    at_elapsed: float          # seconds into the bin's work
    lost_batch_units: int


@dataclass
class _BinState:
    elapsed: float = 0.0
    crashes: int = 0


def execute_fault_tolerant(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    policy: FaultPolicy | None = None,
    service: ExecutionService | None = None,
    launcher: "ResilientLauncher | None" = None,
) -> tuple[ExecutionReport, list[CrashEvent]]:
    """Run a plan to completion despite instance crashes.

    Guarantees: every unit is processed exactly once by a surviving
    instance (lost batches are redone in full), and the report's durations
    include crash detection and replacement penalties.  A bin that cannot
    be completed (crashes exhausted, or no instance obtainable under
    chaos) is reported in ``report.failures`` with its billed hours and
    completed-unit count rather than aborting the whole campaign.
    """
    from repro.chaos import ChaosError
    from repro.resilience.launch import CapacityError, acquire_replacement, launch_fleet

    policy = policy or FaultPolicy()
    svc = service or ExecutionService(cloud)
    obs = cloud.obs
    report = ExecutionReport(deadline=plan.deadline,
                             strategy=f"{plan.strategy}+fault-tolerant")
    events: list[CrashEvent] = []

    occupied = [(i, list(units)) for i, units in enumerate(plan.assignments) if units]
    by_index = dict(occupied)
    granted, failed_launches = launch_fleet(cloud, [i for i, _ in occupied],
                                            launcher=launcher)
    for idx, reason in failed_launches:
        units = by_index[idx]
        report.failures.append(FailedBin(
            bin_index=idx, reason=reason, n_units=len(units),
            volume=sum(u.size for u in units)))
    instances = [inst for _, inst, _ in granted]
    if instances:
        latest = max(inst.ready_at + wait for _, inst, wait in granted)
        if latest > cloud.now:
            cloud.advance(latest - cloud.now)
        for inst in instances:
            inst.mark_running(cloud.now)
        report.rate = instances[0].itype.hourly_rate
    work_start = cloud.now

    runs: list[InstanceRun] = []
    for idx, inst, launch_wait in granted:
        units = by_index[idx]
        state = _BinState()
        active = inst
        active_started = 0.0  # elapsed at which `active` began working
        bin_billed_hours = 0  # hours already billed to crashed instances
        failed_bin: FailedBin | None = None
        batches = [units[i:i + policy.batch_units]
                   for i in range(0, len(units), policy.batch_units)]
        b = 0
        while b < len(batches):
            batch = batches[b]
            t_batch = svc.run(active, batch, workload, advance_clock=False)
            ttf = active.time_to_failure
            survives = (ttf is None
                        or state.elapsed - active_started + t_batch <= ttf)
            if survives:
                if obs.enabled:
                    obs.tracer.add_span(
                        "runner.batch.run", work_start + state.elapsed,
                        work_start + state.elapsed + t_batch, cat="runner",
                        track=active.instance_id, bin=idx, batch=b,
                        units=len(batch))
                    obs.metrics.counter("runner.batches.completed").inc()
                state.elapsed += t_batch
                b += 1
                continue
            # Crash mid-batch: progress of this batch is lost.
            state.crashes += 1
            crash_elapsed = active_started + (ttf or 0.0)
            if state.crashes > policy.max_crashes_per_bin:
                if policy.on_exhaustion == "raise":
                    raise RuntimeError(
                        f"bin {idx}: more than {policy.max_crashes_per_bin} "
                        "crashes; the cloud is unusable")
                # Report the bin as failed: the hours are billed, the
                # completed units counted, and the campaign continues.
                active.fail(cloud.now)
                rec = cloud.ledger.record(active.instance_id,
                                          active.itype.name,
                                          work_start + active_started,
                                          work_start + crash_elapsed,
                                          active.itype.hourly_rate)
                bin_billed_hours += rec.hours
                completed = sum(len(batches[i]) for i in range(b))
                failed_bin = FailedBin(
                    bin_index=idx, reason="crash-exhausted",
                    n_units=len(units),
                    volume=sum(u.size for u in units),
                    completed_units=completed,
                    elapsed=crash_elapsed + policy.detection_timeout,
                    billed_hours=bin_billed_hours)
                if obs.enabled:
                    obs.tracer.instant("runner.bin.failed", cat="runner",
                                       track=active.instance_id, bin=idx,
                                       crashes=state.crashes,
                                       completed_units=completed)
                    obs.metrics.counter("runner.bins.failed",
                                        reason="crash-exhausted").inc()
                break
            events.append(CrashEvent(
                bin_index=idx,
                instance_id=active.instance_id,
                at_elapsed=crash_elapsed,
                lost_batch_units=len(batch),
            ))
            if obs.enabled:
                obs.tracer.instant("runner.crash.detected", cat="runner",
                                   track=active.instance_id, bin=idx,
                                   lost_units=len(batch))
                obs.tracer.add_span(
                    "runner.crash.recovery", work_start + crash_elapsed,
                    work_start + crash_elapsed + policy.detection_timeout
                    + policy.replacement_penalty, cat="runner",
                    track=active.instance_id, bin=idx)
                obs.metrics.counter("runner.crashes.detected").inc()
                obs.metrics.counter("runner.units.requeued").inc(len(batch))
            state.elapsed = crash_elapsed + policy.detection_timeout
            # Bill the crashed instance for the hours it actually ran (the
            # runner tracks per-bin wall time off the global clock, so the
            # ledger entry is written explicitly rather than via
            # ``cloud.fail_instance``).
            active.fail(cloud.now)
            rec = cloud.ledger.record(active.instance_id, active.itype.name,
                                      work_start + active_started,
                                      work_start + crash_elapsed,
                                      active.itype.hourly_rate)
            bin_billed_hours += rec.hours
            try:
                active, _, penalty = acquire_replacement(
                    cloud, at=work_start + state.elapsed, launcher=launcher,
                    boot_attach_penalty=policy.replacement_penalty)
            except (ChaosError, CapacityError) as e:
                completed = sum(len(batches[i]) for i in range(b))
                failed_bin = FailedBin(
                    bin_index=idx,
                    reason=f"replacement-failed: {e}",
                    n_units=len(units),
                    volume=sum(u.size for u in units),
                    completed_units=completed,
                    elapsed=state.elapsed,
                    billed_hours=bin_billed_hours)
                if obs.enabled:
                    obs.metrics.counter("runner.bins.failed",
                                        reason="replacement-failed").inc()
                break
            state.elapsed += penalty
            active_started = state.elapsed
            # loop re-runs batch ``b`` on the replacement

        if failed_bin is not None:
            report.failures.append(failed_bin)
            continue
        runs.append(InstanceRun(
            instance_id=active.instance_id,
            n_units=len(units),
            volume=sum(u.size for u in units),
            boot_delay=launch_wait + inst.boot_delay,
            duration=state.elapsed,
            predicted=plan.predicted_times[idx]
            if idx < len(plan.predicted_times) else 0.0,
        ))
        cloud.ledger.record(active.instance_id, active.itype.name,
                            work_start, work_start + state.elapsed,
                            active.itype.hourly_rate)

    report.runs = runs
    if runs:
        cloud.advance(max(r.duration for r in runs))
    for inst in cloud.running_instances():
        inst.terminate(cloud.now)
    if obs.enabled:
        obs.metrics.gauge("runner.deadline.margin", strategy=report.strategy
                          ).set(report.deadline - report.makespan)
    return report, events
