"""Execute a provisioning plan: parallel instances, per-instance timing.

Instances work independently; the report gives per-instance execution
times (what Figs. 8–9 plot against the deadline line), the makespan, and
the ceil-hour instance bill.  Instance launches and per-run measurement
noise come from the cloud's deterministic streams.

This module owns the result shapes every runner shares
(:class:`InstanceRun`, :class:`FailedBin`, :class:`ExecutionReport`); the
execution loop itself lives in :mod:`repro.runner.core`, and
:func:`execute_plan` is one policy configuration of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import ProvisioningPlan
from repro.units import billed_hours

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.launch import ResilientLauncher

__all__ = ["InstanceRun", "FailedBin", "ExecutionReport", "execute_plan"]


@dataclass(frozen=True)
class InstanceRun:
    """One instance's share of the plan."""

    instance_id: str
    n_units: int
    volume: int
    boot_delay: float
    duration: float               # measured processing seconds
    predicted: float              # what the model expected

    @property
    def billed_hours(self) -> int:
        return billed_hours(self.duration)

    def missed(self, deadline: float, *, include_boot: bool = False) -> bool:
        """Did this instance exceed the deadline?"""
        t = self.duration + (self.boot_delay if include_boot else 0.0)
        return t > deadline


@dataclass(frozen=True)
class FailedBin:
    """A bin whose work did not complete — reported, never silently lost.

    ``absorbed`` marks bins whose units were re-homed onto surviving
    instances by a degradation replan; their failure cost shows up in the
    survivors' durations instead of as missing work.
    """

    bin_index: int
    reason: str
    n_units: int = 0
    volume: int = 0
    completed_units: int = 0
    elapsed: float = 0.0
    billed_hours: int = 0
    absorbed: bool = False


@dataclass
class ExecutionReport:
    """Outcome of running a plan."""

    deadline: float
    strategy: str
    runs: list[InstanceRun] = field(default_factory=list)
    rate: float = 0.085
    #: seconds to fetch all result objects from S3 (None = not measured);
    #: the §1 claim is that reshaping shrinks this by merging outputs.
    retrieval_seconds: float | None = None
    #: bins whose work failed outright (launch refused, crashes
    #: exhausted); empty on any healthy run, so legacy callers see the
    #: exact report they always did.
    failures: list[FailedBin] = field(default_factory=list)

    @property
    def n_instances(self) -> int:
        return len(self.runs)

    @property
    def makespan(self) -> float:
        return max((r.duration for r in self.runs), default=0.0)

    @property
    def instance_hours(self) -> int:
        return sum(r.billed_hours for r in self.runs)

    @property
    def cost(self) -> float:
        return self.instance_hours * self.rate

    @property
    def n_missed(self) -> int:
        return sum(1 for r in self.runs if r.missed(self.deadline))

    @property
    def n_failed(self) -> int:
        """Bins whose work never completed (and was not absorbed)."""
        return sum(1 for f in self.failures if not f.absorbed)

    @property
    def met_deadline(self) -> bool:
        return self.n_missed == 0 and self.n_failed == 0

    def summary(self) -> dict:
        """Headline execution facts in one flat dict."""
        out = {
            "strategy": self.strategy,
            "instances": self.n_instances,
            "makespan_s": round(self.makespan, 1),
            "deadline_s": self.deadline,
            "missed": self.n_missed,
            "instance_hours": self.instance_hours,
            "cost_usd": round(self.cost, 4),
        }
        if self.failures:
            out["failed_bins"] = self.n_failed
            out["absorbed_bins"] = len(self.failures) - self.n_failed
        return out


def execute_plan(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    service: ExecutionService | None = None,
    bill: bool = True,
    measure_retrieval: bool = False,
    launcher: "ResilientLauncher | None" = None,
) -> ExecutionReport:
    """Run every assignment of ``plan`` on its own fresh instance.

    Instances execute in parallel, so per-instance durations are measured
    against a common start (``advance_clock=False``); the global clock and
    ledger are updated once at the end.  "We assume all instances are
    uniform and performing well" is §5's *planner* assumption — the cloud
    underneath still deals heterogeneous instances, which is exactly how
    the paper comes to miss its 100 GB prediction by ~30 % (Fig. 6).

    With chaos installed on the cloud, launches may fail; a ``launcher``
    absorbs those faults (retry/steer/hedge).  Bins that still cannot get
    an instance are reported in ``report.failures`` — and, when the
    launcher carries a :class:`~repro.resilience.degrade.DegradationPlanner`,
    their units are re-packed onto the surviving bins instead of dropped.
    """
    from repro.runner.core import (
        ExecutionCore,
        FleetLaunchAcquisition,
        RunToCompletion,
        StaticCompletion,
    )

    core = ExecutionCore(
        cloud, workload, plan,
        acquisition=FleetLaunchAcquisition(launcher=launcher),
        progress=RunToCompletion(),
        completion=StaticCompletion(measure_retrieval=measure_retrieval),
        service=service,
        bill=bill,
        label="execute_plan",
    )
    return core.run().report
