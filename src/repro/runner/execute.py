"""Execute a provisioning plan: parallel instances, per-instance timing.

Instances work independently; the report gives per-instance execution
times (what Figs. 8–9 plot against the deadline line), the makespan, and
the ceil-hour instance bill.  Instance launches and per-run measurement
noise come from the cloud's deterministic streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import ProvisioningPlan
from repro.units import HOUR

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.launch import ResilientLauncher

__all__ = ["InstanceRun", "FailedBin", "ExecutionReport", "execute_plan"]


@dataclass(frozen=True)
class InstanceRun:
    """One instance's share of the plan."""

    instance_id: str
    n_units: int
    volume: int
    boot_delay: float
    duration: float               # measured processing seconds
    predicted: float              # what the model expected

    @property
    def billed_hours(self) -> int:
        return max(1, math.ceil(self.duration / HOUR))

    def missed(self, deadline: float, *, include_boot: bool = False) -> bool:
        """Did this instance exceed the deadline?"""
        t = self.duration + (self.boot_delay if include_boot else 0.0)
        return t > deadline


@dataclass(frozen=True)
class FailedBin:
    """A bin whose work did not complete — reported, never silently lost.

    ``absorbed`` marks bins whose units were re-homed onto surviving
    instances by a degradation replan; their failure cost shows up in the
    survivors' durations instead of as missing work.
    """

    bin_index: int
    reason: str
    n_units: int = 0
    volume: int = 0
    completed_units: int = 0
    elapsed: float = 0.0
    billed_hours: int = 0
    absorbed: bool = False


@dataclass
class ExecutionReport:
    """Outcome of running a plan."""

    deadline: float
    strategy: str
    runs: list[InstanceRun] = field(default_factory=list)
    rate: float = 0.085
    #: seconds to fetch all result objects from S3 (None = not measured);
    #: the §1 claim is that reshaping shrinks this by merging outputs.
    retrieval_seconds: float | None = None
    #: bins whose work failed outright (launch refused, crashes
    #: exhausted); empty on any healthy run, so legacy callers see the
    #: exact report they always did.
    failures: list[FailedBin] = field(default_factory=list)

    @property
    def n_instances(self) -> int:
        return len(self.runs)

    @property
    def makespan(self) -> float:
        return max((r.duration for r in self.runs), default=0.0)

    @property
    def instance_hours(self) -> int:
        return sum(r.billed_hours for r in self.runs)

    @property
    def cost(self) -> float:
        return self.instance_hours * self.rate

    @property
    def n_missed(self) -> int:
        return sum(1 for r in self.runs if r.missed(self.deadline))

    @property
    def n_failed(self) -> int:
        """Bins whose work never completed (and was not absorbed)."""
        return sum(1 for f in self.failures if not f.absorbed)

    @property
    def met_deadline(self) -> bool:
        return self.n_missed == 0 and self.n_failed == 0

    def summary(self) -> dict:
        """Headline execution facts in one flat dict."""
        out = {
            "strategy": self.strategy,
            "instances": self.n_instances,
            "makespan_s": round(self.makespan, 1),
            "deadline_s": self.deadline,
            "missed": self.n_missed,
            "instance_hours": self.instance_hours,
            "cost_usd": round(self.cost, 4),
        }
        if self.failures:
            out["failed_bins"] = self.n_failed
            out["absorbed_bins"] = len(self.failures) - self.n_failed
        return out


def execute_plan(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    service: ExecutionService | None = None,
    bill: bool = True,
    measure_retrieval: bool = False,
    launcher: "ResilientLauncher | None" = None,
) -> ExecutionReport:
    """Run every assignment of ``plan`` on its own fresh instance.

    Instances execute in parallel, so per-instance durations are measured
    against a common start (``advance_clock=False``); the global clock and
    ledger are updated once at the end.  "We assume all instances are
    uniform and performing well" is §5's *planner* assumption — the cloud
    underneath still deals heterogeneous instances, which is exactly how
    the paper comes to miss its 100 GB prediction by ~30 % (Fig. 6).

    With chaos installed on the cloud, launches may fail; a ``launcher``
    absorbs those faults (retry/steer/hedge).  Bins that still cannot get
    an instance are reported in ``report.failures`` — and, when the
    launcher carries a :class:`~repro.resilience.degrade.DegradationPlanner`,
    their units are re-packed onto the surviving bins instead of dropped.
    """
    from repro.resilience.launch import launch_fleet

    svc = service or ExecutionService(cloud)
    obs = cloud.obs
    report = ExecutionReport(deadline=plan.deadline, strategy=plan.strategy)
    occupied = [(i, list(units)) for i, units in enumerate(plan.assignments) if units]
    by_index = dict(occupied)

    # All instances are requested together and boot in parallel.
    granted, failed = launch_fleet(cloud, [i for i, _ in occupied],
                                   launcher=launcher)
    for idx, reason in failed:
        units = by_index[idx]
        report.failures.append(FailedBin(
            bin_index=idx, reason=reason, n_units=len(units),
            volume=sum(u.size for u in units)))

    predicted_by_index = {
        idx: (plan.predicted_times[idx] if idx < len(plan.predicted_times)
              else 0.0)
        for idx, _ in occupied
    }
    if (failed and granted and launcher is not None
            and launcher.degradation is not None):
        # Graceful degradation: spread the orphaned units over the bins
        # that did get instances, scaling their predicted times so the
        # probe/miss logic still has a meaningful baseline.
        orphans = [u for idx, _ in failed for u in by_index[idx]]
        replan = launcher.degradation.replan(
            [by_index[idx] for idx, _, _ in granted], orphans,
            predicted_times=[predicted_by_index[idx] for idx, _, _ in granted])
        for (idx, _, _), merged, t in zip(granted, replan.assignments,
                                          replan.predicted_times):
            by_index[idx] = list(merged)
            predicted_by_index[idx] = t
        report.failures = [
            FailedBin(f.bin_index, f.reason, f.n_units, f.volume,
                      absorbed=True)
            for f in report.failures
        ]
        if obs.enabled:
            obs.tracer.instant("resilience.degradation.replan",
                               cat="resilience", moved=replan.moved_units,
                               survivors=len(granted))
            obs.metrics.counter("resilience.replans").inc()

    instances = [inst for _, inst, _ in granted]
    waits = {inst.instance_id: w for _, inst, w in granted}
    if instances:
        latest_ready = max(i.ready_at + waits[i.instance_id]
                           for i in instances)
        if latest_ready > cloud.now:
            cloud.advance(latest_ready - cloud.now)
        for inst in instances:
            inst.mark_running(cloud.now)
        report.rate = instances[0].itype.hourly_rate

    runs: list[InstanceRun] = []
    work_start = cloud.now
    for idx, inst, wait in granted:
        units = by_index[idx]
        duration = svc.run(inst, units, workload, advance_clock=False)
        predicted = predicted_by_index[idx]
        runs.append(InstanceRun(
            instance_id=inst.instance_id,
            n_units=len(units),
            volume=sum(u.size for u in units),
            boot_delay=wait + inst.boot_delay,
            duration=duration,
            predicted=predicted,
        ))
        if obs.enabled:
            # Instances work in parallel off a common start, so the span is
            # recorded retrospectively on the instance's own track.
            obs.tracer.add_span("runner.task.run", work_start,
                                work_start + duration, cat="runner",
                                track=inst.instance_id, bin=idx,
                                n_units=len(units), predicted=predicted,
                                strategy=plan.strategy)
            obs.metrics.counter("runner.tasks.completed",
                                strategy=plan.strategy).inc()
            obs.metrics.histogram("runner.task.seconds").observe(duration)
        if bill:
            cloud.ledger.record(inst.instance_id, inst.itype.name,
                                work_start, work_start + duration,
                                inst.itype.hourly_rate)
    report.runs = runs
    if runs:
        cloud.advance(max(r.duration for r in runs))
    for inst in instances:
        inst.terminate(cloud.now)
    if obs.enabled:
        # Positive margin = the whole fleet beat the deadline.
        obs.metrics.gauge("runner.deadline.margin", strategy=plan.strategy
                          ).set(report.deadline - report.makespan)
        if report.n_missed:
            obs.metrics.counter("runner.deadline.misses",
                                strategy=plan.strategy).inc(report.n_missed)

    if measure_retrieval and runs:
        # Each processed unit file yields one result object in S3; the
        # §1 retrieval advantage of reshaping comes from this object count.
        meta_by_run: list[tuple[str, int]] = []
        for idx, inst, _ in granted:
            for j, unit in enumerate(by_index[idx]):
                key = f"results/{plan.strategy}/{inst.instance_id}/{j}"
                # result size ~ proportional to the unit's input size
                cloud.s3.put(key, max(1, unit.size // 100))
                meta_by_run.append((key, unit.size))
        rng = cloud.rng.fork(f"retrieval.{plan.strategy}.{len(meta_by_run)}")
        report.retrieval_seconds = cloud.s3.retrieval_time(
            [k for k, _ in meta_by_run], rng)
    return report
