"""Synthetic corpus substrate.

Generates catalogues that statistically match the paper's two data sets
(Fig. 1), plus equal-length novels of different linguistic complexity for
the Dubliners / Agnes Grey experiment (§5.2):

* :func:`repro.corpus.datasets.html_18mil_like` — the NewsLab HTML crawl:
  long-tailed sizes, majority < 50 kB, maximum 43 MB, HTML markup.
* :func:`repro.corpus.datasets.text_400k_like` — extracted plain text:
  majority < 5 kB, maximum 705 kB.
* :func:`repro.corpus.text.synthesize_novel` — fixed word count, tunable
  sentence complexity.

Everything is deterministic in the seed and lazily materialisable through
:mod:`repro.vfs`.
"""

from repro.corpus.datasets import (
    agnes_grey_like,
    dubliners_like,
    html_18mil_like,
    mixed_domain_like,
    text_400k_like,
)
from repro.corpus.distributions import LongTailSizeDistribution
from repro.corpus.text import TextProfile, generate_text, render_virtual_file, synthesize_novel

__all__ = [
    "LongTailSizeDistribution",
    "TextProfile",
    "generate_text",
    "render_virtual_file",
    "synthesize_novel",
    "html_18mil_like",
    "text_400k_like",
    "mixed_domain_like",
    "dubliners_like",
    "agnes_grey_like",
]
