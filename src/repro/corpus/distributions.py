"""Long-tailed file-size distributions matching Fig. 1.

Both of the paper's data sets have the same qualitative shape: a body of
small files and a long tail ("The majority of the files are less than 50 kB
and the distribution of the file sizes exhibits a long tail.  The largest
file size is 43 MB").  We model sizes as a lognormal body mixed with a
Pareto tail, truncated at a maximum size — three interpretable parameters
per data set, enough to regenerate the Fig. 1 histograms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.random import RngStream

__all__ = ["LongTailSizeDistribution"]


@dataclass(frozen=True)
class LongTailSizeDistribution:
    """Mixture of a lognormal body and a Pareto tail, truncated.

    Parameters
    ----------
    body_median:
        Median of the lognormal body, in bytes.
    body_sigma:
        Log-space spread of the body.
    tail_weight:
        Probability mass assigned to the Pareto tail.
    tail_shape:
        Pareto shape (smaller = heavier tail).
    tail_scale:
        Pareto scale in bytes (tail sizes are ``tail_scale * (1 + Pareto)``).
    min_size / max_size:
        Hard truncation bounds (resampling the tail, clipping the body).
    """

    body_median: float
    body_sigma: float
    tail_weight: float
    tail_shape: float
    tail_scale: float
    min_size: int
    max_size: int

    def __post_init__(self) -> None:
        if not 0 <= self.tail_weight <= 1:
            raise ValueError("tail_weight must be in [0, 1]")
        if self.min_size <= 0 or self.max_size < self.min_size:
            raise ValueError("need 0 < min_size <= max_size")
        if self.body_median <= 0 or self.tail_shape <= 0 or self.tail_scale <= 0:
            raise ValueError("distribution parameters must be positive")

    def sample(self, rng: RngStream, n: int) -> np.ndarray:
        """Draw ``n`` file sizes (int64 bytes, within bounds, deterministic)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        mu = float(np.log(self.body_median))
        body = rng.lognormals(mu, self.body_sigma, n)
        tail = self.tail_scale * (1.0 + rng.paretos(self.tail_shape, n))
        is_tail = rng.uniforms(0.0, 1.0, n) < self.tail_weight
        sizes = np.where(is_tail, tail, body)
        sizes = np.clip(sizes, self.min_size, self.max_size)
        return sizes.astype(np.int64)

    def ensure_max_present(self, sizes: np.ndarray) -> np.ndarray:
        """Force the catalogue maximum to equal ``max_size``.

        The paper quotes exact maxima (43 MB, 705 kB); pinning the largest
        draw keeps the headline statistic honest for any sample size.
        """
        if sizes.size == 0:
            return sizes
        out = sizes.copy()
        out[int(np.argmax(out))] = self.max_size
        return out

    @classmethod
    def fit(cls, sizes, *, tail_quantile: float = 0.95) -> "LongTailSizeDistribution":
        """Estimate parameters from observed file sizes.

        The paper "assume[s] knowledge of the distribution of the file
        sizes in the input data set" (§1); this estimator supplies that
        knowledge from a sample: the body below ``tail_quantile`` is fit
        as a lognormal (log-space moments), the tail above it as a Pareto
        (Hill-style estimator), and the mixture weight is the tail mass.
        """
        sizes = np.asarray(sizes, dtype=float)
        if sizes.size < 10:
            raise ValueError("need at least 10 observations to fit")
        if np.any(sizes <= 0):
            raise ValueError("sizes must be positive")
        if not 0.5 < tail_quantile < 1.0:
            raise ValueError("tail_quantile must be in (0.5, 1)")
        cut = float(np.quantile(sizes, tail_quantile))
        body = sizes[sizes <= cut]
        tail = sizes[sizes > cut]
        log_body = np.log(body)
        body_median = float(np.exp(np.median(log_body)))
        body_sigma = float(max(np.std(log_body, ddof=1), 1e-3))
        if tail.size >= 3:
            # Hill estimator for the Pareto shape above the cut.
            shape = float(tail.size / np.sum(np.log(tail / cut)))
            tail_weight = float(tail.size / sizes.size)
            tail_scale = cut
        else:
            shape, tail_weight, tail_scale = 1.5, 0.0, cut
        return cls(
            body_median=body_median,
            body_sigma=body_sigma,
            tail_weight=tail_weight,
            tail_shape=max(0.1, shape),
            tail_scale=tail_scale,
            min_size=int(max(1, sizes.min())),
            max_size=int(sizes.max()),
        )
