"""Deterministic synthetic English-like text generation.

The POS tagger and grep are *real* programs in this reproduction, so probe
files must contain actual text with controllable statistics.  The generator
composes words from a closed function-word list plus open-class words built
from syllables, producing sentences whose length distribution follows the
profile.  Complexity knobs:

``avg_sentence_words``
    the paper's key POS cost driver ("average sentence length is an
    important parameter for POS tagging", §5.2);
``subordinate_rate``
    how often clauses are chained with commas/conjunctions (longer
    dependency spans — the "Dubliners" effect);
``vocab_richness``
    Zipf-ish spread of the open-class vocabulary.

HTML mode wraps paragraphs in minimal markup so the NewsLab-like corpus
really is HTML, as consumed by grep in §5.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.sim.random import RngStream
from repro.vfs.files import TextStats, VirtualFile

__all__ = ["TextProfile", "generate_text", "synthesize_novel", "render_virtual_file",
           "NEWS_PROFILE", "SIMPLE_NOVEL_PROFILE", "COMPLEX_NOVEL_PROFILE"]

# Closed-class (function) words: always present, tagged by lookup.
_DETERMINERS = ["the", "a", "an", "this", "that", "these", "those"]
_PRONOUNS = ["he", "she", "it", "they", "we", "you", "i"]
_PREPOSITIONS = ["of", "in", "on", "at", "by", "with", "from", "under", "over"]
_CONJUNCTIONS = ["and", "but", "or", "while", "because", "although"]
_AUXILIARIES = ["is", "was", "are", "were", "has", "had", "will", "would"]

# Syllable inventory for open-class word construction.
_ONSETS = ["b", "c", "d", "f", "g", "l", "m", "n", "p", "r", "s", "t", "v", "st", "tr", "pl"]
_NUCLEI = ["a", "e", "i", "o", "u", "ai", "ea", "ou"]
_CODAS = ["", "n", "r", "s", "t", "l", "nd", "st", "ck"]

_NOUN_SUFFIXES = ["tion", "ment", "ness", "er", "ist", "ism"]
_VERB_SUFFIXES = ["ize", "ate", "ify"]
_ADJ_SUFFIXES = ["ous", "ful", "ive", "al", "able"]
_ADV_SUFFIX = "ly"


@dataclass(frozen=True)
class TextProfile:
    """Generation parameters for a body of text."""

    avg_sentence_words: float = 18.0
    sentence_words_sd: float = 6.0
    subordinate_rate: float = 0.25
    vocab_richness: float = 1.0  # Zipf exponent-ish; higher = richer
    html: bool = False

    def __post_init__(self) -> None:
        if self.avg_sentence_words < 2:
            raise ValueError("sentences need at least 2 words on average")
        if not 0 <= self.subordinate_rate <= 1:
            raise ValueError("subordinate_rate must be in [0, 1]")

    def stats(self, avg_word_len: float = 5.2) -> TextStats:
        """The metadata a file generated with this profile will carry."""
        return TextStats(
            avg_word_len=avg_word_len,
            avg_sentence_words=self.avg_sentence_words,
            markup_fraction=0.18 if self.html else 0.0,
        )


NEWS_PROFILE = TextProfile(avg_sentence_words=19.0, subordinate_rate=0.3, html=True)
SIMPLE_NOVEL_PROFILE = TextProfile(avg_sentence_words=13.0, sentence_words_sd=4.0,
                                   subordinate_rate=0.15, vocab_richness=0.8)
COMPLEX_NOVEL_PROFILE = TextProfile(avg_sentence_words=27.0, sentence_words_sd=11.0,
                                    subordinate_rate=0.55, vocab_richness=1.4)


@lru_cache(maxsize=8)
def _open_class_vocab(richness_key: int) -> dict[str, list[str]]:
    """Build a deterministic open-class vocabulary, cached per richness tier.

    Vocabulary construction uses its own fixed-seed stream so the same words
    exist no matter which experiment asks first.
    """
    rng = RngStream(0xC0FFEE + richness_key, name=f"vocab.{richness_key}")
    n_base = 400 + 250 * richness_key

    def make_stem() -> str:
        syllables = rng.integer(1, 3)
        return "".join(
            rng.choice(_ONSETS) + rng.choice(_NUCLEI) + rng.choice(_CODAS)
            for _ in range(syllables)
        )

    nouns = sorted({make_stem() + rng.choice(_NOUN_SUFFIXES) for _ in range(n_base)})
    verbs = sorted({make_stem() + rng.choice(_VERB_SUFFIXES) for _ in range(n_base // 2)})
    adjs = sorted({make_stem() + rng.choice(_ADJ_SUFFIXES) for _ in range(n_base // 2)})
    advs = sorted({a + _ADV_SUFFIX for a in adjs[: n_base // 4]})
    plain_nouns = sorted({make_stem() for _ in range(n_base)})
    return {
        "noun": nouns + plain_nouns,
        "verb": verbs + [v + "ed" for v in verbs[: n_base // 4]],
        "adj": adjs,
        "adv": advs,
    }


def _pick_zipf(rng: RngStream, words: list[str], richness: float) -> str:
    """Zipf-like pick: low ranks much more likely; richness flattens it."""
    u = rng.uniform(1e-9, 1.0)
    idx = int(len(words) * u ** (1.0 + 1.0 / max(richness, 0.1))) % len(words)
    return words[idx]


def _clause(rng: RngStream, n_words: int, vocab: dict[str, list[str]], richness: float) -> list[str]:
    """One clause of roughly ``n_words`` words with NP-VP-ish structure."""
    out: list[str] = []
    out.append(rng.choice(_DETERMINERS))
    if rng.uniform() < 0.4:
        out.append(_pick_zipf(rng, vocab["adj"], richness))
    out.append(_pick_zipf(rng, vocab["noun"], richness))
    if rng.uniform() < 0.5:
        out.append(rng.choice(_AUXILIARIES))
    out.append(_pick_zipf(rng, vocab["verb"], richness))
    while len(out) < n_words:
        r = rng.uniform()
        if r < 0.35:
            out.append(rng.choice(_PREPOSITIONS))
            out.append(rng.choice(_DETERMINERS))
            out.append(_pick_zipf(rng, vocab["noun"], richness))
        elif r < 0.5:
            out.append(_pick_zipf(rng, vocab["adv"], richness))
            out.append(_pick_zipf(rng, vocab["verb"], richness))
        elif r < 0.65:
            out.append(rng.choice(_PRONOUNS))
            out.append(_pick_zipf(rng, vocab["verb"], richness))
        else:
            if rng.uniform() < 0.4:
                out.append(_pick_zipf(rng, vocab["adj"], richness))
            out.append(_pick_zipf(rng, vocab["noun"], richness))
    return out[: max(n_words, 2)]


def _sentence(rng: RngStream, profile: TextProfile, vocab: dict[str, list[str]]) -> str:
    target = max(2, int(round(rng.normal(profile.avg_sentence_words, profile.sentence_words_sd))))
    words: list[str] = []
    remaining = target
    first = True
    while remaining > 0:
        clause_len = remaining
        if not first or (rng.uniform() < profile.subordinate_rate and remaining >= 8):
            clause_len = max(4, remaining // 2)
        words_c = _clause(rng, clause_len, vocab, profile.vocab_richness)
        if not first:
            joiner = rng.choice(_CONJUNCTIONS)
            words.append("," if rng.uniform() < 0.5 else "")
            words = [w for w in words if w]
            words.append(joiner)
        words.extend(words_c)
        remaining = target - len(words)
        first = False
        if rng.uniform() > profile.subordinate_rate:
            break
    text = " ".join(w for w in words if w)
    text = text[0].upper() + text[1:]
    return text + rng.choice([".", ".", ".", "?", "!"])


def generate_text(rng: RngStream, n_bytes: int, profile: TextProfile | None = None) -> str:
    """Generate ≈``n_bytes`` of text (exact to the byte after trim/pad)."""
    profile = profile or TextProfile()
    if n_bytes <= 0:
        return ""
    richness_key = min(3, max(0, int(profile.vocab_richness)))
    vocab = _open_class_vocab(richness_key)
    pieces: list[str] = []
    size = 0
    if profile.html:
        head = "<html><head><title>article</title></head><body>\n"
        pieces.append(head)
        size += len(head)
    while size < n_bytes:
        para: list[str] = []
        for _ in range(rng.integer(2, 5)):
            s = _sentence(rng, profile, vocab)
            para.append(s)
        block = " ".join(para)
        if profile.html:
            block = f"<p>{block}</p>\n"
        else:
            block += "\n\n"
        pieces.append(block)
        size += len(block)
    text = "".join(pieces)
    if profile.html:
        text += "</body></html>"
    # Exact sizing: trim, or pad with spaces (whitespace is inert for both
    # grep and the tagger).
    if len(text) > n_bytes:
        text = text[:n_bytes]
    elif len(text) < n_bytes:
        text = text + " " * (n_bytes - len(text))
    return text


def synthesize_novel(
    rng: RngStream, n_words: int, profile: TextProfile
) -> str:
    """Generate a text with an exact word count (the novels experiment).

    The Dubliners/Agnes Grey comparison holds word count fixed (±300 words
    in the paper) while complexity varies, so this entry point counts words
    rather than bytes.
    """
    if n_words <= 0:
        return ""
    richness_key = min(3, max(0, int(profile.vocab_richness)))
    vocab = _open_class_vocab(richness_key)
    sentences: list[str] = []
    count = 0
    while count < n_words:
        s = _sentence(rng, profile, vocab)
        sentences.append(s)
        count += len(s.split())
    text = " ".join(sentences)
    words = text.split()
    return " ".join(words[:n_words])


def render_virtual_file(vf: VirtualFile) -> bytes:
    """Default renderer installed by :meth:`VirtualFile.materialize`.

    Reconstructs a profile from the file's carried statistics, seeds a
    dedicated stream from ``content_seed``, and emits exactly ``vf.size``
    bytes (ASCII, so byte count == character count).
    """
    profile = TextProfile(
        avg_sentence_words=max(2.0, vf.stats.avg_sentence_words),
        html=vf.stats.markup_fraction > 0,
    )
    rng = RngStream(vf.content_seed, name=f"render.{vf.path}")
    return generate_text(rng, vf.size, profile).encode("ascii")
