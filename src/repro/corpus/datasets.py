"""Canned synthetic data sets matching the paper's corpora (§3.2).

Each factory is deterministic in its seed and accepts a ``scale`` so tests
can work with hundreds of files while benchmarks use tens of thousands; the
*distribution* of sizes is scale-invariant.

``html_18mil_like``
    the NewsLab crawl: nominally 18 million HTML files / ~900 GB, majority
    under 50 kB, long tail, largest file 43 MB (Fig. 1(a), 10 kB bins).
``text_400k_like``
    extracted English text: nominally 400 000 files / ~1 GB, majority under
    5 kB, largest 705 kB (Fig. 1(b), 1 kB bins).
``dubliners_like`` / ``agnes_grey_like``
    two single-file "novels" with near-identical word counts (67 496 vs
    67 755 words) but very different sentence complexity, for the §5.2
    complexity experiment.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.distributions import LongTailSizeDistribution
from repro.corpus.text import (
    COMPLEX_NOVEL_PROFILE,
    SIMPLE_NOVEL_PROFILE,
    TextProfile,
    synthesize_novel,
)
from repro.sim.random import RngStream, stable_seed
from repro.units import KB, MB
from repro.vfs.files import Catalogue, TextStats, VirtualFile

__all__ = [
    "HTML_18MIL_DIST",
    "TEXT_400K_DIST",
    "html_18mil_like",
    "text_400k_like",
    "mixed_domain_like",
    "dubliners_like",
    "agnes_grey_like",
    "DUBLINERS_WORDS",
    "AGNES_GREY_WORDS",
]

# Calibrated so that ~75-85 % of files fall under 50 kB, the mean lands near
# 900 GB / 18 M = 50 kB, and the tail reaches the quoted 43 MB maximum.
HTML_18MIL_DIST = LongTailSizeDistribution(
    body_median=22 * KB,
    body_sigma=0.95,
    tail_weight=0.05,
    tail_shape=1.15,
    tail_scale=55 * KB,
    min_size=1 * KB,
    max_size=43 * MB,
)

# Majority < 5 kB, "over 40% of our files are less than 1 kB" (§5.2),
# mean ≈ 1 GB / 400 k ≈ 2.4 kB, max 705 kB.
TEXT_400K_DIST = LongTailSizeDistribution(
    body_median=1_150,
    body_sigma=0.85,
    tail_weight=0.04,
    tail_shape=1.2,
    tail_scale=5 * KB,
    min_size=150,
    max_size=705 * KB,
)

_HTML_NOMINAL_FILES = 18_000_000
_TEXT_NOMINAL_FILES = 400_000

DUBLINERS_WORDS = 67_496
AGNES_GREY_WORDS = 67_755


def _build_catalogue(
    name: str,
    dist: LongTailSizeDistribution,
    n_files: int,
    seed: int,
    *,
    html: bool,
    sentence_mean: float,
    sentence_sd: float,
    complexity_head_boost: float = 0.0,
) -> Catalogue:
    """Assemble a catalogue of virtual files with per-file text statistics.

    ``complexity_head_boost`` adds extra average sentence length to the
    first files in catalogue order, fading linearly to zero across the
    catalogue.  The paper's §4 probe protocol reads the *head* of the data
    while §5 refits use *random samples*; a head/average complexity gap is
    exactly what makes the refit slope differ from the probe slope
    (Eq. (3) vs Eq. (4)).
    """
    rng = RngStream(seed, name=name)
    sizes = dist.ensure_max_present(dist.sample(rng.fork("sizes"), n_files))
    slens = rng.fork("complexity").normals(sentence_mean, sentence_sd, n_files)
    slens = np.clip(slens, 6.0, 45.0)
    if complexity_head_boost and n_files > 1:
        fade = np.linspace(1.0, 0.0, n_files)
        slens = slens + complexity_head_boost * fade
    width = max(6, len(str(n_files)))
    # Calibrated against the generator: materialised text yields one token
    # (word or punctuation) per ≈8.1 bytes, and the light <p> markup of the
    # HTML corpus hides ≈1 % of bytes from the tokenizer.
    markup = 0.011 if html else 0.0
    ext = "html" if html else "txt"
    files = [
        VirtualFile(
            path=f"{name}/{i:0{width}d}.{ext}",
            size=int(sizes[i]),
            stats=TextStats(
                avg_word_len=7.1,
                avg_sentence_words=float(slens[i]),
                markup_fraction=markup,
            ),
            content_seed=stable_seed(seed, f"{name}/{i}"),
        )
        for i in range(n_files)
    ]
    return Catalogue(files, name=name)


def html_18mil_like(scale: float = 1e-4, seed: int = 2010) -> Catalogue:
    """NewsLab-like HTML catalogue.  ``scale=1.0`` → the full 18 M files.

    Practical ceiling: the catalogue is held in memory (~500 B/file), so
    full scale costs ~9 GB of RAM.  The distribution is scale-invariant;
    experiments run at reduced scale and reason in ratios.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = max(1, int(round(_HTML_NOMINAL_FILES * scale)))
    return _build_catalogue(
        "html_18mil", HTML_18MIL_DIST, n, seed,
        html=True, sentence_mean=19.0, sentence_sd=2.0,
    )


def text_400k_like(scale: float = 1e-3, seed: int = 2011) -> Catalogue:
    """Extracted-text catalogue.  ``scale=1.0`` → the full 400 k files."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = max(1, int(round(_TEXT_NOMINAL_FILES * scale)))
    return _build_catalogue(
        "text_400k", TEXT_400K_DIST, n, seed,
        html=False, sentence_mean=16.5, sentence_sd=2.5,
        complexity_head_boost=4.0,
    )


class Novel:
    """A fully materialised single text with known statistics.

    Unlike catalogue files (which regenerate bytes from a seed), a novel
    keeps its exact text, because the §5.2 experiment feeds the *same* bytes
    to the native POS tagger and to the work estimator.
    """

    def __init__(self, name: str, text: str, profile: TextProfile) -> None:
        self.name = name
        self.text = text
        self.profile = profile

    @property
    def n_words(self) -> int:
        return len(self.text.split())

    @property
    def size(self) -> int:
        return len(self.text.encode("ascii"))

    def stats(self) -> TextStats:
        """Measured text statistics of this novel."""
        words = self.text.split()
        avg_wl = sum(len(w) for w in words) / max(1, len(words))
        return TextStats(avg_word_len=avg_wl,
                         avg_sentence_words=self.profile.avg_sentence_words)

    def virtual_file(self) -> VirtualFile:
        """Metadata-only view for the work estimator / simulator."""
        return VirtualFile(
            path=f"novels/{self.name}.txt",
            size=self.size,
            stats=self.stats(),
            content_seed=0,
        )

    def unit(self) -> "LiteralFile":
        """Materialisable unit carrying this novel's exact bytes."""
        from repro.vfs.files import LiteralFile

        return LiteralFile(
            path=f"novels/{self.name}.txt",
            size=self.size,
            stats=self.stats(),
            content=self.text.encode("ascii"),
        )


def mixed_domain_like(scale: float = 1e-3, seed: int = 2012) -> Catalogue:
    """A corpus of *clustered* complexity domains (§5.2's closing caveat).

    The news set is "uniform in terms of language complexity", which is why
    its random-sample refit barely moved the model; "for other corpora …
    random sampling can be vital".  This catalogue interleaves three
    contiguous domains — headline-ish prose (≈10 words/sentence),
    news-ish (≈18), and academic-ish (≈28) — so the catalogue *head* is
    wildly unrepresentative of the average, the situation where head-only
    probing fails and sampling rescues the model.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = max(3, int(round(_TEXT_NOMINAL_FILES * scale)))
    rng = RngStream(seed, name="mixed_domain")
    sizes = TEXT_400K_DIST.ensure_max_present(
        TEXT_400K_DIST.sample(rng.fork("sizes"), n))
    domains = (
        ("headline", 10.0, 1.5),
        ("news", 18.0, 2.0),
        ("academic", 28.0, 3.0),
    )
    per = n // len(domains)
    width = max(6, len(str(n)))
    files = []
    for i in range(n):
        d = min(i // max(1, per), len(domains) - 1)
        _, mean, sd = domains[d]
        slen = min(45.0, max(6.0, rng.fork(f"c{i}").normal(mean, sd)))
        files.append(VirtualFile(
            path=f"mixed_domain/{i:0{width}d}.txt",
            size=int(sizes[i]),
            stats=TextStats(avg_word_len=7.1, avg_sentence_words=float(slen)),
            content_seed=stable_seed(seed, f"mixed/{i}"),
        ))
    return Catalogue(files, name="mixed_domain")


def _make_novel(name: str, n_words: int, profile: TextProfile, seed: int) -> Novel:
    text = synthesize_novel(RngStream(seed, name=name), n_words, profile)
    return Novel(name, text, profile)


def dubliners_like(seed: int = 1914) -> Novel:
    """A complex-prose novel: 67 496 words, long subordinated sentences."""
    return _make_novel("dubliners", DUBLINERS_WORDS, COMPLEX_NOVEL_PROFILE, seed)


def agnes_grey_like(seed: int = 1847) -> Novel:
    """A plain-prose novel: 67 755 words, short sentences."""
    return _make_novel("agnes_grey", AGNES_GREY_WORDS, SIMPLE_NOVEL_PROFILE, seed)
