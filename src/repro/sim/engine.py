"""A deterministic discrete-event simulation engine.

The EC2 simulator (:mod:`repro.cloud`) and the plan runner
(:mod:`repro.runner`) are built on this engine.  It fires events in exact
``(time, sequence)`` order — events scheduled at the same simulated time
fire in scheduling order — with a monotonic clock and a cancellation
facility, behind two interchangeable scheduler layouts:

* **heap** — a binary heap of ``(time, seq, event)`` tuples; O(log n) per
  operation, lowest constant factor for small, sparse event populations;
* **bucket** — a calendar-queue variant: events are appended O(1) into
  buckets keyed by ``floor(time / width)``, a min-heap tracks *occupied*
  bucket keys only (empty buckets are never visited), and each bucket is
  sorted once — by C timsort — at the moment it becomes the minimum.
  Dense populations (large fleets, batched completions) pay roughly O(1)
  per event instead of O(log n) Python-level comparisons.

The default ``scheduler="auto"`` starts on the heap (the sparse-horizon
fallback) and migrates to buckets once the pending population crosses a
threshold; both layouts are exact priority queues, so the firing order is
bit-identical whichever is active (``tests/test_sim_engine_differential.py``
holds them to that with a hypothesis program generator).

Hot-path design (the "million events/sec" contract):

* :class:`Event` is a plain ``__slots__`` class — no dataclass machinery,
  no per-event dict;
* heap entries are bare tuples, compared in C;
* :meth:`SimulationEngine.schedule_batch` amortises validation, tracer
  checks and scheduler maintenance over a whole batch of events;
* the no-tracer ``run`` loop is a dedicated fast path with zero tracer
  branches per event;
* cancelled entries are *compacted* out of the scheduler once they exceed
  half of the stored population, so cancel-heavy workloads (hedged
  launches, straggler replacement) cannot bloat peeks and pops.

Determinism contract
--------------------
Given the same sequence of ``schedule`` calls, ``run`` produces the same
sequence of callbacks — regardless of the scheduler layout.  No wall-clock
time is ever consulted; simulated time is a ``float`` number of seconds.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import Tracer

__all__ = ["Event", "SimulationEngine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for scheduling in the past, counter corruption, or a runaway
    simulation."""


#: Pending population at which ``scheduler="auto"`` migrates heap → buckets.
AUTO_BUCKET_THRESHOLD = 512

#: Never compact below this many stored entries (compaction is O(n)).
_COMPACT_MIN = 64


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulated time (seconds) at which the callback fires.
    callback:
        Zero-argument callable invoked when the event fires.
    label:
        Human-readable tag used in traces and error messages.
    cancelled:
        True once :meth:`cancel` ran; the engine skips the event.
    """

    __slots__ = ("time", "callback", "label", "cancelled",
                 "_engine", "_consumed", "_tracked")

    def __init__(self, time: float, callback: Callable[[], None],
                 label: str = "", cancelled: bool = False,
                 _engine: "SimulationEngine | None" = None,
                 _consumed: bool = False, _tracked: bool = False) -> None:
        self.time = time
        self.callback = callback
        self.label = label
        self.cancelled = cancelled
        #: Owning engine (None for a hand-built, never-scheduled event).
        self._engine = _engine
        #: True once the event fired (cancel after firing is a no-op).
        self._consumed = _consumed
        #: True only while the engine's live ``pending`` counter includes
        #: this event (set on schedule, cleared on fire and on first
        #: cancel).  The counter is only ever decremented through this
        #: flag, so a cancel that races a drained ``run`` — or a cancel of
        #: a hand-built Event that was never scheduled — cannot drive
        #: ``pending`` negative.
        self._tracked = _tracked

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else (
            "fired" if self._consumed else "pending")
        return f"Event(t={self.time}, label={self.label!r}, {state})"

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        Idempotent: repeated cancels (and cancels after the event fired,
        or after the engine drained) leave the pending count untouched.
        """
        if self.cancelled or self._consumed:
            return
        self.cancelled = True
        eng = self._engine
        if eng is not None and self._tracked:
            self._tracked = False
            eng._note_cancel(self)


class SimulationEngine:
    """Discrete-event scheduler with a monotonic clock.

    Parameters
    ----------
    max_events:
        Runaway guard: raise :class:`SimulationError` past this many fires.
    tracer:
        Optional structured event log; ``None`` (or a disabled tracer)
        selects the branch-free fast path.
    scheduler:
        ``"auto"`` (heap, migrating to buckets past
        :data:`AUTO_BUCKET_THRESHOLD` pending events), ``"heap"`` (never
        migrate) or ``"bucket"`` (migrate on first schedule).  All three
        fire events in identical order.
    bucket_width:
        Bucket span in simulated seconds; by default it is chosen at
        migration time as the mean gap between pending events.

    With an enabled ``tracer``, the engine keeps a structured event log:
    ``sim.engine.schedule`` / ``sim.engine.fire`` / ``sim.engine.cancel``
    instants carry each event's label, and every ``run`` that advances the
    clock records a ``sim.engine.run`` span on simulated time.  With no
    tracer (the default) the hot loop contains no tracer branches at all.
    """

    def __init__(self, max_events: int = 10_000_000,
                 tracer: "Tracer | None" = None, *,
                 scheduler: str = "auto",
                 bucket_width: float | None = None) -> None:
        if scheduler not in ("auto", "heap", "bucket"):
            raise SimulationError(
                f"unknown scheduler {scheduler!r} (auto, heap or bucket)")
        self._policy = scheduler
        self._bucketed = False
        # heap lane: list of (time, seq, Event) tuples
        self._heap: list[tuple[float, int, Event]] = []
        # bucket lane: key -> unsorted entry list; only *occupied* keys
        # live in the _bkeys min-heap, and _cur is the minimal bucket,
        # sorted descending so pops come off the end.
        self._buckets: dict[int, list[tuple[float, int, Event]]] = {}
        self._bkeys: list[int] = []
        self._cur: list[tuple[float, int, Event]] = []
        self._cur_key = 0
        self._width = float(bucket_width) if bucket_width else 0.0
        self._seq = 0
        self._now = 0.0
        self._fired = 0
        self._pending = 0
        self._stored = 0   # entries across all lanes, cancelled included
        self.max_events = max_events
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None
        if scheduler == "bucket":
            self._migrate_to_buckets()

    def attach_tracer(self, tracer: "Tracer | None") -> None:
        """Install (or remove, with ``None``) the structured event log."""
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        return self._fired

    @property
    def scheduler(self) -> str:
        """The active scheduler layout: ``"heap"`` or ``"bucket"``."""
        return "bucket" if self._bucketed else "heap"

    # -- scheduling ------------------------------------------------------

    def schedule_at(self, time: float, callback: Callable[[], None],
                    label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule {label or 'event'} at t={time} (now={self._now})"
            )
        ev = Event(time, callback, label, False, self, False, True)
        self._insert(time, ev)
        self._pending += 1
        if self._tracer is not None:
            self._tracer.instant("sim.engine.schedule", cat="sim",
                                 track="sim", label=label, t=time)
        return ev

    def schedule_in(self, delay: float, callback: Callable[[], None],
                    label: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for {label or 'event'}")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_batch(
        self,
        times: Sequence[float],
        callbacks: Sequence[Callable[[], None]] | Callable[[], None],
        labels: Sequence[str] | str = "",
    ) -> list[Event]:
        """Schedule many events in one call, amortising per-event overhead.

        ``callbacks`` may be one callable (broadcast to every time) or a
        sequence matching ``times``; likewise ``labels``.  Events are
        assigned sequence numbers in input order, so ties fire in input
        order — exactly as the equivalent loop of :meth:`schedule_at`
        calls would.  Validation happens up front: either every event is
        scheduled or none is.
        """
        times = list(times)
        n = len(times)
        if n == 0:
            return []
        one_cb = callable(callbacks)
        one_label = isinstance(labels, str)
        if not one_cb and len(callbacks) != n:
            raise SimulationError(
                f"schedule_batch: {n} times but {len(callbacks)} callbacks")
        if not one_label and len(labels) != n:
            raise SimulationError(
                f"schedule_batch: {n} times but {len(labels)} labels")
        now = self._now
        if min(times) < now:
            bad = min(times)
            raise SimulationError(
                f"cannot schedule batch event at t={bad} (now={now})")
        # A large batch on the heap lane is exactly the dense regime the
        # bucket layout exists for: migrate first so inserts are O(1).
        if (not self._bucketed and self._policy == "auto"
                and self._pending + n > AUTO_BUCKET_THRESHOLD):
            self._migrate_to_buckets(extra_times=times)
        events: list[Event] = []
        append = events.append
        insert = self._insert
        for i in range(n):
            t = times[i]
            ev = Event(t, callbacks if one_cb else callbacks[i],
                       labels if one_label else labels[i],
                       False, self, False, True)
            insert(t, ev)
            append(ev)
        self._pending += n
        tracer = self._tracer
        if tracer is not None:
            for ev in events:
                tracer.instant("sim.engine.schedule", cat="sim",
                               track="sim", label=ev.label, t=ev.time)
        return events

    # -- scheduler internals ---------------------------------------------

    def _insert(self, time: float, ev: Event) -> None:
        seq = self._seq
        self._seq = seq + 1
        entry = (time, seq, ev)
        self._stored += 1
        if not self._bucketed:
            heapq.heappush(self._heap, entry)
            if (self._policy == "auto"
                    and self._pending + 1 > AUTO_BUCKET_THRESHOLD):
                self._migrate_to_buckets()
            return
        self._bucket_insert(entry)

    def _bucket_insert(self, entry: tuple[float, int, Event]) -> None:
        key = int(entry[0] / self._width)
        cur = self._cur
        if cur:
            cur_key = self._cur_key
            if key == cur_key:
                # Insert into the open (descending-sorted) bucket.
                lo, hi = 0, len(cur)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if cur[mid] > entry:
                        lo = mid + 1
                    else:
                        hi = mid
                cur.insert(lo, entry)
                return
            if key < cur_key:
                # The new event precedes the open bucket (the clock lags
                # far behind it): push the open bucket back and fall
                # through to a plain insert.  Rare — only reachable when
                # a peek opened a far-future bucket.
                self._buckets[cur_key] = cur
                heapq.heappush(self._bkeys, cur_key)
                self._cur = []
        b = self._buckets.get(key)
        if b is None:
            self._buckets[key] = [entry]
            heapq.heappush(self._bkeys, key)
        else:
            b.append(entry)

    def _migrate_to_buckets(self, extra_times: Sequence[float] | None = None) -> None:
        """Move every heap entry into the bucket lane (order-preserving)."""
        self._bucketed = True
        entries = self._heap
        self._heap = []
        if self._width <= 0.0:
            # Width heuristic: the mean gap between pending events, so a
            # bucket holds O(1) events on average.  Degenerate spans fall
            # back to 1 simulated second; correctness never depends on
            # the choice, only constant factors do.
            t_hi = max(entries, default=(self._now, 0, None))[0]
            n = len(entries)
            if extra_times is not None and extra_times:
                t_hi = max(t_hi, max(extra_times))
                n += len(extra_times)
            span = t_hi - self._now
            self._width = (span / n) if (span > 0.0 and n > 0) else 1.0
        for entry in entries:
            self._bucket_insert(entry)

    def _peek_entry(self) -> tuple[float, int, Event] | None:
        """The next live entry, still stored (cancelled ones are dropped)."""
        if not self._bucketed:
            heap = self._heap
            while heap:
                entry = heap[0]
                if entry[2].cancelled:
                    heapq.heappop(heap)
                    self._stored -= 1
                    continue
                return entry
            return None
        while True:
            cur = self._cur
            while cur:
                entry = cur[-1]
                if entry[2].cancelled:
                    cur.pop()
                    self._stored -= 1
                    continue
                return entry
            # Open the next occupied bucket: sort once, drain from the end.
            bkeys = self._bkeys
            if not bkeys:
                return None
            key = heapq.heappop(bkeys)
            b = self._buckets.pop(key, None)
            if b:
                b.sort(reverse=True)
                self._cur = b
                self._cur_key = key

    def _pop_entry(self) -> None:
        """Remove the entry :meth:`_peek_entry` just returned."""
        if not self._bucketed:
            heapq.heappop(self._heap)
        else:
            self._cur.pop()
        self._stored -= 1

    # -- cancellation bookkeeping ----------------------------------------

    def _note_cancel(self, ev: Event) -> None:
        """First cancel of a tracked event: counter + compaction + trace."""
        self._pending -= 1
        if self._pending < 0:
            self._pending = 0
            raise SimulationError(
                f"pending counter underflow cancelling {ev.label or 'event'}")
        if self._tracer is not None:
            self._tracer.instant("sim.engine.cancel", cat="sim",
                                 track="sim", label=ev.label, t=ev.time)
        # Compaction: cancelled entries linger in the scheduler until
        # popped, so a cancel-heavy workload (hedged launches, straggler
        # replacement) would otherwise bloat every peek and pop.  Once
        # they exceed half the stored population, rebuild without them.
        if (self._stored - self._pending > (self._stored >> 1)
                and self._stored > _COMPACT_MIN):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from the scheduler structures."""
        if not self._bucketed:
            self._heap = [e for e in self._heap if not e[2].cancelled]
            heapq.heapify(self._heap)
        else:
            self._cur = [e for e in self._cur if not e[2].cancelled]
            buckets = {}
            for key, entries in self._buckets.items():
                kept = [e for e in entries if not e[2].cancelled]
                if kept:
                    buckets[key] = kept
            self._buckets = buckets
            self._bkeys = list(buckets)
            heapq.heapify(self._bkeys)
        # Every cancelled entry is gone, so exactly the live ones remain.
        self._stored = self._pending

    # -- execution -------------------------------------------------------

    def _fire(self, entry: tuple[float, int, Event]) -> Event:
        """Consume one live entry (already removed from its lane)."""
        ev = entry[2]
        ev._consumed = True
        ev._tracked = False
        self._pending -= 1
        self._now = entry[0]
        self._fired += 1
        if self._fired > self.max_events:
            raise SimulationError(f"runaway simulation: >{self.max_events} events")
        if self._tracer is not None:
            self._tracer.instant("sim.engine.fire", cat="sim",
                                 track="sim", label=ev.label)
        ev.callback()
        return ev

    def step(self) -> Optional[Event]:
        """Fire the next pending event; return it, or ``None`` if drained."""
        entry = self._peek_entry()
        if entry is None:
            return None
        self._pop_entry()
        return self._fire(entry)

    def run(self, until: float | None = None) -> float:
        """Fire events until the scheduler drains (or ``until`` passes).

        Returns the final simulated time.  With ``until`` set, events at
        times strictly greater than ``until`` remain pending and the clock
        is advanced to ``until``.
        """
        if self._tracer is None:
            return self._run_fast(until)
        t_start, fired_before = self._now, self._fired
        try:
            return self._run_fast(until)
        finally:
            if self._now > t_start:
                self._tracer.add_span("sim.engine.run", t_start, self._now,
                                      cat="sim", track="sim",
                                      fired=self._fired - fired_before)

    def _run_fast(self, until: float | None) -> float:
        """The hot loop: peek / bound-check / fire, nothing else."""
        peek = self._peek_entry
        pop = self._pop_entry
        fire = self._fire
        if until is None:
            while True:
                entry = peek()
                if entry is None:
                    return self._now
                pop()
                fire(entry)
        while True:
            entry = peek()
            if entry is None or entry[0] > until:
                break
            pop()
            fire(entry)
        if until > self._now:
            self._now = until
        return self._now

    def _peek_time(self) -> Optional[float]:
        entry = self._peek_entry()
        return entry[0] if entry is not None else None

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events.

        Maintained as a live counter (incremented on schedule, decremented
        on fire and on first cancel) so runners polling it per event stay
        O(1) instead of rescanning the scheduler.
        """
        return self._pending

    @property
    def stored_entries(self) -> int:
        """Entries physically held by the scheduler, cancelled included.

        The compaction guarantee is ``stored_entries <= 2 * pending`` (up
        to the :data:`_COMPACT_MIN` floor) — cancel-heavy workloads cannot
        grow this without bound.
        """
        return self._stored
