"""A deterministic discrete-event simulation engine.

The EC2 simulator (:mod:`repro.cloud`) and the plan runner
(:mod:`repro.runner`) are built on this engine.  It is intentionally small:
a binary-heap scheduler with stable tie-breaking (events scheduled at the
same simulated time fire in scheduling order), a monotonic clock, and a
cancellation facility.

Determinism contract
--------------------
Given the same sequence of ``schedule`` calls, ``run`` produces the same
sequence of callbacks.  No wall-clock time is ever consulted; simulated time
is a ``float`` number of seconds.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import Tracer

__all__ = ["Event", "SimulationEngine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for scheduling in the past or a runaway simulation."""


@dataclass(order=True)
class _HeapEntry:
    time: float
    seq: int
    event: "Event" = field(compare=False)


@dataclass
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulated time (seconds) at which the callback fires.
    callback:
        Zero-argument callable invoked when the event fires.
    label:
        Human-readable tag used in traces and error messages.
    """

    time: float
    callback: Callable[[], None]
    label: str = ""
    cancelled: bool = False
    _engine: Optional["SimulationEngine"] = field(
        default=None, repr=False, compare=False
    )
    _consumed: bool = field(default=False, repr=False, compare=False)
    #: True only while the engine's live ``pending`` counter includes this
    #: event (set on schedule, cleared on fire and on first cancel).  The
    #: counter is only ever decremented through this flag, so a cancel that
    #: races a drained ``run`` — or a cancel of a hand-built Event that was
    #: never scheduled — cannot drive ``pending`` negative.
    _tracked: bool = field(default=False, repr=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        Idempotent: repeated cancels (and cancels after the event fired,
        or after the engine drained) leave the pending count untouched.
        """
        if self.cancelled or self._consumed:
            return
        self.cancelled = True
        eng = self._engine
        if eng is not None and self._tracked:
            self._tracked = False
            eng._pending -= 1
            assert eng._pending >= 0, \
                f"pending counter underflow cancelling {self.label or 'event'}"
            if eng._tracer is not None:
                eng._tracer.instant("sim.engine.cancel", cat="sim",
                                    track="sim", label=self.label,
                                    t=self.time)


class SimulationEngine:
    """Binary-heap discrete-event scheduler with a monotonic clock.

    With an enabled ``tracer``, the engine keeps a structured event log:
    ``sim.engine.schedule`` / ``sim.engine.fire`` / ``sim.engine.cancel``
    instants carry each event's label, and every ``run`` that advances the
    clock records a ``sim.engine.run`` span on simulated time.  With no
    tracer (the default) the cost is one ``None`` check per operation.
    """

    def __init__(self, max_events: int = 10_000_000,
                 tracer: "Tracer | None" = None) -> None:
        self._heap: list[_HeapEntry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._fired = 0
        self._pending = 0
        self.max_events = max_events
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None

    def attach_tracer(self, tracer: "Tracer | None") -> None:
        """Install (or remove, with ``None``) the structured event log."""
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        return self._fired

    # -- scheduling ------------------------------------------------------

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule {label or 'event'} at t={time} (now={self._now})"
            )
        ev = Event(time=time, callback=callback, label=label, _engine=self,
                   _tracked=True)
        heapq.heappush(self._heap, _HeapEntry(time, next(self._seq), ev))
        self._pending += 1
        if self._tracer is not None:
            self._tracer.instant("sim.engine.schedule", cat="sim",
                                 track="sim", label=label, t=time)
        return ev

    def schedule_in(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for {label or 'event'}")
        return self.schedule_at(self._now + delay, callback, label)

    # -- execution -------------------------------------------------------

    def step(self) -> Optional[Event]:
        """Fire the next pending event; return it, or ``None`` if drained."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            ev = entry.event
            if ev.cancelled:
                continue
            ev._consumed = True
            ev._tracked = False
            self._pending -= 1
            self._now = entry.time
            self._fired += 1
            if self._fired > self.max_events:
                raise SimulationError(f"runaway simulation: >{self.max_events} events")
            if self._tracer is not None:
                self._tracer.instant("sim.engine.fire", cat="sim",
                                     track="sim", label=ev.label)
            ev.callback()
            return ev
        return None

    def run(self, until: float | None = None) -> float:
        """Fire events until the heap drains (or simulated ``until`` passes).

        Returns the final simulated time.  With ``until`` set, events at
        times strictly greater than ``until`` remain pending and the clock
        is advanced to ``until``.
        """
        t_start, fired_before = self._now, self._fired
        try:
            while self._heap:
                nxt = self._peek_time()
                if until is not None and nxt is not None and nxt > until:
                    self._now = max(self._now, until)
                    return self._now
                if self.step() is None:
                    break
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        finally:
            if self._tracer is not None and self._now > t_start:
                self._tracer.add_span("sim.engine.run", t_start, self._now,
                                      cat="sim", track="sim",
                                      fired=self._fired - fired_before)

    def _peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events.

        Maintained as a live counter (incremented on schedule, decremented
        on fire and on first cancel) so runners polling it per event stay
        O(1) instead of rescanning the whole heap.
        """
        return self._pending
