"""Hierarchical deterministic random streams.

All stochastic behaviour in the reproduction — instance speed heterogeneity,
EBS placement, measurement noise, corpus size draws, text generation — flows
through :class:`RngStream` objects.  Streams are forked by *name*, and a
child stream's seed is derived from ``(parent_seed, name)`` via a stable
hash, so:

* the same campaign seed always reproduces the same end-to-end run, and
* adding a brand-new consumer (a new fork name) never shifts the draws that
  existing consumers observe.  This is the property that keeps every figure
  in ``benchmarks/`` byte-stable as the codebase grows.

The implementation wraps :class:`numpy.random.Generator` (PCG64) and exposes
only the handful of distributions the project needs.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

__all__ = ["RngStream", "stable_seed"]


def stable_seed(parent_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``parent_seed`` and a stream name.

    Uses BLAKE2b rather than Python's ``hash`` so the derivation is stable
    across processes and Python versions (``PYTHONHASHSEED`` does not leak
    into results).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(parent_seed.to_bytes(16, "little", signed=False))
    h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest(), "little")


class RngStream:
    """A named, forkable deterministic random stream.

    Parameters
    ----------
    seed:
        Root seed for this stream.
    name:
        Dotted path describing where in the hierarchy this stream lives;
        informational only (shown in ``repr``), the seed is authoritative.
    """

    __slots__ = ("seed", "name", "_gen")

    def __init__(self, seed: int, name: str = "root") -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = int(seed)
        self.name = name
        self._gen = np.random.Generator(np.random.PCG64(self.seed))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStream(name={self.name!r}, seed={self.seed})"

    # -- forking ---------------------------------------------------------

    def fork(self, name: str) -> "RngStream":
        """Create an independent child stream.

        Forking is a pure function of ``(self.seed, name)``: it does not
        consume state from this stream, so forks may happen in any order.
        """
        return RngStream(stable_seed(self.seed, name), f"{self.name}.{name}")

    # -- scalar draws ----------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw from [low, high)."""
        return float(self._gen.uniform(low, high))

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        if high < low:
            raise ValueError(f"empty integer range [{low}, {high}]")
        return int(self._gen.integers(low, high + 1))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        """One normal draw."""
        return float(self._gen.normal(mean, std))

    def lognormal(self, mean: float, sigma: float) -> float:
        """One lognormal draw (log-space mean/sigma)."""
        return float(self._gen.lognormal(mean, sigma))

    def pareto(self, shape: float) -> float:
        """Standard Pareto draw (support ``[0, inf)``, heavier for small shape)."""
        return float(self._gen.pareto(shape))

    def exponential(self, scale: float) -> float:
        """One exponential draw with the given scale."""
        return float(self._gen.exponential(scale))

    def choice(self, options: Sequence, weights: Sequence[float] | None = None):
        """Pick one element of ``options`` (optionally weighted)."""
        if not len(options):
            raise ValueError("cannot choose from an empty sequence")
        p = None
        if weights is not None:
            w = np.asarray(weights, dtype=float)
            if w.shape != (len(options),):
                raise ValueError("weights must match options length")
            p = w / w.sum()
        idx = int(self._gen.choice(len(options), p=p))
        return options[idx]

    def shuffle(self, items: list) -> None:
        """In-place Fisher–Yates shuffle."""
        self._gen.shuffle(items)

    def sample_indices(self, n: int, k: int) -> list[int]:
        """``k`` distinct indices from ``range(n)`` (without replacement)."""
        if k > n:
            raise ValueError(f"cannot sample {k} from {n} without replacement")
        return [int(i) for i in self._gen.choice(n, size=k, replace=False)]

    # -- vector draws ----------------------------------------------------

    def normals(self, mean: float, std: float, size: int) -> np.ndarray:
        """Vector of normal draws."""
        return self._gen.normal(mean, std, size=size)

    def lognormals(self, mean: float, sigma: float, size: int) -> np.ndarray:
        """Vector of lognormal draws."""
        return self._gen.lognormal(mean, sigma, size=size)

    def uniforms(self, low: float, high: float, size: int) -> np.ndarray:
        """Vector of uniform draws."""
        return self._gen.uniform(low, high, size=size)

    def paretos(self, shape: float, size: int) -> np.ndarray:
        """Vector of standard Pareto draws."""
        return self._gen.pareto(shape, size=size)
