"""Deterministic simulation substrate.

This package provides the two low-level services every other subsystem
builds on:

* :mod:`repro.sim.random` — hierarchical, named RNG streams forked from a
  single campaign seed, so that adding a new consumer of randomness never
  perturbs the draws seen by existing consumers.
* :mod:`repro.sim.engine` — a small discrete-event engine with a binary-heap
  scheduler, used by the EC2 simulator to model instance lifecycles and by
  the plan runner to build per-instance timelines.
"""

from repro.sim.engine import Event, SimulationEngine
from repro.sim.random import RngStream

__all__ = ["Event", "SimulationEngine", "RngStream"]
