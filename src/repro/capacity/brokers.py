"""Composable capacity brokers: one surface over every way to buy capacity.

PRs past added four parallel acquisition paths — plain on-demand boots,
warm leases from a shared fleet, resilient retry/steer/hedge launches,
and spot placements behind a fallback ladder.  A
:class:`CapacityBroker` is the one protocol they all answer now:

* :meth:`~CapacityBroker.request` turns a :class:`CapacityRequest` (one
  bin's capacity need at a simulated instant) into a
  :class:`CapacityOffer` — the instance plus where it came from (zone,
  type, pricing model, boot latency, the lease when a fleet manager owns
  it) — or raises (:class:`OfferUnavailable`, a chaos rejection, a
  capacity/lease exhaustion) when this source cannot serve it;
* :meth:`~CapacityBroker.settle` returns the capacity when the bin is
  done — terminate a private boot, release a lease back to the warm
  pool.

Brokers compose: :class:`ResilientBroker` decorates any inner broker
with the retry ladder, and :class:`LadderBroker` chains brokers in
preference order, falling through on refusal.  ``LadderBroker([
WarmLeaseBroker(mgr), SpotBroker(...), OnDemandBroker()])`` is a
sentence: *prefer warm hours, then the market, then pay list price*.

The policy classes in :mod:`repro.runner` are thin broker
configurations over :class:`~repro.capacity.acquisition
.BrokerAcquisition`; the differential oracles in
``tests/test_capacity_differential.py`` prove each configuration
bit-identical to its pre-broker implementation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.cloud.types import AvailabilityZone, InstanceType

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.cluster import Cloud
    from repro.cloud.instance import Instance
    from repro.cloud.spot import SpotMarketBoard
    from repro.fleet.lease import Lease, LeaseManager
    from repro.resilience.launch import ResilientLauncher
    from repro.resilience.spot import SpotLadder

__all__ = [
    "CapacityBroker",
    "CapacityOffer",
    "CapacityRequest",
    "LadderBroker",
    "OfferUnavailable",
    "OnDemandBroker",
    "ResilientBroker",
    "SpotBinState",
    "SpotBroker",
    "WarmLeaseBroker",
]


class OfferUnavailable(RuntimeError):
    """This broker cannot serve the request; carries the failed-bin reason."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class CapacityRequest:
    """One bin's capacity need, as seen at a simulated instant.

    ``predicted`` is the perfmodel's estimate for the bin (brokers use it
    for lease sizing and preemptive escalation), ``deadline`` the plan
    deadline the work must fit, ``itype`` an explicit type override
    (escalation requests pin the primary type; ``None`` lets the broker
    choose its default).
    """

    bin_index: int | None = None
    units: list = field(default_factory=list)
    predicted: float = 0.0
    at: float = 0.0
    deadline: float | None = None
    tenant: str = "runner"
    campaign: str | None = None
    itype: InstanceType | None = None


@dataclass
class SpotBinState:
    """Where one bin currently runs: market, zone, type."""

    zone: str
    itype: InstanceType
    on_demand: bool = False


@dataclass
class CapacityOffer:
    """Capacity one broker granted: the instance and its provenance.

    ``pricing`` names the billing model (``"on-demand"`` ceil-hour,
    ``"spot"`` per-market-hour, ``"lease"`` manager-owned); ``wait`` is
    resilience-absorbed latency before the final boot; ``boot`` the
    final boot delay itself; ``lease`` is set when a fleet manager owns
    the instance (settle releases instead of terminating); ``state`` is
    the spot market placement when the spot broker made it.  ``broker``
    points back at the broker that must :meth:`~CapacityBroker.settle`
    this offer.
    """

    instance: "Instance"
    broker: "CapacityBroker"
    pricing: str = "on-demand"
    zone: str = ""
    itype: InstanceType | None = None
    boot: float = 0.0
    wait: float = 0.0
    lease: "Lease | None" = None
    state: SpotBinState | None = None
    span_extra: dict = field(default_factory=dict)


@runtime_checkable
class CapacityBroker(Protocol):
    """The one protocol every capacity source answers."""

    def request(self, cloud: "Cloud", req: CapacityRequest) -> CapacityOffer:
        """Grant capacity for ``req`` or raise why this source cannot."""
        ...

    def settle(self, cloud: "Cloud", offer: CapacityOffer,
               at: float) -> None:
        """Return the offer's capacity (terminate or release) at ``at``."""
        ...


def _zone_of(cloud: "Cloud", name: str) -> AvailabilityZone:
    """Resolve a zone name to the cloud's zone object."""
    for z in cloud.region.zones:
        if z.name == name:
            return z
    raise KeyError(f"no zone {name!r} in region {cloud.region.name}")


class OnDemandBroker:
    """List-price capacity: one plain ``launch_instance`` per request.

    The terminal rung of every ladder — it never refuses on its own
    (chaos rejections propagate as the cloud raises them).  ``itype`` /
    ``zone`` pin the launch; a request's explicit ``itype`` wins.
    """

    def __init__(self, itype: InstanceType | None = None,
                 zone: AvailabilityZone | None = None) -> None:
        self.itype = itype
        self.zone = zone

    def request(self, cloud: "Cloud", req: CapacityRequest) -> CapacityOffer:
        """Launch one instance at the posted rate (still PENDING)."""
        itype = req.itype if req.itype is not None else self.itype
        if itype is None:
            inst = (cloud.launch_instance(zone=self.zone, wait=False)
                    if self.zone is not None
                    else cloud.launch_instance(wait=False))
        else:
            inst = cloud.launch_instance(itype, self.zone, wait=False)
        return CapacityOffer(instance=inst, broker=self,
                             pricing="on-demand", zone=inst.zone.name,
                             itype=inst.itype, boot=inst.boot_delay)

    def settle(self, cloud: "Cloud", offer: CapacityOffer,
               at: float) -> None:
        """Terminate the private boot."""
        offer.instance.terminate(at)


class WarmLeaseBroker:
    """Shared-fleet capacity: every request draws a lease from a manager.

    Warm hits ride hours someone already paid for; settle releases the
    lease back to the pool (billing stays with the manager).  Raises
    :class:`~repro.fleet.lease.LeaseError` when the manager is exhausted,
    which a :class:`LadderBroker` treats as fall-through.
    """

    def __init__(self, manager: "LeaseManager", *, tenant: str = "default",
                 campaign: str | None = None) -> None:
        self.manager = manager
        self.tenant = tenant
        self.campaign = campaign

    def request(self, cloud: "Cloud", req: CapacityRequest) -> CapacityOffer:
        """Draw a lease sized to the request's predicted seconds."""
        campaign = req.campaign if req.campaign is not None else self.campaign
        lease = self.manager.acquire(self.tenant, est_seconds=req.predicted,
                                     at=req.at, campaign=campaign)
        return CapacityOffer(
            instance=lease.instance, broker=self, pricing="lease",
            zone=lease.instance.zone.name, itype=lease.instance.itype,
            boot=lease.ready_at - req.at, lease=lease,
            span_extra={"tenant": self.tenant, "source": lease.source})

    def settle(self, cloud: "Cloud", offer: CapacityOffer,
               at: float) -> None:
        """Release the lease back to the warm pool."""
        self.manager.release(offer.lease, at)


class ResilientBroker:
    """Retry/steer/hedge as a decorator: absorb faults, pay in latency.

    With no ``inner`` the launcher's own zone-steered
    ``launch_instance`` path runs (bit-identical to the pre-broker
    resilient fleet launch); with an ``inner`` broker the same retry
    schedule wraps *its* requests — e.g. a resilient spot ladder — with
    each refusal feeding the backoff and the absorbed wait landing on
    the offer's ``wait``.
    """

    def __init__(self, launcher: "ResilientLauncher", *,
                 inner: "CapacityBroker | None" = None) -> None:
        self.launcher = launcher
        self.inner = inner

    def request(self, cloud: "Cloud", req: CapacityRequest) -> CapacityOffer:
        """Acquire through the retry ladder; raise ``CapacityError`` spent."""
        if self.inner is None:
            acq = self.launcher.launch(at=req.at)
            return CapacityOffer(
                instance=acq.instance, broker=self, pricing="on-demand",
                zone=acq.zone, itype=acq.instance.itype,
                boot=acq.instance.boot_delay, wait=acq.wait_seconds)
        return self._request_inner(cloud, req)

    def _request_inner(self, cloud: "Cloud",
                       req: CapacityRequest) -> CapacityOffer:
        from repro.chaos import ChaosError
        from repro.fleet.lease import LeaseError
        from repro.resilience.launch import CapacityError

        launcher = self.launcher
        waited = 0.0
        faults: list[str] = []
        delays = launcher.retry.delays(
            launcher.rng.fork(f"acquire.{launcher.attempts}"))
        attempt = 0
        while attempt < launcher.retry.max_attempts:
            attempt += 1
            launcher.attempts += 1
            try:
                offer = self.inner.request(
                    cloud, dataclasses.replace(req, at=req.at + waited))
            except (ChaosError, LeaseError, OfferUnavailable) as e:
                reason = getattr(e, "reason", None) or str(e)
                faults.append(reason)
                launcher.absorbed_faults += 1
                delay = next(delays, None)
                if delay is None:
                    break
                waited += delay
                continue
            launcher.wait_seconds_total += waited
            offer.wait += waited
            return offer
        launcher.wait_seconds_total += waited
        raise CapacityError(
            f"no capacity after {attempt} attempts / {waited:.0f}s of "
            f"backoff (faults: {', '.join(faults) or 'none'})")

    def settle(self, cloud: "Cloud", offer: CapacityOffer,
               at: float) -> None:
        """Settle with whoever granted (the launcher path terminates)."""
        if offer.broker is not self:
            offer.broker.settle(cloud, offer, at)
        else:
            offer.instance.terminate(at)


class SpotBroker:
    """Market capacity behind the fallback ladder's initial-placement rung.

    Replicates the spot acquisition decision sequence exactly: a bin
    whose prediction plus the safety buffer cannot fit the deadline
    escalates before touching the market (*preemptive-start*); otherwise
    the cheapest zone the bid covers gets the launch; an unaffordable
    market or a rejected launch escalates when the policy allows, else
    the request fails with ``"spot-unavailable"``.  Escalations route
    through the ``escalation`` broker — an :class:`OnDemandBroker` by
    default, a warm-lease/on-demand :class:`LadderBroker` when a fleet
    should absorb escalated segments.
    """

    def __init__(self, board: "SpotMarketBoard", ladder: "SpotLadder", *,
                 stats=None,
                 escalation: "CapacityBroker | None" = None) -> None:
        if stats is None:
            from repro.runner.spot import SpotRunStats
            stats = SpotRunStats()
        self.board = board
        self.ladder = ladder
        self.stats = stats
        self.escalation = (escalation if escalation is not None
                           else OnDemandBroker())

    def request(self, cloud: "Cloud", req: CapacityRequest) -> CapacityOffer:
        """Place one bin on spot, or escalate, or refuse."""
        from repro.chaos import ChaosError

        p = self.ladder.policy
        deadline = req.deadline if req.deadline is not None else float("inf")
        if self.ladder.should_escalate(req.predicted, deadline):
            return self._escalate(cloud, req, reason="preemptive-start")
        zone = self.ladder.initial_zone(req.at)
        if zone is None:
            # Nothing affordable at t=0: escalate or refuse.
            if p.escalate:
                return self._escalate(cloud, req,
                                      reason="unaffordable-start")
            raise OfferUnavailable("spot-unavailable")
        try:
            inst = cloud.launch_instance(
                p.itype, _zone_of(cloud, zone), wait=False)
        except ChaosError as e:
            if p.escalate:
                return self._escalate(cloud, req,
                                      reason=f"launch-rejected: {e}")
            raise OfferUnavailable("spot-unavailable") from e
        state = SpotBinState(zone=zone, itype=p.itype)
        return CapacityOffer(
            instance=inst, broker=self, pricing="spot", zone=zone,
            itype=p.itype, boot=inst.boot_delay, state=state,
            span_extra={"market": "spot", "zone": zone})

    def _escalate(self, cloud: "Cloud", req: CapacityRequest, *,
                  reason: str) -> CapacityOffer:
        """Route one bin to the escalation broker at the primary type."""
        from repro.chaos import ChaosError
        from repro.fleet.lease import LeaseError
        from repro.resilience.launch import CapacityError

        p = self.ladder.policy
        try:
            offer = self.escalation.request(
                cloud, dataclasses.replace(req, itype=p.itype))
        except (ChaosError, OfferUnavailable, CapacityError, LeaseError) as e:
            raise OfferUnavailable("spot-unavailable") from e
        self.stats.escalations += 1
        self.stats.preemptive_escalations += 1
        if cloud.obs.enabled:
            cloud.obs.metrics.counter("runner.spot.escalations",
                                      reason=reason.split(":")[0]).inc()
        offer.state = SpotBinState(zone=offer.instance.zone.name,
                                   itype=p.itype, on_demand=True)
        offer.span_extra = {"market": "on-demand", "zone": offer.state.zone}
        return offer

    def escalation_offer(self, cloud: "Cloud", *, at: float,
                         predicted: float, bin_index: int | None,
                         itype: InstanceType) -> CapacityOffer:
        """A mid-run escalation draw (segment restart, not placement).

        No preemptive-start bookkeeping: the segment loop already
        counted the rung.  Chaos rejections propagate exactly as the
        direct ``launch_instance`` call they replace did.
        """
        campaign = None if bin_index is None else f"bin-{bin_index}"
        return self.escalation.request(cloud, CapacityRequest(
            bin_index=bin_index, predicted=predicted, at=at,
            tenant="spot", campaign=campaign, itype=itype))

    def settle(self, cloud: "Cloud", offer: CapacityOffer,
               at: float) -> None:
        """Settle with whoever granted (spot placements terminate)."""
        if offer.broker is not self:
            offer.broker.settle(cloud, offer, at)
        else:
            offer.instance.terminate(at)


class LadderBroker:
    """Chain brokers in preference order; refusal falls through.

    A broker *refuses* by raising :class:`OfferUnavailable`, a chaos
    rejection, a :class:`~repro.resilience.launch.CapacityError` or a
    :class:`~repro.fleet.lease.LeaseError`; the last broker's exception
    propagates so callers see the terminal failure mode unchanged.
    """

    def __init__(self, brokers: Sequence["CapacityBroker"]) -> None:
        if not brokers:
            raise ValueError("LadderBroker needs at least one broker")
        self.brokers = list(brokers)

    def request(self, cloud: "Cloud", req: CapacityRequest) -> CapacityOffer:
        """First broker that serves the request wins."""
        from repro.chaos import ChaosError
        from repro.fleet.lease import LeaseError
        from repro.resilience.launch import CapacityError

        last = len(self.brokers) - 1
        for i, broker in enumerate(self.brokers):
            try:
                return broker.request(cloud, req)
            except (OfferUnavailable, ChaosError, CapacityError, LeaseError):
                if i == last:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def settle(self, cloud: "Cloud", offer: CapacityOffer,
               at: float) -> None:
        """Settle with the broker that granted the offer."""
        offer.broker.settle(cloud, offer, at)
