"""The one acquisition policy: any broker stack, plugged into the core.

:class:`BrokerAcquisition` adapts a :class:`~repro.capacity.brokers
.CapacityBroker` (or any composition of them) to the
:class:`~repro.runner.core.AcquisitionPolicy` protocol the
:class:`~repro.runner.core.ExecutionCore` drives.  The pre-broker
policies survive as factories returning configured instances of this
class — ``FleetLaunchAcquisition`` is an on-demand/resilient stack,
``LeaseAcquisition`` a lazy warm-lease stack, ``SpotAcquisition`` a spot
stack — each bit-identical to its hand-written predecessor
(``tests/test_capacity_differential.py``).

Two granting modes:

* **eager** (default): every occupied bin is requested up front, the
  fleet barrier is the slowest offer's ready time, and instances are
  marked RUNNING together at the barrier — the private-fleet shape;
* **lazy** (``lazy=True``): bins are requested one at a time inside
  :meth:`grants`, after work start — the shared-fleet shape, where
  releasing bin *n*'s lease is what lets bin *n+1* warm-hit it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.capacity.brokers import (
    CapacityBroker,
    CapacityOffer,
    CapacityRequest,
    OfferUnavailable,
    SpotBinState,
)
from repro.runner.core import BinGrant, CoreContext
from repro.runner.execute import FailedBin

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.lease import LeaseManager
    from repro.resilience.launch import ResilientLauncher

__all__ = ["BrokerAcquisition"]


class BrokerAcquisition:
    """Acquire every bin's capacity through one broker stack.

    ``on_fault="fail-bin"`` records refused requests as
    :class:`~repro.runner.execute.FailedBin` entries; ``on_fault=
    "raise"`` propagates the fault (the event-driven runner's legacy
    contract).  Replacements route through
    :func:`~repro.resilience.launch.acquire_replacement` with this
    policy's ``launcher``/``lease_manager``, keeping warm re-attach vs
    fresh-boot penalty timing in exactly one place.
    """

    def __init__(self, broker: CapacityBroker, *, lazy: bool = False,
                 on_fault: str = "fail-bin",
                 launcher: "ResilientLauncher | None" = None,
                 lease_manager: "LeaseManager | None" = None,
                 replacement_tenant: str = "runner",
                 campaign: str | None = None) -> None:
        if on_fault not in ("fail-bin", "raise"):
            raise ValueError("on_fault must be 'fail-bin' or 'raise'")
        self.broker = broker
        self.lazy = lazy
        self.on_fault = on_fault
        self.launcher = launcher
        self.lease_manager = lease_manager
        self.replacement_tenant = replacement_tenant
        self.campaign = campaign
        self._offers: dict[int, CapacityOffer] = {}

    # -- offer introspection (the spot progress loop reads these) ----------

    def bin_offer(self, index: int) -> CapacityOffer | None:
        """The offer behind one bin's grant (``None`` if it never got one)."""
        return self._offers.get(index)

    def bin_state(self, index: int) -> SpotBinState:
        """The spot market placement behind one bin's grant."""
        state = self._offers[index].state
        if state is None:
            raise KeyError(f"bin {index} was not placed by a spot broker")
        return state

    # -- AcquisitionPolicy ---------------------------------------------------

    def _request(self, ctx: CoreContext, idx: int, at: float) -> CapacityRequest:
        return CapacityRequest(
            bin_index=idx, units=ctx.by_index[idx],
            predicted=ctx.predicted[idx], at=at, deadline=ctx.plan.deadline,
            tenant=self.replacement_tenant, campaign=self.campaign)

    def _grant(self, idx: int, units: list, offer: CapacityOffer,
               at: float, predicted: float) -> BinGrant:
        self._offers[idx] = offer
        if offer.lease is not None:
            boot = offer.lease.ready_at - at
            work_start = offer.lease.ready_at if self.lazy else 0.0
        else:
            boot = offer.wait + offer.instance.boot_delay
            work_start = 0.0
        return BinGrant(
            index=idx, units=units, instance=offer.instance,
            launch_wait=offer.wait, boot_delay=boot, work_start=work_start,
            predicted=predicted, lease=offer.lease,
            span_extra=dict(offer.span_extra))

    def acquire_fleet(self, ctx: CoreContext) -> None:
        """Request every occupied bin up front (eager mode only)."""
        from repro.chaos import ChaosError
        from repro.resilience.launch import CapacityError

        if self.lazy:
            return  # capacity is drawn per bin, inside grants()
        now = ctx.cloud.now
        grants: list[BinGrant] = []
        launch_failures = 0
        for idx, units in ctx.occupied:
            req = self._request(ctx, idx, now)
            if self.on_fault == "raise":
                offer = self.broker.request(ctx.cloud, req)
            else:
                try:
                    offer = self.broker.request(ctx.cloud, req)
                except OfferUnavailable as e:
                    ctx.report.failures.append(FailedBin(
                        bin_index=idx, reason=e.reason, n_units=len(units),
                        volume=sum(u.size for u in units)))
                    if ctx.obs.enabled:
                        ctx.obs.metrics.counter("runner.bins.failed",
                                                reason=e.reason).inc()
                    continue
                except ChaosError as e:
                    reason = getattr(e, "reason", None) or str(e)
                    ctx.report.failures.append(FailedBin(
                        bin_index=idx, reason=reason, n_units=len(units),
                        volume=sum(u.size for u in units)))
                    launch_failures += 1
                    continue
                except CapacityError as e:
                    ctx.report.failures.append(FailedBin(
                        bin_index=idx, reason=f"capacity-exhausted: {e}",
                        n_units=len(units),
                        volume=sum(u.size for u in units)))
                    launch_failures += 1
                    continue
            grants.append(self._grant(idx, units, offer, now,
                                      ctx.predicted[idx]))
        if launch_failures and ctx.obs.enabled:
            ctx.obs.metrics.counter("runner.launches.failed"
                                    ).inc(launch_failures)
        ctx.grants = grants

    def work_start_time(self, ctx: CoreContext) -> float | None:
        """The fleet barrier (eager) or the current instant (lazy)."""
        if self.lazy:
            return ctx.cloud.now if ctx.occupied else None
        if not ctx.grants:
            return None
        return max(
            (g.lease.ready_at if g.lease is not None
             else g.instance.ready_at + g.launch_wait)
            for g in ctx.grants)

    def on_work_start(self, ctx: CoreContext) -> None:
        """Mark eager grants RUNNING at the barrier; set the report rate."""
        if self.lazy:
            return  # the lease manager marks cold boots RUNNING itself
        for g in ctx.grants:
            if g.lease is None:
                g.instance.mark_running(ctx.engine.now)
            g.work_start = ctx.work_start
        ctx.report.rate = ctx.grants[0].instance.itype.hourly_rate

    def grants(self, ctx: CoreContext) -> Iterator[BinGrant]:
        """Yield grants in bin order (lazily requesting in lazy mode)."""
        if not self.lazy:
            yield from ctx.grants
            return
        t0 = ctx.work_start
        for idx, units in ctx.occupied:
            offer = self.broker.request(ctx.cloud,
                                        self._request(ctx, idx, t0))
            yield self._grant(idx, units, offer, t0, ctx.predicted[idx])

    def replacement(self, ctx: CoreContext, *, at: float,
                    est_seconds: float = 0.0, bin_index: int | None = None,
                    boot_attach_penalty: float = 180.0,
                    warm_attach_penalty: float = 30.0):
        """Draw a replacement through the one shared penalty-timing path."""
        from repro.resilience.launch import acquire_replacement

        campaign = self.campaign if bin_index is None else f"bin-{bin_index}"
        return acquire_replacement(
            ctx.cloud, at=at, est_seconds=est_seconds,
            lease_manager=self.lease_manager, launcher=self.launcher,
            tenant=self.replacement_tenant, campaign=campaign,
            boot_attach_penalty=boot_attach_penalty,
            warm_attach_penalty=warm_attach_penalty)
