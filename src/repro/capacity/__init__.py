"""Composable capacity acquisition: brokers, offers, and the one policy.

Every way this project gets machines — plain on-demand launches, warm
lease pools, the 2010 spot market with its fallback ladder, resilient
retry/breaker/hedge stacks — is expressed as a
:class:`~repro.capacity.brokers.CapacityBroker` producing
:class:`~repro.capacity.brokers.CapacityOffer` values, and every runner
entry point drives them through one
:class:`~repro.capacity.acquisition.BrokerAcquisition` policy.  Brokers
compose: a :class:`~repro.capacity.brokers.LadderBroker` chains stacks in
preference order, a :class:`~repro.capacity.brokers.ResilientBroker`
wraps any inner stack with retry/backoff, and a
:class:`~repro.capacity.brokers.SpotBroker` escalates into whatever
broker it is given — which is how DAG stages end up on spot capacity
with warm-lease escalation without any runner growing new code paths.
"""

from repro.capacity.brokers import (
    CapacityBroker,
    CapacityOffer,
    CapacityRequest,
    LadderBroker,
    OfferUnavailable,
    OnDemandBroker,
    ResilientBroker,
    SpotBinState,
    SpotBroker,
    WarmLeaseBroker,
)
from repro.capacity.acquisition import BrokerAcquisition

__all__ = [
    "BrokerAcquisition",
    "CapacityBroker",
    "CapacityOffer",
    "CapacityRequest",
    "LadderBroker",
    "OfferUnavailable",
    "OnDemandBroker",
    "ResilientBroker",
    "SpotBinState",
    "SpotBroker",
    "WarmLeaseBroker",
]
