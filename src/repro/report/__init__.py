"""Figure/table regeneration support.

:mod:`repro.report.figures` holds the series containers and ASCII renderer
the benchmark harness prints; :mod:`repro.report.compare` builds
paper-vs-measured comparison rows for EXPERIMENTS.md.
"""

from repro.report.compare import ComparisonRow, ComparisonTable
from repro.report.figures import FigureResult, Series, render_ascii
from repro.report.gantt import render_gantt, render_trace_gantt, trace_rows

__all__ = ["Series", "FigureResult", "render_ascii", "render_gantt",
           "render_trace_gantt", "trace_rows",
           "ComparisonRow", "ComparisonTable"]
