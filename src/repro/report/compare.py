"""Paper-vs-measured comparison rows.

Benchmarks append rows here and print the table; the same rows populate
EXPERIMENTS.md.  The reproduction targets *shape* agreement (who wins, by
roughly what factor, where crossovers fall), so each row carries an
explicit agreement verdict rather than pretending to match 2010 testbed
absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ComparisonRow", "ComparisonTable"]


@dataclass(frozen=True)
class ComparisonRow:
    exp_id: str
    quantity: str
    paper: str
    measured: str
    agree: bool

    def markdown(self) -> str:
        """One markdown table row (or the whole table)."""
        mark = "yes" if self.agree else "NO"
        return f"| {self.exp_id} | {self.quantity} | {self.paper} | {self.measured} | {mark} |"


@dataclass
class ComparisonTable:
    rows: list[ComparisonRow] = field(default_factory=list)

    def add(self, exp_id: str, quantity: str, paper, measured, agree: bool) -> ComparisonRow:
        """Append a paper-vs-measured row."""
        row = ComparisonRow(exp_id=exp_id, quantity=quantity,
                            paper=str(paper), measured=str(measured), agree=bool(agree))
        self.rows.append(row)
        return row

    @property
    def all_agree(self) -> bool:
        return all(r.agree for r in self.rows)

    def markdown(self) -> str:
        """One markdown table row (or the whole table)."""
        head = ("| experiment | quantity | paper | measured | agrees |\n"
                "|---|---|---|---|---|")
        return "\n".join([head] + [r.markdown() for r in self.rows])

    def render(self) -> str:
        """Plain-text rows with ok/!! agreement flags."""
        w_q = max((len(r.quantity) for r in self.rows), default=8)
        lines = []
        for r in self.rows:
            mark = "ok " if r.agree else "!! "
            lines.append(f"{mark}[{r.exp_id}] {r.quantity:<{w_q}}  paper={r.paper}  measured={r.measured}")
        return "\n".join(lines)
