"""ASCII Gantt rendering of fleet executions.

Turns an :class:`~repro.runner.execute.ExecutionReport` into the
per-instance bar chart the paper's Figs. 8–9 sketch: one row per instance,
boot and work phases, the deadline as a vertical marker, misses flagged.

:func:`render_trace_gantt` draws the same chart straight from a recorded
:class:`~repro.obs.trace.Tracer`: every span track becomes a row and every
span an interval on it, so any traced run — campaign, fault-tolerant
replay, probe protocol — can be inspected without the runner assembling
an interval list by hand.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.obs.trace import SpanRecord, Tracer
from repro.runner.execute import ExecutionReport
from repro.units import fmt_seconds

__all__ = ["render_gantt", "render_trace_gantt", "trace_rows"]


def render_gantt(report: ExecutionReport, *, width: int = 64,
                 include_boot: bool = False) -> str:
    """Render per-instance execution bars against the deadline.

    ``=`` work, ``b`` boot (with ``include_boot``), ``|`` the deadline,
    ``!`` marks instances that missed it.
    """
    if width < 20:
        raise ValueError("width must be at least 20 columns")
    if not report.runs:
        return "(no instances ran)"
    horizon = max(
        max(r.duration + (r.boot_delay if include_boot else 0.0)
            for r in report.runs),
        report.deadline,
    )
    scale = (width - 1) / horizon if horizon > 0 else 0.0
    deadline_col = int(report.deadline * scale)

    id_w = max(len(r.instance_id) for r in report.runs)
    lines = [
        f"deadline {fmt_seconds(report.deadline)} at column marker '|'; "
        f"strategy {report.strategy}"
    ]
    for r in report.runs:
        boot_cols = int(r.boot_delay * scale) if include_boot else 0
        work_cols = max(1, int(r.duration * scale))
        bar = "b" * boot_cols + "=" * work_cols
        bar = bar.ljust(width)
        # overlay the deadline marker
        if deadline_col < len(bar):
            bar = bar[:deadline_col] + "|" + bar[deadline_col + 1:]
        flag = " !" if r.missed(report.deadline, include_boot=include_boot) else ""
        lines.append(f"{r.instance_id:>{id_w}} {bar} "
                     f"{fmt_seconds(r.duration)}{flag}")
    lines.append(f"{'':>{id_w}} makespan {fmt_seconds(report.makespan)}, "
                 f"{report.n_missed} missed, {report.instance_hours} inst-h")
    return "\n".join(lines)


def trace_rows(
    source: Union[Tracer, Iterable[SpanRecord]],
    *,
    category: str | None = None,
    group_by: str | None = None,
) -> dict[str, list[SpanRecord]]:
    """Group recorded spans by track, preserving first-appearance order.

    ``source`` is a :class:`Tracer` or any iterable of
    :class:`SpanRecord`; ``category`` keeps only spans whose ``cat``
    matches (``None`` keeps everything).  With ``group_by``, rows are
    keyed by that span *argument* instead of the track — e.g.
    ``group_by="tenant"`` collapses a multi-tenant fleet trace into one
    row per tenant; spans lacking the argument land on ``"(other)"``.
    """
    spans = source.spans if isinstance(source, Tracer) else list(source)
    rows: dict[str, list[SpanRecord]] = {}
    for s in spans:
        if category is not None and s.cat != category:
            continue
        key = s.track if group_by is None else str(s.args.get(group_by,
                                                              "(other)"))
        rows.setdefault(key, []).append(s)
    return rows


def render_trace_gantt(
    source: Union[Tracer, Iterable[SpanRecord]],
    *,
    width: int = 64,
    category: str | None = None,
    deadline: float | None = None,
    group_by: str | None = None,
) -> str:
    """Render recorded trace spans as a per-track Gantt chart.

    One row per span track (instance, "probes", "campaign", ...), one
    ``=`` bar per span, scaled over the union of all span intervals.
    Zero-duration spans (packing on simulated time) render as a single
    ``.``.  ``deadline`` draws the same ``|`` marker as
    :func:`render_gantt`, measured from the earliest span start.
    ``group_by`` re-keys rows by a span argument (see :func:`trace_rows`)
    — ``group_by="tenant"`` gives a shared fleet one row per tenant.
    """
    if width < 20:
        raise ValueError("width must be at least 20 columns")
    rows = trace_rows(source, category=category, group_by=group_by)
    if not rows:
        return "(no spans recorded)"
    t_lo = min(s.t0 for spans in rows.values() for s in spans)
    t_hi = max(s.t1 for spans in rows.values() for s in spans)
    horizon = t_hi - t_lo
    if deadline is not None:
        horizon = max(horizon, deadline)
    scale = (width - 1) / horizon if horizon > 0 else 0.0

    id_w = max(len(track) for track in rows)
    n_spans = sum(len(spans) for spans in rows.values())
    header = (f"{n_spans} spans over {fmt_seconds(horizon)}"
              + (f" in category '{category}'" if category else ""))
    if deadline is not None:
        header += f"; deadline {fmt_seconds(deadline)} at column marker '|'"
    lines = [header]
    for track, spans in rows.items():
        cells = [" "] * width
        for s in spans:
            c0 = int((s.t0 - t_lo) * scale)
            c1 = int((s.t1 - t_lo) * scale)
            if c1 > c0:
                for c in range(c0, min(c1, width)):
                    cells[c] = "="
            elif cells[c0] == " ":
                cells[c0] = "."
        if deadline is not None:
            dcol = int(deadline * scale)
            if dcol < width:
                cells[dcol] = "|"
        busy = sum(s.duration for s in spans)
        lines.append(f"{track:>{id_w}} {''.join(cells)} "
                     f"{fmt_seconds(busy)} ({len(spans)} spans)")
    return "\n".join(lines)
