"""ASCII Gantt rendering of fleet executions.

Turns an :class:`~repro.runner.execute.ExecutionReport` into the
per-instance bar chart the paper's Figs. 8–9 sketch: one row per instance,
boot and work phases, the deadline as a vertical marker, misses flagged.
"""

from __future__ import annotations

from repro.runner.execute import ExecutionReport
from repro.units import fmt_seconds

__all__ = ["render_gantt"]


def render_gantt(report: ExecutionReport, *, width: int = 64,
                 include_boot: bool = False) -> str:
    """Render per-instance execution bars against the deadline.

    ``=`` work, ``b`` boot (with ``include_boot``), ``|`` the deadline,
    ``!`` marks instances that missed it.
    """
    if width < 20:
        raise ValueError("width must be at least 20 columns")
    if not report.runs:
        return "(no instances ran)"
    horizon = max(
        max(r.duration + (r.boot_delay if include_boot else 0.0)
            for r in report.runs),
        report.deadline,
    )
    scale = (width - 1) / horizon if horizon > 0 else 0.0
    deadline_col = int(report.deadline * scale)

    id_w = max(len(r.instance_id) for r in report.runs)
    lines = [
        f"deadline {fmt_seconds(report.deadline)} at column marker '|'; "
        f"strategy {report.strategy}"
    ]
    for r in report.runs:
        boot_cols = int(r.boot_delay * scale) if include_boot else 0
        work_cols = max(1, int(r.duration * scale))
        bar = "b" * boot_cols + "=" * work_cols
        bar = bar.ljust(width)
        # overlay the deadline marker
        if deadline_col < len(bar):
            bar = bar[:deadline_col] + "|" + bar[deadline_col + 1:]
        flag = " !" if r.missed(report.deadline, include_boot=include_boot) else ""
        lines.append(f"{r.instance_id:>{id_w}} {bar} "
                     f"{fmt_seconds(r.duration)}{flag}")
    lines.append(f"{'':>{id_w}} makespan {fmt_seconds(report.makespan)}, "
                 f"{report.n_missed} missed, {report.instance_hours} inst-h")
    return "\n".join(lines)
