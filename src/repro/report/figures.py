"""Series containers and terminal rendering for regenerated figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Series", "FigureResult", "render_ascii"]


@dataclass(frozen=True)
class Series:
    """One plotted line/bar group: labelled (x, y[, yerr]) data."""

    label: str
    x: tuple
    y: tuple[float, ...]
    yerr: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.label!r}: x and y lengths differ")
        if self.yerr is not None and len(self.yerr) != len(self.y):
            raise ValueError(f"series {self.label!r}: yerr length differs")


@dataclass
class FigureResult:
    """A regenerated paper figure: id, title, data series, free-form notes."""

    fig_id: str
    title: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, label: str, x: Sequence, y: Sequence[float],
            yerr: Sequence[float] | None = None) -> None:
        """Append one series (values coerced to float)."""
        self.series.append(Series(
            label=label, x=tuple(x), y=tuple(float(v) for v in y),
            yerr=tuple(float(v) for v in yerr) if yerr is not None else None,
        ))

    def note(self, text: str) -> None:
        """Attach a free-form annotation."""
        self.notes.append(text)

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready representation of the figure."""
        return {
            "fig_id": self.fig_id,
            "title": self.title,
            "series": [
                {"label": s.label, "x": list(s.x), "y": list(s.y),
                 "yerr": list(s.yerr) if s.yerr is not None else None}
                for s in self.series
            ],
            "notes": list(self.notes),
        }

    def save(self, path) -> None:
        """Write the figure's data as JSON (for external plotting)."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2),
                              encoding="utf-8")

    @classmethod
    def load(cls, path) -> "FigureResult":
        import json
        from pathlib import Path

        d = json.loads(Path(path).read_text(encoding="utf-8"))
        fig = cls(d["fig_id"], d["title"])
        for s in d["series"]:
            fig.add(s["label"], s["x"], s["y"], yerr=s["yerr"])
        for n in d["notes"]:
            fig.note(n)
        return fig


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:,.4g}"
    if isinstance(v, int) and abs(v) >= 10_000:
        return f"{v:,}"
    return str(v)


def render_ascii(fig: FigureResult, *, bar_width: int = 40) -> str:
    """Render a figure as aligned text tables with unicode bars.

    This is what each benchmark prints so the regenerated "figure" is
    inspectable straight from the pytest output.
    """
    out: list[str] = [f"== {fig.fig_id}: {fig.title} =="]
    for s in fig.series:
        out.append(f"-- {s.label}")
        if not s.y:
            out.append("   (empty series)")
            continue
        ymax = max(s.y) or 1.0
        xw = max((len(_fmt(x)) for x in s.x), default=1)
        for i, (x, y) in enumerate(zip(s.x, s.y)):
            bar = "#" * max(1, int(round(bar_width * y / ymax))) if y > 0 else ""
            err = f" ±{_fmt(s.yerr[i])}" if s.yerr else ""
            out.append(f"   {_fmt(x):>{xw}}  {_fmt(y):>10}{err:<12} {bar}")
    for n in fig.notes:
        out.append(f"   note: {n}")
    return "\n".join(out)
