"""Side experiments: §3.1 instance switching, §4 protocol trace, §1 output
retrieval, and the spot-market extension."""

from __future__ import annotations


from repro.apps import GrepApplication, GrepCostProfile, PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, ExecutionService, Workload
from repro.cloud.spot import SpotMarket, SpotRequest
from repro.corpus import text_400k_like
from repro.obs import get_logger
from repro.obs.ledger import record_experiment
from repro.report.figures import FigureResult
from repro.sim.random import RngStream
from repro.units import GB, KB, MB

__all__ = ["instance_switching", "probe_protocol_trace", "output_retrieval",
           "spot_tradeoff", "prediction_approaches", "sampling_vitality"]

_log = get_logger("experiments.side")


def sampling_vitality(seed: int = 23) -> tuple[FigureResult, dict]:
    """§5.2 closing claim: sampling barely helps uniform corpora but is
    vital for complexity-clustered ones.

    Both corpora get the same treatment: head-only probes fit a model, a
    random-sample refit fits another, and each predicts the time to
    process the *whole* catalogue on the probing instance.  The comparison
    is the relative prediction error before vs after sampling.
    """
    from repro.apps import PosCostProfile, PosTaggerApplication
    from repro.cloud import ExecutionService
    from repro.corpus import mixed_domain_like, text_400k_like
    from repro.perfmodel import (
        ProbeCampaign,
        build_probe_set,
        collect_sample_points,
        fit_affine,
        refit_with_samples,
    )
    from repro.units import KB, MB

    wl = Workload("postag", PosTaggerApplication(), PosCostProfile())
    out: dict[str, dict] = {}
    for name, cat in (
        ("uniform_news", text_400k_like(scale=0.05, seed=seed)),
        ("clustered_domains", mixed_domain_like(scale=0.05, seed=seed)),
    ):
        _log.info("sampling_vitality: corpus %s (%d files)", name, len(cat))
        cloud = Cloud(seed=seed)
        inst = cloud.launch_instance()
        inst.cpu_factor = inst.io_factor = 1.0
        svc = ExecutionService(cloud)
        campaign = ProbeCampaign(svc, inst, wl, repeats=3)

        xs: list[float] = []
        ys: list[float] = []
        for vol in (200 * KB, 1 * MB, 4 * MB):
            ps = build_probe_set(cat, vol, [])
            m = campaign.measure(ps.variants["orig"], directory=f"{name}/v{vol}")
            actual_v = float(sum(u.size for u in ps.variants["orig"]))
            for t in m.values:
                xs.append(actual_v)
                ys.append(t)
        head_model = fit_affine(xs, ys)

        pts = collect_sample_points(
            campaign, cat, cloud.rng.fork("vitality.samples"),
            n_samples=4, sample_volume=4 * MB, unit_size=None)
        refit = refit_with_samples(list(zip(xs, ys)), pts)

        actual = svc.run(inst, list(cat), wl)
        err_head = abs(head_model.predict(cat.total_size) - actual) / actual
        err_refit = abs(refit.predict(cat.total_size) - actual) / actual
        _log.info("sampling_vitality: %s head error %.1f%%, refit error %.1f%%",
                  name, 100 * err_head, 100 * err_refit)
        out[name] = {
            "head_error": float(err_head),
            "refit_error": float(err_refit),
            "improvement": float(err_head - err_refit),
        }

    fig = FigureResult("Vitality", "§5.2: when does random sampling matter?")
    fig.add("prediction error (head-probe model)",
            list(out), [out[k]["head_error"] for k in out])
    fig.add("prediction error (after sampling refit)",
            list(out), [out[k]["refit_error"] for k in out])
    fig.note("uniform corpus: sampling changes little; clustered corpus: "
             "head-only probing is badly biased and sampling rescues it")
    record_experiment("exp_side.sampling_vitality", extra=out)
    return fig, out


def prediction_approaches(seed: int = 55, scale: float = 5e-3) -> tuple[FigureResult, dict]:
    """§4: analytical vs empirical vs historical prediction of a held-out run.

    All three approaches predict the same multi-GB grep at 100 MB units on
    a vetted instance, each from what it would realistically have:
    bonnie + differential microbenchmarks (analytical), the §4 probe
    regression (empirical), or past runs served by instances of unvetted
    quality (historical).
    """
    from repro.cloud import ExecutionService
    from repro.cloud.bonnie import acquire_good_instance
    from repro.corpus import html_18mil_like
    from repro.perfmodel import (
        HistoricalPredictor,
        RunHistory,
        build_probe_set,
        calibrate_stream_model,
        fit_affine,
    )
    from repro.apps import GrepApplication, GrepCostProfile

    cloud = Cloud(seed=seed)
    catalogue = html_18mil_like(scale=scale, seed=seed)
    wl = Workload("grep", GrepApplication(), GrepCostProfile())
    svc = ExecutionService(cloud)
    unit = 100 * MB

    instance, _ = acquire_good_instance(cloud)
    volume = cloud.create_volume(size_gb=500, zone=instance.zone)
    volume.attach(instance)

    # historical: past runs on unvetted instances of mixed quality
    _log.info("prediction_approaches: building historical record (8 past runs)")
    history = RunHistory()
    for i in range(8):
        past = cloud.launch_instance()
        vol_i = int((0.3 + 0.2 * i) * GB)
        ps = build_probe_set(catalogue, vol_i, [unit])
        t = svc.run(past, ps.variants[unit], wl)
        history.record("grep", sum(u.size for u in ps.variants[unit]), t,
                       instance_id=past.instance_id)
        cloud.terminate_instance(past)
    historical = HistoricalPredictor.from_history(history, "grep")

    # analytical: microbenchmarks on the vetted instance
    analytical = calibrate_stream_model(
        svc, instance, wl, catalogue,
        probe_volume=200 * MB, small_unit=500 * KB,
        storage=volume, repeats=3,
    )

    # empirical: §4 probe regression on the vetted instance
    xs, ys = [], []
    for vol_i in (int(0.25 * GB), int(0.5 * GB), 1 * GB, 2 * GB):
        ps = build_probe_set(catalogue, vol_i, [unit])
        volume.store(f"emp/{vol_i}")
        for _ in range(3):
            xs.append(float(sum(u.size for u in ps.variants[unit])))
            ys.append(svc.run(instance, ps.variants[unit], wl,
                              storage=volume, directory=f"emp/{vol_i}"))
    empirical = fit_affine(xs, ys)

    # held-out job: the full catalogue on the vetted instance
    ps = build_probe_set(catalogue, catalogue.total_size, [unit])
    units = ps.variants[unit]
    held_volume = sum(u.size for u in units)
    volume.store("heldout")
    actual = svc.run(instance, units, wl, storage=volume, directory="heldout")

    preds = {
        "analytical": analytical.predict(held_volume, len(units)),
        "empirical": float(empirical.predict(held_volume)),
        "historical": float(historical.predict(held_volume)),
    }
    errors = {k: abs(v - actual) / actual for k, v in preds.items()}
    _log.info("prediction_approaches: actual %.1fs, errors %s", actual,
              ", ".join(f"{k} {e:.1%}" for k, e in errors.items()))

    fig = FigureResult("Approaches", "§4: three ways to predict the same run")
    fig.add("predicted seconds (actual last)",
            list(preds) + ["actual"], list(preds.values()) + [actual])
    fig.note("errors: " + ", ".join(f"{k} {e:.1%}" for k, e in errors.items()))
    record_experiment("exp_side.prediction_approaches", extra={"actual": actual, "predictions": preds, "errors": errors})
    return fig, {"actual": actual, "predictions": preds, "errors": errors}


def instance_switching(
    slow_read: float = 60 * MB,
    fast_read: float | None = None,
    switch_penalty: float = 180.0,
) -> tuple[FigureResult, dict]:
    """§3.1: keep a slow instance for its next hour, or swap?

    "if working with a slow instance with an average read speed of 60 MB/s,
    we could process approximately 210 GB … switching to another instance
    … even when paying a penalty of 3 min … an extra 57 GB.  If the
    instance happens to be slow we miss processing 10 GB."
    """
    fast_read = fast_read or GrepCostProfile().stream_bandwidth
    keep = slow_read * 3600.0
    swap_fast = fast_read * (3600.0 - switch_penalty)
    swap_slow = slow_read * (3600.0 - switch_penalty)
    out = {
        "keep_gb": keep / GB,
        "swap_fast_gb": swap_fast / GB,
        "swap_slow_gb": swap_slow / GB,
        "extra_if_fast_gb": (swap_fast - keep) / GB,
        "lost_if_slow_gb": (keep - swap_slow) / GB,
    }
    fig = FigureResult("Switching", "§3.1 slow-instance switching arithmetic")
    fig.add("GB processed in the next hour",
            ["keep slow", "swap→fast", "swap→slow"],
            [out["keep_gb"], out["swap_fast_gb"], out["swap_slow_gb"]])
    fig.note(f"keep: {out['keep_gb']:.0f} GB (paper ~210); swap gains "
             f"{out['extra_if_fast_gb']:.0f} GB if fast (paper ~57), loses "
             f"{out['lost_if_slow_gb']:.1f} GB if slow again (paper ~10)")
    record_experiment("exp_side.instance_switching", extra=out)
    return fig, out


def probe_protocol_trace(seed: int = 31) -> tuple[FigureResult, dict]:
    """§4 protocol: unstable small probes are discarded, volume escalates."""
    from repro.perfmodel import ProbeCampaign

    cloud = Cloud(seed=seed)
    inst = cloud.launch_instance()
    inst.cpu_factor = inst.io_factor = 1.0
    svc = ExecutionService(cloud)
    wl = Workload("grep", GrepApplication(), GrepCostProfile())
    campaign = ProbeCampaign(svc, inst, wl, repeats=5)
    catalogue = text_400k_like(scale=0.05, seed=seed)
    result = campaign.run_protocol(
        catalogue,
        initial_volume=100 * KB,
        unit_sizes_for=lambda v: [s for s in (10 * KB, 100 * KB, 1 * MB) if s <= v],
        growth=5,
        max_rounds=5,
    )
    _log.info("probe_protocol_trace: %d round(s), stable=%s",
              len(result.probe_sets), result.stable)
    fig = FigureResult("Protocol", "§4 escalating probe protocol")
    rows = []
    for ps in result.probe_sets:
        worst_cv = max(m.cv for m in ps.variants.values())
        rows.append((ps.volume, worst_cv, ps.stable()))
    fig.add("worst CV per probe volume", [r[0] for r in rows], [r[1] for r in rows])
    out = {
        "rounds": len(result.probe_sets),
        "volumes": [r[0] for r in rows],
        "worst_cv": [r[1] for r in rows],
        "stable": result.stable,
    }
    fig.note(f"escalated {out['rounds']} round(s): volumes {out['volumes']}, "
             f"final stable={out['stable']}")
    record_experiment("exp_side.probe_protocol_trace", extra=out)
    return fig, out


def output_retrieval(n_fragments: int = 400, fragment_size: int = 250 * KB,
                     seed: int = 5) -> tuple[FigureResult, dict]:
    """§1: reshaped output is less segmented, so result retrieval is faster."""
    cloud = Cloud(seed=seed)
    s3 = cloud.s3
    for i in range(n_fragments):
        s3.put(f"out/frag/{i}", fragment_size)
    s3.put("out/merged", n_fragments * fragment_size)
    rng = RngStream(seed, "retrieval")
    t_frag = s3.retrieval_time([f"out/frag/{i}" for i in range(n_fragments)],
                               rng.fork("frag"))
    t_merged = s3.retrieval_time(["out/merged"], rng.fork("merged"))
    fig = FigureResult("Retrieval", "result retrieval time vs output segmentation")
    fig.add("seconds", [f"{n_fragments} fragments", "1 merged object"],
            [t_frag, t_merged])
    out = {"fragmented_s": t_frag, "merged_s": t_merged,
           "speedup": t_frag / t_merged}
    fig.note(f"merged output retrieves {out['speedup']:.1f}x faster at equal volume")
    record_experiment("exp_side.output_retrieval", extra=out)
    return fig, out


def spot_tradeoff(work_hours: float = 20.0, horizon: int = 400,
                  seed: int = 17) -> tuple[FigureResult, dict]:
    """§1.1 extension: spot instances are cheaper but deadline-hostile."""
    on_demand_rate = 0.085
    market = SpotMarket(rng=RngStream(seed, "spot"))
    bids = [round(market.mean_price * f, 4) for f in (0.9, 1.0, 1.1, 1.5, 2.0)]
    rows = []
    for bid in bids:
        sim = SpotRequest(bid=bid).simulate_progress(market, horizon, work_hours)
        rows.append((bid, sim["completed_hour"], sim["cost"]))
    fig = FigureResult("Spot", "spot bidding: completion time vs cost")
    fig.add("completion hour (None=never)", [r[0] for r in rows],
            [float(r[1] or horizon) for r in rows])
    fig.add("cost USD", [r[0] for r in rows], [r[2] for r in rows])
    on_demand_cost = work_hours * on_demand_rate
    done = [r for r in rows if r[1] is not None]
    out = {
        "bids": rows,
        "on_demand_cost": on_demand_cost,
        "cheapest_done": min((r[2] for r in done), default=None),
    }
    fig.note(f"on-demand: {work_hours:.0f} h for ${on_demand_cost:.2f}, "
             "guaranteed schedule; spot completes later but cheaper")
    record_experiment("exp_side.spot_tradeoff", extra=out)
    return fig, out
