"""Regeneration code for every figure and headline number in the paper.

One module per figure group; each public function returns a
:class:`~repro.report.figures.FigureResult` (plus structured outcome
dictionaries) that the corresponding ``benchmarks/`` file prints and
asserts on.  Scales are reduced from the paper's 100 GB/900 GB testbed to
laptop-friendly volumes — the shapes under test (who wins, by what factor,
where crossovers fall) are volume-ratio driven and survive the scaling;
EXPERIMENTS.md records paper-vs-measured for each.
"""

from repro.experiments import exp_chaos as chaos
from repro.experiments import exp_fig1 as fig1
from repro.experiments import exp_fig2 as fig2
from repro.experiments import exp_fleet as fleet
from repro.experiments import exp_grep as grep
from repro.experiments import exp_pos as pos
from repro.experiments import exp_side as side
from repro.experiments import sweep

__all__ = ["chaos", "fig1", "fig2", "fleet", "grep", "pos", "side", "sweep"]
