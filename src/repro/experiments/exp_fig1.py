"""Figure 1: file-size frequency distributions of the two data sets."""

from __future__ import annotations

import numpy as np

from repro.corpus import html_18mil_like, text_400k_like
from repro.obs.ledger import record_experiment
from repro.report.figures import FigureResult
from repro.units import KB

__all__ = ["fig1a", "fig1b"]


def fig1a(scale: float = 2e-3, seed: int = 2010) -> tuple[FigureResult, dict]:
    """Fig. 1(a): HTML_18mil size histogram, 10 kB bins, shown to 300 kB."""
    cat = html_18mil_like(scale=scale, seed=seed)
    edges, counts = cat.size_histogram(bin_width=10 * KB, max_size=300 * KB)
    fig = FigureResult("Fig1a", "HTML_18mil-like size distribution (10 kB bins)")
    fig.add("files per 10 kB bin", [int(e) for e in edges[:-1]], counts)
    sizes = np.array([f.size for f in cat])
    stats = {
        "files": len(cat),
        "total_gb": cat.total_size / 1e9,
        "frac_under_50kb": float((sizes < 50 * KB).mean()),
        "max_mb": cat.max_file_size / 1e6,
        "mean_kb": float(sizes.mean()) / KB,
        "tail_ratio": float(sizes.mean() / np.median(sizes)),
    }
    fig.note(f"{stats['files']} files, {stats['frac_under_50kb']:.0%} under 50 kB, "
             f"max {stats['max_mb']:.0f} MB (paper: majority <50 kB, max 43 MB)")
    record_experiment("exp_fig1.fig1a",
                      config={"scale": scale, "seed": seed}, extra=stats)
    return fig, stats


def fig1b(scale: float = 1e-2, seed: int = 2011) -> tuple[FigureResult, dict]:
    """Fig. 1(b): Text_400K size histogram, 1 kB bins, shown to 160 kB."""
    cat = text_400k_like(scale=scale, seed=seed)
    edges, counts = cat.size_histogram(bin_width=1 * KB, max_size=160 * KB)
    fig = FigureResult("Fig1b", "Text_400K-like size distribution (1 kB bins)")
    fig.add("files per 1 kB bin", [int(e) for e in edges[:-1]], counts)
    sizes = np.array([f.size for f in cat])
    stats = {
        "files": len(cat),
        "total_gb_at_full_scale": float(sizes.mean()) * 400_000 / 1e9,
        "frac_under_1kb": float((sizes < 1 * KB).mean()),
        "frac_under_5kb": float((sizes < 5 * KB).mean()),
        "max_kb": cat.max_file_size / KB,
    }
    fig.note(f"{stats['frac_under_1kb']:.0%} under 1 kB (paper: >40%), "
             f"max {stats['max_kb']:.0f} kB (paper: 705 kB)")
    record_experiment("exp_fig1.fig1b",
                      config={"scale": scale, "seed": seed}, extra=stats)
    return fig, stats
