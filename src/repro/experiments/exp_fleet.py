"""Fleet-sharing experiment: concurrent campaigns on one multi-tenant fleet.

The paper prices every campaign in isolation — each provisioning plan
boots its own instances and pays its own ``⌈P⌉`` hours (§5).  §7's "new
or existing instances" remark points at the money left on the table: with
short bins, most of every billed hour is idle remainder.  This experiment
runs N concurrent grep+POS campaigns twice —

* **shared**: one :class:`~repro.fleet.scheduler.FleetScheduler` over one
  :class:`~repro.fleet.lease.LeaseManager`, campaigns recycling each
  other's paid-hour remainders through the warm pool;
* **isolated**: the same plans, each executed by
  :func:`~repro.runner.execute.execute_plan` on its own private cloud —
  the paper's §5 regime;

and compares total billed cost at equal-or-better deadline-miss rate.
"""

from __future__ import annotations

import numpy as np

from repro.apps import (
    GrepApplication,
    GrepCostProfile,
    PosCostProfile,
    PosTaggerApplication,
)
from repro.cloud import Cloud, Workload
from repro.core import StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.fleet import (
    AdmissionController,
    FleetRequest,
    FleetScheduler,
    LeaseManager,
    Tenant,
    TenantRegistry,
)
from repro.obs import get_logger
from repro.obs.ledger import record_experiment
from repro.perfmodel.regression import fit_affine
from repro.report.figures import FigureResult
from repro.runner import execute_plan
from repro.units import HOUR, KB, MB

__all__ = ["run_shared_fleet", "shared_vs_isolated"]

_log = get_logger("experiments.fleet")

#: (tenant, workload key) cycle for the concurrent campaigns.
_TENANTS = ("acme", "globex", "initech", "umbrella")


def _workloads() -> dict[str, tuple[Workload, object]]:
    """The two §5 applications with perf models fit to their §5 scales."""
    grep_model = fit_affine(np.array([1 * MB, 5 * MB, 10 * MB]),
                            np.array([35.0, 160.0, 310.0]))
    x = np.array([1e5, 1e6, 5e6])
    pos_model = fit_affine(x, 0.327 + 0.865e-4 * x)
    return {
        "grep": (Workload("grep", GrepApplication(), GrepCostProfile()),
                 grep_model),
        "postag": (Workload("postag", PosTaggerApplication(),
                            PosCostProfile()), pos_model),
    }


def _campaign_builder(seed: float, scale: float, deadline: float):
    """One shared corpus; campaign ``i`` alternates grep and POS plans."""
    wls = _workloads()
    cat = text_400k_like(scale=scale, seed=seed)
    units = list(reshape(cat, 100 * KB).units)

    def build_plan(i: int):
        key = "grep" if i % 2 == 0 else "postag"
        wl, model = wls[key]
        plan = StaticProvisioner(model).plan(units, deadline,
                                             strategy="uniform")
        return key, wl, plan

    return build_plan


def run_shared_fleet(
    n_campaigns: int = 8,
    *,
    seed: int = 17,
    scale: float = 0.02,
    deadline: float = 2 * HOUR,
    max_instances: int = 8,
):
    """Run N concurrent campaigns on one shared fleet.

    Returns ``(cloud, FleetReport)`` — the cloud's ledger is the billing
    truth, the report carries outcomes and attribution.
    """
    build_plan = _campaign_builder(seed, scale, deadline)
    cloud = Cloud(seed=seed)
    registry = TenantRegistry()
    for name in _TENANTS:
        registry.register(Tenant(name, max_concurrent_instances=4))
    leases = LeaseManager(cloud, max_instances=max_instances)
    sched = FleetScheduler(cloud, leases, AdmissionController(registry))
    for i in range(n_campaigns):
        key, wl, plan = build_plan(i)
        tenant = _TENANTS[i % len(_TENANTS)]
        sched.submit(FleetRequest(tenant, wl, plan, f"{key}-{i}"))
    return cloud, sched.run()


def shared_vs_isolated(
    n_campaigns: int = 8,
    *,
    seed: int = 17,
    scale: float = 0.02,
    deadline: float = 2 * HOUR,
    max_instances: int = 8,
) -> tuple[FigureResult, dict]:
    """N concurrent grep+POS campaigns: one shared fleet vs N private ones.

    Returns the comparison figure plus a stats dict with both bills, the
    saving, warm-pool hit rate, miss rates, and the per-tenant
    attribution (which sums exactly to the shared ledger total).
    """
    build_plan = _campaign_builder(seed, scale, deadline)

    # -- shared fleet ------------------------------------------------------
    shared_cloud, fleet_report = run_shared_fleet(
        n_campaigns, seed=seed, scale=scale, deadline=deadline,
        max_instances=max_instances)
    shared_cost = shared_cloud.ledger.total_cost
    shared_hours = shared_cloud.ledger.total_instance_hours
    _log.info("shared fleet: %d campaigns, %d bins, %d instance-hours, $%.3f",
              n_campaigns, fleet_report.n_bins, shared_hours, shared_cost)

    # -- isolated baselines ------------------------------------------------
    iso_cost = 0.0
    iso_hours = 0
    iso_bins = 0
    iso_missed = 0
    for i in range(n_campaigns):
        key, wl, plan = build_plan(i)
        cloud = Cloud(seed=seed + i)
        report = execute_plan(cloud, wl, plan)
        iso_cost += cloud.ledger.total_cost
        iso_hours += cloud.ledger.total_instance_hours
        iso_bins += len(report.runs)
        iso_missed += report.n_missed
    iso_miss_rate = iso_missed / iso_bins if iso_bins else 0.0
    _log.info("isolated: %d instance-hours, $%.3f, miss rate %.3f",
              iso_hours, iso_cost, iso_miss_rate)

    stats = {
        "n_campaigns": n_campaigns,
        "shared_cost_usd": round(shared_cost, 4),
        "isolated_cost_usd": round(iso_cost, 4),
        "saving_usd": round(iso_cost - shared_cost, 4),
        "saving_pct": round(100.0 * (1 - shared_cost / iso_cost), 2)
        if iso_cost else 0.0,
        "shared_instance_hours": shared_hours,
        "isolated_instance_hours": iso_hours,
        "warm_hit_rate": fleet_report.warm_hit_rate,
        "shared_miss_rate": round(fleet_report.miss_rate, 4),
        "isolated_miss_rate": round(iso_miss_rate, 4),
        "shared_wasted_seconds": round(fleet_report.total_wasted_seconds, 1),
        "per_tenant_cost": {t: round(c, 4) for t, c in
                            fleet_report.per_tenant_cost().items()},
        "admission": fleet_report.summary(),
    }

    fig = FigureResult(
        "FleetShare",
        f"{n_campaigns} concurrent grep+POS campaigns: shared fleet vs isolated")
    fig.add("cost (USD)", ["shared", "isolated"], [shared_cost, iso_cost])
    fig.add("instance-hours", ["shared", "isolated"],
            [float(shared_hours), float(iso_hours)])
    fig.note(f"warm-pool hit rate {stats['warm_hit_rate']:.2f}; "
             f"saving {stats['saving_pct']:.1f}% at miss rate "
             f"{stats['shared_miss_rate']:.3f} (isolated "
             f"{stats['isolated_miss_rate']:.3f})")
    record_experiment("exp_fleet.shared_vs_isolated",
                      config={"n_campaigns": n_campaigns}, extra=stats)
    return fig, stats
