"""POS-tagging experiments: Fig. 7–9, Eqs. (3)–(4), the novels test (§5.2)."""

from __future__ import annotations

from dataclasses import dataclass


from repro.apps import PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, ExecutionService, Workload, acquire_good_instance
from repro.cloud.instance import Instance
from repro.core.deadline import adjusted_deadline, adjustment_factor
from repro.core.planner import StaticProvisioner
from repro.corpus import agnes_grey_like, dubliners_like, text_400k_like
from repro.perfmodel import ProbeCampaign, build_probe_set
from repro.perfmodel.regression import AffinePredictor, fit_affine
from repro.perfmodel.sampling import collect_sample_points, refit_with_samples
from repro.report.figures import FigureResult
from repro.obs.ledger import record_experiment
from repro.runner import execute_plan
from repro.units import HOUR, KB, MB
from repro.vfs.files import Catalogue

__all__ = ["PosTestbed", "make_testbed", "fig7", "fit_eq3", "fit_eq4",
           "fig8", "fig9", "novels"]


@dataclass
class PosTestbed:
    """Vetted instance, local storage (the §5 POS staging assumption)."""

    cloud: Cloud
    instance: Instance
    service: ExecutionService
    workload: Workload
    catalogue: Catalogue
    campaign: ProbeCampaign


def make_testbed(seed: int = 11, scale: float = 0.87, repeats: int = 5) -> PosTestbed:
    """Default scale 0.87 puts the catalogue at the paper's operating point:
    V/f⁻¹(1 h) ≈ 26 with a fractional part ≈ 0.1–0.2, so the uniform-bin
    headroom the paper's Fig. 8(b) exploits (their 26.1 → 27) exists here
    too rather than V landing on an integer multiple of x₀."""
    cloud = Cloud(seed=seed)
    catalogue = text_400k_like(scale=scale)
    instance, _ = acquire_good_instance(cloud)
    service = ExecutionService(cloud)
    workload = Workload("postag", PosTaggerApplication(), PosCostProfile())
    campaign = ProbeCampaign(service, instance, workload, repeats=repeats)
    return PosTestbed(cloud, instance, service, workload, catalogue, campaign)


def _smallest_first(catalogue: Catalogue) -> Catalogue:
    """The paper picks initial probe files "among the smallest" (§4)."""
    return catalogue.sorted_by_size()


def fig7(tb: PosTestbed | None = None) -> tuple[FigureResult, dict]:
    """Fig. 7: POS on a 1000 kB probe — original segmentation fares best.

    Probe built from the smallest files (paper: 2183 original files vs 1000
    one-kB bins for the same 1000 kB volume).
    """
    tb = tb or make_testbed(scale=0.05)
    small = _smallest_first(tb.catalogue)
    sizes = [1 * KB, 2 * KB, 5 * KB, 10 * KB, 50 * KB, 100 * KB, 500 * KB, 1000 * KB]
    ps = build_probe_set(small, 1000 * KB, sizes)
    res = {}
    for label in ps.labels():
        res[label] = tb.campaign.measure(ps.variants[label],
                                         directory=f"pos7/{label}")
    fig = FigureResult("Fig7", "POS tagging on 1000 kB vs unit file size")
    fig.add("mean seconds", ["orig"] + [s // KB for s in sizes],
            [res["orig"].mean] + [res[s].mean for s in sizes],
            yerr=[res["orig"].std] + [res[s].std for s in sizes])
    n_orig = len(ps.variants["orig"])
    n_1kb = len(ps.variants[1 * KB])
    out = {
        "n_orig_files": n_orig,
        "n_1kb_units": n_1kb,
        "orig_mean": res["orig"].mean,
        "means": {("orig" if l == "orig" else l): m.mean for l, m in res.items()},
        "degradation_at_1000kb": res[1000 * KB].mean / res["orig"].mean,
    }
    fig.note(f"{n_orig} original files vs {n_1kb} 1 kB units "
             "(paper: 2183 vs 1000)")
    fig.note(f"1000 kB units are {out['degradation_at_1000kb']:.2f}x the original "
             "segmentation — large files degrade the memory-bound tagger")
    record_experiment("exp_pos.fig7", extra=out)
    return fig, out


def fit_eq3(tb: PosTestbed, *, volumes=(200 * KB, 1 * MB, 5 * MB, 20 * MB)) -> AffinePredictor:
    """Eq. (3): affine fit from original-segmentation probes on the head."""
    xs: list[float] = []
    ys: list[float] = []
    for vol in volumes:
        ps = build_probe_set(tb.catalogue, vol, [])
        m = tb.campaign.measure(ps.variants["orig"], directory=f"eq3/v{vol}")
        for t in m.values:
            xs.append(float(sum(u.size for u in ps.variants["orig"])))
            ys.append(t)
    return fit_affine(xs, ys)


def fit_eq4(tb: PosTestbed, eq3: AffinePredictor, *, n_samples: int = 6,
            sample_volume: int = 40 * MB) -> AffinePredictor:
    """Eq. (4): pool in random samples and refit (§5.2).

    The samples are drawn from the whole catalogue, whose average prose is
    less complex than the head the probes read — so the refit slope drops
    below Eq. (3)'s, exactly the paper's outcome (0.7255e−4 < 0.865e−4).
    Samples larger than the probe ceiling anchor the top of the fit so the
    pooled regression actually feels them.
    """
    pts = collect_sample_points(
        tb.campaign, tb.catalogue, tb.cloud.rng.fork("eq4.samples"),
        n_samples=n_samples, sample_volume=sample_volume, unit_size=None,
    )
    base = list(zip([float(x) for x in eq3.x], [float(y) for y in eq3.y]))
    return refit_with_samples(base, pts)


def _schedule_and_run(tb: PosTestbed, model: AffinePredictor, deadline: float,
                      strategy: str, planning_deadline: float | None,
                      tag: str) -> dict:
    from repro.core.deadline import expected_misses

    prov = StaticProvisioner(model)
    units = list(tb.catalogue)
    plan = prov.plan(units, deadline, strategy=strategy,
                     planning_deadline=planning_deadline)
    report = execute_plan(tb.cloud, tb.workload, plan)
    return {
        "tag": tag,
        "plan": plan,
        "report": report,
        "instances": plan.n_instances,
        "missed": report.n_missed,
        "expected_missed": expected_misses(plan.predicted_times, deadline, model),
        "instance_hours": report.instance_hours,
        "durations": [r.duration for r in report.runs],
    }


def fig8(tb: PosTestbed | None = None, *, deadline: float = HOUR) -> tuple[FigureResult, dict]:
    """Fig. 8(a)–(d): D = 1 h scheduling variants."""
    tb = tb or make_testbed()
    eq3 = fit_eq3(tb)
    eq4 = fit_eq4(tb, eq3)
    a = adjustment_factor(eq4, 0.10)
    d_adj = adjusted_deadline(deadline, a)

    variants = {
        "8a_first_fit_model3": _schedule_and_run(tb, eq3, deadline, "first-fit", None, "8a"),
        "8b_uniform_model3": _schedule_and_run(tb, eq3, deadline, "uniform", None, "8b"),
        "8c_uniform_model4": _schedule_and_run(tb, eq4, deadline, "uniform", None, "8c"),
        "8d_adjusted_model4": _schedule_and_run(tb, eq4, deadline, "uniform", d_adj, "8d"),
    }
    fig = FigureResult("Fig8", f"POS scheduling for D = {deadline:.0f} s")
    for name, v in variants.items():
        fig.add(f"{name} per-instance seconds (deadline {deadline:.0f})",
                list(range(1, len(v["durations"]) + 1)), v["durations"])
        fig.note(f"{name}: {v['instances']} instances, {v['missed']} missed "
                 f"(model expected {v['expected_missed']:.1f}), "
                 f"{v['instance_hours']} instance-hours")
    out = {
        "eq3": {"a": eq3.a, "b": eq3.b, "r2": eq3.r2},
        "eq4": {"a": eq4.a, "b": eq4.b, "r2": eq4.r2},
        "adjustment_a": a,
        "adjusted_deadline": d_adj,
        "variants": variants,
    }
    fig.note(f"Eq3: f(x)={eq3.a:.3f}+{eq3.b:.3e}x (paper 0.327+0.865e-4·x); "
             f"Eq4: f(x)={eq4.a:.3f}+{eq4.b:.3e}x (paper 3.086+0.7255e-4·x)")
    fig.note(f"adjusted deadline {d_adj:.0f}s for 10% miss odds "
             "(paper: 3124 s for D=3600)")
    record_experiment("exp_pos.fig8", extra=out)
    return fig, out


def fig9(tb: PosTestbed | None = None, *, deadline: float = 2 * HOUR) -> tuple[FigureResult, dict]:
    """Fig. 9(a)–(c): D = 2 h scheduling variants."""
    tb = tb or make_testbed()
    eq3 = fit_eq3(tb)
    eq4 = fit_eq4(tb, eq3)
    a = adjustment_factor(eq4, 0.10)
    d_adj = adjusted_deadline(deadline, a)
    variants = {
        "9a_uniform_model3": _schedule_and_run(tb, eq3, deadline, "uniform", None, "9a"),
        "9b_uniform_model4": _schedule_and_run(tb, eq4, deadline, "uniform", None, "9b"),
        "9c_adjusted_model4": _schedule_and_run(tb, eq4, deadline, "uniform", d_adj, "9c"),
    }
    fig = FigureResult("Fig9", f"POS scheduling for D = {deadline:.0f} s")
    for name, v in variants.items():
        fig.add(f"{name} per-instance seconds", list(range(1, len(v["durations"]) + 1)),
                v["durations"])
        fig.note(f"{name}: {v['instances']} instances, {v['missed']} missed, "
                 f"{v['instance_hours']} instance-hours")
    out = {"variants": variants, "adjusted_deadline": d_adj, "adjustment_a": a}
    record_experiment("exp_pos.fig9", extra=out)
    return fig, out


def novels() -> tuple[FigureResult, dict]:
    """§5.2: Dubliners vs Agnes Grey — equal size, ≈2x tagging time.

    The tagger runs *natively* on both texts; times are the cost profile
    applied to each work account on the reference instance.
    """
    dub, agnes = dubliners_like(), agnes_grey_like()
    app = PosTaggerApplication()
    profile = PosCostProfile()

    times = {}
    works = {}
    for novel in (dub, agnes):
        unit = novel.unit()
        result = app.run_native([unit])
        # charge the *native* work counters through the profile's CPU terms
        cpu = (result.work.tokens * profile.per_token
               + result.work.context_ops * profile.per_context_op)
        cpu *= profile.memory_penalty(unit.size)
        times[novel.name] = cpu + profile.jvm_startup_median
        works[novel.name] = result.work

    fig = FigureResult("Novels", "POS time for equal-length novels of different complexity")
    fig.add("seconds", list(times), list(times.values()))
    out = {
        "words": {dub.name: dub.n_words, agnes.name: agnes.n_words},
        "word_gap": abs(dub.n_words - agnes.n_words),
        "times": times,
        "ratio": times[dub.name] / times[agnes.name],
        "tokens": {n: w.tokens for n, w in works.items()},
    }
    fig.note(f"word counts {out['words']} (paper: 67,496 vs 67,755, gap <300)")
    fig.note(f"time ratio {out['ratio']:.2f}x (paper: 6m32s vs 3m48s = 1.72x)")
    record_experiment("exp_pos.novels", extra=out)
    return fig, out
