"""Figure 2: fitted-curve shapes and the marginal provisioning rule (§5).

The paper's Fig. 2 is an illustration: for ``f(x)=a·x^b``, convexity
(``b>1``) means a one-hour slot processes more data at small volumes — keep
starting new instances; concavity (``b<1``) means marginal data gets
cheaper — pack up to ⌈D⌉.  We regenerate both curves from *measured-style*
synthetic points, fit them, and evaluate the rule quantitatively: data
processed in the first hour of a fresh instance vs the (⌈D⌉−1, ⌈D⌉] hour
of a loaded one.
"""

from __future__ import annotations

import numpy as np

from repro.core.planner import StaticProvisioner
from repro.perfmodel.regression import fit_power
from repro.obs.ledger import record_experiment
from repro.report.figures import FigureResult
from repro.units import HOUR

__all__ = ["fig2"]


def _marginal_volumes(predictor, deadline_hours: float) -> dict:
    """Volume processed 0→1 h on a fresh instance vs the last hour before ⌈D⌉."""
    first_hour = predictor.inverse(HOUR)
    d_ceil = np.ceil(deadline_hours) * HOUR
    last_hour = predictor.inverse(d_ceil) - predictor.inverse(d_ceil - HOUR)
    return {"first_hour": float(first_hour), "last_hour": float(last_hour)}


def fig2(deadline_hours: float = 3.0) -> tuple[FigureResult, dict]:
    """Regenerate Fig. 2: fitted shapes and the marginal rule."""
    x = np.logspace(6, 10, 12)
    convex_y = 2e-13 * x**1.35
    concave_y = 1.5e-4 * x**0.62

    fit_cx = fit_power(x, convex_y)
    fit_cc = fit_power(x, concave_y)

    fig = FigureResult("Fig2", "Execution time vs volume: curve shapes and strategy")
    fig.add("convex f(x)=a·x^b, b>1 (seconds)", x, fit_cx.predict(x))
    fig.add("concave f(x)=a·x^b, b<1 (seconds)", x, fit_cc.predict(x))

    mv_cx = _marginal_volumes(fit_cx, deadline_hours)
    mv_cc = _marginal_volumes(fit_cc, deadline_hours)
    out = {
        "convex_rule": StaticProvisioner(fit_cx).marginal_rule(),
        "concave_rule": StaticProvisioner(fit_cc).marginal_rule(),
        "convex_marginal": mv_cx,
        "concave_marginal": mv_cc,
    }
    fig.note(f"convex: fresh-instance hour processes {mv_cx['first_hour']:.3g} B "
             f"vs {mv_cx['last_hour']:.3g} B in the last packed hour -> "
             f"{out['convex_rule']}")
    fig.note(f"concave: {mv_cc['first_hour']:.3g} B vs {mv_cc['last_hour']:.3g} B -> "
             f"{out['concave_rule']}")
    record_experiment("exp_fig2.fig2",
                      config={"deadline_hours": deadline_hours}, extra=out)
    return fig, out
