"""SLO-policy registry: experiments register, the CLI resolves by name.

``repro.cli runs slo --policy NAME`` used to hard-code an if/elif over
the experiment modules; every new campaign meant editing the CLI.  Now
each experiment module registers its declared SLO policy here at import
time (at the bottom of the module, next to the policy it describes), and
the CLI resolves names dynamically — an unknown name lists what *is*
registered instead of silently defaulting.

An entry carries everything ``runs slo`` needs to group and judge a
campaign's sweep-cell records:

* ``slos`` — the :class:`~repro.obs.slo.SloPolicy` holding the declared
  objectives;
* ``group_key`` — the record field the verdict tables group by
  (``"config.policy"``, ``"config.backend"``, ``"config.stack"`` …);
* ``group_name`` — how that group is titled in the rendered table;
* ``label_prefix`` — when set, only sweep-cell records whose label
  starts with it are considered (unless the user filtered by an explicit
  ``--label``), so campaigns sharing a ledger don't judge each other's
  cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.slo import SloPolicy

__all__ = ["SloPolicyEntry", "register_slo_policy", "get_slo_policy",
           "slo_policy_names", "load_defaults"]


@dataclass(frozen=True)
class SloPolicyEntry:
    """One named, CLI-resolvable campaign SLO policy."""

    name: str
    slos: "SloPolicy"
    group_key: str
    group_name: str
    label_prefix: str | None = None


_REGISTRY: dict[str, SloPolicyEntry] = {}


def register_slo_policy(name: str, *, slos: "SloPolicy", group_key: str,
                        group_name: str,
                        label_prefix: str | None = None) -> SloPolicyEntry:
    """Register (or re-register) the SLO policy ``name`` resolves to.

    Re-registration replaces the entry — the common case is a module
    reload, and last-writer-wins keeps that harmless.
    """
    entry = SloPolicyEntry(name=name, slos=slos, group_key=group_key,
                           group_name=group_name, label_prefix=label_prefix)
    _REGISTRY[name] = entry
    return entry


def get_slo_policy(name: str) -> SloPolicyEntry:
    """The registered entry for ``name``; raises KeyError when unknown."""
    return _REGISTRY[name]


def slo_policy_names() -> list[str]:
    """Sorted names of every registered SLO policy."""
    return sorted(_REGISTRY)


def load_defaults() -> None:
    """Import the shipped experiment modules so they self-register.

    Idempotent — Python's import cache makes repeat calls free; a module
    that fails to import propagates, since a missing default registration
    is a bug, not a configuration choice.
    """
    import repro.experiments.exp_chaos  # noqa: F401
    import repro.experiments.exp_dag  # noqa: F401
    import repro.experiments.exp_matrix  # noqa: F401
    import repro.experiments.exp_spot  # noqa: F401
