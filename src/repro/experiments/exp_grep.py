"""Grep experiments: Figs. 3–6 and Eqs. (1)–(2) (§5.1).

All volumes are scaled 10× down from the paper (10 GB standing in for the
100 GB production run); every shape under test is a ratio and survives the
scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps import GrepApplication, GrepCostProfile
from repro.cloud import Cloud, ExecutionService, Workload, acquire_good_instance
from repro.cloud.ebs import EbsVolume
from repro.cloud.instance import Instance
from repro.corpus import html_18mil_like
from repro.perfmodel import ProbeCampaign, build_probe_set, fit_affine
from repro.perfmodel.sampling import collect_sample_points, refit_with_samples
from repro.report.figures import FigureResult
from repro.obs.ledger import record_experiment
from repro.units import GB, KB, MB
from repro.vfs.files import Catalogue

__all__ = ["GrepTestbed", "make_testbed", "fig3", "fig4", "fig5", "fig6"]


@dataclass
class GrepTestbed:
    """A vetted instance with an attached EBS volume, ready for probes."""

    cloud: Cloud
    instance: Instance
    volume: EbsVolume
    service: ExecutionService
    workload: Workload
    catalogue: Catalogue
    campaign: ProbeCampaign


def make_testbed(seed: int = 7, scale: float = 1.1e-2, repeats: int = 5) -> GrepTestbed:
    """Vet an instance (§4) and stage the HTML catalogue for probing."""
    cloud = Cloud(seed=seed)
    catalogue = html_18mil_like(scale=scale)
    instance, _ = acquire_good_instance(cloud)
    volume = cloud.create_volume(size_gb=1000, zone=instance.zone)
    volume.attach(instance)
    service = ExecutionService(cloud)
    workload = Workload("grep", GrepApplication(), GrepCostProfile())
    campaign = ProbeCampaign(service, instance, workload, storage=volume,
                             repeats=repeats)
    return GrepTestbed(cloud, instance, volume, service, workload, catalogue, campaign)


def _measure_sweep(tb: GrepTestbed, volume: int, unit_sizes: list[int],
                   *, include_orig: bool = True) -> dict:
    """Measure one probe set; returns {label: Measurement}."""
    ps = build_probe_set(tb.catalogue, volume, unit_sizes)
    out = {}
    labels = (["orig"] if include_orig else []) + unit_sizes
    for label in labels:
        units = ps.variants[label]
        out[label] = tb.campaign.measure(units, directory=f"probes/v{volume}/{label}")
    return out


def fig3(tb: GrepTestbed | None = None) -> tuple[FigureResult, dict]:
    """Fig. 3: grep on a 1 MB probe — values tiny, deviations huge."""
    tb = tb or make_testbed(scale=2e-4)
    res = _measure_sweep(tb, 1 * MB, [100 * KB, 250 * KB, 500 * KB, 1 * MB])
    fig = FigureResult("Fig3", "grep on 1 MB volume: unstable small probes")
    labels = list(res)
    fig.add("mean seconds (unit size)", [str(l) for l in labels],
            [res[l].mean for l in labels], yerr=[res[l].std for l in labels])
    max_cv = max(m.cv for m in res.values())
    fig.note(f"max coefficient of variation {max_cv:.2f} — discarded as too "
             "unstable, per the §4 protocol")
    record_experiment("exp_grep.fig3", extra={"max_cv": max_cv})
    return fig, {"max_cv": max_cv, "means": {l: m.mean for l, m in res.items()}}


def fig4(tb: GrepTestbed | None = None) -> tuple[FigureResult, dict]:
    """Fig. 4: grep on 5 GB — plateau from the 10 MB unit size up to 2 GB."""
    tb = tb or make_testbed()
    sizes = [1 * MB, 10 * MB, 100 * MB, 500 * MB, 1 * GB, 2 * GB]
    res = _measure_sweep(tb, 5 * GB, sizes)
    fig = FigureResult("Fig4", "grep on 5 GB volume vs unit file size")
    fig.add("mean seconds", ["orig"] + [s // MB for s in sizes],
            [res["orig"].mean] + [res[s].mean for s in sizes],
            yerr=[res["orig"].std] + [res[s].std for s in sizes])
    plateau = [res[s].mean for s in sizes if s >= 10 * MB]
    out = {
        "orig_over_plateau": res["orig"].mean / min(plateau),
        "plateau_spread": (max(plateau) - min(plateau)) / min(plateau),
        "small_unit_penalty": res[1 * MB].mean / min(plateau),
        "means": {("orig" if l == "orig" else l): m.mean for l, m in res.items()},
    }
    fig.note(f"original files {out['orig_over_plateau']:.1f}x slower than the plateau; "
             f"plateau spread {out['plateau_spread']:.1%} across 10 MB–2 GB")
    record_experiment("exp_grep.fig4", extra=out)
    return fig, out


def fig5(tb: GrepTestbed | None = None) -> tuple[FigureResult, dict]:
    """Fig. 5: fine unit-size sampling at 1/2/10 GB — repeatable spikes."""
    tb = tb or make_testbed()
    sizes = [10 * MB, 20 * MB, 40 * MB, 60 * MB, 80 * MB, 100 * MB,
             150 * MB, 200 * MB, 300 * MB, 400 * MB, 500 * MB]
    fig = FigureResult("Fig5", "grep on 1, 2 and 10 GB: EBS placement spikes")
    spikes: list[tuple[int, int, float]] = []
    repeat_checks: list[float] = []
    for vol in (1 * GB, 2 * GB, 10 * GB):
        usable = [s for s in sizes if s <= vol]
        res = _measure_sweep(tb, vol, usable, include_orig=False)
        means = np.array([res[s].mean for s in usable])
        med = float(np.median(means))
        fig.add(f"{vol // GB} GB volume", [s // MB for s in usable], means)
        for s, m in zip(usable, means):
            if m > 1.25 * med:
                spikes.append((vol, s, float(m / med)))
                # repeatability: measure the same directory again
                ps = build_probe_set(tb.catalogue, vol, [s])
                again = tb.campaign.measure(ps.variants[s],
                                            directory=f"probes/v{vol}/{s}")
                repeat_checks.append(again.mean / m)
    out = {"spikes": spikes, "repeat_ratios": repeat_checks}
    fig.note(f"{len(spikes)} spike(s) above 1.25x the volume median; "
             f"re-measured ratios {['%.2f' % r for r in repeat_checks]} "
             "(repeatable, ruling out transient contention — §5.1)")
    record_experiment("exp_grep.fig5", extra=out)
    return fig, out


def fig6(tb: GrepTestbed | None = None, *, n_devices: int = 10) -> tuple[FigureResult, dict]:
    """Fig. 6 + Eqs. (1)–(2): model fit, full-run prediction, reshaping gain.

    10 GB stands in for the paper's 100 GB; the run executes on a fresh
    *unvetted* instance with data across ``n_devices`` EBS devices — the
    sources of the paper's ~30 % underestimate (instance heterogeneity and
    placement variability the clean-instance model never saw).
    """
    tb = tb or make_testbed()
    unit = 100 * MB

    # -- Eq. (1): fit on the vetted instance at the chosen 100 MB unit size.
    xs: list[float] = []
    ys: list[float] = []
    for vol in (500 * MB, 1 * GB, 2 * GB, 5 * GB):
        ps = build_probe_set(tb.catalogue, vol, [unit])
        m = tb.campaign.measure(ps.variants[unit], directory=f"probes/v{vol}/{unit}")
        for t in m.values:
            xs.append(float(vol))
            ys.append(t)
    model = fit_affine(xs, ys)

    # -- Full volume on a fresh, unvetted instance, 10 EBS devices.
    total = tb.catalogue.total_size
    predicted = float(model.predict(total))

    runner = tb.cloud.launch_instance()        # no bonnie vetting on purpose
    run_vol = tb.cloud.create_volume(size_gb=2000, zone=runner.zone)
    run_vol.attach(runner)
    parts = tb.catalogue.partition_volumes(n_devices)
    reshaped_actual = 0.0
    for i, part in enumerate(parts):
        ps = build_probe_set(part, part.total_size, [unit])
        run_vol.store(f"full/dev{i}")
        reshaped_actual += tb.service.run(
            runner, ps.variants[unit], tb.workload,
            storage=run_vol, directory=f"full/dev{i}",
        )

    # -- The same data in its original segmentation.
    orig_actual = 0.0
    for i, part in enumerate(parts):
        run_vol.store(f"full_orig/dev{i}")
        orig_actual += tb.service.run(
            runner, list(part), tb.workload,
            storage=run_vol, directory=f"full_orig/dev{i}",
        )

    # -- Eq. (2): random-sample refit (samples at the 100 MB unit size).
    sample_pts = collect_sample_points(
        tb.campaign, tb.catalogue, tb.cloud.rng.fork("fig6.samples"),
        n_samples=5, sample_volume=1 * GB, unit_size=unit,
    )
    refit = refit_with_samples(list(zip(xs, ys)), sample_pts)
    refit_predicted = float(refit.predict(total))

    fig = FigureResult("Fig6", "grep full run: predicted vs actual, reshaped vs original")
    fig.add("seconds", ["predicted (Eq1)", "predicted (Eq2 refit)", "actual 100MB units",
                        "actual original files"],
            [predicted, refit_predicted, reshaped_actual, orig_actual])
    out = {
        "eq1": {"a": model.a, "b": model.b, "r2": model.r2},
        "eq2": {"a": refit.a, "b": refit.b, "r2": refit.r2},
        "predicted": predicted,
        "refit_predicted": refit_predicted,
        "actual": reshaped_actual,
        "orig_actual": orig_actual,
        "underestimate": reshaped_actual / predicted - 1.0,
        "refit_underestimate": reshaped_actual / refit_predicted - 1.0,
        "improvement": orig_actual / reshaped_actual,
        "runner_io_factor": runner.io_factor,
    }
    fig.note(f"Eq1: f(x) = {model.a:.3f} + {model.b:.3e}·x  (R² = {model.r2:.4f}; "
             "paper: −0.974 + 1.324e−8·x, R² = 0.999)")
    fig.note(f"underestimate {out['underestimate']:+.0%} (paper: ~30%), "
             f"after refit {out['refit_underestimate']:+.0%} (paper: ~20%)")
    fig.note(f"reshaping improvement {out['improvement']:.1f}x (paper: 5.6x)")
    record_experiment("exp_grep.fig6", extra=out)
    return fig, out
