"""Multiprocess sweep harness: run experiment grids across all cores.

Experiment sweeps (chaos scenarios × policies × seeds, fleet sharing
grids) are embarrassingly parallel — every cell builds its own
:class:`~repro.cloud.cluster.Cloud` from its own seed and returns a plain
dict.  This harness fans the cells over a ``ProcessPoolExecutor`` while
keeping the repo's two non-negotiables:

* **Determinism** — a cell is a pure function of its spec: the callable
  is named by a picklable ``"module:callable"`` string and its kwargs
  carry the seed, so results are identical whether the cell runs inline,
  in another process, or in another order.  Results always come back in
  input order.
* **Observability** — each worker runs its cell under a private
  :class:`~repro.obs.metrics.MetricsRegistry` and ships a picklable
  :meth:`~repro.obs.metrics.MetricsRegistry.dump` home; the parent folds
  the dumps into its own registry via ``merge_dump``, so a sweep's
  metrics look exactly as if every cell had run inline.  Run-ledger
  records work the same way: when the parent has an active
  :class:`~repro.obs.ledger.RunLedger`, each worker captures its cell's
  records in-memory and ships them home as dicts, and the parent appends
  them — so a pooled sweep's flight-recorder history matches inline.

``processes=0`` (or 1, or a single cell) falls back to running inline in
the parent — the exact same code path minus pickling, used by tests and
by single-core machines.
"""

from __future__ import annotations

import importlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.sim.random import stable_seed

__all__ = ["Cell", "SweepResult", "run_sweep", "fork_seeds", "resolve"]


@dataclass(frozen=True)
class Cell:
    """One sweep cell: a named callable plus its kwargs.

    ``fn`` is a ``"package.module:callable"`` path — a string, so the spec
    pickles across process boundaries without dragging closures along.
    ``tag`` is an opaque caller label echoed on the result row.
    """

    fn: str
    kwargs: dict = field(default_factory=dict)
    tag: Any = None


@dataclass
class SweepResult:
    """Everything one sweep produced, cells in input order."""

    rows: list            # each cell's return value, input order
    tags: list            # the cells' tags, input order
    metrics_dumps: list   # one MetricsRegistry.dump() per cell (may be empty)
    processes: int        # worker processes actually used (1 = inline)
    run_records: list = field(default_factory=list)
    # RunRecords the cells emitted (appended to the parent ledger too)


def resolve(path: str) -> Callable:
    """``"package.module:callable"`` → the callable itself."""
    mod_name, _, fn_name = path.partition(":")
    if not mod_name or not fn_name:
        raise ValueError(
            f"cell fn must be 'module:callable', got {path!r}")
    fn = getattr(importlib.import_module(mod_name), fn_name, None)
    if not callable(fn):
        raise ValueError(f"{path!r} does not name a callable")
    return fn


def fork_seeds(base_seed: int, n: int, name: str = "sweep") -> list[int]:
    """``n`` independent 63-bit seeds derived from ``(base_seed, name, i)``.

    The same stable BLAKE2b derivation :class:`~repro.sim.random.RngStream`
    forks use, so sweep seeds inherit the repo-wide property: adding cells
    never shifts the seeds existing cells observe, across processes and
    Python versions alike.
    """
    return [stable_seed(base_seed, f"{name}.{i}") >> 1 for i in range(n)]


def _run_cell(spec: Cell, collect_metrics: bool,
              collect_runs: bool) -> tuple[Any, list, list]:
    """Execute one cell (worker side).

    Returns ``(result, metrics dump, run-record dicts)`` — everything
    picklable, so the triple crosses process boundaries unchanged.
    """
    from repro.obs import MetricsRegistry, Obs, get_obs, set_obs
    from repro.obs.ledger import capture_runs

    fn = resolve(spec.fn)
    if not collect_metrics and not collect_runs:
        return fn(**spec.kwargs), [], []
    # Run the cell under a private registry (the tracer, if any, is kept)
    # and, when the parent wants run records, a private in-memory ledger —
    # both ship home as picklable dumps and merge, so behaviour is
    # identical whether the cell runs inline or in a forked worker.
    if collect_metrics:
        registry = MetricsRegistry()
        previous = set_obs(Obs(tracer=get_obs().tracer, metrics=registry))
    try:
        if collect_runs:
            with capture_runs() as cell_ledger:
                result = fn(**spec.kwargs)
            records = [r.to_dict() for r in cell_ledger.records()]
        else:
            result = fn(**spec.kwargs)
            records = []
    finally:
        if collect_metrics:
            set_obs(previous)
    return result, registry.dump() if collect_metrics else [], records


def _worker(args: tuple[Cell, bool, bool]) -> tuple[Any, list, list]:
    spec, collect_metrics, collect_runs = args
    return _run_cell(spec, collect_metrics, collect_runs)


def run_sweep(
    cells: Sequence[Cell],
    *,
    processes: int | None = None,
    collect_metrics: bool = False,
    merge_into=None,
    collect_runs: bool | None = None,
) -> SweepResult:
    """Run every cell; fan out over processes when it pays.

    Parameters
    ----------
    cells:
        The grid, as :class:`Cell` specs.  Order is preserved in the
        result rows regardless of completion order.
    processes:
        Worker processes; ``None`` uses ``os.cpu_count()``.  Values ≤ 1
        — or a grid of ≤ 1 cell — run inline in the parent.
    collect_metrics:
        Capture each cell's metrics into a private registry and return
        the picklable dumps (merged into ``merge_into`` when given).
    merge_into:
        A :class:`~repro.obs.metrics.MetricsRegistry` to fold every
        worker dump into.
    collect_runs:
        Capture each cell's ledger :class:`~repro.obs.ledger.RunRecord`
        emissions and append them to the parent's active ledger.
        ``None`` (default) auto-enables exactly when the parent has an
        active ledger; ``False`` suppresses cell records entirely.
    """
    from repro.obs.ledger import RunRecord, get_run_ledger

    cells = list(cells)
    parent_ledger = get_run_ledger()
    if collect_runs is None:
        collect_runs = parent_ledger is not None
    if processes is None:
        processes = os.cpu_count() or 1
    n_workers = max(1, min(processes, len(cells)))
    if n_workers == 1 or len(cells) <= 1:
        triples = [_run_cell(c, collect_metrics, collect_runs)
                   for c in cells]
        used = 1
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            triples = list(pool.map(
                _worker, [(c, collect_metrics, collect_runs) for c in cells]))
        used = n_workers
    rows = [r for r, _, _ in triples]
    dumps = [d for _, d, _ in triples if d]
    if merge_into is not None:
        for d in dumps:
            merge_into.merge_dump(d)
    records = []
    for _, _, cell_records in triples:
        for rec_dict in cell_records:
            record = RunRecord.from_dict(rec_dict)
            if parent_ledger is not None:
                # Worker-side ids restart per cell; let the parent ledger
                # re-stamp so ids stay unique across the sweep.
                record.run_id = ""
                parent_ledger.append(record)
            records.append(record)
    return SweepResult(rows=rows, tags=[c.tag for c in cells],
                       metrics_dumps=dumps, processes=used,
                       run_records=records)
