"""Capacity matrix: broker stack × DAG shape × spot interruption regime.

The capacity broker refactor made acquisition composable — the same
:class:`~repro.dag.scheduler.DagScheduler` can run every stage on
private on-demand fleets (``fleet``), on the raw spot market with the
full fallback ladder (``spot``), or on spot with interrupted segments
escalating into a shared warm-lease pool before paying list price
(``spot-lease``).  This experiment is the cross-product those brokers
finally make possible: each cell executes the same workflow campaign —
identical catalogue, identical subdeadlines — under one replayed
:data:`~repro.chaos.scenario.SPOT_REGIMES` interruption regime, on one
broker stack.

Cost ratios compare against the paper's §7 regime — the *same* shape and
seed run on on-demand fleets over a clean cloud — so "beats on-demand"
is measured like-for-like.  The declared objectives hold each stack to
the campaign miss budget (≤ 10 % of bins over their stage subdeadline)
and to landing under the on-demand bill; the on-demand stack itself
prices at ratio 1.0 by construction and exists as the control row.
Everything is deterministic under ``(stack, shape, regime, seed)``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.chaos import FaultInjector, get_spot_regime
from repro.cloud import Cloud
from repro.corpus import html_18mil_like
from repro.dag import S3Backend
from repro.dag.scheduler import DagScheduler
from repro.experiments.exp_chaos import DEFAULT_SEEDS
from repro.experiments.exp_dag import DEADLINE, SCALE, _graph
from repro.obs import get_logger
from repro.obs.ledger import RunRecord, get_run_ledger, record_experiment
from repro.obs.slo import Objective, SloPolicy, SloReport, render_slo_table
from repro.report.figures import FigureResult

__all__ = ["run_cell", "matrix_sweep", "DEFAULT_SEEDS", "STACKS", "SHAPES",
           "REGIMES", "MATRIX_SLOS", "evaluate_matrix_slos"]

_log = get_logger("experiments.matrix")

#: Broker stacks under test, thinnest to thickest: private on-demand
#: fleets (the control), the spot ladder, and spot with warm-lease
#: escalation sharing paid hours across stages.
STACKS: tuple[str, ...] = ("fleet", "spot", "spot-lease")

#: Workflow shapes: the five-stage linear pipeline and the fan-out/fan-in
#: diamond (concurrent siblings are where cross-stage leases pay off).
SHAPES: tuple[str, ...] = ("linear", "fanout")

#: Interruption regimes every stack is replayed under.
REGIMES: tuple[str, ...] = ("calm", "choppy", "eviction-storm")

#: The declared objectives, judged per broker stack across every
#: (shape, regime, seed) cell: keep the campaign miss budget *and* beat
#: the on-demand bill.  The ``fleet`` control row prices at ratio 1.0
#: and is expected to fail the cost objective — that is the comparison
#: the matrix exists to make.
MATRIX_SLOS = SloPolicy("matrix-campaign", (
    Objective("miss-rate", "deadline", "<=", 0.10, aggregate="ratio",
              num="deadline.missed", den="deadline.bins"),
    Objective("cost-vs-on-demand", "extra.cost_ratio", "<=", 0.99,
              aggregate="mean"),
))


@lru_cache(maxsize=16)
def _on_demand_baseline(shape: str, seed: int) -> float:
    """On-demand counterfactual bill: same DAG, clean cloud, fleet policy."""
    report = DagScheduler(
        Cloud(seed=seed), _graph(shape),
        html_18mil_like(scale=SCALE, seed=seed), DEADLINE,
        backend=S3Backend(), policy="fleet",
        label=f"matrix.baseline.{shape}",
    ).run()
    return report.total_cost


def run_cell(stack: str = "fleet", shape: str = "linear",
             regime_name: str = "calm", *, seed: int = 11) -> dict:
    """Run one (stack, shape, regime, seed) cell; returns the outcome dict."""
    if stack not in STACKS:
        raise ValueError(f"unknown stack {stack!r}")
    regime = get_spot_regime(regime_name)
    injector = FaultInjector([regime.scenario(seed)], seed=seed)
    cloud = Cloud(seed=seed, chaos=injector)
    report = DagScheduler(
        cloud, _graph(shape), html_18mil_like(scale=SCALE, seed=seed),
        DEADLINE, backend=S3Backend(), policy=stack,
        label=f"matrix.{stack}.{shape}.{regime_name}",
    ).run()
    baseline = _on_demand_baseline(shape, seed)
    spot = report.spot_stats or {}
    leases = report.lease_stats or {}
    return {
        "stack": stack,
        "shape": shape,
        "regime": regime_name,
        "seed": seed,
        "bins": report.n_bins,
        "missed": report.n_missed,
        "failed": report.n_failed,
        "miss_rate": (round(report.n_missed / report.n_bins, 4)
                      if report.n_bins else 0.0),
        "makespan_s": round(report.makespan, 1),
        "met": report.met_deadline,
        "total_usd": round(report.total_cost, 4),
        "baseline_usd": round(baseline, 4),
        "cost_ratio": (round(report.total_cost / baseline, 4)
                       if baseline else 0.0),
        "interruptions": spot.get("interruptions", 0),
        "escalations": spot.get("escalations", 0),
        "pool_hits": leases.get("pool_hits", 0),
        "faults_injected": injector.fault_counts(),
    }


def _aggregate(cells: list[dict]) -> dict:
    """Miss rate over all cells' bins plus mean cost ratio."""
    bins = sum(c["bins"] for c in cells)
    missed = sum(c["missed"] for c in cells)
    return {
        "miss_rate": round(missed / bins, 4) if bins else 0.0,
        "missed": missed,
        "bins": bins,
        "mean_cost_usd": round(
            sum(c["total_usd"] for c in cells) / len(cells), 4),
        "mean_cost_ratio": round(
            sum(c["cost_ratio"] for c in cells) / len(cells), 4),
        "cells": cells,
    }


def _cell_records(stats: dict) -> dict[str, list[RunRecord]]:
    """Cell-level run records per broker stack."""
    records: dict[str, list[RunRecord]] = {}
    for stack, agg in stats["stacks"].items():
        for cell in agg["cells"]:
            records.setdefault(stack, []).append(RunRecord(
                kind="sweep-cell",
                label=f"exp_matrix.{stack}.{cell['regime']}",
                config={"stack": stack, "shape": cell["shape"],
                        "regime": cell["regime"], "seed": cell["seed"]},
                billing={"cost_usd": cell["total_usd"]},
                deadline={"missed": cell["missed"],
                          "failed": cell["failed"],
                          "bins": cell["bins"],
                          "miss_rate": cell["miss_rate"]},
                extra={"cost_ratio": cell["cost_ratio"],
                       "interruptions": cell["interruptions"],
                       "escalations": cell["escalations"],
                       "pool_hits": cell["pool_hits"],
                       "faults_injected": cell["faults_injected"]},
            ))
    return records


def evaluate_matrix_slos(stats: dict, *,
                         slos: SloPolicy = MATRIX_SLOS
                         ) -> dict[str, SloReport]:
    """Evaluate the campaign SLOs per broker stack over a sweep's stats."""
    return {stack: slos.evaluate(records)
            for stack, records in _cell_records(stats).items()}


def matrix_sweep(
    stacks: list[str] | None = None,
    *,
    shapes: tuple[str, ...] = SHAPES,
    regimes: tuple[str, ...] = REGIMES,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    processes: int | None = 1,
) -> tuple[FigureResult, dict]:
    """Sweep stacks × shapes × regimes × seeds; aggregate misses and cost.

    Returns ``(figure, stats)``.  ``stats["stacks"][name]`` aggregates
    one broker stack over every cell it ran; ``stats["grid"]`` holds one
    row per (stack, regime) — the surface the figure plots.  Every cell
    is an independent seeded run fanned out over the
    :mod:`~repro.experiments.sweep` harness, bit-identical at any
    process count.
    """
    from repro.experiments.sweep import Cell, run_sweep
    from repro.obs import get_obs

    names = list(STACKS) if stacks is None else stacks
    grid = [Cell("repro.experiments.exp_matrix:run_cell",
                 {"stack": stack, "shape": shape, "regime_name": regime,
                  "seed": seed},
                 tag=(stack, regime))
            for stack in names
            for shape in shapes
            for regime in regimes
            for seed in seeds]
    registry = get_obs().metrics
    result = run_sweep(grid, processes=processes,
                       collect_metrics=registry.enabled,
                       merge_into=registry if registry.enabled else None)
    by_tag: dict = {}
    for tag, row in zip(result.tags, result.rows):
        by_tag.setdefault(tag, []).append(row)

    stats: dict = {"stacks": {}, "grid": []}
    for stack in names:
        cells = [row for (s, _), rows in by_tag.items() if s == stack
                 for row in rows]
        if not cells:
            continue
        stats["stacks"][stack] = _aggregate(cells)
        for regime in regimes:
            sub = by_tag.get((stack, regime))
            if not sub:
                continue
            agg = _aggregate(sub)
            stats["grid"].append({
                "stack": stack, "regime": regime,
                "miss_rate": agg["miss_rate"],
                "mean_cost_usd": agg["mean_cost_usd"],
                "mean_cost_ratio": agg["mean_cost_ratio"],
            })
        _log.info("matrix %-10s miss %.3f cost-ratio %.3f", stack,
                  stats["stacks"][stack]["miss_rate"],
                  stats["stacks"][stack]["mean_cost_ratio"])

    fig = FigureResult(
        "Matrix", "DAG campaigns per broker stack: deadline misses and "
        "cost vs on-demand under spot interruption regimes")
    for metric, key in (("miss rate", "miss_rate"),
                        ("cost vs on-demand", "mean_cost_ratio")):
        for stack in names:
            rows = [(g["regime"], g[key]) for g in stats["grid"]
                    if g["stack"] == stack]
            if rows:
                fig.add(f"{metric} [{stack}]",
                        [r for r, _ in rows], [float(v) for _, v in rows])
    spot_ratios = [g["mean_cost_ratio"] for g in stats["grid"]
                   if g["stack"] in ("spot", "spot-lease")]
    if spot_ratios:
        fig.note(f"spot stacks cost {min(spot_ratios):.3f}-"
                 f"{max(spot_ratios):.3f} of on-demand over "
                 f"{len(regimes)} regimes x {len(shapes)} shapes x "
                 f"{len(seeds)} seeds")

    # Flight recorder + SLOs: cells become ledger records; the declared
    # objectives are judged per stack; the roll-up row is kind="matrix".
    slo_reports = evaluate_matrix_slos(stats)
    for report in slo_reports.values():
        _log.info("%s", render_slo_table(report))
    ledger = get_run_ledger()
    if ledger is not None:
        for records in _cell_records(stats).values():
            for record in records:
                ledger.append(record)
    record_experiment(
        "exp_matrix", kind="matrix",
        config={"stacks": names, "shapes": list(shapes),
                "regimes": list(regimes), "seeds": list(seeds)},
        extra={
            "slo": {s: r.to_dict() for s, r in slo_reports.items()},
            "worst_miss": {s: max((g["miss_rate"] for g in stats["grid"]
                                   if g["stack"] == s), default=0.0)
                           for s in names},
            "cost_ratio_vs_on_demand": {
                s: stats["stacks"][s]["mean_cost_ratio"]
                for s in stats["stacks"]},
        },
    )
    return fig, stats


# CLI resolution: `repro runs slo --policy matrix` judges this campaign.
from repro.experiments.registry import register_slo_policy  # noqa: E402

register_slo_policy("matrix", slos=MATRIX_SLOS, group_key="config.stack",
                    group_name="stack", label_prefix="exp_matrix.")
