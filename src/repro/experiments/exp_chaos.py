"""Chaos sweep: every shipped fault scenario × resilience on/off.

The §3/§7 story assumes launches succeed, boots take ≈3 minutes, and
storage performs; this experiment measures what the campaign loses when
none of that holds — and what the :mod:`repro.resilience` layer buys
back.  Each cell of the sweep runs the same grep campaign under one
:data:`~repro.chaos.scenario.SCENARIOS` entry:

* **off** — the paper's §5 regime (:func:`~repro.runner.execute
  .execute_plan`, no retries, no steering): injected faults surface as
  failed bins, hung boots stall the whole fleet, degraded storage eats
  the deadline slack;
* **on** — :func:`~repro.runner.dynamic.execute_with_monitoring` with a
  :class:`~repro.resilience.launch.ResilientLauncher`: rejections are
  retried with backoff, breakers steer around dead zones, hung boots are
  hedged, measured-slow instances are replaced *outside* the slow zone,
  and results are fetched with hedged requests.

A bin **misses** when its boot latency (absorbed waits included) plus
processing plus its own result retrieval exceeds the user deadline;
bins that never got an instance count as missed.  Everything is
deterministic under ``(scenario, policy, seed)``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.apps import GrepApplication, GrepCostProfile
from repro.chaos import FaultInjector, get_scenario
from repro.cloud import Cloud, Workload
from repro.core import StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.obs import get_logger
from repro.obs.ledger import RunRecord, get_run_ledger, record_experiment
from repro.obs.slo import Objective, SloPolicy, SloReport, render_slo_table
from repro.perfmodel.regression import fit_affine
from repro.report.figures import FigureResult
from repro.resilience import (
    DegradationPlanner,
    ResilientLauncher,
    RetryPolicy,
    hedged_retrieval,
)
from repro.runner import DynamicPolicy, execute_plan, execute_with_monitoring
from repro.units import HOUR, KB, MB

__all__ = ["run_cell", "chaos_sweep", "DEFAULT_SEEDS",
           "CHAOS_SLOS", "evaluate_chaos_slos"]

_log = get_logger("experiments.chaos")

#: Campaign seeds the sweep aggregates over.
DEFAULT_SEEDS: tuple[int, ...] = (11, 23, 47)

#: User deadline and the tighter deadline the plan is packed against; the
#: difference is the slack that absorbs boots, retries, and retrieval.
DEADLINE = 0.5 * HOUR
PLANNING_DEADLINE = 0.5 * DEADLINE

#: Corpus scale: sized so the uniform plan packs the campaign into a
#: meaningful handful of bins (miss rates need denominators).
SCALE = 0.7

#: The campaign's declared service-level objectives, evaluated per policy
#: side over every (scenario, seed) cell: the PR-4 acceptance bar (≤ 10%
#: of bins miss the user deadline) plus a cost ceiling above the worst
#: resilience-on scenario mean (slow-ebs, ≈ $1.76/cell) — resilience-on
#: holds both, the unprotected baseline burns through the miss budget.
CHAOS_SLOS = SloPolicy("chaos-campaign", (
    Objective("miss-rate", "deadline", "<=", 0.10, aggregate="ratio",
              num="deadline.missed", den="deadline.bins"),
    Objective("mean-cost", "billing.cost_usd", "<=", 2.00, aggregate="mean"),
))


def _cell_records(stats: dict) -> dict[str, list[RunRecord]]:
    """Cell-level run records per policy side, in scenario-then-seed order."""
    records: dict[str, list[RunRecord]] = {}
    for name, per_policy in stats.items():
        for policy, agg in per_policy.items():
            for cell in agg["cells"]:
                records.setdefault(policy, []).append(RunRecord(
                    kind="sweep-cell",
                    label=f"exp_chaos.{name}.{policy}",
                    config={"scenario": name, "policy": policy,
                            "seed": cell["seed"]},
                    billing={"cost_usd": cell["cost_usd"]},
                    deadline={"missed": cell["missed"],
                              "failed": cell["failed"],
                              "bins": cell["bins"],
                              "miss_rate": cell["miss_rate"]},
                    extra={"replaced": cell["replaced"],
                           "retrieval_s": cell["retrieval_s"],
                           "faults_injected": cell["faults_injected"]},
                ))
    return records


def evaluate_chaos_slos(stats: dict, *,
                        slos: SloPolicy = CHAOS_SLOS) -> dict[str, SloReport]:
    """Evaluate the campaign SLOs per policy side over a sweep's stats."""
    return {policy: slos.evaluate(records)
            for policy, records in _cell_records(stats).items()}


def _workload() -> Workload:
    """An I/O-bound scan over cold, uncached EBS-resident inputs.

    Stock grep streams at ≈75 MB/s, which would need tens of GB per bin
    to fill an interesting deadline; like every experiment in this repo
    the volumes are scaled to laptop size, so the scan profile charges a
    proportionally lower bandwidth while keeping grep's I/O-dominated
    cost shape (≈70 % of reference seconds on storage) — which is what
    the EBS-degradation scenarios act on.
    """
    profile = GrepCostProfile(stream_bandwidth=0.12 * MB,
                              per_file_overhead=0.05,
                              cpu_per_byte=3.0e-6)
    return Workload("scan", GrepApplication(), profile)


@lru_cache(maxsize=8)
def _grep_model(seed: int):
    """Perf model fit from §4-style probes on a clean, vetted instance.

    The chaos sweep's miss accounting needs predictions that match what
    the simulated cloud actually charges, so — like ``exp_grep`` — the
    model is fit to measured probe times rather than to the paper's
    hard-coded figures.  The probe cloud is separate from (and unbilled
    by) the campaign clouds.
    """
    from repro.cloud import ExecutionService, acquire_good_instance

    cloud = Cloud(seed=seed + 7919)
    instance, _ = acquire_good_instance(cloud)
    svc = ExecutionService(cloud)
    wl = _workload()
    cat = text_400k_like(scale=0.02, seed=seed + 7919)
    units = list(reshape(cat, 100 * KB).units)
    xs, ys = [], []
    for target in (2 * MB, 6 * MB, 12 * MB):
        subset, vol = [], 0
        for u in units:
            subset.append(u)
            vol += u.size
            if vol >= target:
                break
        for _ in range(3):
            xs.append(vol)
            ys.append(svc.run(instance, subset, wl, advance_clock=False))
    return fit_affine(np.array(xs), np.array(ys))


@lru_cache(maxsize=8)
def _campaign(seed: int):
    """(workload, plan) for one seeded grep campaign (cached per seed)."""
    model = _grep_model(seed)
    cat = text_400k_like(scale=SCALE, seed=seed)
    units = list(reshape(cat, 100 * KB).units)
    plan = StaticProvisioner(model).plan(
        units, DEADLINE, strategy="uniform",
        planning_deadline=PLANNING_DEADLINE)
    return _workload(), plan


def _retrieval_seconds(cloud: Cloud, run, bin_i: int, *,
                       hedged: bool) -> float:
    """Fetch one bin's result objects (one per unit), hedged or plain."""
    if run.n_units == 0:
        return 0.0
    size = max(1, run.volume // run.n_units // 100)
    keys = []
    for j in range(run.n_units):
        key = f"chaos/{bin_i}/{j}"
        cloud.s3.put(key, size)
        keys.append(key)
    rng = cloud.rng.fork(f"exp.chaos.retrieval.{bin_i}")
    if hedged:
        return hedged_retrieval(cloud.s3, keys, rng, hedges=2)
    return cloud.s3.retrieval_time(keys, rng)


def run_cell(scenario_name: str, *, resilience: bool, seed: int = 11) -> dict:
    """Run one (scenario, policy, seed) cell; returns the outcome dict."""
    scenario = get_scenario(scenario_name)
    injector = FaultInjector([scenario], seed=seed)
    cloud = Cloud(seed=seed, chaos=injector)
    wl, plan = _campaign(seed)

    if resilience:
        launcher = ResilientLauncher(
            cloud,
            retry=RetryPolicy(max_attempts=8, budget_seconds=1200.0),
            degradation=DegradationPlanner(_grep_model(seed)),
        )
        policy = DynamicPolicy(probe_fraction=0.1)
        report, events = execute_with_monitoring(
            cloud, wl, plan, policy=policy, launcher=launcher)
        launcher_stats = launcher.stats()
        n_replaced = len(events)
    else:
        report = execute_plan(cloud, wl, plan)
        launcher_stats = None
        n_replaced = 0

    n_failed = report.n_failed
    total_bins = len(report.runs) + n_failed
    missed = n_failed
    retrieval_total = 0.0
    for i, run in enumerate(report.runs):
        t_ret = _retrieval_seconds(cloud, run, i, hedged=resilience)
        retrieval_total += t_ret
        if run.boot_delay + run.duration + t_ret > plan.deadline:
            missed += 1

    out = {
        "scenario": scenario_name,
        "policy": "on" if resilience else "off",
        "seed": seed,
        "bins": total_bins,
        "missed": missed,
        "failed": n_failed,
        "replaced": n_replaced,
        "miss_rate": round(missed / total_bins, 4) if total_bins else 0.0,
        "cost_usd": round(cloud.ledger.total_cost, 4),
        "retrieval_s": round(retrieval_total, 1),
        "faults_injected": injector.fault_counts(),
    }
    if launcher_stats is not None:
        out["launcher"] = launcher_stats
    return out


def chaos_sweep(
    names: list[str] | None = None,
    *,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    policies: tuple[bool, ...] = (True, False),
    processes: int | None = 1,
) -> tuple[FigureResult, dict]:
    """Sweep scenarios × policies × seeds; aggregate miss rate and cost.

    Returns ``(figure, stats)`` where ``stats[name]`` holds the
    aggregated ``on``/``off`` rows (miss rate over all seeds' bins, mean
    cost) plus the per-cell outcomes.

    Every cell is an independent ``(scenario, policy, seed)`` run, so the
    grid fans out over the :mod:`~repro.experiments.sweep` harness:
    ``processes=None`` uses every core, the default ``1`` runs inline.
    Results are bit-identical either way — each cell seeds its own cloud.
    """
    from repro.chaos import SCENARIOS
    from repro.experiments.sweep import Cell, run_sweep

    names = list(SCENARIOS) if names is None else names
    grid = [
        Cell("repro.experiments.exp_chaos:run_cell",
             {"scenario_name": name, "resilience": resilience, "seed": seed},
             tag=(name, resilience))
        for name in names
        for resilience in policies
        for seed in seeds
    ]
    from repro.obs import get_obs

    registry = get_obs().metrics
    result = run_sweep(grid, processes=processes,
                       collect_metrics=registry.enabled,
                       merge_into=registry if registry.enabled else None)
    by_tag: dict = {}
    for tag, row in zip(result.tags, result.rows):
        by_tag.setdefault(tag, []).append(row)

    stats: dict = {}
    for name in names:
        per_policy: dict = {}
        for resilience in policies:
            cells = by_tag[(name, resilience)]
            bins = sum(c["bins"] for c in cells)
            missed = sum(c["missed"] for c in cells)
            per_policy["on" if resilience else "off"] = {
                "miss_rate": round(missed / bins, 4) if bins else 0.0,
                "missed": missed,
                "bins": bins,
                "mean_cost_usd": round(
                    sum(c["cost_usd"] for c in cells) / len(cells), 4),
                "cells": cells,
            }
        stats[name] = per_policy
        row = {p: per_policy[p]["miss_rate"] for p in per_policy}
        _log.info("chaos %-16s miss %s", name,
                  " ".join(f"{p}={r:.3f}" for p, r in row.items()))

    fig = FigureResult(
        "Chaos", "deadline miss rate under injected faults: "
        "resilience on vs off")
    for metric, key in (("miss rate", "miss_rate"),
                        ("mean cost (USD)", "mean_cost_usd")):
        for policy in ("on", "off"):
            rows = [(n, stats[n][policy][key]) for n in names
                    if policy in stats[n]]
            if rows:
                fig.add(f"{metric} [{policy}]",
                        [n for n, _ in rows], [float(v) for _, v in rows])
    on_rates = [stats[n]["on"]["miss_rate"] for n in names
                if "on" in stats[n]]
    off_rates = [stats[n]["off"]["miss_rate"] for n in names
                 if "off" in stats[n]]
    if on_rates and off_rates:
        fig.note(f"resilience-on worst miss {max(on_rates):.3f}; "
                 f"resilience-off worst miss {max(off_rates):.3f} "
                 f"over {len(names)} scenarios x {len(seeds)} seeds")

    # Flight recorder + SLOs: every cell becomes a ledger record, and the
    # declared campaign objectives are judged per policy side — the
    # experiment-level record carries the verdicts.
    slo_reports = evaluate_chaos_slos(stats)
    for report in slo_reports.values():
        _log.info("%s", render_slo_table(report))
    ledger = get_run_ledger()
    if ledger is not None:
        for records in _cell_records(stats).values():
            for record in records:
                ledger.append(record)
    record_experiment(
        "exp_chaos",
        config={"scenarios": names, "seeds": list(seeds),
                "policies": ["on" if p else "off" for p in policies]},
        extra={
            "slo": {p: r.to_dict() for p, r in slo_reports.items()},
            "worst_miss": {p: max((stats[n][p]["miss_rate"] for n in names
                                   if p in stats[n]), default=0.0)
                           for p in ("on", "off")},
        },
    )
    return fig, stats


# CLI resolution: `repro runs slo --policy chaos` judges this campaign.
from repro.experiments.registry import register_slo_policy  # noqa: E402

register_slo_policy("chaos", slos=CHAOS_SLOS, group_key="config.policy",
                    group_name="policy", label_prefix="exp_chaos.")
