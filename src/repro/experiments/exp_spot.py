"""Spot sweep: interruption regime × bid aggressiveness × deadline slack.

The paper sticks to on-demand instances *because* of deadlines (§1.1);
this experiment measures what that caution costs.  Each cell runs the
same grep campaign as :mod:`~repro.experiments.exp_chaos` — identical
bins, identical deadline — but provisions every bin on spot capacity via
:func:`~repro.runner.spot.execute_plan_spot`, under one replayed
:data:`~repro.chaos.scenario.SPOT_REGIMES` interruption regime:

* **on** — the full :class:`~repro.resilience.spot.SpotLadder`:
  checkpoint into the two-minute warning, re-bid in another zone,
  re-type, queue, and escalate to on-demand preemptively when predicted
  remaining work plus the restart buffer no longer fits the deadline;
* **off** — a naive spot user (no ladder, no checkpoints, no
  escalation): every interruption restarts the bin from scratch in the
  same zone, which is how spot capacity got its reputation.

Two sensitivity axes ride along on the resilient side: **bid
aggressiveness** (how much of the market a bid covers — aggressive bids
exclude expensive zones from the fallback ladder) and **deadline slack**
(the user deadline scaled around the planner's; tighter deadlines force
earlier on-demand escalation, looser ones let the ladder ride out more
interruptions on cheap capacity).

Cost ratios compare against a pure on-demand run of the same plan on a
clean same-seed cloud, so "beats on-demand" is measured like-for-like.
A bin **misses** when boot latency plus processing (absorbed
interruptions, queue waits and restarts included) exceeds the user
deadline; bins that never got capacity count as missed.  Everything is
deterministic under ``(regime, policy, bid, slack, seed)``.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache

from repro.chaos import FaultInjector, get_spot_regime
from repro.cloud import Cloud
from repro.experiments.exp_chaos import DEFAULT_SEEDS, _campaign
from repro.obs import get_logger
from repro.obs.ledger import RunRecord, get_run_ledger, record_experiment
from repro.obs.slo import Objective, SloPolicy, SloReport, render_slo_table
from repro.report.figures import FigureResult
from repro.resilience import SpotFallbackPolicy
from repro.runner import execute_plan, execute_plan_spot

__all__ = ["run_cell", "spot_sweep", "DEFAULT_SEEDS", "BIDS", "SLACKS",
           "DEFAULT_BID", "DEFAULT_SLACK", "SPOT_SLOS", "evaluate_spot_slos"]

_log = get_logger("experiments.spot")

#: Reference-terms bid levels: reckless (half the mean market price —
#: whole markets become unaffordable and the ladder falls straight
#: through to on-demand), the shipped default, and conservative (= the
#: on-demand rate, the most a rational 2010 bidder would offer).
BIDS: tuple[float, ...] = (0.02, 0.06, 0.085)

#: User-deadline multipliers around the planning deadline: tight, the
#: shipped default, and loose.  Slack scales *only* the user deadline —
#: the plan (bins, predictions) is packed once per seed and shared, so
#: the axis isolates deadline pressure from packing.
SLACKS: tuple[float, ...] = (0.85, 1.0, 1.25)

DEFAULT_BID: float = 0.06
DEFAULT_SLACK: float = 1.0

#: The declared objectives, evaluated per policy side over the operating
#: point (default bid and slack) across every (regime, seed) cell: the
#: campaign keeps the paper's ≤ 10 % miss budget *and* lands well under
#: the pure on-demand bill.  The resilient ladder holds both; the naive
#: baseline burns the miss budget under the eviction-storm regime.
SPOT_SLOS = SloPolicy("spot-campaign", (
    Objective("miss-rate", "deadline", "<=", 0.10, aggregate="ratio",
              num="deadline.missed", den="deadline.bins"),
    Objective("cost-vs-on-demand", "extra.cost_ratio", "<=", 0.90,
              aggregate="mean"),
))


@lru_cache(maxsize=8)
def _on_demand_baseline(seed: int) -> tuple[float, tuple[float, ...]]:
    """Pure on-demand counterfactual for one seed: ``(cost, durations)``.

    The same cached plan executed by :func:`~repro.runner.execute
    .execute_plan` on a clean same-seed cloud — the §5 regime the paper
    actually ran.  Returns the total ceil-hour bill and each bin's
    ``boot_delay + duration`` so callers can re-judge misses under any
    slack level.
    """
    cloud = Cloud(seed=seed)
    wl, plan = _campaign(seed)
    report = execute_plan(cloud, wl, plan)
    durations = tuple(r.boot_delay + r.duration for r in report.runs)
    return cloud.ledger.total_cost, durations


def run_cell(regime_name: str, *, resilience: bool = True,
             bid: float = DEFAULT_BID, slack: float = DEFAULT_SLACK,
             seed: int = 11) -> dict:
    """Run one (regime, policy, bid, slack, seed) cell; returns the outcome.

    ``resilience=False`` strips the ladder, checkpoints and escalation
    from the fallback policy, leaving a naive spot user who waits out
    every interruption in place and restarts from scratch.
    """
    regime = get_spot_regime(regime_name)
    injector = FaultInjector([regime.scenario(seed)], seed=seed)
    cloud = Cloud(seed=seed, chaos=injector)
    wl, plan = _campaign(seed)
    plan = dataclasses.replace(plan, deadline=plan.deadline * slack)

    if resilience:
        policy = SpotFallbackPolicy(bid=bid)
    else:
        policy = SpotFallbackPolicy(bid=bid, ladder=False, checkpoint=False,
                                    escalate=False)
    result = execute_plan_spot(cloud, wl, plan, policy=policy)
    report, stats = result.report, result.stats

    n_failed = report.n_failed
    total_bins = len(report.runs) + n_failed
    missed = n_failed + sum(
        1 for run in report.runs
        if run.boot_delay + run.duration > plan.deadline)
    od_cost, _ = _on_demand_baseline(seed)

    return {
        "regime": regime_name,
        "policy": "on" if resilience else "off",
        "seed": seed,
        "bid": bid,
        "slack": slack,
        "bins": total_bins,
        "missed": missed,
        "failed": n_failed,
        "miss_rate": round(missed / total_bins, 4) if total_bins else 0.0,
        "cost_usd": round(stats.total_cost, 4),
        "on_demand_baseline_usd": round(od_cost, 4),
        "cost_ratio": round(stats.total_cost / od_cost, 4) if od_cost else 0.0,
        "interruptions": stats.interruptions,
        "escalations": stats.escalations,
        "preemptive_escalations": stats.preemptive_escalations,
        "rebids": stats.rebids,
        "retypes": stats.retypes,
        "queued": stats.queued,
        "spot_cost_usd": round(stats.spot_cost, 4),
        "on_demand_cost_usd": round(stats.on_demand_cost, 4),
        "faults_injected": injector.fault_counts(),
    }


def _aggregate(cells: list[dict]) -> dict:
    """Miss rate over all cells' bins plus mean cost and cost ratio."""
    bins = sum(c["bins"] for c in cells)
    missed = sum(c["missed"] for c in cells)
    return {
        "miss_rate": round(missed / bins, 4) if bins else 0.0,
        "missed": missed,
        "bins": bins,
        "mean_cost_usd": round(
            sum(c["cost_usd"] for c in cells) / len(cells), 4),
        "mean_cost_ratio": round(
            sum(c["cost_ratio"] for c in cells) / len(cells), 4),
        "cells": cells,
    }


def _cell_records(stats: dict) -> dict[str, list[RunRecord]]:
    """Operating-point run records per policy side, regime-then-seed order."""
    records: dict[str, list[RunRecord]] = {}
    for name, per_policy in stats["regimes"].items():
        for policy, agg in per_policy.items():
            for cell in agg["cells"]:
                records.setdefault(policy, []).append(RunRecord(
                    kind="sweep-cell",
                    label=f"exp_spot.{name}.{policy}",
                    config={"regime": name, "policy": policy,
                            "seed": cell["seed"], "bid": cell["bid"],
                            "slack": cell["slack"]},
                    billing={"cost_usd": cell["cost_usd"]},
                    deadline={"missed": cell["missed"],
                              "failed": cell["failed"],
                              "bins": cell["bins"],
                              "miss_rate": cell["miss_rate"]},
                    extra={"cost_ratio": cell["cost_ratio"],
                           "interruptions": cell["interruptions"],
                           "escalations": cell["escalations"],
                           "rebids": cell["rebids"],
                           "faults_injected": cell["faults_injected"]},
                ))
    return records


def evaluate_spot_slos(stats: dict, *,
                       slos: SloPolicy = SPOT_SLOS) -> dict[str, SloReport]:
    """Evaluate the campaign SLOs per policy side over a sweep's stats."""
    return {policy: slos.evaluate(records)
            for policy, records in _cell_records(stats).items()}


def spot_sweep(
    regimes: list[str] | None = None,
    *,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    bids: tuple[float, ...] = BIDS,
    slacks: tuple[float, ...] = SLACKS,
    policies: tuple[bool, ...] = (True, False),
    processes: int | None = 1,
) -> tuple[FigureResult, dict]:
    """Sweep regimes × bids × slacks × seeds; aggregate misses and cost.

    Returns ``(figure, stats)``.  ``stats["regimes"][name]`` holds the
    ``on``/``off`` aggregates at the operating point (default bid and
    slack) — the shipped configuration the SLOs judge; the naive side
    only runs there.  ``stats["grid"]`` holds one aggregated row per
    ``(regime, bid, slack)`` combination on the resilient side — the
    sensitivity surface.

    Every cell is an independent seeded run, so the grid fans out over
    the :mod:`~repro.experiments.sweep` harness exactly like the chaos
    sweep; results are bit-identical at any process count.
    """
    from repro.chaos import SPOT_REGIMES
    from repro.experiments.sweep import Cell, run_sweep

    names = list(SPOT_REGIMES) if regimes is None else regimes
    bids = tuple(bids) if DEFAULT_BID in bids else tuple(bids) + (DEFAULT_BID,)
    slacks = (tuple(slacks) if DEFAULT_SLACK in slacks
              else tuple(slacks) + (DEFAULT_SLACK,))
    grid = []
    for name in names:
        for seed in seeds:
            if False in policies:
                grid.append(Cell(
                    "repro.experiments.exp_spot:run_cell",
                    {"regime_name": name, "resilience": False,
                     "bid": DEFAULT_BID, "slack": DEFAULT_SLACK, "seed": seed},
                    tag=(name, "off", DEFAULT_BID, DEFAULT_SLACK)))
            if True in policies:
                for bid in bids:
                    for slack in slacks:
                        grid.append(Cell(
                            "repro.experiments.exp_spot:run_cell",
                            {"regime_name": name, "resilience": True,
                             "bid": bid, "slack": slack, "seed": seed},
                            tag=(name, "on", bid, slack)))
    from repro.obs import get_obs

    registry = get_obs().metrics
    result = run_sweep(grid, processes=processes,
                       collect_metrics=registry.enabled,
                       merge_into=registry if registry.enabled else None)
    by_tag: dict = {}
    for tag, row in zip(result.tags, result.rows):
        by_tag.setdefault(tag, []).append(row)

    stats: dict = {"regimes": {}, "grid": []}
    for name in names:
        per_policy: dict = {}
        for policy in ("on", "off"):
            cells = by_tag.get((name, policy, DEFAULT_BID, DEFAULT_SLACK))
            if cells:
                per_policy[policy] = _aggregate(cells)
        stats["regimes"][name] = per_policy
        row = {p: per_policy[p]["miss_rate"] for p in per_policy}
        _log.info("spot %-16s miss %s", name,
                  " ".join(f"{p}={r:.3f}" for p, r in row.items()))
    if True in policies:
        for name in names:
            for bid in bids:
                for slack in slacks:
                    cells = by_tag.get((name, "on", bid, slack))
                    if not cells:
                        continue
                    agg = _aggregate(cells)
                    stats["grid"].append({
                        "regime": name, "bid": bid, "slack": slack,
                        "miss_rate": agg["miss_rate"],
                        "mean_cost_usd": agg["mean_cost_usd"],
                        "mean_cost_ratio": agg["mean_cost_ratio"],
                    })

    fig = FigureResult(
        "Spot", "deadline misses and cost on spot capacity: "
        "fallback ladder on vs naive spot")
    for metric, key in (("miss rate", "miss_rate"),
                        ("cost vs on-demand", "mean_cost_ratio")):
        for policy in ("on", "off"):
            rows = [(n, stats["regimes"][n][policy][key]) for n in names
                    if policy in stats["regimes"][n]]
            if rows:
                fig.add(f"{metric} [{policy}]",
                        [n for n, _ in rows], [float(v) for _, v in rows])
    # Sensitivity series: one point per grid value, aggregated over the
    # other axes — how the resilient side moves with bid and slack.
    for axis, values in (("bid", bids), ("slack", slacks)):
        rows = []
        for v in values:
            sub = [g for g in stats["grid"] if g[axis] == v]
            if sub:
                rows.append((f"{axis}={v:g}", sum(
                    g["miss_rate"] for g in sub) / len(sub)))
        if len(rows) > 1:
            fig.add(f"miss rate by {axis} [on]",
                    [lbl for lbl, _ in rows], [val for _, val in rows])
    on_rates = [stats["regimes"][n]["on"]["miss_rate"] for n in names
                if "on" in stats["regimes"][n]]
    off_rates = [stats["regimes"][n]["off"]["miss_rate"] for n in names
                 if "off" in stats["regimes"][n]]
    if on_rates and off_rates:
        fig.note(f"ladder-on worst miss {max(on_rates):.3f}; "
                 f"naive-spot worst miss {max(off_rates):.3f} "
                 f"over {len(names)} regimes x {len(seeds)} seeds")

    # Flight recorder + SLOs: operating-point cells become ledger
    # records, and the declared objectives are judged per policy side.
    slo_reports = evaluate_spot_slos(stats)
    for report in slo_reports.values():
        _log.info("%s", render_slo_table(report))
    ledger = get_run_ledger()
    if ledger is not None:
        for records in _cell_records(stats).values():
            for record in records:
                ledger.append(record)
    record_experiment(
        "exp_spot",
        config={"regimes": names, "seeds": list(seeds),
                "bids": list(bids), "slacks": list(slacks),
                "policies": ["on" if p else "off" for p in policies]},
        extra={
            "slo": {p: r.to_dict() for p, r in slo_reports.items()},
            "worst_miss": {p: max((stats["regimes"][n][p]["miss_rate"]
                                   for n in names
                                   if p in stats["regimes"][n]), default=0.0)
                           for p in ("on", "off")},
        },
    )
    return fig, stats


# CLI resolution: `repro runs slo --policy spot` judges this campaign.
from repro.experiments.registry import register_slo_policy  # noqa: E402

register_slo_policy("spot", slos=SPOT_SLOS, group_key="config.policy",
                    group_name="policy", label_prefix="exp_spot.")
