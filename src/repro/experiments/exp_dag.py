"""DAG backend comparison: S3 vs EBS vs local-disk inter-stage sharing.

The Juve et al. experiment (PAPERS.md) transplanted onto the paper's §7
workflow setting: the same text-processing DAG — planned against
full-hour subdeadlines and run stage-concurrently by
:class:`~repro.dag.scheduler.DagScheduler` — is executed once per
:class:`~repro.dag.backends.DataBackend`, and the sweep reports how the
data-sharing choice moves cost and makespan.  Because backend transfer
draws live on their own named RNG forks, per-stage compute is
bit-identical across backends within a seed: every delta in the figure
is attributable to the transfers.

Two DAG shapes are swept — the five-stage linear pipeline and the
fan-out/fan-in diamond — and the diamond is additionally run under
``mode="serial"`` (stage barriers, the §7 baseline) to measure what
stage-concurrent scheduling buys.
"""

from __future__ import annotations

from repro.cloud import Cloud
from repro.corpus import html_18mil_like
from repro.dag import (
    DataBackend,
    EbsBackend,
    LocalDiskBackend,
    S3Backend,
    WorkflowGraph,
    fanout_pipeline,
    linear_pipeline,
)
from repro.dag.scheduler import DagScheduler
from repro.obs import get_logger
from repro.obs.ledger import RunRecord, get_run_ledger, record_experiment
from repro.obs.slo import Objective, SloPolicy, SloReport, render_slo_table
from repro.report.figures import FigureResult
from repro.units import HOUR

__all__ = ["run_cell", "dag_sweep", "DEFAULT_SEEDS",
           "DAG_SLOS", "evaluate_dag_slos"]

_log = get_logger("experiments.dag")

#: Campaign seeds the sweep aggregates over.
DEFAULT_SEEDS: tuple[int, ...] = (11, 23, 47)

#: User deadline for the whole workflow (apportioned per stage).
DEADLINE = 6 * HOUR

#: Corpus scale: a few thousand crawl files, laptop-sized like every
#: experiment here, but enough bins per stage for miss-rate denominators.
SCALE = 2e-4

#: The workflow campaign's declared objective: across a backend's cells,
#: at most 10 % of bins overrun their stage's full-hour subdeadline.
DAG_SLOS = SloPolicy("dag-campaign", (
    Objective("miss-rate", "deadline", "<=", 0.10, aggregate="ratio",
              num="deadline.missed", den="deadline.bins"),
))

_BACKENDS = ("local", "s3", "ebs")
_SHAPES = ("linear", "fanout")


def _backend(name: str) -> DataBackend:
    """A fresh backend instance for one cell (EBS volumes are per-run)."""
    try:
        return {"local": LocalDiskBackend,
                "s3": S3Backend,
                "ebs": EbsBackend}[name]()
    except KeyError:
        raise ValueError(f"unknown backend {name!r}") from None


def _graph(shape: str) -> WorkflowGraph:
    try:
        return {"linear": linear_pipeline,
                "fanout": fanout_pipeline}[shape]()
    except KeyError:
        raise ValueError(f"unknown shape {shape!r}") from None


def run_cell(backend: str = "local", shape: str = "linear", *,
             seed: int = 11, mode: str = "concurrent") -> dict:
    """Run one (backend, shape, seed, mode) cell; returns the outcome dict."""
    cloud = Cloud(seed=seed)
    catalogue = html_18mil_like(scale=SCALE, seed=seed)
    report = DagScheduler(
        cloud, _graph(shape), catalogue, DEADLINE,
        backend=_backend(backend), mode=mode,
        label=f"dag.{backend}.{shape}.{mode}",
    ).run()
    return {
        "backend": backend,
        "shape": shape,
        "mode": mode,
        "seed": seed,
        "stages": len(report.stages),
        "bins": report.n_bins,
        "missed": report.n_missed,
        "failed": report.n_failed,
        "miss_rate": (round(report.n_missed / report.n_bins, 4)
                      if report.n_bins else 0.0),
        "makespan_s": round(report.makespan, 1),
        "met": report.met_deadline,
        "transfer_s": round(report.transfer_seconds, 1),
        "compute_usd": round(report.compute_cost_usd, 4),
        "transfer_usd": round(report.transfer_cost, 4),
        "total_usd": round(report.total_cost, 4),
    }


def _cell_records(stats: dict) -> dict[str, list[RunRecord]]:
    """Cell-level run records per backend, concurrent cells only."""
    records: dict[str, list[RunRecord]] = {}
    for cell in stats["cells"]:
        if cell["mode"] != "concurrent":
            continue
        records.setdefault(cell["backend"], []).append(RunRecord(
            kind="sweep-cell",
            label=f"exp_dag.{cell['backend']}.{cell['shape']}",
            config={"backend": cell["backend"], "shape": cell["shape"],
                    "seed": cell["seed"], "mode": cell["mode"]},
            billing={"cost_usd": cell["total_usd"]},
            deadline={"missed": cell["missed"], "failed": cell["failed"],
                      "bins": cell["bins"], "miss_rate": cell["miss_rate"]},
            extra={"makespan_s": cell["makespan_s"],
                   "transfer_s": cell["transfer_s"],
                   "transfer_usd": cell["transfer_usd"]},
        ))
    return records


def evaluate_dag_slos(stats: dict, *,
                      slos: SloPolicy = DAG_SLOS) -> dict[str, SloReport]:
    """Evaluate the workflow SLOs per backend over a sweep's stats."""
    return {backend: slos.evaluate(records)
            for backend, records in _cell_records(stats).items()}


def dag_sweep(
    backends: tuple[str, ...] = _BACKENDS,
    shapes: tuple[str, ...] = _SHAPES,
    *,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    processes: int | None = 1,
) -> tuple[FigureResult, dict]:
    """Sweep backends × shapes × seeds (plus the serial fan-out baseline).

    Returns ``(figure, stats)``: ``stats["agg"][backend][shape]`` holds
    mean makespan/cost over the seeds, ``stats["speedup"]`` the
    serial/concurrent makespan ratio per backend on the fan-out DAG, and
    ``stats["cells"]`` every cell outcome.  Cells are independent seeded
    runs, so the grid fans out over the :mod:`~repro.experiments.sweep`
    harness (``processes=None`` uses every core; results are
    bit-identical either way).
    """
    from repro.experiments.sweep import Cell, run_sweep
    from repro.obs import get_obs

    grid = [
        Cell("repro.experiments.exp_dag:run_cell",
             {"backend": backend, "shape": shape, "seed": seed,
              "mode": mode},
             tag=(backend, shape, mode))
        for backend in backends
        for shape in shapes
        for seed in seeds
        for mode in (("concurrent", "serial") if shape == "fanout"
                     else ("concurrent",))
    ]
    registry = get_obs().metrics
    result = run_sweep(grid, processes=processes,
                       collect_metrics=registry.enabled,
                       merge_into=registry if registry.enabled else None)
    by_tag: dict = {}
    for tag, row in zip(result.tags, result.rows):
        by_tag.setdefault(tag, []).append(row)

    def _mean(cells: list[dict], key: str) -> float:
        return sum(c[key] for c in cells) / len(cells)

    agg: dict = {}
    speedup: dict = {}
    for backend in backends:
        agg[backend] = {}
        for shape in shapes:
            cells = by_tag[(backend, shape, "concurrent")]
            agg[backend][shape] = {
                "mean_makespan_s": round(_mean(cells, "makespan_s"), 1),
                "mean_total_usd": round(_mean(cells, "total_usd"), 4),
                "mean_transfer_s": round(_mean(cells, "transfer_s"), 1),
                "miss_rate": round(
                    sum(c["missed"] for c in cells)
                    / max(1, sum(c["bins"] for c in cells)), 4),
            }
        serial = by_tag.get((backend, "fanout", "serial"))
        if serial and "fanout" in agg[backend]:
            concurrent_mk = agg[backend]["fanout"]["mean_makespan_s"]
            serial_mk = _mean(serial, "makespan_s")
            speedup[backend] = round(serial_mk / concurrent_mk, 4)
        _log.info("dag %-6s %s", backend,
                  " ".join(f"{s}={agg[backend][s]['mean_makespan_s']:.0f}s"
                           f"/${agg[backend][s]['mean_total_usd']:.3f}"
                           for s in shapes))

    stats = {"agg": agg, "speedup": speedup,
             "cells": [row for rows in by_tag.values() for row in rows]}

    fig = FigureResult(
        "DAG backends", "workflow cost/makespan by data-sharing backend "
        "(Juve et al. comparison)")
    for shape in shapes:
        fig.add(f"makespan s [{shape}]", list(backends),
                [agg[b][shape]["mean_makespan_s"] for b in backends])
        fig.add(f"total USD [{shape}]", list(backends),
                [agg[b][shape]["mean_total_usd"] for b in backends])
    if speedup:
        fig.note("stage-concurrent vs serial on the fan-out DAG: "
                 + ", ".join(f"{b} {s:.2f}x" for b, s in speedup.items()))

    slo_reports = evaluate_dag_slos(stats)
    for report in slo_reports.values():
        _log.info("%s", render_slo_table(report))
    ledger = get_run_ledger()
    if ledger is not None:
        for records in _cell_records(stats).values():
            for record in records:
                ledger.append(record)
    record_experiment(
        "exp_dag",
        config={"backends": list(backends), "shapes": list(shapes),
                "seeds": list(seeds), "deadline_s": DEADLINE,
                "scale": SCALE},
        extra={
            "slo": {b: r.to_dict() for b, r in slo_reports.items()},
            "agg": agg,
            "speedup": speedup,
        },
    )
    return fig, stats


# CLI resolution: `repro runs slo --policy dag` judges this campaign.
from repro.experiments.registry import register_slo_policy  # noqa: E402

register_slo_policy("dag", slos=DAG_SLOS, group_key="config.backend",
                    group_name="backend")
