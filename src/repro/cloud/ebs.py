"""Elastic Block Store volumes with placement-dependent access quality.

Models the §1.1/§5.1 EBS facts the experiments rely on:

* a volume lives in one availability zone and attaches to at most one
  instance at a time (but persists across instances — the §3.1/§7 recovery
  trick of re-attaching a volume to a replacement instance);
* logical volumes are backed by physical placements of varying quality:
  "our probes, while on the same EBS logical storage volume, were placed in
  different locations some of which have a consistently higher access
  time … working with clones of a large sized directory can result in
  performance variations of up to a factor of 3" — the repeatable Fig. 5
  spikes.  Placement quality is a *stable* deterministic function of
  (volume, directory), so re-measuring the same probe reproduces the spike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cloud.instance import Instance
from repro.cloud.types import AvailabilityZone
from repro.sim.random import RngStream, stable_seed

__all__ = ["PlacementModel", "EbsVolume", "EbsError"]


class EbsError(RuntimeError):
    """Attachment-rule violations (cross-AZ, double attach, …)."""


@dataclass(frozen=True)
class PlacementModel:
    """Distribution of per-directory access-time multipliers.

    A directory lands on a *bad* placement with probability ``p_bad``; bad
    placements cost a uniform factor in ``bad_range`` (up to the paper's
    observed 3×).  Good placements are exactly 1.0 — the spikes stand out
    from a flat plateau, as in Fig. 5.
    """

    p_bad: float = 0.12
    bad_range: tuple[float, float] = (1.6, 3.0)

    def factor(self, volume_seed: int, directory: str) -> float:
        """Deterministic access-time multiplier for (volume, directory)."""
        rng = RngStream(stable_seed(volume_seed, f"placement:{directory}"))
        if rng.uniform() < self.p_bad:
            return rng.uniform(*self.bad_range)
        return 1.0


@dataclass
class EbsVolume:
    """A persistent block volume.

    Directories are registered with :meth:`store`; each registration pins a
    deterministic placement factor that :class:`ExecutionService` folds
    into I/O time for reads from that directory.
    """

    volume_id: str
    size_gb: int
    zone: AvailabilityZone
    placement_model: PlacementModel = field(default_factory=PlacementModel)
    seed: int = 0
    attached_to: Instance | None = None
    #: Chaos hook: zero-arg callable giving the *current* throughput
    #: multiplier for this volume's zone (degraded-EBS episodes).  The
    #: cloud wires it when a fault injector is installed; ``None`` keeps
    #: the undegraded fast path.
    degradation: Callable[[], float] | None = None
    _directories: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_gb <= 0:
            raise EbsError(f"volume size must be positive, got {self.size_gb}")

    # -- attachment ---------------------------------------------------------

    def attach(self, instance: Instance) -> None:
        """Attach to a running instance in this volume's zone."""
        if self.attached_to is not None:
            raise EbsError(
                f"{self.volume_id} already attached to {self.attached_to.instance_id}"
            )
        if instance.zone != self.zone:
            raise EbsError(
                f"{self.volume_id} is in {self.zone.name}, instance in {instance.zone.name}"
            )
        instance.require_running()
        self.attached_to = instance
        instance.attached_volumes.append(self)

    def detach(self) -> None:
        """Release the volume (idempotent)."""
        if self.attached_to is None:
            return
        inst = self.attached_to
        self.attached_to = None
        if self in inst.attached_volumes:
            inst.attached_volumes.remove(self)

    # -- data placement -------------------------------------------------------

    def store(self, directory: str) -> float:
        """Register a directory; returns its (stable) placement factor.

        Storing the same directory twice returns the same factor; storing a
        *clone* under a new name rolls new placement dice — exactly the
        §5.1 clone observation.
        """
        if not directory:
            raise EbsError("directory name must be non-empty")
        if directory not in self._directories:
            self._directories[directory] = self.placement_model.factor(
                stable_seed(self.seed, self.volume_id), directory
            )
        return self._directories[directory]

    def placement_factor(self, directory: str) -> float:
        """Access-time multiplier for reads from ``directory``."""
        if directory not in self._directories:
            raise EbsError(f"directory {directory!r} not stored on {self.volume_id}")
        return self._directories[directory]

    def access_factor(self, directory: str) -> float:
        """Placement factor times any active degradation episode.

        This is what the execution service folds into I/O time: the
        stable per-directory placement quality, further inflated while a
        chaos scenario degrades this volume's zone.
        """
        f = self.placement_factor(directory)
        if self.degradation is not None:
            f *= self.degradation()
        return f

    def bulk_io_seconds(self, directory: str, size: int, rng: RngStream,
                        *, throughput: float = 60_000_000.0,
                        sigma: float = 0.08) -> float:
        """Seconds to stream ``size`` bytes to or from ``directory``.

        The inter-stage data-sharing surface: sustained sequential
        throughput scaled by :meth:`access_factor` — so a badly-placed
        directory slows a whole stage handoff by the same §5.1 factor a
        probe read sees, and chaos degradation episodes stretch it
        further — under one mild lognormal draw per batch.
        """
        if size < 0:
            raise EbsError("negative transfer size")
        base = (size / throughput) * self.access_factor(directory)
        return base * rng.lognormal(0.0, sigma)

    @property
    def directories(self) -> tuple[str, ...]:
        return tuple(self._directories)
