"""bonnie++-style instance vetting (§4).

"We first request a small instance and measure its performance using
bonnie++ to ensure that it is of high quality (over 60 MB/s block
read/write performance).  We repeat this performance measurement to confirm
that the instance is stable.  We repeat this procedure until we acquire an
instance that performs well."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.cluster import Cloud
from repro.cloud.instance import Instance
from repro.cloud.types import SMALL, InstanceType
from repro.units import MB

__all__ = ["BonnieResult", "bonnie_probe", "acquire_good_instance", "AcquisitionError"]

#: The paper's quality bar.
DEFAULT_THRESHOLD = 60 * MB

#: Simulated duration of one bonnie++ pass (it writes/reads a multi-GB file).
BONNIE_DURATION = 120.0


class AcquisitionError(RuntimeError):
    """No good instance found within the attempt budget."""


@dataclass(frozen=True)
class BonnieResult:
    """One benchmark pass: sequential block throughputs in bytes/s."""

    block_read: float
    block_write: float

    def passes(self, threshold: float = DEFAULT_THRESHOLD) -> bool:
        """True when both throughputs clear the quality bar."""
        return self.block_read >= threshold and self.block_write >= threshold


def bonnie_probe(cloud: Cloud, instance: Instance) -> BonnieResult:
    """Measure an instance's disk throughput (costs simulated time).

    The measured value is the hidden ``io_factor`` times the type's base
    bandwidth, with small run-to-run noise — so a consistently-slow
    instance *measures* consistently slow, which is what makes vetting
    worthwhile.
    """
    instance.require_running()
    n = getattr(instance, "_bonnie_runs", 0)
    setattr(instance, "_bonnie_runs", n + 1)
    rng = cloud.rng.fork(f"bonnie.{instance.instance_id}.{n}")
    base = instance.itype.base_disk_bandwidth * instance.io_factor
    read = base * rng.fork("read").lognormal(0.0, 0.03)
    write = 0.9 * base * rng.fork("write").lognormal(0.0, 0.04)
    cloud.advance(BONNIE_DURATION)
    return BonnieResult(block_read=read, block_write=write)


def acquire_good_instance(
    cloud: Cloud,
    *,
    itype: InstanceType = SMALL,
    threshold: float = DEFAULT_THRESHOLD,
    repeats: int = 2,
    stability_tolerance: float = 0.10,
    max_attempts: int = 25,
) -> tuple[Instance, int]:
    """The §4 acquisition loop; returns ``(instance, attempts)``.

    Launches instances until one both clears ``threshold`` on every one of
    ``repeats`` bonnie passes *and* is stable (relative spread of the read
    measurements below ``stability_tolerance``).  Rejected instances are
    terminated immediately (each still bills its partial hour).
    """
    if repeats < 1:
        raise ValueError("need at least one bonnie pass")
    for attempt in range(1, max_attempts + 1):
        inst = cloud.launch_instance(itype=itype)
        reads: list[float] = []
        ok = True
        for _ in range(repeats):
            res = bonnie_probe(cloud, inst)
            reads.append(res.block_read)
            if not res.passes(threshold):
                ok = False
                break
        if ok and len(reads) > 1:
            spread = (max(reads) - min(reads)) / max(reads)
            ok = spread <= stability_tolerance
        if ok:
            return inst, attempt
        cloud.terminate_instance(inst)
    raise AcquisitionError(f"no instance passed vetting in {max_attempts} attempts")
