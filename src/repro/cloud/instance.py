"""Instance lifecycle and per-instance performance ground truth."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cloud.types import AvailabilityZone, InstanceType
from repro.sim.random import RngStream

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Obs

__all__ = ["InstanceState", "Instance", "HeterogeneityModel", "InstanceError"]


class InstanceError(RuntimeError):
    """Illegal lifecycle transition or misuse of a terminated instance."""


class InstanceState(enum.Enum):
    """EC2 lifecycle states; only RUNNING time is billable (§3.1)."""

    PENDING = "pending"
    RUNNING = "running"
    SHUTTING_DOWN = "shutting-down"
    TERMINATED = "terminated"
    FAILED = "failed"


@dataclass(frozen=True)
class HeterogeneityModel:
    """Distribution of hidden per-instance quality.

    "Small instances are relatively stable over time, but different
    instances can exhibit performance of up to 4 times from each other"
    (Dejun et al., cited in §6); the paper itself "observe[s] instances
    behaving consistently slow or fast" (§3.1).  Quality is drawn once at
    launch and never changes — consistency is the point.
    """

    p_slow: float = 0.12          # noticeably slow instances
    p_very_slow: float = 0.04     # the 3-4x stragglers
    good_sigma: float = 0.04      # jitter among good instances
    slow_range: tuple[float, float] = (0.5, 0.8)
    very_slow_range: tuple[float, float] = (0.25, 0.5)

    def draw_factor(self, rng: RngStream) -> float:
        """One hidden speed factor (1.0 = reference)."""
        u = rng.uniform()
        if u < self.p_very_slow:
            return rng.uniform(*self.very_slow_range)
        if u < self.p_very_slow + self.p_slow:
            return rng.uniform(*self.slow_range)
        return max(0.8, rng.normal(1.0, self.good_sigma))


#: Disk/network speed spreads widely across small instances (the bonnie++
#: vetting exists precisely because of this; Fig. 5/Fig. 6 variability).
IO_HETEROGENEITY = HeterogeneityModel()

#: CPU spread on small instances is milder: stragglers exist but run at
#: ~0.5–0.9× rather than 0.25× — deadline misses in Figs. 8–9 are marginal
#: overshoots, not 3× blowouts.
CPU_HETEROGENEITY = HeterogeneityModel(
    p_slow=0.10, p_very_slow=0.02,
    slow_range=(0.72, 0.90), very_slow_range=(0.5, 0.72),
)


@dataclass
class Instance:
    """One virtual machine.

    ``cpu_factor`` / ``io_factor`` are the hidden ground truth (1.0 =
    reference speed); user-facing code must estimate them via bonnie probes
    or observed throughput, never read them.  ``ready_at`` is the simulated
    time at which the instance leaves PENDING.
    """

    instance_id: str
    itype: InstanceType
    zone: AvailabilityZone
    cpu_factor: float
    io_factor: float
    launched_at: float
    boot_delay: float
    state: InstanceState = InstanceState.PENDING
    running_since: float | None = None
    terminated_at: float | None = None
    attached_volumes: list = field(default_factory=list)
    #: RUNNING seconds until a hardware crash (None = never fails).
    time_to_failure: float | None = None
    #: Observability bundle (set by the launching cloud); lifecycle
    #: transitions emit ``cloud.instance.*`` instants/spans through it.
    _obs: "Obs | None" = field(default=None, repr=False, compare=False)

    @property
    def ready_at(self) -> float:
        return self.launched_at + self.boot_delay

    @property
    def crash_at(self) -> float | None:
        """Absolute simulated time of the crash, once RUNNING."""
        if self.time_to_failure is None or self.running_since is None:
            return None
        return self.running_since + self.time_to_failure

    # -- lifecycle ---------------------------------------------------------

    def mark_running(self, now: float) -> None:
        """PENDING -> RUNNING once the boot delay has elapsed."""
        if self.state is not InstanceState.PENDING:
            raise InstanceError(f"{self.instance_id}: cannot start from {self.state}")
        if now < self.ready_at:
            raise InstanceError(
                f"{self.instance_id}: still booting until t={self.ready_at:.1f}"
            )
        self.state = InstanceState.RUNNING
        self.running_since = now
        obs = self._obs
        if obs is not None and obs.enabled:
            # The PENDING->RUNNING boot window as a span on this
            # instance's track, plus the state-change instant.
            obs.tracer.add_span("cloud.instance.boot", self.launched_at,
                                self.ready_at, cat="cloud",
                                track=self.instance_id)
            obs.tracer.instant("cloud.instance.running", cat="cloud",
                               track=self.instance_id)

    def fail(self, now: float) -> None:
        """Hardware crash: instance-store contents are lost, EBS survives."""
        if self.state is not InstanceState.RUNNING:
            raise InstanceError(f"{self.instance_id}: cannot fail from {self.state}")
        self.state = InstanceState.FAILED
        self.terminated_at = now
        for vol in list(self.attached_volumes):
            vol.detach()
        self._close_lifecycle("cloud.instance.failed", now)
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.metrics.counter("cloud.instance.failures").inc()

    def terminate(self, now: float) -> None:
        """Enter TERMINATED; detaches any EBS volumes."""
        if self.state in (InstanceState.TERMINATED, InstanceState.FAILED):
            raise InstanceError(f"{self.instance_id}: already terminated")
        if self.state is InstanceState.RUNNING and now < (self.running_since or 0.0):
            raise InstanceError("termination before start")
        self.state = InstanceState.TERMINATED
        self.terminated_at = now
        for vol in list(self.attached_volumes):
            vol.detach()
        self._close_lifecycle("cloud.instance.terminated", now)

    def _close_lifecycle(self, instant_name: str, now: float) -> None:
        """Emit the RUNNING-interval span and the final state instant."""
        obs = self._obs
        if obs is None or not obs.enabled:
            return
        if self.running_since is not None and now >= self.running_since:
            obs.tracer.add_span("cloud.instance.run", self.running_since,
                                now, cat="cloud", track=self.instance_id,
                                state=self.state.value)
        obs.tracer.instant(instant_name, cat="cloud", track=self.instance_id)

    @property
    def billable_interval(self) -> tuple[float, float] | None:
        """The RUNNING interval (payment is due only while running, §3.1)."""
        if self.running_since is None:
            return None
        end = self.terminated_at if self.terminated_at is not None else float("inf")
        return (self.running_since, end)

    def require_running(self) -> None:
        """Raise unless the instance is RUNNING."""
        if self.state is not InstanceState.RUNNING:
            raise InstanceError(f"{self.instance_id} is {self.state.value}, not running")
