"""Instance lifecycle and per-instance performance ground truth."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cloud.types import AvailabilityZone, InstanceType
from repro.sim.random import RngStream

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Obs

__all__ = ["InstanceState", "Instance", "InstanceColumn", "HeterogeneityModel",
           "InstanceError"]


class InstanceError(RuntimeError):
    """Illegal lifecycle transition or misuse of a terminated instance."""


class InstanceState(enum.Enum):
    """EC2 lifecycle states; only RUNNING time is billable (§3.1)."""

    PENDING = "pending"
    RUNNING = "running"
    SHUTTING_DOWN = "shutting-down"
    TERMINATED = "terminated"
    FAILED = "failed"


@dataclass(frozen=True)
class HeterogeneityModel:
    """Distribution of hidden per-instance quality.

    "Small instances are relatively stable over time, but different
    instances can exhibit performance of up to 4 times from each other"
    (Dejun et al., cited in §6); the paper itself "observe[s] instances
    behaving consistently slow or fast" (§3.1).  Quality is drawn once at
    launch and never changes — consistency is the point.
    """

    p_slow: float = 0.12          # noticeably slow instances
    p_very_slow: float = 0.04     # the 3-4x stragglers
    good_sigma: float = 0.04      # jitter among good instances
    slow_range: tuple[float, float] = (0.5, 0.8)
    very_slow_range: tuple[float, float] = (0.25, 0.5)

    def draw_factor(self, rng: RngStream) -> float:
        """One hidden speed factor (1.0 = reference)."""
        u = rng.uniform()
        if u < self.p_very_slow:
            return rng.uniform(*self.very_slow_range)
        if u < self.p_very_slow + self.p_slow:
            return rng.uniform(*self.slow_range)
        return max(0.8, rng.normal(1.0, self.good_sigma))

    def draw_factors(self, rng: RngStream, n: int) -> np.ndarray:
        """``n`` hidden speed factors in one vectorized draw.

        Same mixture as :meth:`draw_factor` but a fixed draw budget (three
        vectors of ``n``) regardless of which branch each instance lands
        in, so the result is a pure function of ``(rng.seed, n)``.  It is
        *not* draw-identical to ``n`` scalar calls — columnar launches are
        a distinct RNG consumer with their own fork names, so installing
        them never shifts scalar-path draws.
        """
        u = rng.uniforms(0.0, 1.0, n)
        v = rng.uniforms(0.0, 1.0, n)
        g = rng.normals(1.0, self.good_sigma, n)
        vs_lo, vs_hi = self.very_slow_range
        s_lo, s_hi = self.slow_range
        out = np.maximum(0.8, g)
        out = np.where(u < self.p_very_slow + self.p_slow,
                       s_lo + v * (s_hi - s_lo), out)
        out = np.where(u < self.p_very_slow,
                       vs_lo + v * (vs_hi - vs_lo), out)
        return out


#: Disk/network speed spreads widely across small instances (the bonnie++
#: vetting exists precisely because of this; Fig. 5/Fig. 6 variability).
IO_HETEROGENEITY = HeterogeneityModel()

#: CPU spread on small instances is milder: stragglers exist but run at
#: ~0.5–0.9× rather than 0.25× — deadline misses in Figs. 8–9 are marginal
#: overshoots, not 3× blowouts.
CPU_HETEROGENEITY = HeterogeneityModel(
    p_slow=0.10, p_very_slow=0.02,
    slow_range=(0.72, 0.90), very_slow_range=(0.5, 0.72),
)


@dataclass
class Instance:
    """One virtual machine.

    ``cpu_factor`` / ``io_factor`` are the hidden ground truth (1.0 =
    reference speed); user-facing code must estimate them via bonnie probes
    or observed throughput, never read them.  ``ready_at`` is the simulated
    time at which the instance leaves PENDING.
    """

    instance_id: str
    itype: InstanceType
    zone: AvailabilityZone
    cpu_factor: float
    io_factor: float
    launched_at: float
    boot_delay: float
    state: InstanceState = InstanceState.PENDING
    running_since: float | None = None
    terminated_at: float | None = None
    attached_volumes: list = field(default_factory=list)
    #: RUNNING seconds until a hardware crash (None = never fails).
    time_to_failure: float | None = None
    #: Observability bundle (set by the launching cloud); lifecycle
    #: transitions emit ``cloud.instance.*`` instants/spans through it.
    _obs: "Obs | None" = field(default=None, repr=False, compare=False)

    @property
    def ready_at(self) -> float:
        return self.launched_at + self.boot_delay

    @property
    def crash_at(self) -> float | None:
        """Absolute simulated time of the crash, once RUNNING."""
        if self.time_to_failure is None or self.running_since is None:
            return None
        return self.running_since + self.time_to_failure

    # -- lifecycle ---------------------------------------------------------

    def mark_running(self, now: float) -> None:
        """PENDING -> RUNNING once the boot delay has elapsed."""
        if self.state is not InstanceState.PENDING:
            raise InstanceError(f"{self.instance_id}: cannot start from {self.state}")
        if now < self.ready_at:
            raise InstanceError(
                f"{self.instance_id}: still booting until t={self.ready_at:.1f}"
            )
        self.state = InstanceState.RUNNING
        self.running_since = now
        obs = self._obs
        if obs is not None and obs.enabled:
            # The PENDING->RUNNING boot window as a span on this
            # instance's track, plus the state-change instant.
            obs.tracer.add_span("cloud.instance.boot", self.launched_at,
                                self.ready_at, cat="cloud",
                                track=self.instance_id)
            obs.tracer.instant("cloud.instance.running", cat="cloud",
                               track=self.instance_id)

    def fail(self, now: float) -> None:
        """Hardware crash: instance-store contents are lost, EBS survives."""
        if self.state is not InstanceState.RUNNING:
            raise InstanceError(f"{self.instance_id}: cannot fail from {self.state}")
        self.state = InstanceState.FAILED
        self.terminated_at = now
        for vol in list(self.attached_volumes):
            vol.detach()
        self._close_lifecycle("cloud.instance.failed", now)
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.metrics.counter("cloud.instance.failures").inc()

    def terminate(self, now: float) -> None:
        """Enter TERMINATED; detaches any EBS volumes."""
        if self.state in (InstanceState.TERMINATED, InstanceState.FAILED):
            raise InstanceError(f"{self.instance_id}: already terminated")
        if self.state is InstanceState.RUNNING and now < (self.running_since or 0.0):
            raise InstanceError("termination before start")
        self.state = InstanceState.TERMINATED
        self.terminated_at = now
        for vol in list(self.attached_volumes):
            vol.detach()
        self._close_lifecycle("cloud.instance.terminated", now)

    def _close_lifecycle(self, instant_name: str, now: float) -> None:
        """Emit the RUNNING-interval span and the final state instant."""
        obs = self._obs
        if obs is None or not obs.enabled:
            return
        if self.running_since is not None and now >= self.running_since:
            obs.tracer.add_span("cloud.instance.run", self.running_since,
                                now, cat="cloud", track=self.instance_id,
                                state=self.state.value)
        obs.tracer.instant(instant_name, cat="cloud", track=self.instance_id)

    @property
    def billable_interval(self) -> tuple[float, float] | None:
        """The RUNNING interval (payment is due only while running, §3.1)."""
        if self.running_since is None:
            return None
        end = self.terminated_at if self.terminated_at is not None else float("inf")
        return (self.running_since, end)

    def require_running(self) -> None:
        """Raise unless the instance is RUNNING."""
        if self.state is not InstanceState.RUNNING:
            raise InstanceError(f"{self.instance_id} is {self.state.value}, not running")


class InstanceColumn:
    """``n`` homogeneous instances held as parallel numpy arrays.

    The columnar counterpart of :class:`Instance` — the PR-1 reshaping
    move (object rows → columns) applied to fleet state.  One engine event
    advances the whole column through a lifecycle edge (boot barrier,
    completion sweep) instead of ``n`` per-instance callbacks; hidden
    per-instance quality lives in ``cpu_factor`` / ``io_factor`` vectors.

    Lifecycle is deliberately coarser than the scalar class: the column
    boots together (``mark_running_all`` at the barrier — the fleet-launch
    semantics every runner already uses) and retires per instance via a
    vector of end times.  Anything needing per-instance lifecycle nuance
    (crash recovery, lease churn) belongs on scalar instances.
    """

    __slots__ = ("column_id", "itype", "zone", "launched_at", "boot_delay",
                 "cpu_factor", "io_factor", "running_since", "terminated_at",
                 "_running")

    def __init__(self, column_id: str, itype: InstanceType,
                 zone: AvailabilityZone, launched_at: float,
                 boot_delay: np.ndarray, cpu_factor: np.ndarray,
                 io_factor: np.ndarray) -> None:
        n = len(boot_delay)
        if len(cpu_factor) != n or len(io_factor) != n:
            raise InstanceError("column arrays must share one length")
        self.column_id = column_id
        self.itype = itype
        self.zone = zone
        self.launched_at = launched_at
        self.boot_delay = np.asarray(boot_delay, dtype=float)
        self.cpu_factor = np.asarray(cpu_factor, dtype=float)
        self.io_factor = np.asarray(io_factor, dtype=float)
        self.running_since: float | None = None
        self.terminated_at: np.ndarray | None = None
        self._running = False

    def __len__(self) -> int:
        return len(self.boot_delay)

    @property
    def n(self) -> int:
        return len(self.boot_delay)

    def instance_id(self, i: int) -> str:
        """Stable per-member id (for reports and ledger attribution)."""
        return f"{self.column_id}#{i:06d}"

    @property
    def ready_at(self) -> np.ndarray:
        """Per-member boot completion times."""
        return self.launched_at + self.boot_delay

    @property
    def barrier(self) -> float:
        """The fleet boot barrier: the slowest member's ready time."""
        return float(self.ready_at.max()) if self.n else self.launched_at

    @property
    def running(self) -> bool:
        return self._running

    def mark_running_all(self, now: float) -> None:
        """PENDING → RUNNING for the whole column at the boot barrier."""
        if self._running:
            raise InstanceError(f"{self.column_id}: column already running")
        if self.n and now < self.barrier:
            raise InstanceError(
                f"{self.column_id}: still booting until t={self.barrier:.1f}")
        self.running_since = now
        self._running = True

    def terminate_all(self, ends: np.ndarray | float) -> np.ndarray:
        """Retire every member at its own end time; returns the ends vector."""
        if not self._running:
            raise InstanceError(f"{self.column_id}: column never started")
        if self.terminated_at is not None:
            raise InstanceError(f"{self.column_id}: column already terminated")
        ends = np.broadcast_to(np.asarray(ends, dtype=float), (self.n,)).copy()
        if self.n and float(ends.min()) < (self.running_since or 0.0):
            raise InstanceError("termination before the column started")
        self.terminated_at = ends
        self._running = False
        return ends

    def require_running(self) -> None:
        """Raise unless the column is RUNNING."""
        if not self._running:
            raise InstanceError(f"{self.column_id} is not running")
