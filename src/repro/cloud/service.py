"""Execution service: charge an application run against an instance.

This is the boundary between the hidden ground truth and the empirical
world.  A *measured time* returned by :meth:`ExecutionService.run` folds
together:

* the workload profile's reference-time breakdown (setup / io / cpu),
* the instance's hidden cpu/io factors (heterogeneity, §3.1),
* the EBS placement factor of the directory being read (Fig. 5 spikes),
* per-run setup jitter (unstable small probes, Fig. 3),
* multiplicative measurement noise.

Everything above the cloud (perfmodel, planner) sees only these times —
exactly the observational position the paper's user is in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.apps.base import TextApplication, Unit, as_unit_meta
from repro.apps.profiles import GrepCostProfile, PosCostProfile
from repro.cloud.cluster import Cloud
from repro.cloud.ebs import EbsVolume
from repro.cloud.instance import Instance, InstanceColumn

__all__ = ["Workload", "ExecutionService"]

Profile = Union[GrepCostProfile, PosCostProfile]


@dataclass(frozen=True)
class Workload:
    """An application paired with its ground-truth cost profile."""

    name: str
    app: TextApplication
    profile: Profile


class ExecutionService:
    """Runs workloads on cloud instances and reports measured seconds."""

    def __init__(self, cloud: Cloud, noise_sigma: float = 0.02) -> None:
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self.cloud = cloud
        self.noise_sigma = noise_sigma
        self._run_counts: dict[str, int] = {}

    def run(
        self,
        instance: Instance,
        units: Sequence[Unit],
        workload: Workload,
        *,
        storage: EbsVolume | None = None,
        directory: str = "data",
        advance_clock: bool = True,
    ) -> float:
        """Execute ``workload`` over ``units``; return measured seconds.

        With ``storage`` given, I/O time is scaled by that volume's
        placement factor for ``directory`` (the volume must be attached to
        ``instance``).  With ``advance_clock`` the cloud clock moves by the
        measured duration, so billing sees the usage.
        """
        instance.require_running()
        if storage is not None and storage.attached_to is not instance:
            raise ValueError(
                f"{storage.volume_id} is not attached to {instance.instance_id}"
            )
        meta = [as_unit_meta(u) for u in units]
        work = workload.app.estimate_work(meta)
        breakdown = workload.profile.breakdown(meta, matches=work.matches)

        n = self._run_counts.get(instance.instance_id, 0)
        self._run_counts[instance.instance_id] = n + 1
        rng = self.cloud.rng.fork(f"exec.{instance.instance_id}.{n}")

        setup = workload.profile.draw_setup(rng.fork("setup"))
        if storage is not None:
            # access_factor = stable placement quality x any active
            # chaos degradation episode for the volume's zone.
            storage_factor = storage.access_factor(directory)
        elif self.cloud.chaos is not None:
            # No explicit volume: reads hit instance-local EBS, which a
            # degraded-throughput episode in this zone still slows.
            storage_factor = self.cloud.chaos.ebs_factor(
                self.cloud.now, instance.zone.name)
        else:
            storage_factor = 1.0
        t = (
            setup
            + breakdown.io * storage_factor / instance.io_factor
            + breakdown.cpu / instance.cpu_factor
        )
        if self.noise_sigma:
            t *= rng.fork("noise").lognormal(0.0, self.noise_sigma)
        if advance_clock:
            self.cloud.advance(t)
        return t

    def run_column(
        self,
        column: InstanceColumn,
        workload: Workload,
        io_ref: np.ndarray,
        cpu_ref: np.ndarray,
    ) -> np.ndarray:
        """Measured seconds for member ``i`` processing its own reference work.

        The columnar counterpart of :meth:`run`: ``io_ref``/``cpu_ref``
        hold each member's reference-instance seconds (one entry per
        column member — from :meth:`GrepCostProfile.breakdown` per bin, or
        broadcast for a uniform fleet), and the same composition applies
        vectorized — per-member setup draw, hidden cpu/io division, and
        multiplicative measurement noise.  Draws come from an
        ``exec.column.{id}.{k}`` fork, a namespace scalar runs never use.

        The clock is *not* advanced here — the columnar runner owns the
        engine events.  Storage reads are instance-local (factor 1.0);
        EBS placement and chaos episodes stay on the scalar path.
        """
        column.require_running()
        n = column.n
        io_ref = np.broadcast_to(np.asarray(io_ref, dtype=float), (n,))
        cpu_ref = np.broadcast_to(np.asarray(cpu_ref, dtype=float), (n,))
        k = self._run_counts.get(column.column_id, 0)
        self._run_counts[column.column_id] = k + 1
        rng = self.cloud.rng.fork(f"exec.column.{column.column_id}.{k}")
        t = (
            workload.profile.draw_setups(rng.fork("setup"), n)
            + io_ref / column.io_factor
            + cpu_ref / column.cpu_factor
        )
        if self.noise_sigma:
            t = t * rng.fork("noise").lognormals(0.0, self.noise_sigma, n)
        return t
