"""Instance types, regions and availability zones (§1.1 background)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import GB, MB

__all__ = ["InstanceType", "Region", "AvailabilityZone", "SMALL", "LARGE", "US_EAST",
           "US_WEST", "EU_WEST"]


@dataclass(frozen=True)
class InstanceType:
    """An EC2 instance class.

    ``hourly_rate`` is charged per hour *or partial hour* of RUNNING time —
    the pricing quirk that shapes the whole §5 provisioning strategy.
    Reference hardware factors are 1.0 for the small instance; the paper's
    measurements (and ours) are all small-instance based.
    """

    name: str
    compute_units: float        # EC2 compute units (1.0–1.2 GHz 2007 Opteron)
    memory_gb: float
    local_storage_gb: int
    hourly_rate: float          # USD per (partial) hour
    arch_bits: int = 32
    base_disk_bandwidth: float = 85 * MB  # block read on a good instance

    def __post_init__(self) -> None:
        if self.hourly_rate <= 0 or self.compute_units <= 0:
            raise ValueError("instance type must have positive rate and compute")


#: The paper's workhorse: "a basic Amazon EC2 32-bit small instance running
#: Fedora Core 8 … 1.7 GB memory, 1 EC2 compute unit, 160 GB local storage"
#: at $0.085/h (the §5 figure; §3.1 quotes the earlier $0.10 price point).
SMALL = InstanceType(
    name="m1.small", compute_units=1.0, memory_gb=1.7,
    local_storage_gb=160, hourly_rate=0.085,
)

LARGE = InstanceType(
    name="m1.large", compute_units=4.0, memory_gb=7.5,
    local_storage_gb=850, hourly_rate=0.34, arch_bits=64,
)


@dataclass(frozen=True)
class AvailabilityZone:
    """A failure-isolated zone within a region (e.g. ``us-east-1a``)."""

    name: str
    region_name: str


@dataclass(frozen=True)
class Region:
    """An independent EC2 region with its availability zones."""

    name: str
    zones: tuple[AvailabilityZone, ...] = field(default_factory=tuple)

    def zone(self, suffix: str) -> AvailabilityZone:
        """Zone in this region whose name ends with ``suffix``."""
        for z in self.zones:
            if z.name.endswith(suffix):
                return z
        raise KeyError(f"no zone {suffix!r} in region {self.name}")


def _region(name: str, suffixes: str) -> Region:
    return Region(name=name, zones=tuple(
        AvailabilityZone(name=f"{name}-1{s}", region_name=name) for s in suffixes
    ))


US_EAST = _region("us-east", "abcd")
US_WEST = _region("us-west", "ab")
EU_WEST = _region("eu-west", "ab")
