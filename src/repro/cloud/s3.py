"""A Simple-Storage-Service-like object store (§1.1).

"Users can store an unlimited number of objects each of size of up to
5 GB.  Multiple instances can access this storage in parallel with low
latency, which is however higher and more variable than that for EBS
storage volumes."  The experiments stage results through S3 in the
retrieval example, so put/get latency modelling is enough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.sim.random import RngStream
from repro.units import GB, MB

__all__ = ["S3Object", "S3Store", "S3Error", "MAX_OBJECT_SIZE"]

MAX_OBJECT_SIZE = 5 * GB


class S3Error(RuntimeError):
    """Object-store misuse (oversized object, missing key)."""


@dataclass(frozen=True)
class S3Object:
    key: str
    size: int
    region_name: str


@dataclass
class S3Store:
    """Region-scoped object store with variable transfer latency.

    ``transfer_time`` draws per-request latency: a base round-trip plus a
    bandwidth term, both noisier than EBS (lognormal multiplier).
    """

    region_name: str
    base_latency: float = 0.08          # seconds per request
    bandwidth: float = 40 * MB          # bytes/s sustained
    latency_sigma: float = 0.35         # request-to-request variability
    #: Chaos hook: zero-arg callable returning ``(factor, sigma_boost)``
    #: for the current simulated time — a brownout stretches transfers by
    #: ``factor`` and fattens the latency tail by ``sigma_boost``.  Wired
    #: by the cloud when a fault injector is installed; ``None`` keeps
    #: the undegraded fast path.
    degradation: Callable[[], tuple[float, float]] | None = None
    _objects: dict[str, S3Object] = field(default_factory=dict)

    def put(self, key: str, size: int) -> S3Object:
        """Store an object (size-checked against the 5 GB cap)."""
        if not key:
            raise S3Error("empty key")
        if size < 0 or size > MAX_OBJECT_SIZE:
            raise S3Error(f"object size {size} outside [0, {MAX_OBJECT_SIZE}]")
        obj = S3Object(key=key, size=size, region_name=self.region_name)
        self._objects[key] = obj
        return obj

    def get(self, key: str) -> S3Object:
        """Look up an object by key."""
        if key not in self._objects:
            raise S3Error(f"no such object: {key!r}")
        return self._objects[key]

    def delete(self, key: str) -> None:
        """Remove an object if present (idempotent)."""
        self._objects.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def transfer_time(self, size: int, rng: RngStream) -> float:
        """Seconds to move ``size`` bytes in or out of the store."""
        if size < 0:
            raise S3Error("negative transfer size")
        base = self.base_latency + size / self.bandwidth
        sigma = self.latency_sigma
        if self.degradation is not None:
            factor, boost = self.degradation()
            base *= factor
            sigma += boost
        return base * rng.lognormal(0.0, sigma)

    def bulk_transfer_time(self, size: int, n_objects: int,
                           rng: RngStream) -> float:
        """Seconds to move a batch of ``n_objects`` totalling ``size`` bytes.

        The inter-stage data-sharing surface: one round-trip latency per
        object plus one sustained-bandwidth term for the payload, under a
        single lognormal draw — a deliberately coarse-grained cousin of
        :meth:`transfer_time` that stays one RNG draw per batch however
        many objects a stage hands over.  Degradation episodes stretch the
        batch exactly as they stretch individual requests.
        """
        if size < 0:
            raise S3Error("negative transfer size")
        if n_objects < 0:
            raise S3Error("negative object count")
        base = n_objects * self.base_latency + size / self.bandwidth
        sigma = self.latency_sigma
        if self.degradation is not None:
            factor, boost = self.degradation()
            base *= factor
            sigma += boost
        return base * rng.lognormal(0.0, sigma)

    def retrieval_time(self, keys: list[str], rng: RngStream) -> float:
        """Total time to fetch many result objects sequentially.

        Output segmentation is why reshaping "speeds up the task of
        retrieving the results" (§1): per-request latency dominates when
        results are scattered across many small objects.
        """
        return sum(self.transfer_time(self.get(k).size, rng) for k in keys)
