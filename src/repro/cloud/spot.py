"""Spot-instance market (§1.1 background; extension beyond the core paper).

"The price for these instances depends on current supply/demand conditions
in the Amazon cloud.  The user can specify a maximum amount she is willing
to pay … and configure her instance to execute whenever this maximum bid
becomes higher than the current market offer."  The paper sticks to
on-demand instances because of deadlines; we model the market anyway so the
cost/deadline trade-off can be explored (see ``tests/test_spot_market.py``
and ``examples/spot_fallback.py``).

Three layers:

* :class:`SpotMarket` — one hourly mean-reverting price process;
* :class:`SpotMarketBoard` — one market per (availability zone, instance
  type), each drawn from its own *named* RNG fork so installing a board
  never shifts any existing stream, plus the interruption calculus: the
  first hour boundary where the price crosses a bid is a
  :class:`SpotInterruption` carrying the two-minute warning EC2 grants;
* :class:`SpotRequest` — the standalone §1.1 persistent-request model
  (kept for the original exploration scripts).

Billing follows the 2010 spot rules: each started instance-hour is charged
at the spot price in force when the hour began; an hour cut short because
*the market* reclaimed the instance is free, while an hour cut short by
the *user* terminating is charged in full (the on-demand ceil-hour rule).
:meth:`SpotMarketBoard.bill_segment` is the one implementation of that
arithmetic, used by the runner's spot acquisition policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.cloud.types import SMALL, InstanceType
from repro.sim.random import RngStream
from repro.units import HOUR

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.cluster import Cloud

__all__ = ["SpotMarket", "SpotMarketBoard", "SpotInterruption", "SpotRequest",
           "TWO_MINUTE_WARNING"]

#: EC2's interruption notice: the instance learns of its reclamation two
#: minutes before termination — the window a checkpoint must fit into.
TWO_MINUTE_WARNING = 120.0

#: How far ahead interruption/affordability scans look before giving up.
DEFAULT_HORIZON_HOURS = 24 * 7


@dataclass
class SpotMarket:
    """Hourly mean-reverting spot price process.

    ``price(h)`` for integer hour ``h`` follows an Ornstein–Uhlenbeck-like
    recursion around ``mean_price``, floored at ``floor``.  The market
    predates any campaign, so hour 0 is already a shocked draw around the
    mean (unless ``start_price`` pins it) — different zones disagree from
    the first query, which is what makes bid aggressiveness select zones.
    Deterministic in the seed; prices are cached so queries are
    idempotent.
    """

    rng: RngStream
    mean_price: float = 0.04        # typical 2010 small-instance spot price
    reversion: float = 0.35
    volatility: float = 0.012
    floor: float = 0.01
    start_price: float | None = None
    _prices: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 < self.reversion <= 1:
            raise ValueError("reversion must be in (0, 1]")
        if self.mean_price <= 0 or self.floor < 0:
            raise ValueError("prices must be positive")

    def price(self, hour: int) -> float:
        """Spot price during wall-clock hour ``hour`` (0-based)."""
        if hour < 0:
            raise ValueError("hour must be non-negative")
        while len(self._prices) <= hour:
            if not self._prices:
                if self.start_price is not None:
                    p = self.start_price
                else:
                    p = self.mean_price + self.rng.normal(0.0, self.volatility)
            else:
                prev = self._prices[-1]
                shock = self.rng.normal(0.0, self.volatility)
                p = prev + self.reversion * (self.mean_price - prev) + shock
            self._prices.append(max(self.floor, p))
        return self._prices[hour]

    def prices(self, hours: int) -> list[float]:
        """The first ``hours`` hourly prices."""
        return [self.price(h) for h in range(hours)]


@dataclass(frozen=True)
class SpotInterruption:
    """One market reclamation: the price crossed above the bid.

    ``at`` is the absolute simulated second the instance is terminated
    (always an hour boundary — prices move hourly); ``warning_at`` is the
    two-minute notice the instance can checkpoint against.  ``source``
    distinguishes price crossings (``"market"``) from replayed trace
    events (``"trace"``, see
    :class:`~repro.chaos.scenario.SpotInterruptionTrace`).
    """

    zone: str
    at: float
    price: float
    bid: float
    source: str = "market"
    warning_seconds: float = TWO_MINUTE_WARNING

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("interruption time must be non-negative")
        if self.warning_seconds < 0:
            raise ValueError("warning must be non-negative")

    @property
    def warning_at(self) -> float:
        """Absolute second the two-minute warning is delivered."""
        return max(0.0, self.at - self.warning_seconds)


class SpotMarketBoard:
    """Per-AZ (and per-type) spot price processes with interruption math.

    Every ``(zone, instance type)`` pair gets an *independent*
    :class:`SpotMarket` whose stream is forked from the board's RNG by
    name (``market.{type}.{zone}``) — a pure derivation, so creating a
    board (or querying a new zone) never shifts draws any existing
    consumer observes, and two boards built from the same fork are
    bit-identical.

    Prices for non-reference instance types scale with their on-demand
    rate ratio (an ``m1.large`` trades at 4× the small-instance market,
    just as its on-demand price does); bids are always expressed in
    *reference* (small-instance) terms and scaled the same way, so one
    bid knob governs the whole ladder.
    """

    def __init__(self, rng: RngStream, zones: Iterable[str], *,
                 mean_price: float = 0.04, reversion: float = 0.35,
                 volatility: float = 0.012, floor: float = 0.01,
                 reference_rate: float = SMALL.hourly_rate,
                 warning_seconds: float = TWO_MINUTE_WARNING) -> None:
        self.rng = rng
        self.zones = tuple(zones)
        if not self.zones:
            raise ValueError("a market board needs at least one zone")
        self.mean_price = mean_price
        self.reversion = reversion
        self.volatility = volatility
        self.floor = floor
        self.reference_rate = reference_rate
        self.warning_seconds = warning_seconds
        self._markets: dict[tuple[str, str], SpotMarket] = {}

    @classmethod
    def for_cloud(cls, cloud: "Cloud", **kwargs) -> "SpotMarketBoard":
        """A board over ``cloud``'s zones, forked off its root stream.

        The fork name (``spot.board``) is a namespace no other consumer
        uses, so attaching a board leaves the cloud's hidden state —
        instance quality, boot delays, measurement noise — byte-identical.
        """
        return cls(cloud.rng.fork("spot.board"),
                   (z.name for z in cloud.region.zones), **kwargs)

    # -- prices ------------------------------------------------------------

    def scale(self, itype: InstanceType) -> float:
        """Price multiplier for ``itype`` relative to the reference type."""
        return itype.hourly_rate / self.reference_rate

    def market(self, zone: str, itype: InstanceType = SMALL) -> SpotMarket:
        """The (cached) price process for one ``(zone, type)`` pair."""
        if zone not in self.zones:
            raise KeyError(f"unknown zone {zone!r}; board covers {self.zones}")
        key = (zone, itype.name)
        m = self._markets.get(key)
        if m is None:
            s = self.scale(itype)
            m = SpotMarket(rng=self.rng.fork(f"market.{itype.name}.{zone}"),
                           mean_price=self.mean_price * s,
                           reversion=self.reversion,
                           volatility=self.volatility * s,
                           floor=self.floor * s)
            self._markets[key] = m
        return m

    def price(self, zone: str, hour: int, itype: InstanceType = SMALL) -> float:
        """Spot price in ``zone`` for ``itype`` during market hour ``hour``."""
        return self.market(zone, itype).price(hour)

    def affordable(self, zone: str, hour: int, bid: float,
                   itype: InstanceType = SMALL) -> bool:
        """Would a reference-terms ``bid`` hold ``itype`` in ``zone``?"""
        return self.price(zone, hour, itype) <= bid * self.scale(itype)

    def cheapest_zone(self, hour: int, bid: float, *,
                      itype: InstanceType = SMALL,
                      exclude: Iterable[str] = ()) -> str | None:
        """Cheapest zone whose price the bid covers at ``hour`` (or None)."""
        skip = set(exclude)
        best: str | None = None
        best_price = float("inf")
        for zone in self.zones:
            if zone in skip:
                continue
            p = self.price(zone, hour, itype)
            if p <= bid * self.scale(itype) and p < best_price:
                best, best_price = zone, p
        return best

    # -- interruption calculus --------------------------------------------

    def next_crossing(self, zone: str, *, after: float, bid: float,
                      itype: InstanceType = SMALL,
                      horizon_hours: int = DEFAULT_HORIZON_HOURS,
                      ) -> SpotInterruption | None:
        """First price-above-bid hour boundary strictly after ``after``.

        This is the engine-schedulable interruption event: an instance
        running in ``zone`` since ``after`` survives exactly until the
        returned event's ``at`` (and hears about it ``warning_seconds``
        earlier).  ``None`` means the bid holds for the whole horizon.
        """
        h = int(after // HOUR) + 1
        scaled_bid = bid * self.scale(itype)
        for hour in range(h, h + horizon_hours):
            p = self.price(zone, hour, itype)
            if p > scaled_bid:
                return SpotInterruption(
                    zone=zone, at=hour * HOUR, price=p, bid=scaled_bid,
                    source="market", warning_seconds=self.warning_seconds)
        return None

    def next_affordable_hour(self, zone: str, *, from_hour: int, bid: float,
                             itype: InstanceType = SMALL,
                             horizon_hours: int = DEFAULT_HORIZON_HOURS,
                             ) -> int | None:
        """First hour >= ``from_hour`` the bid covers in ``zone`` (or None)."""
        scaled_bid = bid * self.scale(itype)
        for hour in range(from_hour, from_hour + horizon_hours):
            if self.price(zone, hour, itype) <= scaled_bid:
                return hour
        return None

    # -- billing -----------------------------------------------------------

    def bill_segment(self, zone: str, start: float, end: float, *,
                     itype: InstanceType = SMALL,
                     interrupted: bool = False) -> list[tuple[float, float, float]]:
        """Charged sub-intervals for one spot run under 2010 billing rules.

        Returns ``(sub_start, sub_end, hourly_price)`` triples, one per
        charged instance-hour: each started hour bills at the market
        price in force at its start; with ``interrupted`` (the market
        reclaimed the instance) the trailing partial hour is free,
        otherwise (user termination) it is charged like any ceil-hour.
        """
        if end < start:
            raise ValueError("segment ends before it starts")
        out: list[tuple[float, float, float]] = []
        t = start
        while t < end:
            sub_end = min(end, t + HOUR)
            if interrupted and sub_end - t < HOUR and sub_end >= end:
                break                        # reclaimed mid-hour: free
            out.append((t, sub_end, self.price(zone, int(t // HOUR), itype)))
            t = sub_end
        return out


@dataclass(frozen=True)
class SpotRequest:
    """A persistent spot request at a fixed maximum bid."""

    bid: float

    def __post_init__(self) -> None:
        if self.bid <= 0:
            raise ValueError("bid must be positive")

    def active_hours(self, market: SpotMarket, horizon_hours: int) -> list[int]:
        """Hours within the horizon during which the instance would run."""
        return [h for h in range(horizon_hours) if market.price(h) <= self.bid]

    def simulate_progress(
        self, market: SpotMarket, horizon_hours: int, work_hours: float
    ) -> dict:
        """Run ``work_hours`` of resumable computation on spot capacity.

        Returns completion hour (or None), hours of paid compute and total
        cost.  Applications "are required to be able to resume cleanly"
        (§1.1): progress simply accumulates over active hours.  Zero work
        is complete before any hour starts — ``completed_hour=0``, nothing
        paid — regardless of whether the bid ever holds.
        """
        if work_hours < 0:
            raise ValueError("work must be non-negative")
        if work_hours == 0:
            return {"completed_hour": 0, "paid_hours": 0,
                    "cost": 0.0, "done": True}
        done = 0.0
        cost = 0.0
        paid_hours = 0
        for h in range(horizon_hours):
            price = market.price(h)
            if price <= self.bid:
                cost += price
                paid_hours += 1
                done += 1.0
                if done >= work_hours:
                    return {"completed_hour": h + 1, "paid_hours": paid_hours,
                            "cost": cost, "done": True}
        return {"completed_hour": None, "paid_hours": paid_hours,
                "cost": cost, "done": False}
