"""Spot-instance market (§1.1 background; extension beyond the core paper).

"The price for these instances depends on current supply/demand conditions
in the Amazon cloud.  The user can specify a maximum amount she is willing
to pay … and configure her instance to execute whenever this maximum bid
becomes higher than the current market offer."  The paper sticks to
on-demand instances because of deadlines; we model the market anyway so the
cost/deadline trade-off can be explored (see
``benchmarks/test_spot_extension.py`` and ``examples/spot_market.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.random import RngStream

__all__ = ["SpotMarket", "SpotRequest"]


@dataclass
class SpotMarket:
    """Hourly mean-reverting spot price process.

    ``price(h)`` for integer hour ``h`` follows an Ornstein–Uhlenbeck-like
    recursion around ``mean_price``, floored at ``floor``.  Deterministic
    in the seed; prices are cached so queries are idempotent.
    """

    rng: RngStream
    mean_price: float = 0.04        # typical 2010 small-instance spot price
    reversion: float = 0.35
    volatility: float = 0.012
    floor: float = 0.01
    start_price: float | None = None
    _prices: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 < self.reversion <= 1:
            raise ValueError("reversion must be in (0, 1]")
        if self.mean_price <= 0 or self.floor < 0:
            raise ValueError("prices must be positive")

    def price(self, hour: int) -> float:
        """Spot price during wall-clock hour ``hour`` (0-based)."""
        if hour < 0:
            raise ValueError("hour must be non-negative")
        while len(self._prices) <= hour:
            if not self._prices:
                p = self.start_price if self.start_price is not None else self.mean_price
            else:
                prev = self._prices[-1]
                shock = self.rng.normal(0.0, self.volatility)
                p = prev + self.reversion * (self.mean_price - prev) + shock
            self._prices.append(max(self.floor, p))
        return self._prices[hour]

    def prices(self, hours: int) -> list[float]:
        """The first ``hours`` hourly prices."""
        return [self.price(h) for h in range(hours)]


@dataclass(frozen=True)
class SpotRequest:
    """A persistent spot request at a fixed maximum bid."""

    bid: float

    def __post_init__(self) -> None:
        if self.bid <= 0:
            raise ValueError("bid must be positive")

    def active_hours(self, market: SpotMarket, horizon_hours: int) -> list[int]:
        """Hours within the horizon during which the instance would run."""
        return [h for h in range(horizon_hours) if market.price(h) <= self.bid]

    def simulate_progress(
        self, market: SpotMarket, horizon_hours: int, work_hours: float
    ) -> dict:
        """Run ``work_hours`` of resumable computation on spot capacity.

        Returns completion hour (or None), hours of paid compute and total
        cost.  Applications "are required to be able to resume cleanly"
        (§1.1): progress simply accumulates over active hours.
        """
        if work_hours < 0:
            raise ValueError("work must be non-negative")
        done = 0.0
        cost = 0.0
        paid_hours = 0
        for h in range(horizon_hours):
            price = market.price(h)
            if price <= self.bid:
                cost += price
                paid_hours += 1
                done += 1.0
                if done >= work_hours:
                    return {"completed_hour": h + 1, "paid_hours": paid_hours,
                            "cost": cost, "done": True}
        return {"completed_hour": None, "paid_hours": paid_hours,
                "cost": cost, "done": work_hours == 0}
