"""Instance failure injection.

EC2's fault tolerance is a headline reason the paper considers clouds at
all (§1), EBS persistence is motivated by surviving crashes ("the root
partition … of type instance-store … its contents are lost in case of a
crash", §1.1), and §7 plans to "force termination [of unresponsive
instances] and reassign their task to another instance".  This module
injects the crashes those mechanisms exist for.

A :class:`FailureModel` draws an exponential time-to-failure per instance
at launch; the instance crashes that long after it enters RUNNING.  The
fault-tolerant runner (:mod:`repro.runner.fault_tolerant`) then detects
and recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.random import RngStream
from repro.units import HOUR

__all__ = ["FailureModel"]


@dataclass(frozen=True)
class FailureModel:
    """Exponential instance-crash process.

    ``mtbf_hours`` is the mean time between failures of a single running
    instance.  EC2's SLA-era reality was weeks, but fault-tolerance tests
    use small values to exercise recovery within one simulated job.
    """

    mtbf_hours: float

    def __post_init__(self) -> None:
        if self.mtbf_hours <= 0:
            raise ValueError("MTBF must be positive")

    def draw_time_to_failure(self, rng: RngStream) -> float:
        """Seconds of RUNNING time until this instance crashes."""
        return rng.exponential(self.mtbf_hours * HOUR)
