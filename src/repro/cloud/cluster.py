"""The cloud facade: launching, terminating, storage, billing."""

from __future__ import annotations

from repro.obs import Obs, get_obs
from repro.cloud.billing import BillingLedger, ColumnUsage, UsageRecord
from repro.cloud.ebs import EbsError, EbsVolume, PlacementModel
from repro.cloud.instance import (
    HeterogeneityModel,
    Instance,
    InstanceColumn,
    InstanceError,
    InstanceState,
)
from repro.cloud.s3 import S3Store
from repro.cloud.types import SMALL, AvailabilityZone, InstanceType, Region, US_EAST
from repro.sim.engine import SimulationEngine
from repro.sim.random import RngStream
from repro.units import billed_hours

__all__ = ["Cloud"]


class Cloud:
    """A single-region EC2 simulation with deterministic hidden state.

    All randomness (instance quality, boot delays, placement, measurement
    noise) descends from ``seed``.  The simulated clock is owned by an
    internal :class:`SimulationEngine`; callers advance it through the
    execution service or :meth:`advance`.
    """

    def __init__(
        self,
        seed: int = 0,
        region: Region = US_EAST,
        heterogeneity: HeterogeneityModel | None = None,
        placement: PlacementModel | None = None,
        boot_delay_range: tuple[float, float] = (90.0, 210.0),
        cpu_heterogeneity: HeterogeneityModel | None = None,
        io_heterogeneity: HeterogeneityModel | None = None,
        failure_model: "FailureModel | None" = None,
        obs: Obs | None = None,
        chaos: "FaultInjector | None" = None,
        scheduler: str = "auto",
    ) -> None:
        from repro.cloud.instance import CPU_HETEROGENEITY, IO_HETEROGENEITY

        # Observability: captured at construction (module default unless
        # given).  The tracer is bound to this cloud's engine clock, so
        # every span/instant below is on *simulated* seconds.
        self.obs = obs or get_obs()
        # ``scheduler`` selects the engine's priority-queue layout (heap,
        # bucket, or auto migration); all three fire in identical order,
        # so this is a pure performance knob.
        self.engine = SimulationEngine(
            tracer=self.obs.tracer if self.obs.tracer.enabled else None,
            scheduler=scheduler)
        if self.obs.tracer.enabled:
            self.obs.tracer.bind_clock(lambda: self.engine.now)
        self.rng = RngStream(seed, name="cloud")
        self.region = region
        # ``heterogeneity`` overrides both resource models when given.
        self.cpu_heterogeneity = heterogeneity or cpu_heterogeneity or CPU_HETEROGENEITY
        self.io_heterogeneity = heterogeneity or io_heterogeneity or IO_HETEROGENEITY
        self.placement = placement or PlacementModel()
        self.boot_delay_range = boot_delay_range
        self.failure_model = failure_model
        self.ledger = BillingLedger(obs=self.obs)
        self.s3 = S3Store(region_name=region.name)
        self._instances: dict[str, Instance] = {}
        self._columns: dict[str, InstanceColumn] = {}
        self._volumes: dict[str, EbsVolume] = {}
        self._launches = 0
        self._column_launches = 0
        self._volume_count = 0
        # Chaos: the injector answers the launch/advance/storage hook
        # points below.  Launch attempts get their own counter so a
        # rejected attempt never shifts the per-instance RNG forks that
        # successful launches consume — installing chaos leaves every
        # granted instance's hidden state byte-identical.
        self.chaos = chaos
        self._launch_attempts = 0
        if chaos is not None:
            if chaos.obs is None:
                chaos.obs = self.obs
            if chaos.has_s3_degradations:
                self.s3.degradation = lambda: (chaos.s3_factor(self.now),
                                               chaos.s3_sigma_boost(self.now))

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.engine.now

    def advance(self, seconds: float) -> None:
        """Move simulated time forward by ``seconds``.

        With chaos installed, the advance steps through any AZ-outage
        onsets inside the window: at each onset every RUNNING instance in
        the dying zone is failed (and billed to that moment) before time
        continues, so post-outage code observes the zone already dark.
        """
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        target = self.engine.now + seconds
        if self.chaos is not None and self.chaos.has_outages:
            for start, zone_name in self.chaos.outage_starts_between(
                    self.engine.now, target):
                if start > self.engine.now:
                    self.engine.run(until=start)
                self._kill_zone(zone_name)
        self.engine.run(until=target)

    def _kill_zone(self, zone_name: str) -> None:
        """Fail every RUNNING instance in a zone (AZ outage onset)."""
        for inst in self.running_instances():
            if inst.zone.name == zone_name:
                self.chaos.record_outage_kill(self.now, zone_name,
                                              inst.instance_id)
                self.fail_instance(inst)

    # -- instances ---------------------------------------------------------

    def launch_instance(
        self,
        itype: InstanceType = SMALL,
        zone: AvailabilityZone | None = None,
        *,
        wait: bool = True,
    ) -> Instance:
        """Request one instance; with ``wait``, block until it is RUNNING.

        The boot delay ("a penalty of 3 min for the new instance startup",
        §3.1) is drawn per launch; booting time is not billed.

        With chaos installed the attempt may raise
        :class:`~repro.chaos.LaunchRejected` (capacity crunch, AZ outage)
        or come back with a pathological boot delay (boot hang — the
        instance sits PENDING far past the normal range).
        """
        target_zone = zone or self.region.zones[0]
        if self.chaos is not None:
            self._launch_attempts += 1
            decision = self.chaos.launch_decision(
                target_zone.name, self.now, self._launch_attempts)
            if decision.kind == "reject":
                if self.obs.enabled:
                    self.obs.metrics.counter("cloud.instance.rejections",
                                             zone=target_zone.name,
                                             reason=decision.reason).inc()
                from repro.chaos import LaunchRejected
                raise LaunchRejected(target_zone.name, decision.reason)
        else:
            decision = None
        self._launches += 1
        rng = self.rng.fork(f"instance.{self._launches}")
        boot_delay = rng.fork("boot").uniform(*self.boot_delay_range)
        if decision is not None and decision.kind == "hang":
            boot_delay = decision.hang_seconds
        inst = Instance(
            instance_id=f"i-{self._launches:06d}",
            itype=itype,
            zone=target_zone,
            cpu_factor=self.cpu_heterogeneity.draw_factor(rng.fork("cpu")),
            io_factor=self.io_heterogeneity.draw_factor(rng.fork("io")),
            launched_at=self.now,
            boot_delay=boot_delay,
            time_to_failure=(
                self.failure_model.draw_time_to_failure(rng.fork("failure"))
                if self.failure_model is not None else None
            ),
            _obs=self.obs,
        )
        self._instances[inst.instance_id] = inst
        if self.obs.enabled:
            self.obs.tracer.instant("cloud.instance.pending", cat="cloud",
                                    track=inst.instance_id,
                                    itype=itype.name, zone=inst.zone.name)
            self.obs.metrics.counter("cloud.instance.launches",
                                     itype=itype.name).inc()
            self.obs.metrics.histogram(
                "cloud.instance.boot_seconds").observe(inst.boot_delay)
        if wait:
            self.advance(inst.boot_delay)
            inst.mark_running(self.now)
        return inst

    def launch_column(self, n: int, itype: InstanceType = SMALL,
                      zone: AvailabilityZone | None = None) -> InstanceColumn:
        """Request ``n`` homogeneous instances as one columnar launch.

        The columnar counterpart of ``n`` :meth:`launch_instance` calls:
        boot delays and hidden cpu/io factors are drawn as vectors from a
        ``column.{k}`` fork — a namespace scalar launches never touch, so
        adding columnar launches to a campaign leaves every scalar
        instance's hidden state byte-identical.  The column boots
        asynchronously; callers advance the clock to ``column.barrier``
        and call ``mark_running_all`` (or use the columnar runner, which
        does both through one engine event).

        Chaos hooks are scalar-path-only by design: columnar fleets model
        the homogeneous happy path whose cost is pure scale.
        """
        if n <= 0:
            raise InstanceError(f"column size must be positive, got {n}")
        target_zone = zone or self.region.zones[0]
        self._column_launches += 1
        rng = self.rng.fork(f"column.{self._column_launches}")
        col = InstanceColumn(
            column_id=f"c-{self._column_launches:04d}",
            itype=itype,
            zone=target_zone,
            launched_at=self.now,
            boot_delay=rng.fork("boot").uniforms(*self.boot_delay_range, n),
            cpu_factor=self.cpu_heterogeneity.draw_factors(rng.fork("cpu"), n),
            io_factor=self.io_heterogeneity.draw_factors(rng.fork("io"), n),
        )
        self._columns[col.column_id] = col
        if self.obs.enabled:
            self.obs.tracer.instant("cloud.column.pending", cat="cloud",
                                    track=col.column_id, n=n,
                                    itype=itype.name, zone=target_zone.name)
            self.obs.metrics.counter("cloud.instance.launches",
                                     itype=itype.name).inc(n)
        return col

    def terminate_column(self, column: InstanceColumn,
                         ends) -> "ColumnUsage":
        """Retire a whole column at per-member ``ends``; bill vectorized."""
        ends = column.terminate_all(ends)
        return self.ledger.record_column(
            column.column_id, column.itype.name,
            column.running_since or 0.0, ends,
            column.itype.hourly_rate)

    @property
    def columns(self) -> tuple[InstanceColumn, ...]:
        return tuple(self._columns.values())

    def wait_until_running(self, instance: Instance) -> None:
        """Advance the clock to the instance's boot completion if needed."""
        if instance.state is InstanceState.PENDING:
            if instance.ready_at > self.now:
                self.advance(instance.ready_at - self.now)
            instance.mark_running(self.now)

    def terminate_instance(self, instance: Instance, *,
                           at: float | None = None) -> "UsageRecord | None":
        """Terminate and bill the RUNNING interval (ceil-hour pricing).

        ``at`` is the lease-aware path: a fleet that stopped using an
        instance at some earlier simulated time may retire it
        retroactively at that time, so idle seconds past the last lease
        are never billed.  ``at`` must not be in the future and not
        precede the instance's RUNNING start.  Returns the
        :class:`~repro.cloud.billing.UsageRecord` written (``None`` for an
        instance that never reached RUNNING), so callers can read the
        charge — including its ``wasted_seconds`` remainder — directly.
        """
        end = self.now if at is None else at
        if end > self.now:
            raise InstanceError("cannot terminate in the future")
        was_running = instance.billable_interval is not None
        instance.terminate(end)
        if was_running:
            start, _ = instance.billable_interval  # type: ignore[misc]
            return self.ledger.record(
                instance.instance_id, instance.itype.name,
                start, end, instance.itype.hourly_rate,
            )
        return None

    def paid_through(self, instance: Instance, at: float | None = None) -> float:
        """End of the hour already bought for ``instance`` as of ``at``.

        Once RUNNING, the first ceil-hour is committed; thereafter the
        boundary advances in whole hours.  This is what a warm pool keys
        on: work finishing before ``paid_through`` rides for free.
        """
        if instance.running_since is None:
            raise InstanceError(f"{instance.instance_id} never started running")
        t = self.now if at is None else at
        elapsed = t - instance.running_since
        if elapsed < 0:
            raise InstanceError("query precedes the RUNNING start")
        hours = billed_hours(elapsed)
        return instance.running_since + hours * 3600.0

    def remaining_paid_seconds(self, instance: Instance,
                               at: float | None = None) -> float:
        """Seconds left in the currently-paid hour (0 on the boundary)."""
        t = self.now if at is None else at
        return self.paid_through(instance, t) - t

    def fail_instance(self, instance: Instance) -> None:
        """Crash a running instance at the current time and bill its usage.

        Partial hours are still charged — the crash does not refund the
        ceil-hour already entered.
        """
        start = instance.running_since
        instance.fail(self.now)
        if start is not None:
            self.ledger.record(
                instance.instance_id, instance.itype.name,
                start, self.now, instance.itype.hourly_rate,
            )

    def finalize_billing(self) -> None:
        """Bill all still-running instances up to the current time."""
        for inst in self._instances.values():
            if inst.state is InstanceState.RUNNING:
                self.terminate_instance(inst)

    @property
    def instances(self) -> tuple[Instance, ...]:
        return tuple(self._instances.values())

    def running_instances(self) -> list[Instance]:
        """Instances currently in the RUNNING state."""
        return [i for i in self._instances.values() if i.state is InstanceState.RUNNING]

    # -- storage -----------------------------------------------------------

    def create_volume(self, size_gb: int, zone: AvailabilityZone | None = None) -> EbsVolume:
        """Provision an EBS volume in ``zone`` (default: first zone)."""
        self._volume_count += 1
        vol = EbsVolume(
            volume_id=f"vol-{self._volume_count:06d}",
            size_gb=size_gb,
            zone=zone or self.region.zones[0],
            placement_model=self.placement,
            seed=self.rng.fork(f"volume.{self._volume_count}").seed,
        )
        if self.chaos is not None and self.chaos.has_ebs_degradations:
            chaos = self.chaos
            vol.degradation = (
                lambda z=vol.zone.name: chaos.ebs_factor(self.now, z))
        self._volumes[vol.volume_id] = vol
        return vol

    @property
    def volumes(self) -> tuple[EbsVolume, ...]:
        return tuple(self._volumes.values())

    def swap_volume(self, volume: EbsVolume, new_instance: Instance) -> None:
        """Detach ``volume`` from its current instance and attach it to a new
        one — the §3.1/§7 recovery path ("replacing poorly performing
        instances can be done easily without explicit data transfers")."""
        if new_instance.zone != volume.zone:
            raise EbsError("replacement instance must be in the volume's zone")
        volume.detach()
        volume.attach(new_instance)
