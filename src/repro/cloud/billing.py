"""Flat ceil-hour billing (§1.1, §5).

"The pricing scheme for instances provides a flat rate for an hour or
partial hour of computation ($0.1 × ⌈h⌉)" — the single fact that makes the
paper's provisioning problem interesting: once an instance is running, "in
most situations we will prefer to let it continue to run at least to the
full hour."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.units import billed_hours

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Obs

__all__ = ["UsageRecord", "ColumnUsage", "BillingLedger", "billable_hours"]


def billable_hours(duration_seconds: float) -> int:
    """Hours billed for a running interval: ceil, minimum one for any use.

    The ledger's refinement of :func:`repro.units.billed_hours`: an
    interval of exactly zero seconds never entered an hour, so it bills
    nothing (a committed-but-unused instance is the *report's* concern,
    not the ledger's).
    """
    if duration_seconds < 0:
        raise ValueError("negative duration")
    if duration_seconds == 0:
        return 0
    return billed_hours(duration_seconds)


@dataclass(frozen=True)
class UsageRecord:
    """One instance's billed usage."""

    instance_id: str
    instance_type: str
    start: float
    end: float
    hourly_rate: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def hours(self) -> int:
        return billable_hours(self.duration)

    @property
    def cost(self) -> float:
        return self.hours * self.hourly_rate

    @property
    def wasted_seconds(self) -> float:
        """Paid-but-unused remainder of the last billed hour.

        ``⌈P⌉`` billing charges to the next hour boundary; whatever running
        time falls short of it was bought and thrown away.  An interval
        ending exactly on a boundary wastes nothing — the §7 reuse argument
        is precisely about reassigning work into this remainder instead of
        terminating mid-hour.
        """
        return self.hours * 3600.0 - self.duration


@dataclass(frozen=True)
class ColumnUsage:
    """Aggregate billed usage for one :class:`~repro.cloud.instance.InstanceColumn`.

    The columnar counterpart of ``n`` :class:`UsageRecord` rows: per-member
    ceil-hours are computed vectorized and only the aggregates are stored —
    a 100k-instance fleet bills in one ledger write instead of 100k.
    The math is member-for-member identical to :func:`billable_hours`.
    """

    column_id: str
    instance_type: str
    n_instances: int
    start: float
    hourly_rate: float
    hours: int                    # summed ceil-hours across members
    total_duration: float         # summed RUNNING seconds
    total_wasted: float           # summed paid-but-unused remainders

    @property
    def cost(self) -> float:
        return self.hours * self.hourly_rate


class BillingLedger:
    """Accumulates usage records; the experiments read instance-hours here.

    Time in pending / shutting-down / terminated states is free (§3.1), so
    only RUNNING intervals are ever recorded.
    """

    def __init__(self, obs: "Obs | None" = None) -> None:
        self._records: list[UsageRecord] = []
        self._column_records: list[ColumnUsage] = []
        self._obs = obs

    def record(self, instance_id: str, instance_type: str, start: float,
               end: float, hourly_rate: float) -> UsageRecord:
        """Append one RUNNING interval to the ledger."""
        if end < start:
            raise ValueError(f"usage interval ends before it starts: [{start}, {end}]")
        rec = UsageRecord(instance_id, instance_type, start, end, hourly_rate)
        self._records.append(rec)
        obs = self._obs
        if obs is not None and obs.enabled:
            # Every ledger write is a ceil-hour billing tick: the §1.1
            # pricing fact, now visible in traces and metrics.
            obs.tracer.instant("cloud.billing.tick", cat="cloud",
                               track="billing", instance=instance_id,
                               hours=rec.hours, cost=round(rec.cost, 4))
            obs.metrics.counter("cloud.billing.records").inc()
            obs.metrics.counter("cloud.billing.instance_hours").inc(rec.hours)
            obs.metrics.counter("cloud.billing.cost_usd").inc(rec.cost)
            obs.metrics.counter("cloud.billing.wasted_seconds").inc(
                rec.wasted_seconds)
        return rec

    def record_column(self, column_id: str, instance_type: str, start: float,
                      ends: np.ndarray, hourly_rate: float) -> ColumnUsage:
        """Bill a whole column's RUNNING intervals in one vectorized write.

        ``ends`` holds each member's termination time; all members share
        ``start`` (the fleet boot barrier).  Hour math matches the scalar
        path exactly: ceil of the duration, zero-length intervals free.
        """
        ends = np.asarray(ends, dtype=float)
        durations = ends - start
        if durations.size and float(durations.min()) < 0:
            raise ValueError("column usage interval ends before it starts")
        hours = np.ceil(durations / 3600.0).astype(np.int64)
        np.maximum(hours, (durations > 0).astype(np.int64), out=hours)
        total_hours = int(hours.sum())
        total_duration = float(durations.sum())
        rec = ColumnUsage(
            column_id=column_id, instance_type=instance_type,
            n_instances=int(ends.size), start=start, hourly_rate=hourly_rate,
            hours=total_hours, total_duration=total_duration,
            total_wasted=total_hours * 3600.0 - total_duration,
        )
        self._column_records.append(rec)
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.tracer.instant("cloud.billing.tick", cat="cloud",
                               track="billing", column=column_id,
                               instances=rec.n_instances, hours=rec.hours,
                               cost=round(rec.cost, 4))
            obs.metrics.counter("cloud.billing.records").inc(rec.n_instances)
            obs.metrics.counter("cloud.billing.instance_hours").inc(rec.hours)
            obs.metrics.counter("cloud.billing.cost_usd").inc(rec.cost)
            obs.metrics.counter("cloud.billing.wasted_seconds").inc(
                rec.total_wasted)
        return rec

    @property
    def records(self) -> tuple[UsageRecord, ...]:
        return tuple(self._records)

    @property
    def column_records(self) -> tuple[ColumnUsage, ...]:
        return tuple(self._column_records)

    @property
    def total_cost(self) -> float:
        return (sum(r.cost for r in self._records)
                + sum(r.cost for r in self._column_records))

    @property
    def total_instance_hours(self) -> int:
        return (sum(r.hours for r in self._records)
                + sum(r.hours for r in self._column_records))

    @property
    def total_wasted_seconds(self) -> float:
        """Paid-hour remainders thrown away across every recorded interval."""
        return (sum(r.wasted_seconds for r in self._records)
                + sum(r.total_wasted for r in self._column_records))

    def summary(self) -> dict:
        """Counts, instance-hours and dollars in one dict."""
        return {
            "instances": (len(self._records)
                          + sum(r.n_instances for r in self._column_records)),
            "instance_hours": self.total_instance_hours,
            "cost_usd": round(self.total_cost, 4),
            "wasted_seconds": round(self.total_wasted_seconds, 1),
        }
