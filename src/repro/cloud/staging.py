"""Data staging: moving corpora into the cloud (§5's staging assumptions).

The paper assumes grep data is pre-staged on EBS volumes and that POS data
"can be staged onto local storage in a constant time per run (assuming
that the bottleneck is the maximum throughput available at the upload
site)".  This module makes those assumptions explicit and checkable: an
upload site has a fixed egress capacity that parallel instance downloads
share, so stage-in time is volume-bound, not fleet-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.random import RngStream
from repro.units import MB

__all__ = ["UploadSite", "StagePlan"]


@dataclass(frozen=True)
class UploadSite:
    """The user's data source with a bounded egress pipe."""

    egress_bandwidth: float = 30 * MB      # bytes/s total, shared
    per_instance_cap: float = 20 * MB      # bytes/s one instance can ingest
    setup_latency: float = 2.0             # connection/handshake per transfer

    def __post_init__(self) -> None:
        if self.egress_bandwidth <= 0 or self.per_instance_cap <= 0:
            raise ValueError("bandwidths must be positive")
        if self.setup_latency < 0:
            raise ValueError("latency must be non-negative")

    def stage_in_time(self, volume: int, n_instances: int,
                      rng: RngStream | None = None) -> float:
        """Seconds to push ``volume`` bytes to ``n_instances`` in parallel.

        Below the saturation point, adding instances helps (each gets its
        own capped stream); beyond it, the upload site is the bottleneck
        and stage-in is "a constant time per run" in the fleet size —
        exactly the §5 modelling assumption.
        """
        if volume < 0:
            raise ValueError("volume must be non-negative")
        if n_instances < 1:
            raise ValueError("need at least one instance")
        if volume == 0:
            return 0.0
        effective = min(self.egress_bandwidth,
                        n_instances * self.per_instance_cap)
        t = self.setup_latency + volume / effective
        if rng is not None:
            t *= rng.lognormal(0.0, 0.05)
        return t

    def saturation_fleet(self) -> int:
        """Fleet size beyond which more instances no longer help."""
        import math

        return math.ceil(self.egress_bandwidth / self.per_instance_cap)


@dataclass(frozen=True)
class StagePlan:
    """Stage-in accounting attached to an execution plan."""

    volume: int
    n_instances: int
    stage_seconds: float

    def effective_deadline(self, deadline: float) -> float:
        """Processing budget left after staging."""
        remaining = deadline - self.stage_seconds
        if remaining <= 0:
            raise ValueError(
                f"staging alone ({self.stage_seconds:.0f}s) exceeds the "
                f"deadline ({deadline:.0f}s)")
        return remaining
