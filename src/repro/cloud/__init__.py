"""A discrete EC2 simulator — the paper's testbed, rebuilt (§1.1, §3.1).

The reproduction cannot run on 2010-era Amazon EC2, so this package models
the slice of EC2 the paper's results actually depend on:

* **instance types & pricing** — small 32-bit instances, 1 EC2 compute
  unit, $0.085 per *hour or partial hour* of RUNNING time;
* **regions / availability zones** — placement constraints for EBS;
* **instance lifecycle** — pending → running → shutting-down → terminated,
  with a boot delay of roughly three minutes (§3.1's switching argument);
* **performance heterogeneity** — most instances are stable and fast, but
  some are *consistently* slow, with CPU and I/O spreads matching the
  Dejun et al. observations the paper cites (up to 4×);
* **EBS volumes** — attachable to one instance at a time, persistent,
  same-AZ constraint, with per-directory placement quality that produces
  the repeatable Fig. 5 spikes ("clones of a large sized directory can
  result in performance variations of up to a factor of 3");
* **S3-like object store** — higher, more variable latency than EBS;
* **bonnie++-style vetting** — block-I/O probing used by the §4
  acquisition loop ("over 60 MB/s block read/write performance");
* **an execution service** — charges an application's cost profile against
  a specific instance and storage placement, with measurement noise.

Everything the *empirical* layers (perfmodel, core) observe comes through
measured times returned by :class:`ExecutionService`; they never read the
ground-truth factors directly.
"""

from repro.cloud.billing import BillingLedger, UsageRecord
from repro.cloud.bonnie import BonnieResult, acquire_good_instance, bonnie_probe
from repro.cloud.cluster import Cloud
from repro.cloud.ebs import EbsVolume, PlacementModel
from repro.cloud.failures import FailureModel
from repro.cloud.instance import Instance, InstanceState
from repro.cloud.s3 import S3Store
from repro.cloud.service import ExecutionService, Workload
from repro.cloud.spot import (
    TWO_MINUTE_WARNING,
    SpotInterruption,
    SpotMarket,
    SpotMarketBoard,
    SpotRequest,
)
from repro.cloud.staging import StagePlan, UploadSite
from repro.cloud.types import (
    AvailabilityZone,
    InstanceType,
    Region,
    SMALL,
    US_EAST,
)

__all__ = [
    "BillingLedger",
    "UsageRecord",
    "BonnieResult",
    "bonnie_probe",
    "acquire_good_instance",
    "Cloud",
    "EbsVolume",
    "PlacementModel",
    "FailureModel",
    "Instance",
    "InstanceState",
    "S3Store",
    "ExecutionService",
    "Workload",
    "SpotInterruption",
    "SpotMarket",
    "SpotMarketBoard",
    "SpotRequest",
    "TWO_MINUTE_WARNING",
    "StagePlan",
    "UploadSite",
    "AvailabilityZone",
    "InstanceType",
    "Region",
    "SMALL",
    "US_EAST",
]
