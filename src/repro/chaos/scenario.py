"""Declarative fault scenarios.

A :class:`FaultScenario` is frozen data describing *what can go wrong*;
the :class:`~repro.chaos.injector.FaultInjector` decides *when it does*
under a seeded stream.  Scenarios compose by stacking: an experiment
passes any number of them and the injector combines the pieces (launch
rejection probabilities combine as independent events, degradation
factors multiply, outage windows union).

The shipped :data:`SCENARIOS` library covers one scenario per fault
class plus a composed ``kitchen-sink``; ``experiments/exp_chaos.py``
sweeps all of them with the resilience layer on and off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.random import RngStream
from repro.units import HOUR

__all__ = ["AzOutage", "Degradation", "FaultScenario", "SCENARIOS",
           "SPOT_REGIMES", "SpotInterruptionTrace", "SpotRegime",
           "get_scenario", "get_spot_regime"]

#: Wildcard zone selector: the rate/episode applies to every zone.
ANY_ZONE = "*"


@dataclass(frozen=True)
class AzOutage:
    """A window during which one availability zone is dead.

    Launches into the zone are rejected for the whole window, and
    instances RUNNING in the zone at ``start`` are killed (billing their
    partial hours, like any crash).
    """

    zone: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError("outage window must satisfy 0 <= start < end")

    def active(self, t: float) -> bool:
        """Is the zone dark at simulated time ``t``?"""
        return self.start <= t < self.end


@dataclass(frozen=True)
class Degradation:
    """A degraded-throughput episode on a storage path.

    ``factor`` multiplies transfer/IO time (2.0 = half throughput) while
    the episode is active; ``sigma_boost`` is added to the path's
    request-to-request variability (S3 brownouts mostly fatten the tail
    rather than move the median).  ``zone`` scopes EBS episodes to one
    AZ (S3 is regional, so S3 episodes ignore it).
    """

    start: float
    end: float
    factor: float = 1.0
    sigma_boost: float = 0.0
    zone: str = ANY_ZONE

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError("episode window must satisfy 0 <= start < end")
        if self.factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        if self.sigma_boost < 0:
            raise ValueError("sigma boost must be non-negative")

    def active(self, t: float) -> bool:
        """Is the episode degrading its path at simulated time ``t``?"""
        return self.start <= t < self.end


@dataclass(frozen=True)
class SpotInterruptionTrace:
    """A recorded spot-interruption timeline, replayable by name.

    ``events`` holds ``(at_seconds, zone)`` reclamation instants in time
    order — the market takes the instance back at ``at`` regardless of
    price (capacity reclaims, not price crossings), after the standard
    two-minute warning.  A trace is frozen data: replaying it under the
    same cloud seed reproduces the run bit-for-bit, and stacking it onto
    a :class:`FaultScenario` composes with every other fault class.

    Traces are *generated* (not hand-written) via :meth:`generate`, which
    draws per-zone exponential gaps from named :class:`RngStream` forks
    (``spot.trace.{name}.{zone}``) — pure derivations off the seed, so
    installing a trace never shifts draws any existing consumer observes.
    """

    name: str
    events: tuple[tuple[float, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("trace needs a name")
        for at, zone in self.events:
            if at < 0:
                raise ValueError("interruption times must be non-negative")
            if not zone:
                raise ValueError("interruption needs a zone")
        if list(self.events) != sorted(self.events):
            raise ValueError("trace events must be in time order")

    @classmethod
    def generate(cls, name: str, *, seed: int, zones: tuple[str, ...],
                 mean_gap_hours: float,
                 horizon_hours: float = 24.0) -> "SpotInterruptionTrace":
        """Draw one trace: per-zone Poisson reclaims at the given rate.

        Each zone's gaps come from its own named fork of the canonical
        ``(seed, "cloud")`` stream, so the trace is a pure function of
        ``(name, seed, zones, rate, horizon)`` and is independent of
        query order or any other consumer of the seed.
        """
        if mean_gap_hours <= 0:
            raise ValueError("mean gap must be positive")
        root = RngStream(seed, name="cloud").fork(f"spot.trace.{name}")
        events: list[tuple[float, str]] = []
        for zone in zones:
            rng = root.fork(zone)
            t = rng.exponential(mean_gap_hours * HOUR)
            while t < horizon_hours * HOUR:
                events.append((t, zone))
                t += rng.exponential(mean_gap_hours * HOUR)
        return cls(name=name, events=tuple(sorted(events)))

    def next_after(self, zone: str, t: float) -> float | None:
        """The first recorded reclamation in ``zone`` strictly after ``t``."""
        for at, z in self.events:
            if z == zone and at > t:
                return at
        return None

    def events_for(self, zone: str) -> tuple[float, ...]:
        """All reclamation instants recorded for one zone, in order."""
        return tuple(at for at, z in self.events if z == zone)


@dataclass(frozen=True)
class SpotRegime:
    """A generative family of interruption traces at one market mood.

    The regime is the *family* (how hostile the market is); a concrete
    :class:`SpotInterruptionTrace` is one member, fully determined by the
    seed — ``regime.trace(seed)`` is what experiments install, and two
    calls with the same seed return identical traces.
    """

    name: str
    mean_gap_hours: float
    horizon_hours: float = 24.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("regime needs a name")
        if self.mean_gap_hours <= 0 or self.horizon_hours <= 0:
            raise ValueError("regime rates must be positive")

    def trace(self, seed: int, *,
              zones: tuple[str, ...] = ("us-east-1a", "us-east-1b",
                                        "us-east-1c", "us-east-1d"),
              ) -> SpotInterruptionTrace:
        """The regime's concrete trace for one campaign seed."""
        return SpotInterruptionTrace.generate(
            self.name, seed=seed, zones=zones,
            mean_gap_hours=self.mean_gap_hours,
            horizon_hours=self.horizon_hours)

    def scenario(self, seed: int, **kwargs) -> "FaultScenario":
        """A single-trace :class:`FaultScenario` ready to install."""
        return FaultScenario(name=f"spot-{self.name}",
                             spot_interruptions=(self.trace(seed, **kwargs),))


#: The shipped interruption regimes ``experiments/exp_spot.py`` sweeps:
#: from a market that reclaims a zone's capacity twice a day to one that
#: churns every zone a few times per hour.
SPOT_REGIMES: dict[str, SpotRegime] = {
    "calm": SpotRegime("calm", mean_gap_hours=12.0),
    "choppy": SpotRegime("choppy", mean_gap_hours=1.5),
    "eviction-storm": SpotRegime("eviction-storm", mean_gap_hours=0.25,
                                 horizon_hours=12.0),
}


def get_spot_regime(name: str) -> SpotRegime:
    """Look up a shipped spot regime (raises ``KeyError`` with the menu)."""
    try:
        return SPOT_REGIMES[name]
    except KeyError:
        raise KeyError(
            f"unknown spot regime {name!r}; shipped: "
            f"{', '.join(sorted(SPOT_REGIMES))}") from None


@dataclass(frozen=True)
class FaultScenario:
    """One declarative bundle of fault processes.

    ``launch_reject_rates`` maps zone name (or ``"*"``) to the per-attempt
    probability of an ``InsufficientInstanceCapacity``-style rejection;
    ``boot_hang_prob`` is the chance a granted launch sticks in PENDING
    for ``boot_hang_seconds`` instead of its drawn boot delay.
    """

    name: str
    launch_reject_rates: tuple[tuple[str, float], ...] = ()
    boot_hang_prob: float = 0.0
    boot_hang_seconds: float = 2 * HOUR
    az_outages: tuple[AzOutage, ...] = ()
    ebs_degradations: tuple[Degradation, ...] = ()
    s3_degradations: tuple[Degradation, ...] = ()
    #: Replayable spot-reclaim timelines (union across stacked scenarios);
    #: only spot-acquired capacity feels them — on-demand runs are immune.
    spot_interruptions: tuple[SpotInterruptionTrace, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        for zone, rate in self.launch_reject_rates:
            if not zone:
                raise ValueError("empty zone selector")
            if not 0 <= rate < 1:
                raise ValueError(f"reject rate for {zone!r} must be in [0, 1)")
        if not 0 <= self.boot_hang_prob < 1:
            raise ValueError("boot_hang_prob must be in [0, 1)")
        if self.boot_hang_seconds <= 0:
            raise ValueError("boot_hang_seconds must be positive")

    def reject_rate(self, zone_name: str) -> float:
        """Per-attempt launch rejection probability in ``zone_name``."""
        p_ok = 1.0
        for selector, rate in self.launch_reject_rates:
            if selector == ANY_ZONE or selector == zone_name:
                p_ok *= 1.0 - rate
        return 1.0 - p_ok


def _shipped() -> dict[str, FaultScenario]:
    """The scenario library the chaos sweep runs."""
    return {
        # Regional capacity crunch: every launch attempt has a fair chance
        # of an InsufficientInstanceCapacity rejection, everywhere.
        "capacity-crunch": FaultScenario(
            name="capacity-crunch",
            launch_reject_rates=((ANY_ZONE, 0.45),),
        ),
        # Hypervisor gremlins: launches are granted but some instances
        # never leave PENDING within any useful time.
        "flaky-boots": FaultScenario(
            name="flaky-boots",
            boot_hang_prob=0.30,
            boot_hang_seconds=2 * HOUR,
        ),
        # One zone goes dark for two hours from t=0 — and it is the zone
        # every default launch targets.
        "az-blackout": FaultScenario(
            name="az-blackout",
            az_outages=(AzOutage("us-east-1a", 0.0, 2 * HOUR),),
        ),
        # The paper's Fig. 5 placement spikes, scaled up to an episode:
        # every EBS read in one zone runs at ~1/3 throughput for hours.
        "slow-ebs": FaultScenario(
            name="slow-ebs",
            ebs_degradations=(
                Degradation(0.0, 4 * HOUR, factor=3.0, zone="us-east-1a"),
            ),
        ),
        # S3 brownout: modest median slowdown, much fatter tail.
        "s3-brownout": FaultScenario(
            name="s3-brownout",
            s3_degradations=(
                Degradation(0.0, 4 * HOUR, factor=2.0, sigma_boost=0.9),
            ),
        ),
        # A bit of everything, at milder intensities.
        "kitchen-sink": FaultScenario(
            name="kitchen-sink",
            launch_reject_rates=((ANY_ZONE, 0.20),),
            boot_hang_prob=0.10,
            boot_hang_seconds=1 * HOUR,
            ebs_degradations=(
                Degradation(0.0, 2 * HOUR, factor=2.0, zone="us-east-1a"),
            ),
            s3_degradations=(
                Degradation(0.0, 2 * HOUR, factor=1.5, sigma_boost=0.4),
            ),
        ),
    }


SCENARIOS: dict[str, FaultScenario] = _shipped()


def get_scenario(name: str) -> FaultScenario:
    """Look up a shipped scenario by name (raises ``KeyError`` with the menu)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; shipped: {', '.join(sorted(SCENARIOS))}"
        ) from None
