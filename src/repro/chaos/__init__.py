"""``repro.chaos`` — seeded, simulated-time fault injection.

The paper's provisioning promise is probabilistic — the adjusted deadline
``D/(1+a)`` targets a ≤10 % miss rate (§5.2) — but a promise made against
a cloud that only ever crashes instances has not really been tested.
Real EC2 campaigns also hit launch rejections
(``InsufficientInstanceCapacity``), instances stuck in PENDING, whole
availability-zone outages, and degraded EBS/S3 data paths.  This package
expresses those fault classes as declarative, composable
:class:`FaultScenario` values and injects them into a
:class:`~repro.cloud.cluster.Cloud` through a :class:`FaultInjector`.

Design rules:

* **deterministic** — every injected fault descends from the injector's
  :class:`~repro.sim.random.RngStream`; the same seed and the same
  scenario stack replay the identical fault sequence (no wall clock, no
  global RNG);
* **declarative & composable** — a scenario is frozen data; experiments
  stack several (`capacity-crunch` + `slow-ebs`) per run;
* **near-zero cost when off** — a cloud without an injector pays one
  ``is None`` check per launch/advance; nothing else changes.

The policy layer that *absorbs* these faults lives in
:mod:`repro.resilience`.
"""

from repro.chaos.injector import ChaosError, FaultInjector, InjectedFault, LaunchRejected
from repro.chaos.scenario import (
    SCENARIOS,
    SPOT_REGIMES,
    AzOutage,
    Degradation,
    FaultScenario,
    SpotInterruptionTrace,
    SpotRegime,
    get_scenario,
    get_spot_regime,
)

__all__ = [
    "AzOutage",
    "ChaosError",
    "Degradation",
    "FaultInjector",
    "FaultScenario",
    "InjectedFault",
    "LaunchRejected",
    "SCENARIOS",
    "SPOT_REGIMES",
    "SpotInterruptionTrace",
    "SpotRegime",
    "get_scenario",
    "get_spot_regime",
]
