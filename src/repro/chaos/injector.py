"""The fault injector: scenarios × seeded randomness → injected faults.

A :class:`FaultInjector` holds a stack of
:class:`~repro.chaos.scenario.FaultScenario` values and answers the
cloud's hook points:

* :meth:`launch_decision` — should this launch attempt be granted,
  rejected, or granted-but-hung?  Drawn from a stream forked per attempt
  index, so decisions are a pure function of ``(seed, attempt, zone)``
  and replay identically regardless of call interleaving;
* :meth:`zone_down` / :meth:`outage_starts_between` — AZ outage windows;
* :meth:`ebs_factor` / :meth:`s3_factor` / :meth:`s3_sigma_boost` —
  degraded-throughput multipliers at a simulated time.

Every injected fault is appended to :attr:`FaultInjector.injected` — the
replayable fault log the determinism tests compare across runs — and
mirrored to ``chaos.*`` metrics/instants when observability is on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.chaos.scenario import ANY_ZONE, FaultScenario
from repro.sim.random import RngStream

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Obs

__all__ = ["ChaosError", "LaunchRejected", "InjectedFault", "LaunchDecision",
           "FaultInjector"]


class ChaosError(RuntimeError):
    """Base class for faults injected by the chaos layer."""


class LaunchRejected(ChaosError):
    """An instance launch refused by the cloud (capacity or AZ outage)."""

    def __init__(self, zone: str, reason: str) -> None:
        super().__init__(f"launch rejected in {zone}: {reason}")
        self.zone = zone
        self.reason = reason


@dataclass(frozen=True)
class InjectedFault:
    """One entry of the replayable fault log."""

    kind: str            # "launch-reject" | "boot-hang" | "az-outage" | ...
    at: float            # simulated time of injection
    zone: str
    detail: str = ""


@dataclass(frozen=True)
class LaunchDecision:
    """Outcome of one launch attempt under the installed scenarios."""

    kind: str                      # "ok" | "reject" | "hang"
    reason: str = ""
    hang_seconds: float = 0.0


_OK = LaunchDecision("ok")


class FaultInjector:
    """Composable, deterministic fault source for one :class:`Cloud`.

    ``seed`` should come from the owning cloud so one campaign seed
    reproduces the whole run; the injector forks ``chaos`` off it and
    never touches the cloud's own streams — installing chaos does not
    shift any draw existing consumers observe.
    """

    def __init__(self, scenarios: Sequence[FaultScenario] | FaultScenario,
                 *, seed: int = 0, obs: "Obs | None" = None) -> None:
        if isinstance(scenarios, FaultScenario):
            scenarios = (scenarios,)
        self.scenarios: tuple[FaultScenario, ...] = tuple(scenarios)
        self.rng = RngStream(seed, name="cloud").fork("chaos")
        self.obs = obs
        self.injected: list[InjectedFault] = []
        self._outages = tuple(o for s in self.scenarios for o in s.az_outages)
        self._ebs = tuple(d for s in self.scenarios for d in s.ebs_degradations)
        self._s3 = tuple(d for s in self.scenarios for d in s.s3_degradations)
        self._spot = tuple(t for s in self.scenarios
                           for t in s.spot_interruptions)
        # Hang probability composes like rejection: independent events.
        p_ok = 1.0
        hang_seconds = 0.0
        for s in self.scenarios:
            p_ok *= 1.0 - s.boot_hang_prob
            if s.boot_hang_prob > 0:
                hang_seconds = max(hang_seconds, s.boot_hang_seconds)
        self._hang_prob = 1.0 - p_ok
        self._hang_seconds = hang_seconds

    @property
    def names(self) -> tuple[str, ...]:
        """Names of the installed scenarios, in composition order."""
        return tuple(s.name for s in self.scenarios)

    # -- launch path -------------------------------------------------------

    def launch_decision(self, zone_name: str, now: float,
                        attempt: int) -> LaunchDecision:
        """Fate of launch ``attempt`` (1-based, cloud-wide) into a zone."""
        if self.zone_down(zone_name, now):
            self._record("az-outage", now, zone_name, "launch refused")
            return LaunchDecision("reject", reason="az-outage")
        reject = 0.0
        for s in self.scenarios:
            r = s.reject_rate(zone_name)
            reject = 1.0 - (1.0 - reject) * (1.0 - r)
        rng = self.rng.fork(f"launch.{attempt}.{zone_name}")
        if reject > 0 and rng.uniform() < reject:
            self._record("launch-reject", now, zone_name,
                         "InsufficientInstanceCapacity")
            return LaunchDecision("reject", reason="insufficient-capacity")
        if self._hang_prob > 0 and rng.uniform() < self._hang_prob:
            self._record("boot-hang", now, zone_name,
                         f"pending for {self._hang_seconds:.0f}s")
            return LaunchDecision("hang", reason="boot-hang",
                                  hang_seconds=self._hang_seconds)
        return _OK

    # -- AZ outages --------------------------------------------------------

    @property
    def has_outages(self) -> bool:
        """Any AZ-outage window installed (advance must step them)."""
        return bool(self._outages)

    @property
    def has_ebs_degradations(self) -> bool:
        """Any EBS degradation episode installed."""
        return bool(self._ebs)

    @property
    def has_s3_degradations(self) -> bool:
        """Any S3 brownout episode installed."""
        return bool(self._s3)

    def zone_down(self, zone_name: str, t: float) -> bool:
        """True while any outage window covers ``zone_name`` at ``t``."""
        return any(o.zone == zone_name and o.active(t) for o in self._outages)

    def outage_starts_between(self, t0: float, t1: float) -> list[tuple[float, str]]:
        """Outage onsets in ``(t0, t1]`` — the kill boundaries for ``advance``."""
        hits = [(o.start, o.zone) for o in self._outages if t0 < o.start <= t1]
        return sorted(hits)

    def record_outage_kill(self, at: float, zone_name: str,
                           instance_id: str) -> None:
        """Log one running instance killed by a zone outage."""
        self._record("az-outage-kill", at, zone_name, instance_id)

    # -- spot reclaims -----------------------------------------------------

    @property
    def has_spot_interruptions(self) -> bool:
        """Any replayable spot-reclaim trace installed."""
        return bool(self._spot)

    def next_spot_interruption(self, zone_name: str, t: float) -> float | None:
        """Earliest recorded spot reclaim in ``zone_name`` strictly after ``t``.

        Pure trace lookup — nothing is drawn, so querying is idempotent
        and composes with the market's own price-crossing interruptions
        (the caller takes whichever comes first).
        """
        hits = [at for trace in self._spot
                for at in (trace.next_after(zone_name, t),) if at is not None]
        return min(hits) if hits else None

    def record_spot_interruption(self, at: float, zone_name: str,
                                 detail: str = "") -> None:
        """Log one spot instance reclaimed (trace or market crossing)."""
        self._record("spot-interruption", at, zone_name, detail)

    # -- degraded storage paths -------------------------------------------

    def ebs_factor(self, t: float, zone_name: str = ANY_ZONE) -> float:
        """IO-time multiplier for EBS reads in ``zone_name`` at ``t``."""
        f = 1.0
        for d in self._ebs:
            if d.active(t) and (d.zone == ANY_ZONE or zone_name == ANY_ZONE
                                or d.zone == zone_name):
                f *= d.factor
        return f

    def s3_factor(self, t: float) -> float:
        """Transfer-time multiplier for S3 requests at ``t``."""
        f = 1.0
        for d in self._s3:
            if d.active(t):
                f *= d.factor
        return f

    def s3_sigma_boost(self, t: float) -> float:
        """Additional lognormal sigma on S3 request latency at ``t``."""
        return sum(d.sigma_boost for d in self._s3 if d.active(t))

    # -- fault log ---------------------------------------------------------

    def _record(self, kind: str, at: float, zone: str, detail: str) -> None:
        self.injected.append(InjectedFault(kind, at, zone, detail))
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.metrics.counter("chaos.faults.injected", kind=kind).inc()
            obs.tracer.instant(f"chaos.{kind}", cat="chaos", track=zone,
                               detail=detail)

    def fault_counts(self) -> dict[str, int]:
        """Injected-fault tallies by kind (for reports and sweeps)."""
        counts: dict[str, int] = {}
        for f in self.injected:
            counts[f.kind] = counts.get(f.kind, 0) + 1
        return counts
