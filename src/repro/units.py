"""Byte/time unit helpers shared across the project.

The paper mixes kB/MB/GB freely (and bins Fig. 1(a) in "multiples of 10K");
constants here keep every module on the same decimal convention (1 kB =
1000 B), matching how file sizes are reported in the paper.
"""

from __future__ import annotations

import math

__all__ = ["KB", "MB", "GB", "HOUR", "MINUTE", "billed_hours",
           "ceil_hour_cost", "resume_time", "fmt_bytes", "fmt_seconds"]

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

MINUTE = 60.0
HOUR = 3600.0


def billed_hours(duration_seconds: float) -> int:
    """Ceil-hour billing arithmetic: ``max(1, ⌈d / 3600⌉)``.

    The paper's §1.1/§5 pricing model — any started hour is a whole hour,
    and any use at all is at least one.  This is the single definition the
    runner reports, the billing ledger, and the fleet's paid-through
    arithmetic all share; zero- and negative-duration special cases stay
    with the callers (the ledger treats 0 as unbilled, the report treats
    it as one committed hour).
    """
    return max(1, math.ceil(duration_seconds / HOUR))


def ceil_hour_cost(duration_seconds: float, hourly_rate: float) -> float:
    """The on-demand bill for a run: ``billed_hours(d) * rate``.

    One definition for the "what would this have cost at the posted
    rate" arithmetic that the spot runner (on-demand-equivalent
    baseline) and the resilience layer both need.
    """
    return billed_hours(duration_seconds) * hourly_rate


def resume_time(at: float, ready_at: float, overhead: float = 0.0) -> float:
    """When work actually restarts on a replacement instance.

    ``max(at, ready_at) + overhead``: no earlier than the decision point
    *and* no earlier than the instance is booted, plus any fixed restart
    overhead (checkpoint reload, re-attach).  Shared by the spot runner's
    segment restarts and the resilience layer's replacement attach so the
    two paths cannot drift.
    """
    return max(at, ready_at) + overhead


def fmt_bytes(n: int | float) -> str:
    """Human-readable decimal byte count (``1500000 -> '1.5 MB'``)."""
    n = float(n)
    for unit, div in (("GB", GB), ("MB", MB), ("kB", KB)):
        if abs(n) >= div:
            return f"{n / div:.4g} {unit}"
    return f"{n:.0f} B"


def fmt_seconds(t: float) -> str:
    """Human-readable duration (``3725 -> '1h 02m 05s'``)."""
    if t < 60:
        return f"{t:.3g}s"
    m, s = divmod(int(round(t)), 60)
    h, m = divmod(m, 60)
    if h:
        return f"{h}h {m:02d}m {s:02d}s"
    return f"{m}m {s:02d}s"
