"""Bench F4: grep on 5 GB vs unit file size — the 10 MB plateau (Fig. 4)."""

from conftest import show, single_shot

from repro.experiments import exp_grep
from repro.report import ComparisonTable
from repro.units import MB


def test_fig4_plateau(benchmark, grep_testbed):
    fig, out = single_shot(benchmark, exp_grep.fig4, grep_testbed)
    show(fig)
    table = ComparisonTable()
    table.add("F4", "plateau from 10 MB units up to 2 GB", "flat",
              f"spread {out['plateau_spread']:.1%}", out["plateau_spread"] < 0.10)
    table.add("F4", "original small files vs plateau", "several-fold slower",
              f"{out['orig_over_plateau']:.1f}x", out["orig_over_plateau"] > 3.0)
    table.add("F4", "1 MB units still above plateau", "below-plateau penalty",
              f"{out['small_unit_penalty']:.2f}x", out["small_unit_penalty"] > 1.1)
    # monotone approach to the plateau
    means = out["means"]
    table.add("F4", "time decreases toward the plateau", "monotone",
              "1MB > 10MB >= ~100MB",
              means[1 * MB] > means[10 * MB] > 0.95 * means[100 * MB])
    print(table.render())
    assert table.all_agree
