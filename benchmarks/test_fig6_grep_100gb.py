"""Bench F6 + E1/E2: the full grep run — model fit, prediction gap, 5.6x
reshaping gain (Fig. 6, Eqs. (1)–(2)).  10 GB stands in for 100 GB."""

from conftest import show, single_shot

from repro.experiments import exp_grep
from repro.report import ComparisonTable

PAPER_EQ1_SLOPE = 1.324e-8


def test_fig6_full_run(benchmark, grep_testbed):
    fig, out = single_shot(benchmark, exp_grep.fig6, grep_testbed)
    show(fig)
    table = ComparisonTable()
    table.add("E1", "Eq.(1) slope (s/byte at 100 MB units)", f"{PAPER_EQ1_SLOPE:.3e}",
              f"{out['eq1']['b']:.3e}",
              abs(out["eq1"]["b"] - PAPER_EQ1_SLOPE) / PAPER_EQ1_SLOPE < 0.25)
    table.add("E1", "Eq.(1) fit quality", "R² = 0.999",
              f"R² = {out['eq1']['r2']:.4f}", out["eq1"]["r2"] > 0.99)
    table.add("F6", "actual exceeds clean-instance prediction", "+30%",
              f"{out['underestimate']:+.0%}", 0.02 < out["underestimate"] < 0.60)
    table.add("F6", "reshaping gain over original files", "5.6x",
              f"{out['improvement']:.1f}x", 3.5 < out["improvement"] < 9.0)
    table.add("E2", "sample refit stays near Eq.(1)", "slope +13%",
              f"slope ratio {out['eq2']['b'] / out['eq1']['b']:.2f}",
              0.8 < out["eq2"]["b"] / out["eq1"]["b"] < 1.3)
    print(table.render())
    assert table.all_agree
