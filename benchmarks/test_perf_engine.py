"""Perf guard: the simulation core must stay at bulk-event scale.

Thresholds are deliberately ~3x below the measured medians on a shared
single-core container (engine storm ≈160-220k events/s, columnar fleet
≈0.8M member-advances/s), so scheduler noise does not flake the lane but
an accidental O(n log n) → O(n²) slip, a per-event allocation, or a
reintroduced per-member engine event fails it immediately.

* ``schedule_batch`` + ``run`` of a 100k-event storm must clear 50k
  events/s on both schedulers with the tracer off, and 20k events/s with
  a live tracer;
* the columnar uniform-fleet runner must advance a 100k-instance fleet
  in single-digit wall seconds while firing exactly two engine events.
"""

import time

import pytest

from repro.apps import GrepApplication, GrepCostProfile
from repro.cloud import Cloud, Workload
from repro.core import reshape
from repro.corpus import text_400k_like
from repro.obs import Tracer
from repro.sim.engine import SimulationEngine

MIN_EVENTS_PER_S = 50_000
MIN_TRACED_EVENTS_PER_S = 20_000
MAX_FLEET_SECONDS = 9.0
STORM = 100_000
ATTEMPTS = 2   # one re-measure absorbs a noisy neighbour on shared hosts


def _noop() -> None:
    pass


def _storm_rate(scheduler: str, *, traced: bool, n: int = STORM) -> float:
    tracer = Tracer() if traced else None
    engine = SimulationEngine(tracer=tracer, scheduler=scheduler)
    # deterministic pseudo-random times; Weyl-ish multiplier spreads them
    times = [((i * 2654435761) & 0xFFFFF) / 16.0 for i in range(n)]
    t0 = time.perf_counter()
    engine.schedule_batch(times, _noop, "storm")
    engine.run()
    elapsed = time.perf_counter() - t0
    assert engine.events_fired == n
    return n / elapsed


def _best(fn, attempts: int = ATTEMPTS) -> float:
    return max(fn() for _ in range(attempts))


@pytest.mark.smoke
@pytest.mark.perf
@pytest.mark.parametrize("scheduler", ["heap", "bucket"])
def test_engine_storm_throughput(benchmark, scheduler):
    rate = benchmark.pedantic(
        lambda: _best(lambda: _storm_rate(scheduler, traced=False)),
        rounds=1, iterations=1)
    print(f"\n{scheduler} scheduler, tracer off: {rate:,.0f} events/s")
    assert rate >= MIN_EVENTS_PER_S, (
        f"{scheduler} scheduler regressed to {rate:,.0f} events/s "
        f"(floor {MIN_EVENTS_PER_S:,})")


@pytest.mark.smoke
@pytest.mark.perf
@pytest.mark.parametrize("scheduler", ["heap", "bucket"])
def test_engine_storm_throughput_traced(benchmark, scheduler):
    rate = benchmark.pedantic(
        lambda: _best(lambda: _storm_rate(scheduler, traced=True)),
        rounds=1, iterations=1)
    print(f"\n{scheduler} scheduler, tracer on: {rate:,.0f} events/s")
    assert rate >= MIN_TRACED_EVENTS_PER_S, (
        f"traced {scheduler} scheduler regressed to {rate:,.0f} events/s "
        f"(floor {MIN_TRACED_EVENTS_PER_S:,})")


@pytest.mark.smoke
@pytest.mark.perf
def test_columnar_100k_fleet_single_digit_seconds(benchmark):
    workload = Workload("scan", GrepApplication(), GrepCostProfile())
    units = list(reshape(text_400k_like(scale=1e-3), None).units)[:6]

    def fleet() -> tuple[float, int]:
        from repro.runner import execute_uniform_fleet

        cloud = Cloud(seed=42)
        t0 = time.perf_counter()
        report = execute_uniform_fleet(cloud, workload, 100_000, units,
                                       deadline=3600.0)
        elapsed = time.perf_counter() - t0
        assert report.n_instances == 100_000
        return elapsed, cloud.engine.events_fired

    elapsed, fired = benchmark.pedantic(fleet, rounds=1, iterations=1)
    print(f"\n100k-instance columnar fleet: {elapsed:.2f}s wall, "
          f"{fired} engine events")
    assert elapsed < MAX_FLEET_SECONDS, (
        f"100k-instance fleet took {elapsed:.1f}s (budget {MAX_FLEET_SECONDS}s)")
    # the whole campaign is a boot barrier + a completion event; anything
    # more means someone reintroduced per-member engine traffic
    assert fired == 2
