"""Bench F3: grep on a 1 MB probe — tiny values, huge deviations (Fig. 3)."""

from conftest import show, single_shot

from repro.experiments import exp_grep
from repro.report import ComparisonTable


def test_fig3_unstable_small_probes(benchmark):
    fig, out = single_shot(benchmark, exp_grep.fig3)
    show(fig)
    table = ComparisonTable()
    table.add("F3", "small-probe instability (max CV)", "large std, discarded",
              f"CV = {out['max_cv']:.2f}", out["max_cv"] > 0.25)
    table.add("F3", "absolute times are tiny", "< a few seconds",
              f"max mean = {max(out['means'].values()):.2f} s",
              max(out["means"].values()) < 5.0)
    print(table.render())
    assert table.all_agree
